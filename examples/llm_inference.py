#!/usr/bin/env python3
"""OPT token generation on NDP: GEMV streaming from CXL memory.

During the generation phase (batch 1) every token streams the whole model
through GEMVs — the paper offloads this to M2NDP so the weights never
cross the CXL link.  We simulate a scaled-down transformer layer with the
real GEMV kernel (one output row per µthread, stride-4 pool mapping) and
extrapolate per-token latency to the full OPT-2.7B / OPT-30B sizes.

Run:  python examples/llm_inference.py
"""

from repro.workloads import llm
from repro.workloads.base import make_platform


def main() -> None:
    for model, hidden in ((llm.OPT_2_7B, 128), (llm.OPT_30B, 160)):
        data = llm.generate(model, sim_hidden=hidden, sim_layers=2)
        platform = make_platform()
        run = llm.run_ndp(platform, data)
        weights_gb = model.total_weight_bytes / (1 << 30)
        token_ms = run.extras["token_ns_extrapolated"] / 1e6
        print(f"{model.name}: {model.layers} layers, hidden {model.hidden} "
              f"({weights_gb:.1f} GB fp32 weights)")
        print(f"  simulated GEMV slice: {data.sim_bytes >> 20} MiB, "
              f"correct={run.correct}")
        print(f"  measured NDP bandwidth: {run.dram_bandwidth:.1f} GB/s")
        print(f"  extrapolated per-token latency on one CXL-M2NDP: "
              f"{token_ms:.1f} ms\n")
    print("(per-token time scales with model bytes / 409.6 GB/s internal BW;"
          "\n a passive-CXL GPU is limited to the 64 GB/s link instead)")


if __name__ == "__main__":
    main()
