#!/usr/bin/env python3
"""SLO-aware multi-tenant serving on a CXL-M2NDP cluster.

The ROADMAP's "heavy traffic from millions of users" scenario end to end:
three tenants with different contracts share a 4-expander cluster behind
one serving frontend (`repro.serve`):

- ``kv-web``   interactive KVStore point GETs, 40 µs SLO, double WFQ
               weight, token-bucket rate contract;
- ``dash``     interactive OLAP scans arriving in bursts (2-state MMPP);
- ``etl``      batch-class closed-loop vector jobs (8 workers with think
               time) — no SLO, served from the leftover capacity but
               protected from starvation by aging.

The engine admission-controls every arrival, schedules dispatch with
weighted-fair queueing + latency-class priority, fuses contiguous batch
requests into single cluster launches (dynamic batching -> trace-cache
hits), and reports per-tenant percentiles, SLO attainment and goodput.

Run:  PYTHONPATH=src python examples/serving.py
"""

from repro.cluster import make_cluster_platform
from repro.serve import (
    ArrivalSpec,
    AutoscalePolicy,
    BatchPolicy,
    ServingEngine,
    TenantSpec,
)


def main() -> None:
    platform = make_cluster_platform(num_devices=4, backend="batched")
    tenants = [
        TenantSpec(
            "kv-web", "kvstore",
            arrivals=ArrivalSpec("poisson", rate_rps=4e6, requests=300),
            qos_class="interactive", weight=2.0, slo_ns=40_000.0,
            rate_limit_rps=6e6, burst=64, size=1024,
        ),
        TenantSpec(
            "dash", "olap",
            arrivals=ArrivalSpec("bursty", rate_rps=5e5, burst_rate_rps=6e6,
                                 dwell_ns=25_000.0, requests=60),
            qos_class="interactive", weight=1.0, slo_ns=150_000.0,
            size=1 << 13, slices=4,
        ),
        TenantSpec(
            "etl", "vecadd",
            arrivals=ArrivalSpec("closed", rate_rps=1e6, requests=80,
                                 clients=8, think_ns=5_000.0),
            qos_class="batch", weight=1.0, size=1 << 12, slices=8,
        ),
    ]
    engine = ServingEngine(
        platform, tenants,
        scheduler="wfq",
        batch=BatchPolicy(max_batch=8, max_wait_ns=2_000.0),
        autoscale=AutoscalePolicy(enabled=True, min_devices=2,
                                  interval_ns=25_000.0),
    )
    report = engine.run()
    print(report.render())
    print()

    print("throughput timeline (served/s per window):")
    for window in report.timeline.windows:
        served = window.sum_suffix(".served")
        if served:
            print(f"  [{window.start_ns:>9,.0f}, {window.end_ns:>9,.0f}) ns: "
                  f"{served:>4.0f} served "
                  f"({window.rate_suffix_per_s('.served'):,.0f} rps)")
    assert report.correct, "served results failed verification"


if __name__ == "__main__":
    main()
