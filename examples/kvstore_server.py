#!/usr/bin/env python3
"""KVStore serving with fine-grained NDP — the latency story of the paper.

Builds a chained hash table in CXL memory, then serves a YCSB-A style
trace (50% GET / 50% SET, zipfian keys) four ways:

* host baseline — the CPU walks bucket chains over CXL.mem itself;
* NDP via CXL.io direct-MMIO registers (1.5 µs, one kernel at a time);
* NDP via CXL.io ring buffer (4 µs overhead per launch);
* NDP via **M2func** (the paper's mechanism: one CXL.mem write + read).

Each GET/SET becomes a single-µthread NDP kernel that walks the chain,
compares 24 B keys, and copies the 64 B value — launched while the host
only computes the hash.  P95 latency shows why µs-scale offloading kills
fine-grained NDP (Fig 10b / 11a).

Run:  python examples/kvstore_server.py [requests]
"""

import sys

from repro.host.offload import make_offload_path
from repro.workloads import kvstore
from repro.workloads.base import make_platform


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    items = 4096
    data = kvstore.kvs_a(items, requests, interarrival_ns=2_000.0)
    print(f"KVS_A: {items} items, {requests} requests "
          f"(50% GET / 50% SET, zipfian)\n")

    base = kvstore.run_baseline(make_platform(), data)
    print(f"{'serving path':<28}{'P95':>10}{'mean':>10}{'vs baseline':>13}")
    print("-" * 61)
    print(f"{'host CPU over CXL.mem':<28}{base.p95_ns:>8.0f}ns"
          f"{base.mean_ns:>8.0f}ns{'1.00x':>13}")

    for mech, label in (("cxl_io_dr", "NDP + CXL.io direct MMIO"),
                        ("cxl_io_rb", "NDP + CXL.io ring buffer"),
                        ("m2func", "NDP + M2func (paper)")):
        run = kvstore.run_ndp(make_platform(), data, make_offload_path(mech))
        gain = base.p95_ns / run.p95_ns
        print(f"{label:<28}{run.p95_ns:>8.0f}ns{run.mean_ns:>8.0f}ns"
              f"{gain:>12.2f}x  (correct={run.correct})")

    print("\n(paper Fig 10b: M2func 1.38x better P95; CXL.io paths 0.29-0.59x)")


if __name__ == "__main__":
    main()
