#!/usr/bin/env python3
"""Cluster scaling: one workload, 1..4 CXL-M2NDP expanders behind a switch.

The paper's §III-I scales M2NDP by software-partitioning data across
several expanders and launching one kernel per device (Fig 12b).  The
``repro.cluster`` subsystem automates that:

1. ``make_cluster_platform(num_devices=N)`` builds N devices behind a
   CXL switch on one simulator;
2. cluster allocations carry a *placement* (interleaved / blocked /
   replicated shards across device HDMs);
3. one logical ``run_kernel`` is split by the fan-out scheduler into
   per-device sub-launches (locality follows the shards; off-owner chunks
   pay P2P through the switch);
4. the multi-tenant traffic driver replays open-loop request streams and
   reports p50/p95/p99 latency plus aggregate throughput.

Run:  PYTHONPATH=src python examples/cluster_scaling.py
"""

import numpy as np

from repro.cluster import make_cluster_platform
from repro.cluster.driver import StreamSpec, TrafficDriver
from repro.host.api import pack_args
from repro.kernels.vecadd import VECADD

N = 1 << 17          # elements per vector (1 MiB)


def one_kernel(num_devices: int, placement: str) -> float:
    """VectorAdd across the cluster; returns the simulated makespan."""
    platform = make_cluster_platform(num_devices=num_devices,
                                     placement=placement, backend="batched")
    runtime = platform.runtime
    a = np.arange(N, dtype=np.int64)
    b = a[::-1].copy()
    addr_a = runtime.alloc_array(a)
    addr_b = runtime.alloc_array(b)
    addr_c = runtime.alloc(a.nbytes)
    instance = runtime.run_kernel(
        VECADD, addr_a, addr_a + a.nbytes, args=pack_args(addr_b, addr_c)
    )
    assert np.array_equal(runtime.read_array(addr_c, np.int64, N), a + b)
    return instance.runtime_ns


def main() -> None:
    print(f"VectorAdd over {N} elements, interleaved placement:")
    single = one_kernel(1, "interleaved")
    for devices in (1, 2, 4):
        ns = single if devices == 1 else one_kernel(devices, "interleaved")
        print(f"  {devices} device(s): {ns:12,.0f} ns simulated "
              f"({single / ns:.2f}x)")

    print("\nmulti-tenant open-loop traffic on 4 devices:")
    platform = make_cluster_platform(num_devices=4, backend="batched")
    driver = TrafficDriver(platform, [
        StreamSpec("kv-tenant", "kvstore", rate_rps=2e6, requests=200,
                   size=1024),
        StreamSpec("olap-tenant", "olap", rate_rps=5e5, requests=16,
                   size=1 << 14),
        StreamSpec("batch-tenant", "vecadd", rate_rps=5e5, requests=16,
                   size=1 << 13),
    ])
    report = driver.run()
    print(report.render())
    assert report.correct


if __name__ == "__main__":
    main()
