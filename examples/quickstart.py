#!/usr/bin/env python3
"""Quickstart: VectorAdd on an M2NDP-enabled CXL memory expander.

This is the paper's Fig 4 running example end to end:

1. build a simulated CXL-M2NDP device and a host runtime;
2. place two vectors in host-managed device memory (HDM);
3. write the NDP kernel in RISC-V/RVV assembly — each µthread is
   *memory-mapped* to a 32 B slice of A (its address arrives in x1, the
   offset in x2) and computes one slice of C = A + B;
4. register + launch it through M2func (CXL.mem write, fence, read) and
   read back the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.host import M2NDPRuntime, pack_args
from repro.ndp import M2NDPDevice
from repro.sim import Simulator

VECADD = """
.body
    ld      x4, 0(x3)        // kernel args (scratchpad): base of B
    ld      x5, 8(x3)        //                           base of C
    vle64.v v1, (x1)         // my 32 B slice of A (4 x i64)
    add     x4, x4, x2
    vle64.v v2, (x4)         // matching slice of B
    vadd.vv v3, v1, v2
    add     x5, x5, x2
    vse64.v v3, (x5)         // C slice
    ret
"""


def main() -> None:
    sim = Simulator()
    device = M2NDPDevice(sim)
    runtime = M2NDPRuntime(device)

    n = 65_536
    a = np.arange(n, dtype=np.int64)
    b = np.arange(n, dtype=np.int64)[::-1].copy()
    addr_a = runtime.alloc_array(a)
    addr_b = runtime.alloc_array(b)
    addr_c = runtime.alloc(n * 8)

    print(f"launching VectorAdd over {n} elements "
          f"({n * 8 // 1024} KiB per vector) ...")
    instance = runtime.run_kernel(
        VECADD,
        pool_base=addr_a,
        pool_bound=addr_a + n * 8,       # µthread pool region = A
        args=pack_args(addr_b, addr_c),
        name="vecadd",
    )

    c = runtime.read_array(addr_c, np.int64, n)
    assert np.array_equal(c, a + b), "NDP result mismatch!"

    bw = device.stats.get("cxl_dram.bytes") / instance.runtime_ns
    peak = device.dram.peak_bw_bytes_per_ns
    print(f"  result correct: True")
    print(f"  µthreads spawned: {instance.uthreads_done}")
    print(f"  instructions executed: {instance.instructions}")
    print(f"  kernel runtime: {instance.runtime_ns / 1e3:.2f} µs")
    print(f"  internal DRAM bandwidth: {bw:.1f} GB/s "
          f"({bw / peak:.0%} of peak — the paper reports 90.7%)")


if __name__ == "__main__":
    main()
