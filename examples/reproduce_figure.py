#!/usr/bin/env python3
"""Regenerate any paper figure/table from the command line.

Usage:
    python examples/reproduce_figure.py            # list experiments
    python examples/reproduce_figure.py fig10a     # run one
    python examples/reproduce_figure.py all        # run everything
"""

import sys
import time

from repro.experiments import EXPERIMENTS


def main() -> None:
    if len(sys.argv) < 2:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("\nusage: python examples/reproduce_figure.py <name>|all")
        return

    targets = list(EXPERIMENTS) if sys.argv[1] == "all" else sys.argv[1:]
    for name in targets:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(EXPERIMENTS)}")
            sys.exit(1)
        start = time.time()
        result = EXPERIMENTS[name]()
        print(result.render())
        print(f"({time.time() - start:.1f}s)\n")


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:   # e.g. piped into `head`
        pass
