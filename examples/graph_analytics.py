#!/usr/bin/env python3
"""Graph analytics on NDP: PageRank and SSSP over a CSR graph in CXL memory.

Demonstrates two of M2NDP's differentiators on irregular workloads:

* **multi-body kernels** — one PageRank iteration is a single kernel with
  two bodies (per-node contributions, then edge gathers) separated by a
  device-wide barrier (§III-G);
* **host-device iteration** — SSSP launches Bellman-Ford relaxation sweeps
  until a changed-flag in device memory stays clear, each sweep pointer-
  chasing CSR edge lists with global atomic-min updates.

Run:  python examples/graph_analytics.py [nodes]
"""

import sys

from repro.workloads import graph
from repro.workloads.base import make_platform


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    data = graph.generate(nodes, avg_degree=8)
    print(f"power-law digraph: {nodes} nodes, {data.out_csr.nnz} edges\n")

    platform = make_platform()
    pr = graph.run_ndp_pagerank(platform, data, iterations=3)
    print("PageRank (3 iterations, two-body kernel):")
    print(f"  correct vs numpy reference: {pr.correct}")
    print(f"  runtime: {pr.runtime_ns / 1e3:.1f} µs, "
          f"{pr.instructions} instructions, {pr.uthreads} µthreads")

    platform = make_platform()
    sp = graph.run_ndp_sssp(platform, data)
    print("\nSSSP (Bellman-Ford sweeps with amomin.w relaxation):")
    print(f"  correct vs reference: {sp.correct}")
    print(f"  converged after {sp.extras['sweeps']} sweeps")
    print(f"  runtime: {sp.runtime_ns / 1e3:.1f} µs")


if __name__ == "__main__":
    main()
