#!/usr/bin/env python3
"""In-memory OLAP filtering with NDP (the paper's headline CPU workload).

Offloads the Evaluate phase of TPC-H Q6's WHERE clause — three column
predicates over a lineitem-style table in CXL memory — exactly as §IV-B
describes: one NDP kernel per predicate producing a boolean mask, plus
mask-combine kernels, with the column itself as the µthread pool region.

Prints the Fig 10a-style comparison: host CPU baseline vs CPU-NDP vs
M2NDP vs Ideal NDP.

Run:  python examples/olap_filter.py [rows]
"""

import sys

from repro.workloads import olap
from repro.workloads.base import make_platform


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 16
    print(f"TPC-H Q6 filter Evaluate over {rows} rows "
          f"({rows * 16 // 1024} KiB of predicate columns)\n")

    data = olap.generate("q6", rows)
    print(f"predicates: {[p.column for p in data.query.predicates]}")
    print(f"selectivity: {data.reference_mask.mean():.3%}\n")

    platform = make_platform()
    ndp = olap.run_ndp_evaluate(platform, data)
    baseline_ns = olap.baseline_evaluate_ns(data)
    cpu_ndp_ns = olap.cpu_ndp_evaluate_ns(data)
    ideal_ns = olap.ideal_ndp_evaluate_ns(data)

    print(f"mask correct: {ndp.correct}")
    print(f"{'configuration':<22}{'time':>12}{'speedup':>10}")
    print("-" * 44)
    for name, t in (("host CPU (baseline)", baseline_ns),
                    ("CPU-NDP (32 cores)", cpu_ndp_ns),
                    ("M2NDP", ndp.runtime_ns),
                    ("Ideal NDP (100% BW)", ideal_ns)):
        print(f"{name:<22}{t / 1e3:>10.1f}µs{baseline_ns / t:>9.1f}x")
    print(f"\nM2NDP DRAM bandwidth: {ndp.dram_bandwidth:.1f} GB/s")
    print("(paper Fig 10a: CPU-NDP 55x, M2NDP 73.4x, Ideal 81x at 6M rows)")


if __name__ == "__main__":
    main()
