"""Energy model (Fig 15)."""

from repro.energy.model import (
    EnergyBreakdown,
    EnergyModel,
    PJ_PER_CXL_BIT,
    PJ_PER_DRAM_BIT,
    PJ_PER_NDP_INSTR,
    STATIC_W,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "PJ_PER_CXL_BIT",
    "PJ_PER_DRAM_BIT",
    "PJ_PER_NDP_INSTR",
    "STATIC_W",
]
