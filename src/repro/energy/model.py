"""Energy model (§IV-A/IV-E): McPAT/AccelWattch-style per-event energies.

Energy = dynamic (per-event costs times the simulator's event counts) plus
static power integrated over runtime, including the idle host during NDP —
the paper's accounting.  Constants follow the paper's cited sources where
given (8 pJ/bit CXL link energy [38]) and CACTI/DSENT-class estimates at
7 nm elsewhere; EXPERIMENTS.md records the resulting Fig 15 shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import StatsRegistry

# Per-event dynamic energies, in picojoules.
PJ_PER_CXL_BIT = 8.0              # [38]
PJ_PER_DRAM_BIT = 4.0             # LPDDR5 access energy class
PJ_PER_NDP_INSTR = 8.0            # small in-order lane + RF access
PJ_PER_GPU_INSTR = 25.0           # SM datapath + operand collectors
PJ_PER_CPU_INSTR = 150.0          # big OoO core average
PJ_PER_SPAD_BYTE = 0.4
PJ_PER_CACHE_BYTE = 0.6

# Static power, in watts.
STATIC_W = {
    "host_cpu": 120.0,
    "host_gpu": 100.0,
    "cxl_mem": 12.0,
    "m2ndp_units": 8.0,        # 32 units at ~0.25 W each
    "gpu_ndp_sm": 2.5,         # per SM inside the device
    "cpu_ndp_core": 3.0,       # per high-end core inside the device
}


@dataclass
class EnergyBreakdown:
    """Joules by component for one run."""

    dynamic_j: float
    static_j: float
    parts: dict[str, float]

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.static_j

    def perf_per_energy(self, runtime_ns: float) -> float:
        """1 / (time * energy) — relative metric used in Fig 15."""
        return 1.0 / (runtime_ns * 1e-9 * self.total_j)


class EnergyModel:
    """Computes energy for the configurations the paper compares."""

    def ndp_run(self, stats: StatsRegistry, runtime_ns: float,
                host_idle: bool = True) -> EnergyBreakdown:
        """Energy of an M2NDP kernel run from the device's stat counters."""
        seconds = runtime_ns * 1e-9
        parts = {
            "ndp_instr": stats.get("ndp.instructions") * PJ_PER_NDP_INSTR,
            "dram": stats.get("cxl_dram.bytes") * 8 * PJ_PER_DRAM_BIT,
            "scratchpad": stats.get("ndp.spad_traffic_bytes") * PJ_PER_SPAD_BYTE,
            "cxl_link": (stats.get("cxl.down_bytes") + stats.get("cxl.up_bytes"))
            * 8 * PJ_PER_CXL_BIT,
        }
        dynamic = sum(parts.values()) * 1e-12
        static = (STATIC_W["cxl_mem"] + STATIC_W["m2ndp_units"]) * seconds
        if host_idle:
            static += 0.3 * STATIC_W["host_cpu"] * seconds  # idle host floor
        return EnergyBreakdown(dynamic_j=dynamic, static_j=static, parts=parts)

    def host_cpu_run(self, bytes_moved: float, instructions: float,
                     runtime_ns: float) -> EnergyBreakdown:
        """Baseline: host CPU pulling data over the CXL link."""
        seconds = runtime_ns * 1e-9
        parts = {
            "cpu_instr": instructions * PJ_PER_CPU_INSTR,
            "dram": bytes_moved * 8 * PJ_PER_DRAM_BIT,
            "cxl_link": bytes_moved * 8 * PJ_PER_CXL_BIT,
        }
        dynamic = sum(parts.values()) * 1e-12
        static = (STATIC_W["host_cpu"] + STATIC_W["cxl_mem"]) * seconds
        return EnergyBreakdown(dynamic_j=dynamic, static_j=static, parts=parts)

    def host_gpu_run(self, bytes_moved: float, instructions: float,
                     runtime_ns: float) -> EnergyBreakdown:
        seconds = runtime_ns * 1e-9
        parts = {
            "gpu_instr": instructions * PJ_PER_GPU_INSTR,
            "dram": bytes_moved * 8 * PJ_PER_DRAM_BIT,
            "cxl_link": bytes_moved * 8 * PJ_PER_CXL_BIT,
        }
        dynamic = sum(parts.values()) * 1e-12
        static = (STATIC_W["host_gpu"] + STATIC_W["cxl_mem"]) * seconds
        return EnergyBreakdown(dynamic_j=dynamic, static_j=static, parts=parts)

    def gpu_ndp_run(self, bytes_moved: float, instructions: float,
                    runtime_ns: float, num_sms: float) -> EnergyBreakdown:
        seconds = runtime_ns * 1e-9
        parts = {
            "gpu_instr": instructions * PJ_PER_GPU_INSTR,
            "dram": bytes_moved * 8 * PJ_PER_DRAM_BIT,
        }
        dynamic = sum(parts.values()) * 1e-12
        static = (STATIC_W["cxl_mem"] + num_sms * STATIC_W["gpu_ndp_sm"]
                  + 0.3 * STATIC_W["host_gpu"]) * seconds
        return EnergyBreakdown(dynamic_j=dynamic, static_j=static, parts=parts)
