"""The reference per-instruction execution backend.

µthreads advance in *bursts*: a woken thread executes instructions inline
(charging its sub-core's dispatch/FU virtual-time servers) until it issues
a long memory access, finishes, or hits the burst cap; then an event is
scheduled at its next ready time.  Short accesses (scratchpad / L1 hits)
continue inline, so the event count is proportional to DRAM accesses, not
instructions — that is what makes a pure-Python cycle-level model feasible.

This engine lived on :class:`~repro.ndp.device.M2NDPDevice` before the
backend split; the behaviour (and therefore every timing result) is
unchanged.
"""

from __future__ import annotations

from functools import partial

from repro.exec.base import ExecutionBackend, register_backend
from repro.isa.executor import execute
from repro.ndp.generator import SPAWN_LATENCY_NS, KernelExecution
from repro.ndp.uthread import UThread
from repro.obs import tracer as obs_tracer

#: Instructions a thread may execute before yielding the event loop.
BURST_CAP = 256

#: Memory completions within this window continue inline (L1/scratchpad).
INLINE_WINDOW_NS = 8.0


class InterpreterBackend(ExecutionBackend):
    """Per-instruction functional + timed execution of every µthread."""

    name = "interpreter"

    def __init__(self, device) -> None:
        super().__init__(device)
        self._active: list[KernelExecution] = []
        self._fill_cursor = 0

    # ------------------------------------------------------------------
    # ExecutionBackend interface
    # ------------------------------------------------------------------

    @property
    def active_executions(self) -> list[KernelExecution]:
        return self._active

    def register_execution(self, execution: KernelExecution,
                           now_ns: float) -> None:
        if obs_tracer.ENABLED:
            tracer = obs_tracer.tracer_of(self.device.sim)
            span = tracer.begin(
                "exec.interpreter", max(now_ns, self.device.sim.now),
                pid=self.device.trace_pid,
                instance=execution.instance.instance_id,
                uthreads=execution.instance.uthreads_total)
            prev = execution.on_complete

            def traced_done(ex, when, _prev=prev, _span=span,
                            _tracer=tracer):
                _tracer.end(_span, when)
                if _prev is not None:
                    _prev(ex, when)

            execution.on_complete = traced_done
        self._active.append(execution)
        self.fill_all_units(max(now_ns, self.device.sim.now))

    def unregister_execution(self, execution: KernelExecution) -> None:
        if execution in self._active:
            self._active.remove(execution)

    # ------------------------------------------------------------------
    # µthread engine
    # ------------------------------------------------------------------

    def fill_all_units(self, now_ns: float) -> None:
        for unit in self.device.units:
            self._fill_unit(unit, now_ns)

    def _fill_unit(self, unit, now_ns: float) -> None:
        executions = self._active
        if not executions:
            return
        device = self.device
        progress = True
        while progress:
            progress = False
            for step in range(len(executions)):
                ex = executions[(self._fill_cursor + step) % len(executions)]
                if ex.finished or not ex.has_pending_for_unit(unit.index):
                    continue
                allocation = unit.occupancy.try_allocate(ex.rf_bytes)
                if allocation is None:
                    continue
                descriptor = ex.take_for_unit(unit.index)
                thread = UThread(
                    instance=ex.instance,
                    program=descriptor.program,
                    phase=descriptor.phase,
                    unit_index=unit.index,
                    allocation=allocation,
                    mapped_addr=descriptor.mapped_addr,
                    offset=descriptor.offset,
                    args_vaddr=ex.args_vaddr,
                )
                thread.body_index = descriptor.body_index
                thread.ready_ns = now_ns + SPAWN_LATENCY_NS
                ex.outstanding += 1
                device.stats.add("ndp.uthreads_spawned")
                unit.occupancy.sample(now_ns)
                device.sim.schedule_at(
                    thread.ready_ns, partial(self._run_thread, thread, ex)
                )
                progress = True
        self._fill_cursor += 1

    def _run_thread(self, thread: UThread,
                    execution: KernelExecution) -> None:
        device = self.device
        unit = device.units[thread.unit_index]
        subcore = unit.subcores[thread.allocation.subcore_index]
        memory = unit.memory_for(thread.instance.asid)
        instructions = thread.program.instructions
        count = len(instructions)
        t = thread.ready_ns
        asid = thread.instance.asid

        for _ in range(BURST_CAP):
            if thread.pc >= count:
                self._finish_thread(thread, execution, unit, t)
                return
            inst = instructions[thread.pc]
            start, exec_done = subcore.issue(inst, t)
            result = execute(inst, thread.regs, memory)
            thread.instructions_executed += 1

            if result.done:
                self._finish_thread(thread, execution, unit, exec_done)
                return
            thread.pc = result.jump_to if result.jump_to is not None else thread.pc + 1

            if result.accesses:
                completion = unit.timed_accesses(result.accesses, exec_done, asid)
                if completion - exec_done <= INLINE_WINDOW_NS:
                    t = completion
                    continue
                thread.ready_ns = completion
                device.sim.schedule_at(
                    completion, partial(self._run_thread, thread, execution)
                )
                return
            t = exec_done

        thread.ready_ns = t
        device.sim.schedule_at(t, partial(self._run_thread, thread, execution))

    def _finish_thread(self, thread: UThread, execution: KernelExecution,
                       unit, now_ns: float) -> None:
        device = self.device
        unit.occupancy.release(thread.allocation)
        unit.occupancy.sample(now_ns)
        execution.instance.instructions += thread.instructions_executed
        device.stats.add("ndp.instructions", thread.instructions_executed)
        device.stats.add("ndp.uthreads_finished")
        now = max(now_ns, device.sim.now)
        barrier_crossed = execution.on_thread_done(now_ns)
        if barrier_crossed:
            self.fill_all_units(now)
        else:
            self._fill_unit(unit, now)


register_backend(InterpreterBackend.name, InterpreterBackend)
