"""The execution-backend interface and registry.

A backend owns the *launch execution engine* of one
:class:`~repro.ndp.device.M2NDPDevice`: the NDP controller hands it
:class:`~repro.ndp.generator.KernelExecution` objects and the backend is
responsible for spawning/running µthreads against the device's timing
models and for signalling completion through the execution's callbacks.

The device constructs its backend from ``NDPConfig.backend`` (see
:func:`make_backend`); everything else in the system talks to the backend
only through :class:`ExecutionBackend`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ndp.generator import KernelExecution


class ExecutionBackend:
    """Abstract launch execution engine for one M2NDP device."""

    name = "abstract"

    def __init__(self, device) -> None:
        self.device = device

    # ------------------------------------------------------------------
    # lifecycle hooks called by the device / controller
    # ------------------------------------------------------------------

    def register_execution(self, execution: "KernelExecution",
                           now_ns: float) -> None:
        """A kernel instance started; begin executing its µthreads."""
        raise NotImplementedError

    def unregister_execution(self, execution: "KernelExecution") -> None:
        """A kernel instance completed; drop any engine state for it."""
        raise NotImplementedError

    @property
    def active_executions(self) -> list:
        """Kernel executions currently being driven by this backend."""
        raise NotImplementedError


#: Backend registry: name -> factory(device) -> ExecutionBackend.
_BACKENDS: dict[str, Callable[[object], ExecutionBackend]] = {}


def register_backend(name: str,
                     factory: Callable[[object], ExecutionBackend]) -> None:
    _BACKENDS[name] = factory


def _ensure_builtins_registered() -> None:
    # Import for the side effect of registering the built-in backends
    # (kept lazy to avoid a cycle with repro.ndp.device / repro.config).
    from repro.exec import interpreter, batched  # noqa: F401


def backend_names() -> list[str]:
    _ensure_builtins_registered()
    return sorted(_BACKENDS)


def validate_backend_name(name: str, source: str = "backend") -> str:
    """Check ``name`` against the registry, naming the offending source.

    Platform constructors call this on environment-provided values
    (``REPRO_EXEC_BACKEND``) so a typo fails fast with the valid choices
    instead of surfacing deep inside backend lookup at device build time.
    """
    if name not in backend_names():
        raise ConfigError(
            f"unknown execution backend {name!r} (from {source}); "
            f"choose from {backend_names()}"
        )
    return name


def make_backend(name: str, device) -> ExecutionBackend:
    """Instantiate the backend ``name`` for ``device``."""
    _ensure_builtins_registered()
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown execution backend {name!r}; choose from {backend_names()}"
        )
    return factory(device)
