"""Trace-once / replay-many batched execution backend.

The paper's kernels launch thousands of *structurally identical* µthreads:
every body µthread runs the same code over a different stride-sized pool
slice, and one launch is bulk-synchronous (§III-E/G).  This backend
exploits that regularity:

* **Functional execution** happens in one numpy-vectorized lockstep walk of
  the kernel body: registers become arrays over the whole launch (``x2`` is
  the vector ``[0, stride, 2*stride, ...]``), each decoded instruction
  executes once for all µthreads, and control flow follows the (verified)
  launch-uniform branch outcomes.  Memory results are identical to the
  interpreter's — stores are buffered during the walk and committed only
  when it succeeds, so a mid-walk fallback leaves memory untouched.

* **Timing** is replayed analytically from the recorded dynamic trace: the
  per-FU instruction counts of one µthread bound per-sub-core issue
  throughput, a per-thread latency estimate bounds the wave depth, and the
  launch's sector-unique global address stream is paced through the
  device's *real* memory-side L2 and banked-DRAM virtual-time models, so
  bandwidth saturation, row locality and HDM back-invalidation still come
  from the existing servers.  The whole stream is charged through the bulk
  APIs (``SectorCache.access_batch``, ``DRAMModel.access_batch``,
  ``BandwidthServer.charge_batch``) in O(stream) vectorized work, and the
  launch's issue pressure is applied to the sub-core servers via
  ``IssueServer.service_batch``.  Launch runtime is therefore a roofline
  ``max(issue throughput, memory system, latency x waves)`` rather than an
  event-by-event FGMT schedule; it tracks the interpreter closely for the
  bulk launches this path accepts, but it is not bit-identical.

* **Repeats are nearly free**: every traced launch is recorded in the
  cross-launch :mod:`~repro.exec.trace_cache` keyed by (kernel code hash,
  pool region, stride, offset bias, ASID, argument bytes).  The Nth launch
  of the same shape — including the per-device sub-launches a cluster
  scheduler fans out — skips tracing and sector derivation, re-running
  only the functional replay (verified step-by-step against the recorded
  trace) plus the analytic timing fill-in against live L2/DRAM state.

Automatic fallback
------------------

``register_execution`` silently falls back to the inherited interpreter
path (per launch, counted in ``exec.batched_fallbacks``) whenever the
launch is not replayable:

* initializer/finalizer sections or multiple bodies (phase barriers),
* any atomic (``amo*``/``vamo*``) — e.g. histogram and graph reductions,
  whose data-dependent AMO interleaving the interpreter models exactly,
* indexed vector gathers/scatters (data-dependent addresses),
* scratchpad stores (per-unit state), mixed scratchpad/global address
  vectors, or µthread-divergent branches,
* loads that overlap earlier buffered stores (read-after-write through
  memory), translation faults, or launches too small to amortize tracing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import TranslationFault
from repro.exec.base import register_backend
from repro.exec.interpreter import InterpreterBackend
from repro.exec.trace_cache import (
    CachedStep,
    StaleTrace,
    TraceCache,
    TraceEntry,
    trace_key,
)
from repro.isa.encoding import FUnit, Instruction, OpClass
from repro.isa.vector import vlmax
from repro.mem.physical import PAGE_SIZE
from repro.ndp.generator import (
    ARG_SLOT_BYTES,
    SPAWN_LATENCY_NS,
    KernelExecution,
)
from repro.ndp.tlb import PAGE_SHIFT
from repro.ndp.unit import CROSSBAR_NS
from repro.isa.registers import to_signed64

#: Launches smaller than this run on the interpreter: tracing cannot be
#: amortized and latency effects (which the interpreter models exactly)
#: dominate short launches.
MIN_BATCH_UTHREADS = 64

#: Safety cap on the dynamic trace length of one µthread.
MAX_TRACE_STEPS = 200_000

_PAGE_MASK = PAGE_SIZE - 1

#: Op classes the vectorized walk never attempts.
_UNBATCHABLE = {OpClass.AMO, OpClass.VAMO, OpClass.VGATHER, OpClass.VSCATTER}

_ZERO_X = np.zeros((), dtype=np.int64)
_ZERO_F = np.zeros((), dtype=np.float64)


class _Fallback(Exception):
    """Raised when a launch cannot be executed on the batched path."""


# ---------------------------------------------------------------------------
# numpy bit-pattern helpers (vectorized analogues of repro.isa.vector)
# ---------------------------------------------------------------------------


def _sign_extend(patterns: np.ndarray, sew: int) -> np.ndarray:
    """uint64 element patterns -> sign-extended int64 values."""
    vals = patterns.astype(np.int64)
    if sew == 64:
        return vals
    shift = np.int64(64 - sew)
    return (vals << shift) >> shift


def _to_pattern(vals, sew: int) -> np.ndarray:
    """Wrap (possibly signed) values into uint64 patterns of width sew."""
    out = np.asarray(vals).astype(np.int64).astype(np.uint64)
    if sew < 64:
        out = out & np.uint64((1 << sew) - 1)
    return out


def _bits_to_float(patterns: np.ndarray, sew: int) -> np.ndarray:
    p = np.ascontiguousarray(patterns, dtype=np.uint64)
    if sew == 64:
        return p.view(np.float64)
    if sew == 32:
        return p.astype(np.uint32).view(np.float32).astype(np.float64)
    raise _Fallback(f"no float interpretation for SEW {sew}")


def _float_to_bits(vals, sew: int) -> np.ndarray:
    v = np.ascontiguousarray(vals, dtype=np.float64)
    if sew == 64:
        return v.view(np.uint64).copy()
    if sew == 32:
        return np.ascontiguousarray(v.astype(np.float32)).view(
            np.uint32).astype(np.uint64)
    raise _Fallback(f"no float representation for SEW {sew}")


_LE_VIEW_DTYPES = {1: np.dtype("u1"), 2: np.dtype("<u2"),
                   4: np.dtype("<u4"), 8: np.dtype("<u8")}


def _from_le_bytes(raw: np.ndarray) -> np.ndarray:
    """(..., size) uint8 -> (...,) uint64, little endian."""
    size = raw.shape[-1]
    dtype = _LE_VIEW_DTYPES.get(size)
    if dtype is not None:
        # one reinterpreting view + widen instead of a per-byte loop
        contiguous = np.ascontiguousarray(raw).reshape(-1, size)
        return contiguous.view(dtype).reshape(raw.shape[:-1]).astype(
            np.uint64)
    out = np.zeros(raw.shape[:-1], dtype=np.uint64)
    for i in range(size):
        out |= raw[..., i].astype(np.uint64) << np.uint64(8 * i)
    return out


def _to_le_bytes(vals, size: int) -> np.ndarray:
    """(...,) uint64 -> (..., size) uint8, little endian."""
    v = np.asarray(vals, dtype=np.uint64)
    dtype = _LE_VIEW_DTYPES.get(size)
    if dtype is not None:
        narrowed = np.ascontiguousarray(v.astype(dtype)).reshape(-1)
        return narrowed.view(np.uint8).reshape(v.shape + (size,))
    out = np.empty(v.shape + (size,), dtype=np.uint8)
    for i in range(size):
        out[..., i] = (v >> np.uint64(8 * i)).astype(np.uint8)
    return out


def _per_thread(arr: np.ndarray) -> np.ndarray:
    """Align a per-thread scalar (n,) with (..., vl) element matrices."""
    a = np.asarray(arr)
    return a[:, None] if a.ndim == 1 else a


class _Translator:
    """Vectorized virtual-to-physical translation with a per-launch cache.

    Matches the functional path of :class:`repro.ndp.unit.UnitMemory`:
    only the *start* address of an access is translated (the allocator maps
    workload data with identity translations, so contiguity holds).
    """

    def __init__(self, page_table) -> None:
        self._table = page_table
        self._cache: dict[int, int] = {}

    def translate(self, vaddrs: np.ndarray) -> np.ndarray:
        vpns = np.unique(np.atleast_1d(vaddrs) >> np.int64(PAGE_SHIFT))
        ppns = np.empty_like(vpns)
        identity = True
        for i, vpn in enumerate(vpns):
            key = int(vpn)
            ppn = self._cache.get(key)
            if ppn is None:
                try:
                    ppn = self._table.lookup(key).ppn
                except TranslationFault:
                    raise _Fallback(f"unmapped page vpn={key:#x}") from None
                self._cache[key] = ppn
            ppns[i] = ppn
            identity = identity and ppn == key
        if identity:
            return vaddrs
        idx = np.searchsorted(vpns, np.asarray(vaddrs) >> np.int64(PAGE_SHIFT))
        return (ppns[idx] << np.int64(PAGE_SHIFT)) | (vaddrs & _PAGE_MASK)


# ---------------------------------------------------------------------------
# buffered store log
# ---------------------------------------------------------------------------


class _StoreLog:
    """Stores buffered during the walk, committed only on success."""

    def __init__(self) -> None:
        self._entries: list[tuple[np.ndarray, np.ndarray]] = []
        self._bounds: list[tuple[int, int]] = []

    def log(self, paddrs: np.ndarray, data: np.ndarray) -> None:
        self._entries.append((paddrs, data))
        self._bounds.append(
            (int(paddrs.min()), int(paddrs.max()) + data.shape[-1])
        )

    def overlaps(self, lo: int, hi: int) -> bool:
        return any(e_lo < hi and lo < e_hi for e_lo, e_hi in self._bounds)

    def commit(self, physical) -> None:
        for paddrs, data in self._entries:
            physical.scatter_rows(paddrs, data)


# ---------------------------------------------------------------------------
# vectorized functional walk
# ---------------------------------------------------------------------------

#: Scalar memory-op tables (mirrors repro.isa.executor).
_LOAD_SIGNED = {"lb": 1, "lh": 2, "lw": 4, "ld": 8}
_LOAD_UNSIGNED = {"lbu": 1, "lhu": 2, "lwu": 4}
_FP_LOADS = {"flw": 4, "fld": 8}
_FP_STORES = {"fsw": 4, "fsd": 8}
_STORES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}


def _np_srl(a, b):
    sh = (b & np.int64(63)).astype(np.uint64)
    return (a.astype(np.uint64) >> sh).astype(np.int64)


_INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & np.int64(63)),
    "srl": _np_srl,
    "sra": lambda a, b: a >> (b & np.int64(63)),
    "slt": lambda a, b: (a < b).astype(np.int64),
    "sltu": lambda a, b: (a.astype(np.uint64) < b.astype(np.uint64)).astype(np.int64),
    "mul": lambda a, b: a * b,
}

_INT_IMMOPS = {
    "addi": "add", "andi": "and", "ori": "or", "xori": "xor",
    "slli": "sll", "srli": "srl", "srai": "sra",
    "slti": "slt", "sltiu": "sltu",
}

_FP_BINOPS = {
    "fadd.s": lambda a, b: a + b, "fadd.d": lambda a, b: a + b,
    "fsub.s": lambda a, b: a - b, "fsub.d": lambda a, b: a - b,
    "fmul.s": lambda a, b: a * b, "fmul.d": lambda a, b: a * b,
    "fdiv.s": lambda a, b: a / b, "fdiv.d": lambda a, b: a / b,
    "fmax.d": np.maximum, "fmin.d": np.minimum,
}

_FP_COMPARES = {
    "flt.d": lambda a, b: (a < b).astype(np.int64),
    "fle.d": lambda a, b: (a <= b).astype(np.int64),
    "feq.d": lambda a, b: (a == b).astype(np.int64),
}

_BRANCHES = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bltu": lambda a, b: a.astype(np.uint64) < b.astype(np.uint64),
    "bgeu": lambda a, b: a.astype(np.uint64) >= b.astype(np.uint64),
}

_BRANCHES_Z = {
    "beqz": lambda a: a == 0,
    "bnez": lambda a: a != 0,
    "blez": lambda a: a <= 0,
    "bgez": lambda a: a >= 0,
    "bltz": lambda a: a < 0,
    "bgtz": lambda a: a > 0,
}

_V_INT_BINOPS = {
    "vadd.vv": lambda a, b: a + b,
    "vsub.vv": lambda a, b: a - b,
    "vmul.vv": lambda a, b: a * b,
}

_V_INT_SCALAR = {
    "vadd.vx": lambda a, s: a + s,
    "vmul.vx": lambda a, s: a * s,
    "vand.vx": lambda a, s: a & s,
}

_V_INT_IMM = {
    "vadd.vi": lambda a, s: a + s,
    "vsll.vi": lambda a, s: a << s,
    "vsrl.vi": lambda a, s: a >> s,
}

_V_FP_BINOPS = {
    "vfadd.vv": lambda a, b: a + b,
    "vfsub.vv": lambda a, b: a - b,
    "vfmul.vv": lambda a, b: a * b,
}

_V_FP_SCALAR = {
    "vfadd.vf": lambda a, s: a + s,
    "vfmul.vf": lambda a, s: a * s,
}

_V_INT_COMPARES = {
    "vmseq.vx": lambda a, s: a == s,
    "vmsne.vx": lambda a, s: a != s,
    "vmslt.vx": lambda a, s: a < s,
    "vmsle.vx": lambda a, s: a <= s,
    "vmsgt.vx": lambda a, s: a > s,
    "vmsge.vx": lambda a, s: a >= s,
}

_V_FP_COMPARES = {
    "vmflt.vf": lambda a, s: a < s,
    "vmfle.vf": lambda a, s: a <= s,
    "vmfgt.vf": lambda a, s: a > s,
    "vmfge.vf": lambda a, s: a >= s,
}


@dataclass
class _MemStep:
    """One memory instruction of the trace, as executed by all µthreads."""

    is_spad: bool
    size: int                      # bytes per µthread access
    is_write: bool
    paddrs: np.ndarray | None      # global steps: per-thread start addresses
    vaddrs: np.ndarray | None = None   # pre-translation addresses (cache key)


class _Done(Exception):
    """Internal control-flow signal: the walk reached ``ret``."""


class _BatchReplay:
    """Vectorized lockstep execution of one launch's body µthreads.

    With a cached :class:`TraceEntry` the walk becomes a *replay*: the
    functional numpy execution still runs in full (memory contents may
    have changed since the trace), but every memory step's freshly
    computed address vector is verified against the recorded one and the
    recorded translation reused — any divergence raises
    :class:`StaleTrace` so the caller can retrace from scratch.
    """

    def __init__(self, device, execution: KernelExecution,
                 entry: TraceEntry | None = None) -> None:
        instance = execution.instance
        self.device = device
        self.n = instance.num_body_uthreads
        self.program = instance.kernel.program.bodies[0]
        self.trace: list[Instruction] = []
        self.mem_steps: list[_MemStep] = []
        self.log = _StoreLog()
        self.translator = _Translator(device.page_table(instance.asid))
        self._entry = entry
        self._mem_i = 0
        self._executed = 0
        spad = device.units[0].scratchpad
        self._spad = spad
        self._spad_lo = spad.base_vaddr
        self._spad_hi = spad.base_vaddr + spad.size_bytes
        # Scratchpad contents are per unit; only the argument block is
        # guaranteed identical everywhere (the controller writes it to all
        # units).  The walk may read nothing else from the scratchpad.
        self._args_lo = execution.args_vaddr
        self._args_hi = execution.args_vaddr + ARG_SLOT_BYTES

        idx = np.arange(self.n, dtype=np.int64)
        stride = np.int64(instance.uthread_stride)
        self.xr: list[np.ndarray] = [_ZERO_X] * 32
        self.xr[1] = np.int64(instance.pool_base) + idx * stride
        self.xr[2] = np.int64(instance.offset_bias) + idx * stride
        self.xr[3] = np.asarray(execution.args_vaddr, dtype=np.int64)
        self.fr: list[np.ndarray] = [_ZERO_F] * 32
        self.vr: list[np.ndarray | None] = [None] * 32
        self.vl: int | None = None
        self.sew = 64

    # -- register plumbing ------------------------------------------------

    def _wx(self, idx: int, val) -> None:
        if idx:
            self.xr[idx] = np.asarray(val).astype(np.int64)

    def _wf(self, idx: int, val) -> None:
        self.fr[idx] = np.asarray(val, dtype=np.float64)

    def _read_v(self, idx: int, count: int) -> np.ndarray:
        arr = self.vr[idx]
        if arr is None or arr.shape[-1] == 0:
            return np.zeros((count,), dtype=np.uint64)
        k = arr.shape[-1]
        if k < count:
            pad = np.zeros(arr.shape[:-1] + (count - k,), dtype=np.uint64)
            arr = np.concatenate([arr, pad], axis=-1)
        return arr[..., :count]

    def _eff_vl(self, sew: int) -> int:
        limit = vlmax(sew)
        return limit if self.vl is None else min(self.vl, limit)

    def _uniform_int(self, arr: np.ndarray, what: str) -> int:
        a = np.asarray(arr)
        if a.ndim == 0:
            return int(a)
        first = a.flat[0]
        if not np.all(a == first):
            raise _Fallback(f"µthread-divergent {what}")
        return int(first)

    # -- memory -----------------------------------------------------------

    def _classify(self, addr: np.ndarray) -> bool:
        """True when the access vector targets the scratchpad window."""
        a = np.atleast_1d(addr)
        in_spad = (a >= self._spad_lo) & (a < self._spad_hi)
        if in_spad.all():
            return True
        if in_spad.any():
            raise _Fallback("mixed scratchpad/global access vector")
        return False

    def _next_cached_step(self, is_spad: bool, size: int,
                          is_write: bool) -> CachedStep:
        entry = self._entry
        if self._mem_i >= len(entry.steps):
            raise StaleTrace("more memory steps than the cached trace")
        step = entry.steps[self._mem_i]
        self._mem_i += 1
        if (step.is_spad != is_spad or step.size != size
                or step.is_write != is_write):
            raise StaleTrace("memory step shape diverged from cached trace")
        return step

    def _load(self, addr, size: int) -> np.ndarray:
        """Load ``size`` bytes per µthread; returns (..., size) uint8."""
        addr = np.asarray(addr, dtype=np.int64)
        if self._classify(addr):
            lo = int(addr.min()) if addr.ndim else int(addr)
            hi = (int(addr.max()) if addr.ndim else int(addr)) + size
            if lo < self._args_lo or hi > self._args_hi:
                # outside the argument block: per-unit state (unit 0's copy
                # is not representative), so hand the launch back
                raise _Fallback("scratchpad load outside the argument block")
            if self._entry is not None:
                self._next_cached_step(True, size, False)
            else:
                self.mem_steps.append(_MemStep(True, size, False, None))
            # stat-free view: a mid-walk fallback must leave no counters
            # behind (the interpreter re-run charges them itself)
            view = self._spad.view()
            offs = addr - self._spad_lo
            if addr.ndim == 0:
                return view[int(offs):int(offs) + size].copy()
            return view[offs[:, None] + np.arange(size)]
        if self._entry is not None:
            step = self._next_cached_step(False, size, False)
            if not np.array_equal(addr, step.vaddrs):
                raise StaleTrace("load addresses diverged from cached trace")
            paddrs = step.paddrs
        else:
            paddrs = self.translator.translate(addr)
            lo = int(paddrs.min()) if paddrs.ndim else int(paddrs)
            hi = (int(paddrs.max()) if paddrs.ndim else int(paddrs)) + size
            if self.log.overlaps(lo, hi):
                raise _Fallback(
                    "load overlaps a buffered store (RAW via memory)")
            self.mem_steps.append(_MemStep(False, size, False, paddrs, addr))
        return self.device.physical.gather_rows(paddrs, size)

    def _store(self, addr, data: np.ndarray) -> None:
        """Buffer a store of (..., size) uint8 rows at per-µthread addrs."""
        addr = np.asarray(addr, dtype=np.int64)
        if self._classify(addr):
            raise _Fallback("scratchpad store in kernel body")
        size = data.shape[-1]
        if self._entry is not None:
            step = self._next_cached_step(False, size, True)
            if not np.array_equal(addr, step.vaddrs):
                raise StaleTrace("store addresses diverged from cached trace")
            paddrs = step.paddrs
        else:
            paddrs = np.broadcast_to(
                np.atleast_1d(self.translator.translate(addr)), (self.n,)
            )
            self.mem_steps.append(_MemStep(False, size, True, paddrs, addr))
        rows = np.broadcast_to(
            data if data.ndim == 2 else data[None, :], (self.n, size)
        )
        self.log.log(paddrs, np.ascontiguousarray(rows))

    def commit(self) -> None:
        self.log.commit(self.device.physical)

    # -- main walk --------------------------------------------------------

    def run(self) -> "_BatchReplay":
        instructions = self.program.instructions
        count = len(instructions)
        pc = 0
        record = self._entry is None
        with np.errstate(all="ignore"):
            try:
                while pc < count:
                    if self._executed >= MAX_TRACE_STEPS:
                        raise _Fallback("trace exceeds step cap")
                    inst = instructions[pc]
                    self._executed += 1
                    if record:
                        self.trace.append(inst)
                    pc = self._step(inst, pc)
            except _Done:
                pass
        if not record and (self._executed != self._entry.trace_len
                           or self._mem_i != len(self._entry.steps)):
            raise StaleTrace("control flow diverged from cached trace")
        return self

    def _step(self, inst: Instruction, pc: int) -> int:
        op = inst.op_class
        if op is OpClass.ALU:
            self._exec_alu(inst)
        elif op is OpClass.VALU_OP:
            self._exec_valu(inst)
        elif op is OpClass.BRANCH:
            return self._exec_branch(inst, pc)
        elif op is OpClass.LOAD:
            self._exec_load(inst)
        elif op is OpClass.STORE:
            self._exec_store(inst)
        elif op is OpClass.VLOAD:
            self._exec_vload(inst)
        elif op is OpClass.VSTORE:
            self._exec_vstore(inst)
        elif op is OpClass.VRED:
            self._exec_vred(inst)
        elif op is OpClass.VSET:
            self._exec_vset(inst)
        elif op is OpClass.FENCE:
            pass
        elif op is OpClass.RET:
            raise _Done
        else:
            raise _Fallback(f"unsupported op class {op.value}")
        return pc + 1

    # -- scalar -----------------------------------------------------------

    def _exec_alu(self, inst: Instruction) -> None:
        m = inst.mnemonic
        xr, fr = self.xr, self.fr
        if m in _INT_BINOPS:
            self._wx(inst.rd, _INT_BINOPS[m](
                np.asarray(xr[inst.rs1]), np.asarray(xr[inst.rs2])))
        elif m in _INT_IMMOPS:
            self._wx(inst.rd, _INT_BINOPS[_INT_IMMOPS[m]](
                np.asarray(xr[inst.rs1]), np.int64(inst.imm)))
        elif m in ("addw", "mulw"):
            base = _INT_BINOPS["add" if m == "addw" else "mul"]
            res = base(np.asarray(xr[inst.rs1]), np.asarray(xr[inst.rs2]))
            self._wx(inst.rd, res.astype(np.int32))
        elif m == "li":
            self._wx(inst.rd, np.int64(to_signed64(inst.imm)))
        elif m == "lui":
            self._wx(inst.rd, np.int64(to_signed64(inst.imm << 12)))
        elif m == "mv":
            self._wx(inst.rd, xr[inst.rs1])
        elif m == "neg":
            self._wx(inst.rd, -np.asarray(xr[inst.rs1]))
        elif m == "seqz":
            self._wx(inst.rd, (np.asarray(xr[inst.rs1]) == 0).astype(np.int64))
        elif m == "snez":
            self._wx(inst.rd, (np.asarray(xr[inst.rs1]) != 0).astype(np.int64))
        elif m in _FP_BINOPS:
            self._wf(inst.rd, _FP_BINOPS[m](
                np.asarray(fr[inst.rs1]), np.asarray(fr[inst.rs2])))
        elif m in _FP_COMPARES:
            self._wx(inst.rd, _FP_COMPARES[m](
                np.asarray(fr[inst.rs1]), np.asarray(fr[inst.rs2])))
        elif m == "fmadd.d":
            self._wf(inst.rd,
                     np.asarray(fr[inst.rs1]) * np.asarray(fr[inst.rs2])
                     + np.asarray(fr[inst.rs3]))
        elif m == "fsqrt.d":
            val = np.asarray(fr[inst.rs1])
            if np.any(val < 0):
                raise _Fallback("fsqrt of negative value")
            self._wf(inst.rd, np.sqrt(val))
        elif m == "fmv.d":
            self._wf(inst.rd, fr[inst.rs1])
        elif m == "fmv.x.d":
            bits = np.ascontiguousarray(fr[inst.rs1], dtype=np.float64)
            self._wx(inst.rd, bits.view(np.int64))
        elif m == "fmv.d.x":
            bits = np.ascontiguousarray(self.xr[inst.rs1], dtype=np.int64)
            self._wf(inst.rd, bits.view(np.float64))
        elif m in ("fcvt.d.l", "fcvt.s.l"):
            self._wf(inst.rd, np.asarray(xr[inst.rs1]).astype(np.float64))
        elif m == "fcvt.l.d":
            self._wx(inst.rd, np.trunc(np.asarray(fr[inst.rs1])).astype(np.int64))
        else:
            raise _Fallback(f"unsupported mnemonic {m}")

    def _exec_branch(self, inst: Instruction, pc: int) -> int:
        m = inst.mnemonic
        if m == "j":
            return inst.target
        if m in _BRANCHES:
            cond = _BRANCHES[m](np.asarray(self.xr[inst.rs1]),
                                np.asarray(self.xr[inst.rs2]))
        elif m in _BRANCHES_Z:
            cond = _BRANCHES_Z[m](np.asarray(self.xr[inst.rs1]))
        else:
            raise _Fallback(f"unsupported branch {m}")
        taken = bool(self._uniform_int(np.asarray(cond), "branch"))
        return inst.target if taken else pc + 1

    def _exec_load(self, inst: Instruction) -> None:
        addr = np.asarray(self.xr[inst.rs1]) + np.int64(inst.imm)
        m = inst.mnemonic
        if m in _FP_LOADS:
            size = _FP_LOADS[m]
            bits = _from_le_bytes(self._load(addr, size))
            self._wf(inst.rd, _bits_to_float(bits, size * 8))
            return
        size = _LOAD_SIGNED.get(m) or _LOAD_UNSIGNED[m]
        value = _from_le_bytes(self._load(addr, size))
        if m in _LOAD_SIGNED:
            self._wx(inst.rd, _sign_extend(value, size * 8))
        else:
            self._wx(inst.rd, value.astype(np.int64))

    def _exec_store(self, inst: Instruction) -> None:
        addr = np.asarray(self.xr[inst.rs1]) + np.int64(inst.imm)
        m = inst.mnemonic
        if m in _FP_STORES:
            size = _FP_STORES[m]
            bits = _float_to_bits(self.fr[inst.rs2], size * 8)
        else:
            size = _STORES[m]
            bits = np.asarray(self.xr[inst.rs2]).astype(np.uint64)
        self._store(addr, _to_le_bytes(bits, size))

    # -- vector -----------------------------------------------------------

    def _exec_vset(self, inst: Instruction) -> None:
        sew = inst.imm
        requested = self._uniform_int(np.asarray(self.xr[inst.rs1]), "vsetvli AVL")
        if requested < 0:
            raise _Fallback(f"vsetvli with negative AVL {requested}")
        vl = min(requested, vlmax(sew))
        self.sew = sew
        self.vl = vl
        self._wx(inst.rd, np.int64(vl))

    def _exec_vload(self, inst: Instruction) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(sew)
        if vl == 0:
            self.vr[inst.rd] = np.zeros((0,), dtype=np.uint64)
            return
        addr = np.asarray(self.xr[inst.rs1]) + np.int64(inst.imm)
        raw = self._load(addr, vl * inst.size)
        self.vr[inst.rd] = _from_le_bytes(
            raw.reshape(raw.shape[:-1] + (vl, inst.size))
        )

    def _exec_vstore(self, inst: Instruction) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(sew)
        if vl == 0:
            return
        addr = np.asarray(self.xr[inst.rs1]) + np.int64(inst.imm)
        values = _to_pattern(self._read_v(inst.rd, vl).astype(np.int64), sew)
        raw = _to_le_bytes(values, inst.size)
        self._store(addr, raw.reshape(raw.shape[:-2] + (vl * inst.size,)))

    def _exec_valu(self, inst: Instruction) -> None:
        m = inst.mnemonic
        sew = self.sew
        vl = self._eff_vl(sew)

        if m in _V_INT_BINOPS:
            a = _sign_extend(self._read_v(inst.rs1, vl), sew)
            b = _sign_extend(self._read_v(inst.rs2, vl), sew)
            self.vr[inst.rd] = _to_pattern(_V_INT_BINOPS[m](a, b), sew)
        elif m in _V_INT_SCALAR:
            a = _sign_extend(self._read_v(inst.rs1, vl), sew)
            s = _per_thread(np.asarray(self.xr[inst.rs2]))
            self.vr[inst.rd] = _to_pattern(_V_INT_SCALAR[m](a, s), sew)
        elif m in _V_INT_IMM:
            a = _sign_extend(self._read_v(inst.rs1, vl), sew)
            self.vr[inst.rd] = _to_pattern(
                _V_INT_IMM[m](a, np.int64(inst.imm)), sew)
        elif m == "vmacc.vv":
            a = _sign_extend(self._read_v(inst.rs1, vl), sew)
            b = _sign_extend(self._read_v(inst.rs2, vl), sew)
            d = _sign_extend(self._read_v(inst.rd, vl), sew)
            self.vr[inst.rd] = _to_pattern(d + a * b, sew)
        elif m in _V_FP_BINOPS:
            a = _bits_to_float(self._read_v(inst.rs1, vl), sew)
            b = _bits_to_float(self._read_v(inst.rs2, vl), sew)
            self.vr[inst.rd] = _float_to_bits(_V_FP_BINOPS[m](a, b), sew)
        elif m in _V_FP_SCALAR:
            a = _bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = _per_thread(np.asarray(self.fr[inst.rs2]))
            self.vr[inst.rd] = _float_to_bits(_V_FP_SCALAR[m](a, s), sew)
        elif m == "vfmacc.vf":
            a = _bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = _per_thread(np.asarray(self.fr[inst.rs2]))
            d = _bits_to_float(self._read_v(inst.rd, vl), sew)
            self.vr[inst.rd] = _float_to_bits(d + a * s, sew)
        elif m == "vfmacc.vv":
            a = _bits_to_float(self._read_v(inst.rs1, vl), sew)
            b = _bits_to_float(self._read_v(inst.rs2, vl), sew)
            d = _bits_to_float(self._read_v(inst.rd, vl), sew)
            self.vr[inst.rd] = _float_to_bits(d + a * b, sew)
        elif m in _V_INT_COMPARES:
            a = _sign_extend(self._read_v(inst.rs1, vl), sew)
            s = _per_thread(np.asarray(self.xr[inst.rs2]))
            self.vr[inst.rd] = _V_INT_COMPARES[m](a, s).astype(np.uint64)
        elif m in _V_FP_COMPARES:
            a = _bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = _per_thread(np.asarray(self.fr[inst.rs2]))
            self.vr[inst.rd] = _V_FP_COMPARES[m](a, s).astype(np.uint64)
        elif m in ("vmand.mm", "vmor.mm"):
            a = self._read_v(inst.rs1, vl) != 0
            b = self._read_v(inst.rs2, vl) != 0
            out = (a & b) if m == "vmand.mm" else (a | b)
            self.vr[inst.rd] = out.astype(np.uint64)
        elif m == "vmerge.vxm":
            a = self._read_v(inst.rs1, vl)
            s = _to_pattern(_per_thread(np.asarray(self.xr[inst.rs2])), sew)
            mask = self._read_v(0, vl) != 0
            self.vr[inst.rd] = np.where(mask, s, a)
        elif m == "vmerge.vim":
            a = self._read_v(inst.rs1, vl)
            mask = self._read_v(0, vl) != 0
            self.vr[inst.rd] = np.where(
                mask, _to_pattern(np.int64(inst.imm), sew), a)
        elif m == "vmv.v.i":
            self.vr[inst.rd] = np.full(
                (vl,), _to_pattern(np.int64(inst.imm), sew), dtype=np.uint64)
        elif m == "vmv.v.x":
            self.vr[inst.rd] = self._splat(
                _to_pattern(np.asarray(self.xr[inst.rs1]), sew), vl)
        elif m == "vmv.v.v":
            self.vr[inst.rd] = self._read_v(inst.rs1, vl).copy()
        elif m == "vid.v":
            self.vr[inst.rd] = np.arange(vl, dtype=np.uint64)
        elif m == "vfmv.v.f":
            self.vr[inst.rd] = self._splat(
                _float_to_bits(self.fr[inst.rs1], sew), vl)
        elif m == "vmv.x.s":
            values = self.vr[inst.rs1]
            if values is None or values.shape[-1] == 0:
                self._wx(inst.rd, np.int64(0))
            else:
                self._wx(inst.rd, _sign_extend(values[..., 0], sew))
        elif m == "vmv.s.x":
            cur = self.vr[inst.rd]
            k = cur.shape[-1] if cur is not None and cur.shape[-1] else 1
            arr = self._read_v(inst.rd, k)
            s = _to_pattern(np.asarray(self.xr[inst.rs1]), sew)
            if s.ndim == 1 and arr.ndim == 1:
                arr = np.broadcast_to(arr, (self.n, k))
            arr = arr.copy()
            arr[..., 0] = s
            self.vr[inst.rd] = arr
        elif m == "vfmv.f.s":
            values = self.vr[inst.rs1]
            if values is None or values.shape[-1] == 0:
                self._wf(inst.rd, 0.0)
            else:
                self._wf(inst.rd, _bits_to_float(values[..., 0], sew))
        else:
            raise _Fallback(f"unsupported vector mnemonic {m}")

    def _splat(self, val: np.ndarray, vl: int) -> np.ndarray:
        v = np.asarray(val, dtype=np.uint64)
        if v.ndim == 0:
            return np.full((vl,), v, dtype=np.uint64)
        return np.repeat(v[:, None], vl, axis=1)

    def _exec_vred(self, inst: Instruction) -> None:
        m = inst.mnemonic
        sew = self.sew
        vl = self._eff_vl(sew)
        va = self._read_v(inst.rs1, vl)
        seed = self._read_v(inst.rs2, max(vl, 1))[..., 0]

        # Element accumulation is an *ordered* loop over the (tiny) vl so
        # float rounding matches the scalar executor exactly.
        if m == "vredsum.vs":
            acc = _sign_extend(seed, sew)
            vs = _sign_extend(va, sew)
            for j in range(vl):
                acc = acc + vs[..., j]
            result = _to_pattern(acc, sew)
        elif m in ("vredmax.vs", "vredmin.vs"):
            op = np.maximum if m == "vredmax.vs" else np.minimum
            acc = _sign_extend(seed, sew)
            vs = _sign_extend(va, sew)
            for j in range(vl):
                acc = op(acc, vs[..., j])
            result = _to_pattern(acc, sew)
        elif m == "vfredusum.vs":
            acc = _bits_to_float(seed, sew)
            vs = _bits_to_float(va, sew)
            for j in range(vl):
                acc = acc + vs[..., j]
            result = _float_to_bits(acc, sew)
        elif m == "vfredmax.vs":
            acc = _bits_to_float(seed, sew)
            vs = _bits_to_float(va, sew)
            for j in range(vl):
                acc = np.maximum(acc, vs[..., j])
            result = _float_to_bits(acc, sew)
        else:
            raise _Fallback(f"unsupported reduction {m}")
        self.vr[inst.rd] = np.asarray(result, dtype=np.uint64)[..., None]


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------


class BatchedBackend(InterpreterBackend):
    """Batched fast path with automatic per-launch interpreter fallback.

    Launch execution is two-tier: a full *trace* (vectorized walk that
    records memory steps and derives the launch's sector streams) on the
    first sighting of a launch shape, and a cached *replay* (functional
    walk only, verified against the recorded trace) for every repeat —
    see :mod:`repro.exec.trace_cache`.
    """

    name = "batched"

    def __init__(self, device) -> None:
        super().__init__(device)
        self.trace_cache = TraceCache.from_env()

    def register_execution(self, execution: KernelExecution,
                           now_ns: float) -> None:
        device = self.device
        plan = None
        entry = None
        key = None
        reason = self._reject_reason(execution)
        if reason is None:
            cache = self.trace_cache
            if cache.enabled:
                key = trace_key(execution)
                entry = cache.lookup(key, device.translation_version)
            if entry is not None:
                try:
                    plan = _BatchReplay(device, execution, entry=entry).run()
                    device.stats.add("exec.trace_cache_hits")
                except (StaleTrace, _Fallback):
                    # behaviour diverged from the recorded trace (data-
                    # dependent control flow or addressing): retrace
                    cache.invalidate(key)
                    plan = None
                    entry = None
            if plan is None:
                try:
                    plan = _BatchReplay(device, execution).run()
                except _Fallback as exc:
                    reason = str(exc)
                else:
                    entry = self._build_entry(plan)
                    if cache.enabled:
                        device.stats.add("exec.trace_cache_misses")
                        cache.store(key, entry)
        if plan is None:
            device.stats.add("exec.batched_fallbacks")
            super().register_execution(execution, now_ns)
            return
        device.stats.add("exec.batched_launches")
        plan.commit()
        # Take ownership of every µthread: a concurrent interpreter refill
        # (e.g. from a fallback launch) must not re-execute this launch.
        execution.consume_plan()
        self._active.append(execution)
        self._schedule_completion(execution, plan.n, entry, now_ns)

    # ------------------------------------------------------------------

    def _build_entry(self, plan: _BatchReplay) -> TraceEntry:
        """Derive the reusable launch profile from a completed full walk."""
        sector_bytes = self.device.config.l2.sector_bytes
        fu_counts: dict[FUnit, int] = {}
        latency_cycles = 0
        for inst in plan.trace:
            fu_counts[inst.unit] = fu_counts.get(inst.unit, 0) + 1
            latency_cycles += inst.latency_cycles
        steps: list[CachedStep] = []
        streams: list[tuple[np.ndarray, bool]] = []
        for ms in plan.mem_steps:
            if ms.is_spad:
                steps.append(CachedStep(True, ms.size, ms.is_write))
                continue
            sectors = self._step_sectors(ms, sector_bytes)
            streams.append((sectors, ms.is_write))
            steps.append(CachedStep(False, ms.size, ms.is_write,
                                    vaddrs=ms.vaddrs, paddrs=ms.paddrs,
                                    sector_count=len(sectors)))
        merged_addrs, merged_writes = self._merge_streams(streams)
        page_count = int(
            np.unique(merged_addrs >> np.int64(PAGE_SHIFT)).size
        ) if merged_addrs.size else 0
        return TraceEntry(
            translation_version=self.device.translation_version,
            trace_len=len(plan.trace),
            latency_cycles=latency_cycles,
            fu_counts=fu_counts,
            steps=steps,
            merged_addrs=merged_addrs,
            merged_writes=merged_writes,
            page_count=page_count,
        )

    # ------------------------------------------------------------------

    def _reject_reason(self, execution: KernelExecution) -> str | None:
        program = execution.instance.kernel.program
        if program.initializer is not None or program.finalizer is not None:
            return "initializer/finalizer phases"
        if len(program.bodies) != 1:
            return "multi-body kernel"
        if execution.instance.num_body_uthreads < MIN_BATCH_UTHREADS:
            return "launch below batching threshold"
        for inst in program.bodies[0].instructions:
            if inst.op_class in _UNBATCHABLE:
                return f"kernel uses {inst.op_class.value}"
        return None

    # ------------------------------------------------------------------

    def _schedule_completion(self, execution: KernelExecution, n: int,
                             entry: TraceEntry, now_ns: float) -> None:
        device = self.device
        cfg = device.config.ndp
        stats = device.stats
        trace_len = entry.trace_len
        fu_counts = entry.fu_counts
        period = cfg.clock.period_ns
        start = max(now_ns, device.sim.now) + SPAWN_LATENCY_NS

        # --- issue-throughput bound (per sub-core, FGMT hides latency) ---
        per_unit = math.ceil(n / cfg.num_units)
        per_subcore = per_unit / cfg.subcores_per_unit
        fu_width = {
            FUnit.SALU: cfg.scalar_alus_per_subcore,
            FUnit.VALU: cfg.vector_alus_per_subcore,
        }
        compute_ns = trace_len * per_subcore * period / cfg.issue_width
        for fu, fu_count in fu_counts.items():
            compute_ns = max(
                compute_ns, fu_count * per_subcore * period / fu_width.get(fu, 1)
            )
        # Occupy the sub-cores' dispatch/FU issue servers with the whole
        # launch in one bulk charge, so interpreter-path launches running
        # concurrently observe this launch's issue pressure.
        dispatch_ops = math.ceil(trace_len * per_subcore)
        fu_ops = [(fu, math.ceil(c * per_subcore))
                  for fu, c in fu_counts.items()]
        for unit in device.units:
            for subcore in unit.subcores:
                subcore.dispatch.service_batch(start, dispatch_ops)
                subcore.instructions_issued += dispatch_ops
                for fu, ops in fu_ops:
                    subcore.units[fu].service_batch(start, ops)

        # --- traffic stats from the launch's step profile ----------------
        for step in entry.steps:
            if step.is_spad:
                stats.add("ndp.spad_traffic_bytes", step.size * n)
            else:
                stats.add("ndp.global_traffic_bytes", step.size * n)
                stats.add("ndp.global_accesses", n)

        # --- latency floor: serial thread latency x occupancy waves ------
        unit0 = device.units[0]
        dram_lat = device.dram.typical_random_latency_ns()
        l1_hit = device.config.ndp.l1d.hit_latency_ns
        l2_hit = device.config.l2.hit_latency_ns
        thread_lat = entry.latency_cycles * period
        for step in entry.steps:
            if step.is_spad:
                thread_lat += unit0.scratchpad.latency_ns
            elif step.is_write:
                # posted write-through: the thread continues after L1
                thread_lat += l1_hit
            elif step.sector_count * 8 <= n:
                # many threads share these sectors (e.g. gemv's activation
                # vector): all but the first hit their unit's L1, so the
                # typical thread's critical path pays a hit, not DRAM
                thread_lat += l1_hit
            else:
                thread_lat += 2 * CROSSBAR_NS + l2_hit + dram_lat
        slots_per_unit = cfg.subcores_per_unit * cfg.uthread_slots_per_subcore
        waves = math.ceil(per_unit / slots_per_unit)
        window = max(compute_ns, thread_lat * waves)

        # --- memory-system bound: sector stream through the real L2/DRAM -
        completion = start + window
        merged = entry.merged_addrs.size
        if merged:
            # Every participating unit takes one on-chip TLB fill per page
            # it touches; the pre-warmed DRAM-TLB serves them without DRAM
            # traffic (§III-H), so only the stat is charged.
            stats.add("ndp.tlb_fill", entry.page_count * min(cfg.num_units, n))
            dt = window / merged
            arrivals = start + dt * np.arange(merged)
            completion = max(completion, device.l2_dram_access_batch(
                entry.merged_addrs, arrivals, entry.merged_writes
            ))

        # --- bookkeeping + completion event ------------------------------
        instance = execution.instance
        stats.add("ndp.instructions", n * trace_len)
        stats.add("ndp.uthreads_spawned", n)
        stats.add("ndp.uthreads_finished", n)
        ratio = min(per_unit, slots_per_unit) / slots_per_unit
        for unit in device.units:
            unit.occupancy.sampler.record(start, ratio)

        def finish() -> None:
            now = device.sim.now
            instance.instructions += n * trace_len
            instance.uthreads_done = instance.uthreads_total
            for unit in device.units:
                unit.occupancy.sampler.record(now, 0.0)
            execution.finish_now(now)

        device.sim.schedule_at(completion, finish)

    @staticmethod
    def _step_sectors(step: _MemStep, sector_bytes: int) -> np.ndarray:
        """Unique sector addresses touched by one trace step, ascending.

        Reads are deduped (every unit's L1/the shared L2 would absorb the
        repeats); write-through writes are coalesced per sector — both are
        timing-neutral for the hit path, which carries no bandwidth charge.
        """
        p = np.atleast_1d(step.paddrs).astype(np.int64)
        first = p // sector_bytes
        last = (p + step.size - 1) // sector_bytes
        span = int((last - first).max()) + 1
        if span == 1:
            sectors = first
        else:
            grid = first[:, None] + np.arange(span)
            sectors = grid[grid <= last[:, None]]
        return np.unique(sectors) * sector_bytes

    @staticmethod
    def _merge_streams(
        streams: list[tuple[np.ndarray, bool]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Proportionally interleave the per-step sector streams.

        All µthreads progress through the trace roughly together (they are
        spawned together and FGMT round-robins them), so at any instant the
        launch's memory traffic mixes *every* step's stream — e.g. column
        reads interleave with mask writes.  Merging each stream at its own
        uniform rate reproduces that mix (and its DRAM bank behaviour)
        instead of an artificially bank-friendly step-by-step sweep.
        Returns (addresses, is_write) arrays ready for the bulk charge.
        """
        if not streams:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        if len(streams) == 1:
            sectors, is_write = streams[0]
            return (np.asarray(sectors, dtype=np.int64),
                    np.full(len(sectors), is_write, dtype=bool))
        positions = np.concatenate([
            (np.arange(len(sectors)) + 0.5) / max(len(sectors), 1)
            for sectors, _ in streams
        ])
        addrs = np.concatenate([sectors for sectors, _ in streams])
        writes = np.concatenate([
            np.full(len(sectors), is_write) for sectors, is_write in streams
        ])
        order = np.argsort(positions, kind="stable")
        return addrs[order].astype(np.int64), writes[order]


register_backend(BatchedBackend.name, BatchedBackend)
