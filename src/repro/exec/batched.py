"""Trace-once / replay-many batched execution backend.

The paper's kernels launch thousands of *structurally identical* µthreads:
every body µthread runs the same code over a different stride-sized pool
slice, and one launch is bulk-synchronous (§III-E/G).  This backend
exploits that regularity with two vectorized engines:

* **Launch-uniform walk** (this module): registers become arrays over the
  whole launch (``x2`` is the vector ``[0, stride, 2*stride, ...]``), each
  decoded instruction executes once for all µthreads, and control flow
  follows the (verified) launch-uniform branch outcomes.  Memory results
  are identical to the interpreter's — stores are buffered during the walk
  and committed only when it succeeds.

* **Masked SIMT walk** (:mod:`repro.exec.simt`): the formerly-fallback
  launch classes — initializer/finalizer phases, atomics, indexed
  gathers/scatters, scratchpad state, µthread-divergent branches,
  sub-threshold launch sizes — execute as numpy lanes under an
  active-mask stack with reconvergence at immediate post-dominators,
  deterministic lane-ordered AMO grouping and per-unit scratchpad
  shadows.  Only translation faults and genuine read-after-write races
  through memory still reach the interpreter.

* **Timing** is replayed analytically from the recorded dynamic trace: the
  per-FU instruction counts bound per-sub-core issue throughput, a
  per-thread latency estimate bounds the wave depth, and the launch's
  sector-unique global address stream is paced through the device's *real*
  memory-side L2 and banked-DRAM virtual-time models via the bulk charge
  APIs (``SectorCache.access_batch``, ``DRAMModel.access_batch``,
  ``BandwidthServer.charge_batch``), so bandwidth saturation, row locality
  and HDM back-invalidation still come from the existing servers.  Launch
  runtime is a roofline ``max(issue throughput, memory system, latency x
  waves)`` rather than an event-by-event FGMT schedule; it tracks the
  interpreter closely but is not bit-identical.

* **Repeats are nearly free**: every traced launch is recorded in the
  cross-launch :mod:`~repro.exec.trace_cache` keyed by (kernel code hash,
  pool region, stride, offset bias, ASID, argument bytes).  Uniform
  launches cache their trace aggregates; SIMT launches additionally cache
  the recorded *mask schedule*, verified lane-for-lane on every replay.

Automatic fallback
------------------

``register_execution`` falls back to the inherited interpreter path (per
launch, counted in ``exec.batched_fallbacks`` and attributed under
``exec.fallback_reason.<class>``) only when neither engine can reproduce
the interpreter's bytes: translation faults, read-after-write through
memory (a load overlapping a buffered store, or cross-lane races the
SIMT hazard detector refuses to order), order-sensitive atomic
contention, trace-cap blowouts, and unsupported instructions.  Set
``REPRO_SIMT=0`` to disable the SIMT engine and restore the pre-SIMT
fallback classes (phases / atomics / gathers / divergence / scratchpad /
small launches go back to the interpreter).
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.exec.base import register_backend
from repro.exec.interpreter import InterpreterBackend
from repro.exec.point import attempt_point
from repro.exec.simt import (
    MAX_TRACE_STEPS,
    LaunchFallback,
    SimtPlan,
    Translator,
    merge_streams,
    step_sectors,
)
from repro.exec.trace_cache import (
    CachedStep,
    SimtTraceEntry,
    StaleTrace,
    TraceCache,
    TraceEntry,
    trace_key,
)
from repro.isa import vectorops as vo
from repro.isa.encoding import FUnit, Instruction, OpClass
from repro.isa.registers import to_signed64
from repro.isa.vector import vlmax
from repro.isa.vectorops import UnsupportedVectorOp
from repro.ndp.generator import (
    ARG_SLOT_BYTES,
    SPAWN_LATENCY_NS,
    KernelExecution,
)
from repro.obs import tracer as obs_tracer
from repro.ndp.tlb import PAGE_SHIFT
from repro.ndp.unit import CROSSBAR_NS

#: Launches smaller than this skip the launch-uniform walk: tracing cannot
#: be amortized and latency effects dominate short launches, which the
#: masked engine (or, with ``REPRO_SIMT=0``, the interpreter) handles.
MIN_BATCH_UTHREADS = 64

_ZERO_X = np.zeros((), dtype=np.int64)
_ZERO_F = np.zeros((), dtype=np.float64)

#: Op classes the launch-uniform walk never attempts (structural routing).
_UNBATCHABLE = {
    OpClass.AMO: "atomic",
    OpClass.VAMO: "atomic",
    OpClass.VGATHER: "gather",
    OpClass.VSCATTER: "gather",
}

#: Uniform-walk fallback classes the SIMT engine can absorb.
_RETRY_SIMT_SLUGS = {"divergent", "scratchpad", "vconfig"}

_Fallback = LaunchFallback


# ---------------------------------------------------------------------------
# buffered store log
# ---------------------------------------------------------------------------


class _StoreLog:
    """Stores buffered during the walk, committed only on success."""

    def __init__(self) -> None:
        self._entries: list[tuple[np.ndarray, np.ndarray]] = []
        self._bounds: list[tuple[int, int]] = []

    def log(self, paddrs: np.ndarray, data: np.ndarray) -> None:
        self._entries.append((paddrs, data))
        self._bounds.append(
            (int(paddrs.min()), int(paddrs.max()) + data.shape[-1])
        )

    def overlaps(self, lo: int, hi: int) -> bool:
        return any(e_lo < hi and lo < e_hi for e_lo, e_hi in self._bounds)

    def commit(self, physical) -> None:
        for paddrs, data in self._entries:
            physical.scatter_rows(paddrs, data)


# ---------------------------------------------------------------------------
# vectorized launch-uniform functional walk
# ---------------------------------------------------------------------------


class _MemStep:
    """One memory instruction of the trace, as executed by all µthreads."""

    __slots__ = ("is_spad", "size", "is_write", "paddrs", "vaddrs")

    def __init__(self, is_spad: bool, size: int, is_write: bool,
                 paddrs: np.ndarray | None,
                 vaddrs: np.ndarray | None = None) -> None:
        self.is_spad = is_spad
        self.size = size
        self.is_write = is_write
        self.paddrs = paddrs
        self.vaddrs = vaddrs


class _Done(Exception):
    """Internal control-flow signal: the walk reached ``ret``."""


class _BatchReplay:
    """Vectorized lockstep execution of one launch's body µthreads.

    With a cached :class:`TraceEntry` the walk becomes a *replay*: the
    functional numpy execution still runs in full (memory contents may
    have changed since the trace), but every memory step's freshly
    computed address vector is verified against the recorded one and the
    recorded translation reused — any divergence raises
    :class:`StaleTrace` so the caller can retrace from scratch.
    """

    def __init__(self, device, execution: KernelExecution,
                 entry: TraceEntry | None = None) -> None:
        instance = execution.instance
        self.device = device
        self.n = instance.num_body_uthreads
        self.program = instance.kernel.program.bodies[0]
        self.trace: list[Instruction] = []
        self.mem_steps: list[_MemStep] = []
        self.log = _StoreLog()
        self.translator = Translator(device.page_table(instance.asid))
        self._entry = entry
        self._mem_i = 0
        self._executed = 0
        spad = device.units[execution.unit_base].scratchpad
        self._spad = spad
        self._spad_lo = spad.base_vaddr
        self._spad_hi = spad.base_vaddr + spad.size_bytes
        # Scratchpad contents are per unit; only the argument block is
        # guaranteed identical everywhere (the controller writes it to all
        # units).  The walk may read nothing else from the scratchpad.
        self._args_lo = execution.args_vaddr
        self._args_hi = execution.args_vaddr + ARG_SLOT_BYTES

        idx = np.arange(self.n, dtype=np.int64)
        stride = np.int64(instance.uthread_stride)
        self.xr: list[np.ndarray] = [_ZERO_X] * 32
        self.xr[1] = np.int64(instance.pool_base) + idx * stride
        self.xr[2] = np.int64(instance.offset_bias) + idx * stride
        self.xr[3] = np.asarray(execution.args_vaddr, dtype=np.int64)
        self.fr: list[np.ndarray] = [_ZERO_F] * 32
        self.vr: list[np.ndarray | None] = [None] * 32
        self.vl: int | None = None
        self.sew = 64

    # -- register plumbing ------------------------------------------------

    def _wx(self, idx: int, val) -> None:
        if idx:
            self.xr[idx] = np.asarray(val).astype(np.int64)

    def _wf(self, idx: int, val) -> None:
        self.fr[idx] = np.asarray(val, dtype=np.float64)

    def _read_v(self, idx: int, count: int) -> np.ndarray:
        arr = self.vr[idx]
        if arr is None or arr.shape[-1] == 0:
            return np.zeros((count,), dtype=np.uint64)
        k = arr.shape[-1]
        if k < count:
            pad = np.zeros(arr.shape[:-1] + (count - k,), dtype=np.uint64)
            arr = np.concatenate([arr, pad], axis=-1)
        return arr[..., :count]

    def _eff_vl(self, sew: int) -> int:
        limit = vlmax(sew)
        return limit if self.vl is None else min(self.vl, limit)

    def _uniform_int(self, arr: np.ndarray, what: str,
                     slug: str = "divergent") -> int:
        a = np.asarray(arr)
        if a.ndim == 0:
            return int(a)
        first = a.flat[0]
        if not np.all(a == first):
            raise _Fallback(f"µthread-divergent {what}", slug)
        return int(first)

    # -- memory -----------------------------------------------------------

    def _classify(self, addr: np.ndarray) -> bool:
        """True when the access vector targets the scratchpad window."""
        a = np.atleast_1d(addr)
        in_spad = (a >= self._spad_lo) & (a < self._spad_hi)
        if in_spad.all():
            return True
        if in_spad.any():
            raise _Fallback("mixed scratchpad/global access vector",
                            "scratchpad")
        return False

    def _next_cached_step(self, is_spad: bool, size: int,
                          is_write: bool) -> CachedStep:
        entry = self._entry
        if self._mem_i >= len(entry.steps):
            raise StaleTrace("more memory steps than the cached trace")
        step = entry.steps[self._mem_i]
        self._mem_i += 1
        if (step.is_spad != is_spad or step.size != size
                or step.is_write != is_write):
            raise StaleTrace("memory step shape diverged from cached trace")
        return step

    def _load(self, addr, size: int) -> np.ndarray:
        """Load ``size`` bytes per µthread; returns (..., size) uint8."""
        addr = np.asarray(addr, dtype=np.int64)
        if self._classify(addr):
            lo = int(addr.min()) if addr.ndim else int(addr)
            hi = (int(addr.max()) if addr.ndim else int(addr)) + size
            if lo < self._args_lo or hi > self._args_hi:
                # outside the argument block: per-unit state (unit 0's copy
                # is not representative), so hand the launch back
                raise _Fallback("scratchpad load outside the argument block",
                                "scratchpad")
            if self._entry is not None:
                self._next_cached_step(True, size, False)
            else:
                self.mem_steps.append(_MemStep(True, size, False, None))
            # stat-free view: a mid-walk fallback must leave no counters
            # behind (the interpreter re-run charges them itself)
            view = self._spad.view()
            offs = addr - self._spad_lo
            if addr.ndim == 0:
                return view[int(offs):int(offs) + size].copy()
            return view[offs[:, None] + np.arange(size)]
        if self._entry is not None:
            step = self._next_cached_step(False, size, False)
            if not np.array_equal(addr, step.vaddrs):
                raise StaleTrace("load addresses diverged from cached trace")
            paddrs = step.paddrs
        else:
            paddrs = self.translator.translate(addr)
            lo = int(paddrs.min()) if paddrs.ndim else int(paddrs)
            hi = (int(paddrs.max()) if paddrs.ndim else int(paddrs)) + size
            if self.log.overlaps(lo, hi):
                raise _Fallback(
                    "load overlaps a buffered store (RAW via memory)", "raw")
            self.mem_steps.append(_MemStep(False, size, False, paddrs, addr))
        return self.device.physical.gather_rows(paddrs, size)

    def _store(self, addr, data: np.ndarray) -> None:
        """Buffer a store of (..., size) uint8 rows at per-µthread addrs."""
        addr = np.asarray(addr, dtype=np.int64)
        if self._classify(addr):
            raise _Fallback("scratchpad store in kernel body", "scratchpad")
        size = data.shape[-1]
        if self._entry is not None:
            step = self._next_cached_step(False, size, True)
            if not np.array_equal(addr, step.vaddrs):
                raise StaleTrace("store addresses diverged from cached trace")
            paddrs = step.paddrs
        else:
            paddrs = np.broadcast_to(
                np.atleast_1d(self.translator.translate(addr)), (self.n,)
            )
            self.mem_steps.append(_MemStep(False, size, True, paddrs, addr))
        rows = np.broadcast_to(
            data if data.ndim == 2 else data[None, :], (self.n, size)
        )
        self.log.log(paddrs, np.ascontiguousarray(rows))

    def commit(self) -> None:
        self.log.commit(self.device.physical)

    # -- main walk --------------------------------------------------------

    def run(self) -> "_BatchReplay":
        instructions = self.program.instructions
        count = len(instructions)
        pc = 0
        record = self._entry is None
        with np.errstate(all="ignore"):
            try:
                while pc < count:
                    if self._executed >= MAX_TRACE_STEPS:
                        raise _Fallback("trace exceeds step cap", "cap")
                    inst = instructions[pc]
                    self._executed += 1
                    if record:
                        self.trace.append(inst)
                    pc = self._step(inst, pc)
            except _Done:
                pass
            except UnsupportedVectorOp as exc:
                raise _Fallback(str(exc)) from None
        if not record and (self._executed != self._entry.trace_len
                           or self._mem_i != len(self._entry.steps)):
            raise StaleTrace("control flow diverged from cached trace")
        return self

    def _step(self, inst: Instruction, pc: int) -> int:
        op = inst.op_class
        if op is OpClass.ALU:
            self._exec_alu(inst)
        elif op is OpClass.VALU_OP:
            self._exec_valu(inst)
        elif op is OpClass.BRANCH:
            return self._exec_branch(inst, pc)
        elif op is OpClass.LOAD:
            self._exec_load(inst)
        elif op is OpClass.STORE:
            self._exec_store(inst)
        elif op is OpClass.VLOAD:
            self._exec_vload(inst)
        elif op is OpClass.VSTORE:
            self._exec_vstore(inst)
        elif op is OpClass.VRED:
            self._exec_vred(inst)
        elif op is OpClass.VSET:
            self._exec_vset(inst)
        elif op is OpClass.FENCE:
            pass
        elif op is OpClass.RET:
            raise _Done
        else:
            raise _Fallback(f"unsupported op class {op.value}")
        return pc + 1

    # -- scalar -----------------------------------------------------------

    def _exec_alu(self, inst: Instruction) -> None:
        m = inst.mnemonic
        xr, fr = self.xr, self.fr
        if m in vo.INT_BINOPS:
            self._wx(inst.rd, vo.INT_BINOPS[m](
                np.asarray(xr[inst.rs1]), np.asarray(xr[inst.rs2])))
        elif m in vo.INT_IMMOPS:
            self._wx(inst.rd, vo.INT_BINOPS[vo.INT_IMMOPS[m]](
                np.asarray(xr[inst.rs1]), np.int64(inst.imm)))
        elif m in ("addw", "mulw"):
            base = vo.INT_BINOPS["add" if m == "addw" else "mul"]
            res = base(np.asarray(xr[inst.rs1]), np.asarray(xr[inst.rs2]))
            self._wx(inst.rd, res.astype(np.int32))
        elif m == "li":
            self._wx(inst.rd, np.int64(to_signed64(inst.imm)))
        elif m == "lui":
            self._wx(inst.rd, np.int64(to_signed64(inst.imm << 12)))
        elif m == "mv":
            self._wx(inst.rd, xr[inst.rs1])
        elif m == "neg":
            self._wx(inst.rd, -np.asarray(xr[inst.rs1]))
        elif m == "seqz":
            self._wx(inst.rd, (np.asarray(xr[inst.rs1]) == 0).astype(np.int64))
        elif m == "snez":
            self._wx(inst.rd, (np.asarray(xr[inst.rs1]) != 0).astype(np.int64))
        elif m in vo.FP_BINOPS:
            self._wf(inst.rd, vo.FP_BINOPS[m](
                np.asarray(fr[inst.rs1]), np.asarray(fr[inst.rs2])))
        elif m in vo.FP_COMPARES:
            self._wx(inst.rd, vo.FP_COMPARES[m](
                np.asarray(fr[inst.rs1]), np.asarray(fr[inst.rs2])))
        elif m == "fmadd.d":
            self._wf(inst.rd,
                     np.asarray(fr[inst.rs1]) * np.asarray(fr[inst.rs2])
                     + np.asarray(fr[inst.rs3]))
        elif m == "fsqrt.d":
            val = np.asarray(fr[inst.rs1])
            if np.any(val < 0):
                raise _Fallback("fsqrt of negative value")
            self._wf(inst.rd, np.sqrt(val))
        elif m == "fmv.d":
            self._wf(inst.rd, fr[inst.rs1])
        elif m == "fmv.x.d":
            bits = np.ascontiguousarray(fr[inst.rs1], dtype=np.float64)
            self._wx(inst.rd, bits.view(np.int64))
        elif m == "fmv.d.x":
            bits = np.ascontiguousarray(self.xr[inst.rs1], dtype=np.int64)
            self._wf(inst.rd, bits.view(np.float64))
        elif m in ("fcvt.d.l", "fcvt.s.l"):
            self._wf(inst.rd, np.asarray(xr[inst.rs1]).astype(np.float64))
        elif m == "fcvt.l.d":
            self._wx(inst.rd, np.trunc(np.asarray(fr[inst.rs1])).astype(np.int64))
        else:
            raise _Fallback(f"unsupported mnemonic {m}")

    def _exec_branch(self, inst: Instruction, pc: int) -> int:
        m = inst.mnemonic
        if m == "j":
            return inst.target
        if m in vo.BRANCHES:
            cond = vo.BRANCHES[m](np.asarray(self.xr[inst.rs1]),
                                  np.asarray(self.xr[inst.rs2]))
        elif m in vo.BRANCHES_Z:
            cond = vo.BRANCHES_Z[m](np.asarray(self.xr[inst.rs1]))
        else:
            raise _Fallback(f"unsupported branch {m}")
        taken = bool(self._uniform_int(np.asarray(cond), "branch"))
        return inst.target if taken else pc + 1

    def _exec_load(self, inst: Instruction) -> None:
        addr = np.asarray(self.xr[inst.rs1]) + np.int64(inst.imm)
        m = inst.mnemonic
        if m in vo.FP_LOADS:
            size = vo.FP_LOADS[m]
            bits = vo.from_le_bytes(self._load(addr, size))
            self._wf(inst.rd, vo.bits_to_float(bits, size * 8))
            return
        size = vo.LOAD_SIGNED.get(m) or vo.LOAD_UNSIGNED[m]
        value = vo.from_le_bytes(self._load(addr, size))
        if m in vo.LOAD_SIGNED:
            self._wx(inst.rd, vo.sign_extend(value, size * 8))
        else:
            self._wx(inst.rd, value.astype(np.int64))

    def _exec_store(self, inst: Instruction) -> None:
        addr = np.asarray(self.xr[inst.rs1]) + np.int64(inst.imm)
        m = inst.mnemonic
        if m in vo.FP_STORES:
            size = vo.FP_STORES[m]
            bits = vo.float_to_bits(self.fr[inst.rs2], size * 8)
        else:
            size = vo.STORES[m]
            bits = np.asarray(self.xr[inst.rs2]).astype(np.uint64)
        self._store(addr, vo.to_le_bytes(bits, size))

    # -- vector -----------------------------------------------------------

    def _exec_vset(self, inst: Instruction) -> None:
        sew = inst.imm
        requested = self._uniform_int(np.asarray(self.xr[inst.rs1]),
                                      "vsetvli AVL", "vconfig")
        if requested < 0:
            raise _Fallback(f"vsetvli with negative AVL {requested}")
        vl = min(requested, vlmax(sew))
        self.sew = sew
        self.vl = vl
        self._wx(inst.rd, np.int64(vl))

    def _exec_vload(self, inst: Instruction) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(sew)
        if vl == 0:
            self.vr[inst.rd] = np.zeros((0,), dtype=np.uint64)
            return
        addr = np.asarray(self.xr[inst.rs1]) + np.int64(inst.imm)
        raw = self._load(addr, vl * inst.size)
        self.vr[inst.rd] = vo.from_le_bytes(
            raw.reshape(raw.shape[:-1] + (vl, inst.size))
        )

    def _exec_vstore(self, inst: Instruction) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(sew)
        if vl == 0:
            return
        addr = np.asarray(self.xr[inst.rs1]) + np.int64(inst.imm)
        values = vo.to_pattern(self._read_v(inst.rd, vl).astype(np.int64), sew)
        raw = vo.to_le_bytes(values, inst.size)
        self._store(addr, raw.reshape(raw.shape[:-2] + (vl * inst.size,)))

    def _exec_valu(self, inst: Instruction) -> None:
        m = inst.mnemonic
        sew = self.sew
        vl = self._eff_vl(sew)

        if m in vo.V_INT_BINOPS:
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            b = vo.sign_extend(self._read_v(inst.rs2, vl), sew)
            self.vr[inst.rd] = vo.to_pattern(vo.V_INT_BINOPS[m](a, b), sew)
        elif m in vo.V_INT_SCALAR:
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(np.asarray(self.xr[inst.rs2]))
            self.vr[inst.rd] = vo.to_pattern(vo.V_INT_SCALAR[m](a, s), sew)
        elif m in vo.V_INT_IMM:
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            self.vr[inst.rd] = vo.to_pattern(
                vo.V_INT_IMM[m](a, np.int64(inst.imm)), sew)
        elif m == "vmacc.vv":
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            b = vo.sign_extend(self._read_v(inst.rs2, vl), sew)
            d = vo.sign_extend(self._read_v(inst.rd, vl), sew)
            self.vr[inst.rd] = vo.to_pattern(d + a * b, sew)
        elif m in vo.V_FP_BINOPS:
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            b = vo.bits_to_float(self._read_v(inst.rs2, vl), sew)
            self.vr[inst.rd] = vo.float_to_bits(vo.V_FP_BINOPS[m](a, b), sew)
        elif m in vo.V_FP_SCALAR:
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(np.asarray(self.fr[inst.rs2]))
            self.vr[inst.rd] = vo.float_to_bits(vo.V_FP_SCALAR[m](a, s), sew)
        elif m == "vfmacc.vf":
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(np.asarray(self.fr[inst.rs2]))
            d = vo.bits_to_float(self._read_v(inst.rd, vl), sew)
            self.vr[inst.rd] = vo.float_to_bits(d + a * s, sew)
        elif m == "vfmacc.vv":
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            b = vo.bits_to_float(self._read_v(inst.rs2, vl), sew)
            d = vo.bits_to_float(self._read_v(inst.rd, vl), sew)
            self.vr[inst.rd] = vo.float_to_bits(d + a * b, sew)
        elif m in vo.V_INT_COMPARES:
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(np.asarray(self.xr[inst.rs2]))
            self.vr[inst.rd] = vo.V_INT_COMPARES[m](a, s).astype(np.uint64)
        elif m in vo.V_FP_COMPARES:
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(np.asarray(self.fr[inst.rs2]))
            self.vr[inst.rd] = vo.V_FP_COMPARES[m](a, s).astype(np.uint64)
        elif m in ("vmand.mm", "vmor.mm"):
            a = self._read_v(inst.rs1, vl) != 0
            b = self._read_v(inst.rs2, vl) != 0
            out = (a & b) if m == "vmand.mm" else (a | b)
            self.vr[inst.rd] = out.astype(np.uint64)
        elif m == "vmerge.vxm":
            a = self._read_v(inst.rs1, vl)
            s = vo.to_pattern(vo.per_thread(np.asarray(self.xr[inst.rs2])), sew)
            mask = self._read_v(0, vl) != 0
            self.vr[inst.rd] = np.where(mask, s, a)
        elif m == "vmerge.vim":
            a = self._read_v(inst.rs1, vl)
            mask = self._read_v(0, vl) != 0
            self.vr[inst.rd] = np.where(
                mask, vo.to_pattern(np.int64(inst.imm), sew), a)
        elif m == "vmv.v.i":
            self.vr[inst.rd] = np.full(
                (vl,), vo.to_pattern(np.int64(inst.imm), sew), dtype=np.uint64)
        elif m == "vmv.v.x":
            self.vr[inst.rd] = self._splat(
                vo.to_pattern(np.asarray(self.xr[inst.rs1]), sew), vl)
        elif m == "vmv.v.v":
            self.vr[inst.rd] = self._read_v(inst.rs1, vl).copy()
        elif m == "vid.v":
            self.vr[inst.rd] = np.arange(vl, dtype=np.uint64)
        elif m == "vfmv.v.f":
            self.vr[inst.rd] = self._splat(
                vo.float_to_bits(self.fr[inst.rs1], sew), vl)
        elif m == "vmv.x.s":
            values = self.vr[inst.rs1]
            if values is None or values.shape[-1] == 0:
                self._wx(inst.rd, np.int64(0))
            else:
                self._wx(inst.rd, vo.sign_extend(values[..., 0], sew))
        elif m == "vmv.s.x":
            cur = self.vr[inst.rd]
            k = cur.shape[-1] if cur is not None and cur.shape[-1] else 1
            arr = self._read_v(inst.rd, k)
            s = vo.to_pattern(np.asarray(self.xr[inst.rs1]), sew)
            if s.ndim == 1 and arr.ndim == 1:
                arr = np.broadcast_to(arr, (self.n, k))
            arr = arr.copy()
            arr[..., 0] = s
            self.vr[inst.rd] = arr
        elif m == "vfmv.f.s":
            values = self.vr[inst.rs1]
            if values is None or values.shape[-1] == 0:
                self._wf(inst.rd, 0.0)
            else:
                self._wf(inst.rd, vo.bits_to_float(values[..., 0], sew))
        else:
            raise _Fallback(f"unsupported vector mnemonic {m}")

    def _splat(self, val: np.ndarray, vl: int) -> np.ndarray:
        v = np.asarray(val, dtype=np.uint64)
        if v.ndim == 0:
            return np.full((vl,), v, dtype=np.uint64)
        return np.repeat(v[:, None], vl, axis=1)

    def _exec_vred(self, inst: Instruction) -> None:
        m = inst.mnemonic
        sew = self.sew
        vl = self._eff_vl(sew)
        va = self._read_v(inst.rs1, vl)
        seed = self._read_v(inst.rs2, max(vl, 1))[..., 0]

        # Element accumulation is an *ordered* loop over the (tiny) vl so
        # float rounding matches the scalar executor exactly.
        if m == "vredsum.vs":
            acc = vo.sign_extend(seed, sew)
            vs = vo.sign_extend(va, sew)
            for j in range(vl):
                acc = acc + vs[..., j]
            result = vo.to_pattern(acc, sew)
        elif m in ("vredmax.vs", "vredmin.vs"):
            op = np.maximum if m == "vredmax.vs" else np.minimum
            acc = vo.sign_extend(seed, sew)
            vs = vo.sign_extend(va, sew)
            for j in range(vl):
                acc = op(acc, vs[..., j])
            result = vo.to_pattern(acc, sew)
        elif m == "vfredusum.vs":
            acc = vo.bits_to_float(seed, sew)
            vs = vo.bits_to_float(va, sew)
            for j in range(vl):
                acc = acc + vs[..., j]
            result = vo.float_to_bits(acc, sew)
        elif m == "vfredmax.vs":
            acc = vo.bits_to_float(seed, sew)
            vs = vo.bits_to_float(va, sew)
            for j in range(vl):
                acc = np.maximum(acc, vs[..., j])
            result = vo.float_to_bits(acc, sew)
        else:
            raise _Fallback(f"unsupported reduction {m}")
        self.vr[inst.rd] = np.asarray(result, dtype=np.uint64)[..., None]


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------


class BatchedBackend(InterpreterBackend):
    """Batched fast path with automatic per-launch engine routing.

    Launch execution is three-tier: the launch-uniform *trace/replay*
    walk for bulk branch-uniform launches, the masked *SIMT* engine
    (:mod:`repro.exec.simt`) for the formerly-fallback classes, and the
    inherited per-µthread interpreter for the residue (translation
    faults, RAW through memory) — attributed per class in
    ``exec.fallback_reason.<slug>`` counters.
    """

    name = "batched"

    def __init__(self, device) -> None:
        super().__init__(device)
        self.trace_cache = TraceCache.from_env()
        self.simt_enabled = os.environ.get("REPRO_SIMT", "1") != "0"
        self.point_enabled = os.environ.get("REPRO_POINT", "1") != "0"

    # ------------------------------------------------------------------

    def _classify(self, execution: KernelExecution) -> tuple[str, str | None]:
        """Static routing: (engine, reason-slug).

        ``uniform`` launches try the launch-uniform walk first; ``simt``
        launches go straight to the masked engine; with ``REPRO_SIMT=0``
        every non-uniform class routes to the interpreter, restoring the
        pre-SIMT behaviour.
        """
        program = execution.instance.kernel.program
        reason = None
        if (program.initializer is not None or program.finalizer is not None
                or len(program.bodies) != 1):
            reason = "phases"
        else:
            for inst in program.bodies[0].instructions:
                slug = _UNBATCHABLE.get(inst.op_class)
                if slug is not None:
                    reason = slug
                    break
            else:
                if execution.instance.num_body_uthreads < MIN_BATCH_UTHREADS:
                    reason = "small"
        if reason is None:
            return "uniform", None
        return ("simt" if self.simt_enabled else "interpreter"), reason

    def register_execution(self, execution: KernelExecution,
                           now_ns: float) -> None:
        device = self.device
        cache = self.trace_cache
        route, why = self._classify(execution)
        failure: LaunchFallback | None = None
        if route == "interpreter":
            failure = LaunchFallback(f"routed to interpreter ({why})", why)
        key = trace_key(execution) if cache.enabled else None

        if route == "uniform":
            entry = (cache.lookup(key, device.translation_version)
                     if cache.enabled else None)
            if isinstance(entry, SimtTraceEntry):
                # this shape degraded to the SIMT engine on a prior launch
                route = "simt"
            else:
                failure = self._attempt_uniform(execution, key, entry, now_ns)
                if failure is None:
                    return
                if failure.slug in _RETRY_SIMT_SLUGS and self.simt_enabled:
                    route, failure = "simt", None

        if route == "simt" and failure is None:
            # Point tier: launches no wider than the device (one µthread
            # per unit) execute as a synchronous per-lane walk with
            # verified symbolic replay — the masked engine's per-launch
            # numpy setup costs more than such launches' entire work.
            # ``REPRO_POINT=0`` restores the masked-engine behaviour.
            if (self.point_enabled and why != "phases"
                    and execution.instance.num_body_uthreads
                    <= execution.num_units):
                attempt_point(self, execution, now_ns)
                return
            failure = self._attempt_simt(execution, key, now_ns)
            if failure is None:
                return

        device.stats.add("exec.batched_fallbacks")
        device.stats.add(f"exec.fallback_reason.{failure.slug}")
        if obs_tracer.ENABLED:
            obs_tracer.tracer_of(device.sim).instant(
                "exec.fallback", max(now_ns, device.sim.now),
                pid=device.trace_pid, reason=failure.slug,
                instance=execution.instance.instance_id)
        super().register_execution(execution, now_ns)

    # ------------------------------------------------------------------

    def _attempt_uniform(self, execution: KernelExecution, key,
                         entry: TraceEntry | None,
                         now_ns: float) -> LaunchFallback | None:
        """Launch-uniform tier; returns the fallback on failure."""
        device = self.device
        cache = self.trace_cache
        plan = None
        cached = False
        if entry is not None:
            try:
                plan = _BatchReplay(device, execution, entry=entry).run()
                device.stats.add("exec.trace_cache_hits")
                device.stats.add("exec.trace_cache_hits_batched")
                cached = True
            except (StaleTrace, LaunchFallback, UnsupportedVectorOp):
                # behaviour diverged from the recorded trace (data-
                # dependent control flow or addressing): retrace
                cache.invalidate(key)
                plan = None
                entry = None
        if plan is None:
            try:
                plan = _BatchReplay(device, execution).run()
            except LaunchFallback as exc:
                return exc
            entry = self._build_entry(plan)
            if cache.enabled:
                device.stats.add("exec.trace_cache_misses")
                cache.store(key, entry)
        device.stats.add("exec.batched_launches")
        plan.commit()
        # Take ownership of every µthread: a concurrent interpreter refill
        # (e.g. from a fallback launch) must not re-execute this launch.
        execution.consume_plan()
        self._active.append(execution)
        self._schedule_completion(execution, plan.n, entry, now_ns, cached)
        return None

    def _attempt_simt(self, execution: KernelExecution, key,
                      now_ns: float) -> LaunchFallback | None:
        """Masked SIMT tier; returns the fallback on failure."""
        device = self.device
        cache = self.trace_cache
        entry = (cache.lookup(key, device.translation_version)
                 if cache.enabled else None)
        if not isinstance(entry, SimtTraceEntry):
            entry = None
        plan = None
        cached = False
        if entry is not None:
            try:
                plan = SimtPlan(device, execution, entry=entry).run()
                device.stats.add("exec.trace_cache_hits")
                device.stats.add("exec.trace_cache_hits_simt")
                cached = True
            except (StaleTrace, LaunchFallback):
                # mask schedule or addressing diverged: retrace from scratch
                cache.invalidate(key)
                plan = None
        if plan is None:
            try:
                plan = SimtPlan(device, execution).run()
            except LaunchFallback as exc:
                return exc
            if cache.enabled:
                device.stats.add("exec.trace_cache_misses")
                cache.store(key, SimtTraceEntry(
                    translation_version=device.translation_version,
                    profiles=plan.profiles,
                ))
        plan.commit()
        device.stats.add("exec.simt_launches")
        execution.consume_plan()
        self._active.append(execution)
        plan.cache_hit = cached
        plan.schedule(now_ns)
        return None

    # ------------------------------------------------------------------

    def _build_entry(self, plan: _BatchReplay) -> TraceEntry:
        """Derive the reusable launch profile from a completed full walk."""
        sector_bytes = self.device.config.l2.sector_bytes
        fu_counts: dict[FUnit, int] = {}
        latency_cycles = 0
        for inst in plan.trace:
            fu_counts[inst.unit] = fu_counts.get(inst.unit, 0) + 1
            latency_cycles += inst.latency_cycles
        steps: list[CachedStep] = []
        streams: list[tuple[np.ndarray, bool]] = []
        for ms in plan.mem_steps:
            if ms.is_spad:
                steps.append(CachedStep(True, ms.size, ms.is_write))
                continue
            sectors = step_sectors(ms.paddrs, ms.size, sector_bytes)
            streams.append((sectors, ms.is_write))
            steps.append(CachedStep(False, ms.size, ms.is_write,
                                    vaddrs=ms.vaddrs, paddrs=ms.paddrs,
                                    sector_count=len(sectors)))
        merged_addrs, merged_writes = merge_streams(streams)
        page_count = int(
            np.unique(merged_addrs >> np.int64(PAGE_SHIFT)).size
        ) if merged_addrs.size else 0
        return TraceEntry(
            translation_version=self.device.translation_version,
            trace_len=len(plan.trace),
            latency_cycles=latency_cycles,
            fu_counts=fu_counts,
            steps=steps,
            merged_addrs=merged_addrs,
            merged_writes=merged_writes,
            page_count=page_count,
        )

    # ------------------------------------------------------------------

    def _schedule_completion(self, execution: KernelExecution, n: int,
                             entry: TraceEntry, now_ns: float,
                             cached: bool = False) -> None:
        device = self.device
        cfg = device.config.ndp
        stats = device.stats
        trace_len = entry.trace_len
        fu_counts = entry.fu_counts
        period = cfg.clock.period_ns
        start = max(now_ns, device.sim.now) + SPAWN_LATENCY_NS
        # A partition-bound launch only sees (and only charges) its own
        # unit window and its private L2/DRAM slice.
        num_units = execution.num_units
        units = device.units[execution.unit_base:
                             execution.unit_base + num_units]

        # --- issue-throughput bound (per sub-core, FGMT hides latency) ---
        per_unit = math.ceil(n / num_units)
        per_subcore = per_unit / cfg.subcores_per_unit
        fu_width = {
            FUnit.SALU: cfg.scalar_alus_per_subcore,
            FUnit.VALU: cfg.vector_alus_per_subcore,
        }
        compute_ns = trace_len * per_subcore * period / cfg.issue_width
        for fu, fu_count in fu_counts.items():
            compute_ns = max(
                compute_ns, fu_count * per_subcore * period / fu_width.get(fu, 1)
            )
        # Occupy the sub-cores' dispatch/FU issue servers with the whole
        # launch in one bulk charge, so interpreter-path launches running
        # concurrently observe this launch's issue pressure.
        dispatch_ops = math.ceil(trace_len * per_subcore)
        fu_ops = [(fu, math.ceil(c * per_subcore))
                  for fu, c in fu_counts.items()]
        for unit in units:
            for subcore in unit.subcores:
                subcore.dispatch.service_batch(start, dispatch_ops)
                subcore.instructions_issued += dispatch_ops
                for fu, ops in fu_ops:
                    subcore.units[fu].service_batch(start, ops)

        # --- traffic stats from the launch's step profile ----------------
        for step in entry.steps:
            if step.is_spad:
                stats.add("ndp.spad_traffic_bytes", step.size * n)
            else:
                stats.add("ndp.global_traffic_bytes", step.size * n)
                stats.add("ndp.global_accesses", n)

        # --- latency floor: serial thread latency x occupancy waves ------
        unit0 = units[0]
        dram = (device.dram if execution.partition is None
                else execution.partition.dram)
        dram_lat = dram.typical_random_latency_ns()
        l1_hit = device.config.ndp.l1d.hit_latency_ns
        l2_hit = device.config.l2.hit_latency_ns
        thread_lat = entry.latency_cycles * period
        for step in entry.steps:
            if step.is_spad:
                thread_lat += unit0.scratchpad.latency_ns
            elif step.is_write:
                # posted write-through: the thread continues after L1
                thread_lat += l1_hit
            elif step.sector_count * 8 <= n:
                # many threads share these sectors (e.g. gemv's activation
                # vector): all but the first hit their unit's L1, so the
                # typical thread's critical path pays a hit, not DRAM
                thread_lat += l1_hit
            else:
                thread_lat += 2 * CROSSBAR_NS + l2_hit + dram_lat
        slots_per_unit = cfg.subcores_per_unit * cfg.uthread_slots_per_subcore
        waves = math.ceil(per_unit / slots_per_unit)
        window = max(compute_ns, thread_lat * waves)

        # --- memory-system bound: sector stream through the real L2/DRAM -
        completion = start + window
        merged = entry.merged_addrs.size
        mem_done = None
        if merged:
            # Every participating unit takes one on-chip TLB fill per page
            # it touches; the pre-warmed DRAM-TLB serves them without DRAM
            # traffic (§III-H), so only the stat is charged.
            stats.add("ndp.tlb_fill", entry.page_count * min(num_units, n))
            dt = window / merged
            arrivals = start + dt * np.arange(merged)
            mem_done = device.l2_dram_access_batch(
                entry.merged_addrs, arrivals, entry.merged_writes,
                partition=execution.partition,
            )
            completion = max(completion, mem_done)

        # --- bookkeeping + completion event ------------------------------
        instance = execution.instance
        stats.add("ndp.instructions", n * trace_len)
        stats.add("ndp.uthreads_spawned", n)
        stats.add("ndp.uthreads_finished", n)
        ratio = min(per_unit, slots_per_unit) / slots_per_unit
        for unit in units:
            unit.occupancy.sampler.record(start, ratio)

        if obs_tracer.ENABLED:
            tracer = obs_tracer.tracer_of(device.sim)
            span = tracer.record(
                "exec.batched", start, completion, pid=device.trace_pid,
                instance=instance.instance_id, uthreads=n,
                trace_cache="hit" if cached else "miss")
            if mem_done is not None:
                tracer.record("mem.charge", start, mem_done, parent=span,
                              pid=device.trace_pid, sectors=merged)

        def finish() -> None:
            now = device.sim.now
            instance.instructions += n * trace_len
            instance.uthreads_done = instance.uthreads_total
            for unit in units:
                unit.occupancy.sampler.record(now, 0.0)
            execution.finish_now(now)

        device.sim.schedule_at(completion, finish)


register_backend(BatchedBackend.name, BatchedBackend)
