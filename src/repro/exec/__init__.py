"""Pluggable µthread execution backends.

The device models in :mod:`repro.ndp` describe *what* the M2NDP hardware
is — units, sub-cores, caches, the DRAM system.  This package decides *how*
a kernel launch is executed against those models.  Two backends implement
the common :class:`~repro.exec.base.ExecutionBackend` interface:

``interpreter``
    The reference path: every instruction of every µthread is functionally
    executed and individually charged to the sub-core issue servers, TLBs,
    caches and DRAM banks.  Cycle-level FGMT behaviour (context occupancy,
    spawn granularity, atomics interleaving) is bit-exact; cost is
    O(µthreads x instructions) Python work per launch.

``batched``
    The trace-once/replay-many fast path for bulk-synchronous launches
    whose µthreads are structurally identical (the common case for the
    paper's kernels: every body µthread runs the same code over a different
    pool slice).  One representative µthread is interpreted to capture the
    dynamic instruction trace; the remaining µthreads are then executed
    *functionally* in one numpy-vectorized sweep (registers become arrays
    over the launch), and *timing* is replayed analytically: the *trace's*
    per-FU instruction counts bound issue throughput, and the launch's
    sector-unique address stream is fed through the existing memory-side
    L2 / banked-DRAM virtual-time models.  Results in memory are identical
    to the interpreter's; launch runtime is a throughput/latency roofline
    rather than an event-by-event schedule (see ``docs`` below).

Backend selection
-----------------

* ``NDPConfig.backend`` (default ``"interpreter"``) picks the device-wide
  default; the ``REPRO_EXEC_BACKEND`` environment variable overrides that
  default, and an explicit ``backend=`` argument to
  :func:`repro.workloads.base.make_platform` or ``M2NDPDevice`` always
  wins (experiments pinned to the interpreter must not be overridden from
  the environment).
* Experiments default to ``batched`` via
  ``repro.experiments.common.EXPERIMENT_BACKEND``; since the SIMT engine
  the microarchitectural studies (Fig 6 context occupancy, Fig 12a spawn
  granularity ablation) run unpinned on it as well.
* Inside the batched backend, launches route per class: bulk
  branch-uniform launches take the launch-uniform trace/replay walk;
  initializer/finalizer phases, atomics (AMO/VAMO), indexed
  gathers/scatters, scratchpad state, µthread-divergent branches and
  sub-threshold launch sizes run on the masked **SIMT engine**
  (:mod:`repro.exec.simt`: active-mask stack with post-dominator
  reconvergence, lane-ordered grouped AMOs, per-unit scratchpad shadows).
  Only translation faults, read-after-write races through memory,
  order-sensitive atomic contention and unsupported instructions still
  fall back to the interpreter — counted in ``exec.batched_fallbacks``
  and attributed in ``exec.fallback_reason.<class>``; engine launches
  land in ``exec.batched_launches`` / ``exec.simt_launches``.
  ``REPRO_SIMT=0`` disables the SIMT tier (pre-SIMT fallback classes).
* Repeated launches of the same shape skip tracing entirely through the
  cross-launch :mod:`~repro.exec.trace_cache` (``exec.trace_cache_hits`` /
  ``exec.trace_cache_misses``; disable with ``REPRO_TRACE_CACHE=0``) —
  including divergent/atomic SIMT traces, which are verified against
  their recorded mask schedule on every replay.
"""

from repro.exec.base import ExecutionBackend, make_backend
from repro.exec.interpreter import InterpreterBackend
from repro.exec.batched import BatchedBackend
from repro.exec.simt import LaunchFallback, SimtPlan
from repro.exec.trace_cache import (
    SimtTraceEntry,
    TraceCache,
    TraceEntry,
    trace_key,
)

__all__ = [
    "ExecutionBackend",
    "InterpreterBackend",
    "BatchedBackend",
    "LaunchFallback",
    "SimtPlan",
    "SimtTraceEntry",
    "TraceCache",
    "TraceEntry",
    "make_backend",
    "trace_key",
]
