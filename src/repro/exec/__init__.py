"""Pluggable µthread execution backends.

The device models in :mod:`repro.ndp` describe *what* the M2NDP hardware
is — units, sub-cores, caches, the DRAM system.  This package decides *how*
a kernel launch is executed against those models.  Two backends implement
the common :class:`~repro.exec.base.ExecutionBackend` interface:

``interpreter``
    The reference path: every instruction of every µthread is functionally
    executed and individually charged to the sub-core issue servers, TLBs,
    caches and DRAM banks.  Cycle-level FGMT behaviour (context occupancy,
    spawn granularity, atomics interleaving) is bit-exact; cost is
    O(µthreads x instructions) Python work per launch.

``batched``
    The trace-once/replay-many fast path for bulk-synchronous launches
    whose µthreads are structurally identical (the common case for the
    paper's kernels: every body µthread runs the same code over a different
    pool slice).  One representative µthread is interpreted to capture the
    dynamic instruction trace; the remaining µthreads are then executed
    *functionally* in one numpy-vectorized sweep (registers become arrays
    over the launch), and *timing* is replayed analytically: the *trace's*
    per-FU instruction counts bound issue throughput, and the launch's
    sector-unique address stream is fed through the existing memory-side
    L2 / banked-DRAM virtual-time models.  Results in memory are identical
    to the interpreter's; launch runtime is a throughput/latency roofline
    rather than an event-by-event schedule (see ``docs`` below).

Backend selection
-----------------

* ``NDPConfig.backend`` (default ``"interpreter"``) picks the device-wide
  default; the ``REPRO_EXEC_BACKEND`` environment variable overrides that
  default, and an explicit ``backend=`` argument to
  :func:`repro.workloads.base.make_platform` or ``M2NDPDevice`` always
  wins (experiments pinned to the interpreter must not be overridden from
  the environment).
* Experiments default to ``batched`` via
  ``repro.experiments.common.EXPERIMENT_BACKEND`` — except the
  microarchitectural studies (Fig 6 context occupancy, Fig 12a spawn
  granularity ablation) which need the bit-exact interpreter.
* The batched backend *automatically falls back* to the interpreter, per
  launch, whenever a kernel is not trace-replayable: initializer/finalizer
  sections or multiple bodies, any atomic (AMO/VAMO — histogram and graph
  reductions land here), indexed gathers/scatters, scratchpad stores,
  µthread-divergent branches, read-after-write hazards through memory, or
  launches too small to amortize tracing.  Fallbacks are counted in the
  ``exec.batched_fallbacks`` stat; fast-path launches in
  ``exec.batched_launches``.
* Repeated launches of the same shape skip tracing entirely through the
  cross-launch :mod:`~repro.exec.trace_cache` (``exec.trace_cache_hits`` /
  ``exec.trace_cache_misses``; disable with ``REPRO_TRACE_CACHE=0``).
"""

from repro.exec.base import ExecutionBackend, make_backend
from repro.exec.interpreter import InterpreterBackend
from repro.exec.batched import BatchedBackend
from repro.exec.trace_cache import TraceCache, TraceEntry, trace_key

__all__ = [
    "ExecutionBackend",
    "InterpreterBackend",
    "BatchedBackend",
    "TraceCache",
    "TraceEntry",
    "make_backend",
    "trace_key",
]
