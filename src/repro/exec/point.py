"""Point-launch engine: taint-traced walk + verified symbolic replay.

Tiny launches (n <= the device's lane width, one µthread per unit) are
the M2NDP serving case the paper optimizes for — millions of KVS GETs,
each a single bucket-chain walk — and exactly where the bulk engines
fall off a cliff: per-launch numpy setup (mask stacks, shadow arrays,
fresh register files) costs orders of magnitude more than the handful of
instructions the kernel runs.  This module executes such launches as a
plain synchronous per-lane walk (reusing the scalar
:func:`repro.isa.executor.execute`, committing memory immediately like
the interpreter) while *taint-tracing* every value it computes:

* plain ``int``  — a value reproducible from the kernel code alone;
* ``('lin', const, bases)`` — an affine expression over the launch bases
  ``x1`` (mapped address), ``x2`` (offset), ``x3`` (argument block) and
  earlier load results ``('ld', k)``;
* ``('mix', ks)`` — reproducible given the exact bytes of loads ``ks``
  (promoted to *verified* loads when consumed);
* ``None`` — unreproducible; the lane's trace is abandoned (the walk
  still runs to completion, it just isn't cached).

The recorded path — memory events with symbolic address/value specs,
plus **relational branch guards** ``('br', mnem, a, b, taken)`` — is
merged into a per-structural-key **decision trie** in the cross-launch
trace cache (see :func:`repro.exec.trace_cache.point_key` and
:class:`~repro.exec.trace_cache.PointTrieNode`): paths sharing a prefix
of guard outcomes share trie nodes, so a replay resolves each shared
step exactly once and each guard's *live* outcome selects the subtree —
one linear pass per lane, no per-path retry loop.  Replay runs in two
phases: phase A resolves every spec against the **live** launch (its
``x1``/``x2``/``x3``, its argument block, current memory contents
through an overlay store buffer), follows guards on live values, and
compares verified-load bytes; phase B commits the stores and AMOs and
charges timing.  Reaching a guard outcome with no recorded subtree
means the live launch takes a path never walked before — the replay
aborts cleanly and a fresh walk records it into the trie; a
verified-byte mismatch means the recorded data went stale — the family
is invalidated and retraced
(:class:`~repro.exec.trace_cache.StaleTrace`).  Either way results are
byte-identical to the interpreter by construction.

Because guards are relational (``bne x10, x5`` replays as "are the live
node-key bytes equal to the live argument-key bytes?"), one cached GET
path serves *every* key whose walk matches/mismatches at the same chain
positions — the value-generalized hit the serving tier depends on.

Timing: the walk accumulates instruction cycles between memory events
and charges each event through the unit's live ``timed_accesses`` —
matching the interpreter's event-driven schedule exactly for solo lanes
(per-instruction issue servers never stall a single thread) — and
records each event's observed latency into the path entry.  Replays
apply the recorded deltas instead of re-walking the L1/L2/DRAM servers
(the dominant per-hit cost), re-charging live and re-recording every
``_REFRESH_PERIOD``-th replay so hit latencies track the warm memory
system; traffic counters (``ndp.global_traffic_bytes`` etc.) are
tallied exactly on every replay.  Cross-launch issue pressure is still
applied as one bulk ``service_batch`` charge per lane.

``REPRO_POINT=0`` disables this engine (small launches go back to the
masked SIMT path); ``REPRO_TRACE_CACHE_GENERALIZE=0`` keeps the engine
but pins exact-value cache keys.
"""

from __future__ import annotations

import struct

from repro.isa.executor import (
    _BRANCHES,
    _BRANCHES_Z,
    _V_FP_COMPARES,
    _V_FP_SCALAR,
    _V_INT_COMPARES,
    _V_INT_SCALAR,
    FP_LOADS,
    LOAD_SIGNED,
    MemAccess,
    execute,
)
from repro.isa.encoding import OpClass
from repro.isa.registers import (
    UThreadRegisters,
    to_signed32,
    to_signed64,
    to_unsigned64,
)
from repro.errors import TranslationFault
from repro.mem.scratchpad import _apply_amo
from repro.ndp.generator import SPAWN_LATENCY_NS
from repro.exec.trace_cache import PointPathEntry, StaleTrace, point_key
from repro.obs import tracer as obs_tracer

_MASK64 = (1 << 64) - 1
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")

#: Sentinels for reproducible-constant float / vector taints.
_FCONST = "fc"
_VCONST = "vc"

_AMO_SIGNED = True  # int AMO olds are packed signed (device._AMO_INT)

#: Every Nth successful replay of a path re-charges its memory events
#: through the live L1/L2/DRAM servers and re-records the per-step
#: latencies; the replays in between apply the recorded deltas, so hit
#: timing tracks the warm memory system at 1/N of its cost.
_REFRESH_PERIOD = 32


class _PathMismatch(Exception):
    """The live launch takes a different branch path than the recording."""


# ---------------------------------------------------------------------------
# affine expression algebra
# ---------------------------------------------------------------------------
#
# ('lin', const, bases) with bases a tuple of (token, coef); tokens are
# 'x1' / 'x2' / 'x3' (live launch registers) or ('ld', k) (load event k,
# resolved from its replayed bytes).  A plain int is the degenerate lin.


def _is_lin(t) -> bool:
    return isinstance(t, int) or (isinstance(t, tuple) and t[0] == "lin")


def _lin_parts(t):
    if isinstance(t, int):
        return t, {}
    return t[1], dict(t[2])


def _mk_lin(const: int, bases: dict):
    bases = {tok: c for tok, c in bases.items() if c}
    if not bases:
        return const
    return ("lin", const, tuple(sorted(bases.items(), key=repr)))


def _lin_add(a, b, sign: int = 1):
    ca, ba = _lin_parts(a)
    cb, bb = _lin_parts(b)
    for tok, coef in bb.items():
        ba[tok] = ba.get(tok, 0) + sign * coef
    return _mk_lin(ca + sign * cb, ba)


def _lin_scale(a, factor: int):
    const, bases = _lin_parts(a)
    return _mk_lin(const * factor,
                   {tok: c * factor for tok, c in bases.items()})


def _lin_ld_only(t):
    """The load set of a lin over load bases only; None if x-based."""
    if isinstance(t, int):
        return frozenset()
    for tok, _ in t[2]:
        if not isinstance(tok, tuple):
            return None
    return frozenset(tok[1] for tok, _ in t[2])


# ---------------------------------------------------------------------------
# recording memory proxy
# ---------------------------------------------------------------------------


class _RecordingMemory:
    """Applies accesses to the live unit memory while capturing bytes."""

    __slots__ = ("real", "events")

    def __init__(self, real) -> None:
        self.real = real
        self.events: list[tuple] = []

    def load(self, vaddr: int, size: int) -> bytes:
        raw = self.real.load(vaddr, size)
        self.events.append(("ld", vaddr, size, raw))
        return raw

    def store(self, vaddr: int, data) -> None:
        self.real.store(vaddr, data)
        self.events.append(("st", vaddr, len(data), bytes(data)))

    def amo(self, op: str, vaddr: int, operand, size: int, is_float: bool):
        old = self.real.amo(op, vaddr, operand, size, is_float)
        self.events.append(("amo", vaddr, size, old, op, operand, is_float))
        return old


class _Overlay:
    """Phase-A store buffer: reads see live memory + buffered writes.

    ``cache`` memoizes raw memory reads across the *failed* path
    attempts of one lane (phase A never mutates memory, so a re-read of
    the same location by the next candidate path is identical) — it must
    not outlive the lane's commit.
    """

    __slots__ = ("mem", "cache", "writes")

    def __init__(self, mem, cache: dict) -> None:
        self.mem = mem
        self.cache = cache
        self.writes: list[tuple[int, bytes]] = []

    def read(self, vaddr: int, size: int) -> bytes:
        raw = self.cache.get((vaddr, size))
        if raw is None:
            raw = self.mem.load(vaddr, size)
            self.cache[(vaddr, size)] = raw
        merged = None
        for base, data in self.writes:
            lo = max(base, vaddr)
            hi = min(base + len(data), vaddr + size)
            if lo < hi:
                if merged is None:
                    merged = bytearray(raw)
                merged[lo - vaddr:hi - vaddr] = data[lo - base:hi - base]
        return bytes(merged) if merged is not None else raw

    def write(self, vaddr: int, data: bytes) -> None:
        self.writes.append((vaddr, data))


# ---------------------------------------------------------------------------
# taint tracking
# ---------------------------------------------------------------------------


class _Taint:
    """Per-lane symbolic state mirroring the architectural registers."""

    __slots__ = ("x", "f", "v", "loads", "steps", "cycles", "ok")

    def __init__(self) -> None:
        self.x = [0] * 32
        self.x[1] = _mk_lin(0, {"x1": 1})
        self.x[2] = _mk_lin(0, {"x2": 1})
        self.x[3] = _mk_lin(0, {"x3": 1})
        self.f = [_FCONST] * 32
        self.v = [_VCONST] * 32
        #: per load event: [size, signed, bytes, verify]
        self.loads: list[list] = []
        self.steps: list[tuple] = []
        self.cycles = 0
        self.ok = True

    # -- taint source readers (promote-on-consume helpers) --------------

    def _x_mix(self, idx: int):
        """Load set making x[idx] reproducible; None if impossible."""
        t = self.x[idx]
        if t is None:
            return None
        if _is_lin(t):
            return _lin_ld_only(t)
        return t[1]                      # ('mix', ks)

    def _f_mix(self, idx: int):
        t = self.f[idx]
        if t is _FCONST:
            return frozenset()
        return t                         # frozenset | None

    def _v_mix(self, idx: int):
        t = self.v[idx]
        if t is _VCONST:
            return frozenset()
        if isinstance(t, tuple):         # ('vld', k)
            return frozenset((t[1],))
        return t                         # frozenset | None

    def promote(self, ks) -> None:
        for k in ks:
            self.loads[k][3] = True

    # -- consumption specs ----------------------------------------------

    def value_spec(self, taint, raw: bytes):
        """Spec reproducing a store's bytes, or None if impossible."""
        if taint is None:
            return None
        if isinstance(taint, int) or taint is _FCONST or taint is _VCONST:
            return ("lit", raw)
        if _is_lin(taint):
            ks = _lin_ld_only(taint)
            if ks is None:
                return ("expr", taint, len(raw))
            # ld-only lin still resolves live — keeps generalization
            return ("expr", taint, len(raw))
        ks = taint[1] if not isinstance(taint, frozenset) else taint
        if ks is None:
            return None
        self.promote(ks)
        return ("lit", raw)

    def addr_spec(self, taint, live_addr: int):
        if taint is None:
            return None
        if isinstance(taint, int):
            return live_addr
        if _is_lin(taint):
            return taint
        ks = taint[1] if isinstance(taint, tuple) else taint
        if ks is None:
            return None
        self.promote(ks)
        return live_addr

    def guard_spec(self, idx: int, live_value: int):
        """Operand spec for a branch guard, or _FAIL sentinel (None)."""
        t = self.x[idx]
        if t is None:
            return None
        if isinstance(t, int):
            return ("lit", live_value)
        if _is_lin(t):
            return ("expr", t)
        ks = t[1]
        self.promote(ks)
        return ("lit", live_value)


def _mix_result(sets):
    """Union load sets; None if any input is unreproducible."""
    out = set()
    for s in sets:
        if s is None:
            return None
        out |= s
    return frozenset(out)


# ---------------------------------------------------------------------------
# the per-lane walk (miss path)
# ---------------------------------------------------------------------------


class _LaneWalk:
    """Execute one lane synchronously, recording a cacheable path."""

    def __init__(self, device, unit, execution, mapped: int, offset: int,
                 cache_enabled: bool) -> None:
        instance = execution.instance
        self.device = device
        self.unit = unit
        self.asid = instance.asid
        self.period = device.config.ndp.clock.period_ns
        self.program = instance.kernel.program.bodies[0]
        self.regs = UThreadRegisters()
        self.regs.write_x(1, mapped)
        self.regs.write_x(2, offset)
        self.regs.write_x(3, execution.args_vaddr)
        self.mem = _RecordingMemory(unit.memory_for(instance.asid))
        self.taint = _Taint() if cache_enabled else None
        self.trace_len = 0
        self.fu_counts: dict = {}
        self.lat: list[float] = []

    def run(self, t0: float) -> tuple[float, "PointPathEntry | None"]:
        """Walk the body; returns (completion_ns, cacheable entry)."""
        instructions = self.program.instructions
        count = len(instructions)
        regs, mem, taint = self.regs, self.mem, self.taint
        period = self.period
        t = t0
        cyc = 0
        pc = 0
        while pc < count:
            inst = instructions[pc]
            cyc += inst.latency_cycles
            self.trace_len += 1
            self.fu_counts[inst.unit] = self.fu_counts.get(inst.unit, 0) + 1
            mem.events.clear()
            result = execute(inst, regs, mem)
            if taint is not None and taint.ok:
                if not self._record(inst, result, cyc):
                    taint.ok = False
            if result.accesses:
                t += cyc * period
                cyc = 0
                issue = t
                t = self.unit.timed_accesses(result.accesses, t, self.asid)
                if taint is not None and taint.ok:
                    self.lat.append(t - issue)
            if result.done:
                break
            pc = result.jump_to if result.jump_to is not None else pc + 1
        t += cyc * period
        entry = None
        if taint is not None and taint.ok:
            steps = self._freeze_steps()
            mem_steps = sum(1 for s in steps if s[0] == "mem")
            if mem_steps == len(self.lat):
                entry = PointPathEntry(
                    translation_version=self.device.translation_version,
                    steps=steps,
                    tail_cycles=cyc,
                    trace_len=self.trace_len,
                    fu_counts=self.fu_counts,
                    exemplar=(0, 0, b""),    # filled by the caller
                    lat=self.lat,
                    lat_sum=sum(self.lat),
                )
        return t, entry

    # -- recording ------------------------------------------------------

    def _freeze_steps(self) -> list:
        """Attach verify bytes to load records once promotion settled."""
        taint = self.taint
        frozen = []
        for step in taint.steps:
            if step[0] != "mem":
                frozen.append(step)
                continue
            accesses = []
            for access in step[2]:
                if access[0] == "ld":
                    _, addr, size, k, signed = access
                    info = taint.loads[k]
                    verify = info[2] if info[3] else None
                    accesses.append(("ld", addr, size, k, signed, verify))
                elif access[0] == "amo":
                    _, addr, size, k, op, is_float, op_spec = access
                    info = taint.loads[k]
                    verify = info[2] if info[3] else None
                    accesses.append(("amo", addr, size, k, op, is_float,
                                     op_spec, verify))
                else:
                    accesses.append(access)
            frozen.append(("mem", step[1], tuple(accesses)))
        return frozen

    def _record(self, inst, result, pre_cycles: int) -> bool:
        """Update taint for one executed instruction; False = uncacheable."""
        op = inst.op_class
        handler = _RECORDERS.get(op)
        if handler is None:
            return False
        return handler(self, inst, result, pre_cycles)


# -- per-opclass taint recorders (module functions for dispatch speed) ---


def _set_x(taint, rd, value):
    if rd:
        taint.x[rd] = value


def _rec_alu(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    regs = walk.regs
    m = inst.mnemonic
    x = taint.x
    if m == "add" or m == "sub":
        a, b = x[inst.rs1], x[inst.rs2]
        if _is_lin(a) and _is_lin(b):
            _set_x(taint, inst.rd, _lin_add(a, b, -1 if m == "sub" else 1))
            return True
        return _rec_nl_x(taint, regs, inst.rd,
                         (taint._x_mix(inst.rs1), taint._x_mix(inst.rs2)))
    if m == "addi":
        a = x[inst.rs1]
        if _is_lin(a):
            _set_x(taint, inst.rd, _lin_add(a, inst.imm))
            return True
        return _rec_nl_x(taint, regs, inst.rd, (taint._x_mix(inst.rs1),))
    if m == "slli":
        a = x[inst.rs1]
        if _is_lin(a):
            _set_x(taint, inst.rd, _lin_scale(a, 1 << (inst.imm & 63)))
            return True
        return _rec_nl_x(taint, regs, inst.rd, (taint._x_mix(inst.rs1),))
    if m == "mv":
        _set_x(taint, inst.rd, x[inst.rs1])
        return True
    if m == "neg":
        a = x[inst.rs1]
        if _is_lin(a):
            _set_x(taint, inst.rd, _lin_scale(a, -1))
            return True
        return _rec_nl_x(taint, regs, inst.rd, (taint._x_mix(inst.rs1),))
    if m in ("li", "lui"):
        _set_x(taint, inst.rd, int(regs.x[inst.rd]))
        return True
    # remaining scalar ALU forms: classify sources by bank
    x_dest = True
    srcs = []
    if m in ("and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
             "mul", "mulhu", "div", "divu", "rem", "remu", "addw", "mulw"):
        srcs = [taint._x_mix(inst.rs1), taint._x_mix(inst.rs2)]
    elif m in ("andi", "ori", "xori", "srli", "srai", "slti", "sltiu",
               "seqz", "snez"):
        srcs = [taint._x_mix(inst.rs1)]
    elif m in ("flt.d", "fle.d", "feq.d"):
        srcs = [taint._f_mix(inst.rs1), taint._f_mix(inst.rs2)]
    elif m in ("fmv.x.d", "fcvt.l.d"):
        srcs = [taint._f_mix(inst.rs1)]
    elif m in ("fmv.d.x", "fcvt.d.l", "fcvt.s.l"):
        x_dest = False
        srcs = [taint._x_mix(inst.rs1)]
    elif m in ("fmv.d", "fsqrt.d"):
        x_dest = False
        srcs = [taint._f_mix(inst.rs1)]
    elif m == "fmadd.d":
        x_dest = False
        srcs = [taint._f_mix(inst.rs1), taint._f_mix(inst.rs2),
                taint._f_mix(inst.rs3)]
    else:
        # FP binops (fadd.d etc.) write f[rd] from f sources
        x_dest = False
        srcs = [taint._f_mix(inst.rs1), taint._f_mix(inst.rs2)]
    if x_dest:
        return _rec_nl_x(taint, regs, inst.rd, srcs)
    ks = _mix_result(srcs)
    taint.f[inst.rd] = _FCONST if ks == frozenset() else ks
    return True


def _rec_nl_x(taint, regs, rd, srcs) -> bool:
    ks = _mix_result(srcs)
    if ks is None:
        _set_x(taint, rd, None)
        return True                      # lane stays cacheable; value dead-ends
    if ks:
        _set_x(taint, rd, ("mix", ks))
    else:
        _set_x(taint, rd, int(regs.x[rd]))
    return True


def _rec_branch(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    regs = walk.regs
    m = inst.mnemonic
    if m == "j":
        return True
    taken = result.jump_to is not None
    if m in _BRANCHES:
        ta, tb = taint.x[inst.rs1], taint.x[inst.rs2]
        if isinstance(ta, int) and isinstance(tb, int):
            return True                  # outcome is code-determined
        a = taint.guard_spec(inst.rs1, int(regs.x[inst.rs1]))
        b = taint.guard_spec(inst.rs2, int(regs.x[inst.rs2]))
        if a is None or b is None:
            return False
        # fully-promoted operands need no guard: verified loads pin them
        if a[0] == "lit" and b[0] == "lit":
            return True
        taint.steps.append(("br", m, a, b, taken))
        return True
    if isinstance(taint.x[inst.rs1], int):
        return True
    a = taint.guard_spec(inst.rs1, int(regs.x[inst.rs1]))
    if a is None:
        return False
    if a[0] == "lit":
        return True
    taint.steps.append(("br", m, a, None, taken))
    return True


def _rec_load(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    event = walk.mem.events[0]
    _, vaddr, size, raw = event
    addr = taint.addr_spec(_lin_add(taint.x[inst.rs1], inst.imm)
                           if _is_lin(taint.x[inst.rs1])
                           else taint.x[inst.rs1], vaddr)
    if addr is None:
        return False
    m = inst.mnemonic
    k = len(taint.loads)
    signed = m in LOAD_SIGNED
    taint.loads.append([size, signed, raw, False])
    if m in FP_LOADS:
        taint.f[inst.rd] = frozenset((k,))
    else:
        _set_x(taint, inst.rd, _mk_lin(0, {("ld", k): 1}))
    taint.steps.append(("mem", pre, (("ld", addr, size, k, signed),)))
    return True


def _rec_store(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    _, vaddr, size, raw = walk.mem.events[0]
    addr = taint.addr_spec(_lin_add(taint.x[inst.rs1], inst.imm)
                           if _is_lin(taint.x[inst.rs1])
                           else taint.x[inst.rs1], vaddr)
    if addr is None:
        return False
    m = inst.mnemonic
    src_taint = (taint.f[inst.rs2] if m in ("fsw", "fsd")
                 else taint.x[inst.rs2])
    value = taint.value_spec(src_taint, raw)
    if value is None:
        return False
    taint.steps.append(("mem", pre, (("st", addr, size, value),)))
    return True


def _rec_amo(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    _, vaddr, size, old, op, operand, is_float = walk.mem.events[0]
    addr = taint.addr_spec(_lin_add(taint.x[inst.rs1], inst.imm)
                           if _is_lin(taint.x[inst.rs1])
                           else taint.x[inst.rs1], vaddr)
    if addr is None:
        return False
    if is_float:
        ot = taint.f[inst.rs2]
        if ot is _FCONST:
            op_spec = ("lit", operand)
        elif ot is None:
            return False
        else:
            taint.promote(ot)
            op_spec = ("lit", operand)
    else:
        ot = taint.x[inst.rs2]
        if isinstance(ot, int):
            op_spec = ("lit", operand)
        elif ot is None:
            return False
        elif _is_lin(ot):
            op_spec = ("expr", ot)
        else:
            taint.promote(ot[1])
            op_spec = ("lit", operand)
    k = len(taint.loads)
    taint.loads.append([size, _AMO_SIGNED, _pack_amo_old(old, size, is_float),
                        False])
    if is_float:
        taint.f[inst.rd] = frozenset((k,))
    else:
        _set_x(taint, inst.rd, _mk_lin(0, {("ld", k): 1}))
    taint.steps.append(
        ("mem", pre, (("amo", addr, size, k, op, is_float, op_spec),)))
    return True


def _pack_amo_old(old, size: int, is_float: bool) -> bytes:
    """Recorded AMO old value as raw memory bytes (for verified replay)."""
    if is_float:
        return _F32.pack(old) if size == 4 else _F64.pack(old)
    return (old & ((1 << (8 * size)) - 1)).to_bytes(size, "little")


def _rec_vset(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    t = taint.x[inst.rs1]
    if not isinstance(t, int):
        ks = taint._x_mix(inst.rs1)
        if ks is None:
            return False
        taint.promote(ks)
    _set_x(taint, inst.rd, int(walk.regs.x[inst.rd]))
    return True


def _rec_vload(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    if not walk.mem.events:              # vl == 0
        taint.v[inst.rd] = _VCONST
        return True
    _, vaddr, size, raw = walk.mem.events[0]
    addr = taint.addr_spec(_lin_add(taint.x[inst.rs1], inst.imm)
                           if _is_lin(taint.x[inst.rs1])
                           else taint.x[inst.rs1], vaddr)
    if addr is None:
        return False
    k = len(taint.loads)
    taint.loads.append([size, False, raw, False])
    taint.v[inst.rd] = ("vld", k)
    taint.steps.append(("mem", pre, (("ld", addr, size, k, False),)))
    return True


def _rec_vstore(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    if not walk.mem.events:
        return True
    _, vaddr, size, raw = walk.mem.events[0]
    addr = taint.addr_spec(_lin_add(taint.x[inst.rs1], inst.imm)
                           if _is_lin(taint.x[inst.rs1])
                           else taint.x[inst.rs1], vaddr)
    if addr is None:
        return False
    vt = taint.v[inst.rd]
    if isinstance(vt, tuple) and vt[0] == "vld":
        k = vt[1]
        if taint.loads[k][0] == size and not taint.loads[k][3]:
            # byte passthrough: store the load's live bytes untouched
            taint.steps.append(("mem", pre, (("st", addr, size,
                                              ("pass", k)),)))
            return True
    value = taint.value_spec(vt, raw)
    if value is None:
        return False
    taint.steps.append(("mem", pre, (("st", addr, size, value),)))
    return True


def _rec_indexed(walk: _LaneWalk, inst, result, pre) -> bool:
    """vgather / vscatter / vamo: per-element events off one base."""
    taint = walk.taint
    if inst.rd in (inst.rs1, inst.rs2) and inst.op_class is OpClass.VGATHER:
        return False                     # base/offsets clobbered mid-decode
    base_t = taint.x[inst.rs1]
    if base_t is None:
        return False
    offs = taint._v_mix(inst.rs2)
    if offs is None:
        return False
    taint.promote(offs)
    live_base = to_unsigned64(walk.regs.x[inst.rs1])
    if not _is_lin(base_t):
        taint.promote(base_t[1])
        base_t = live_base
    accesses = []
    ks = set()
    if inst.op_class is OpClass.VGATHER:
        for _, vaddr, size, raw in walk.mem.events:
            addr = _lin_add(base_t, (vaddr - live_base) & _MASK64)
            k = len(taint.loads)
            taint.loads.append([size, False, raw, False])
            ks.add(k)
            accesses.append(("ld", addr, size, k, False))
        taint.v[inst.rd] = frozenset(ks)
    elif inst.op_class is OpClass.VSCATTER:
        vt = taint._v_mix(inst.rd)
        if vt is None:
            return False
        taint.promote(vt)
        for _, vaddr, size, raw in walk.mem.events:
            addr = _lin_add(base_t, (vaddr - live_base) & _MASK64)
            accesses.append(("st", addr, size, ("lit", raw)))
    else:                                # VAMO
        vt = taint._v_mix(inst.rd)
        if vt is None:
            return False
        taint.promote(vt)
        for _, vaddr, size, old, op, operand, is_float in walk.mem.events:
            addr = _lin_add(base_t, (vaddr - live_base) & _MASK64)
            k = len(taint.loads)
            taint.loads.append([size, _AMO_SIGNED,
                                _pack_amo_old(old, size, is_float), False])
            accesses.append(("amo", addr, size, k, op, is_float,
                             ("lit", operand)))
    if accesses:
        taint.steps.append(("mem", pre, tuple(accesses)))
    return True


def _rec_valu(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    m = inst.mnemonic
    if m in ("vmv.v.i", "vid.v"):
        taint.v[inst.rd] = _VCONST
        return True
    srcs = []
    if m in ("vmv.v.x", "vmv.s.x"):
        srcs.append(taint._x_mix(inst.rs1))
    elif m == "vfmv.v.f":
        srcs.append(taint._f_mix(inst.rs1))
    else:
        srcs.append(taint._v_mix(inst.rs1))
    if m in _V_INT_SCALAR or m in _V_INT_COMPARES or m == "vmerge.vxm":
        srcs.append(taint._x_mix(inst.rs2))
    elif m in _V_FP_SCALAR or m in _V_FP_COMPARES or m == "vfmacc.vf":
        srcs.append(taint._f_mix(inst.rs2))
    elif m.endswith(".vv") or m.endswith(".mm"):
        srcs.append(taint._v_mix(inst.rs2))
    if m in ("vmacc.vv", "vfmacc.vf", "vfmacc.vv", "vmv.s.x"):
        srcs.append(taint._v_mix(inst.rd))
    if m in ("vmerge.vxm", "vmerge.vim"):
        srcs.append(taint._v_mix(0))
    ks = _mix_result(srcs)
    if m == "vmv.x.s":
        if ks is None:
            _set_x(taint, inst.rd, None)
        elif ks:
            _set_x(taint, inst.rd, ("mix", ks))
        else:
            _set_x(taint, inst.rd, int(walk.regs.x[inst.rd]))
        return True
    if m == "vfmv.f.s":
        taint.f[inst.rd] = _FCONST if ks == frozenset() else ks
        return True
    taint.v[inst.rd] = _VCONST if ks == frozenset() else ks
    return True


def _rec_vred(walk: _LaneWalk, inst, result, pre) -> bool:
    taint = walk.taint
    ks = _mix_result((taint._v_mix(inst.rs1), taint._v_mix(inst.rs2)))
    taint.v[inst.rd] = _VCONST if ks == frozenset() else ks
    return True


def _rec_nop(walk, inst, result, pre) -> bool:
    return True


_RECORDERS = {
    OpClass.ALU: _rec_alu,
    OpClass.BRANCH: _rec_branch,
    OpClass.LOAD: _rec_load,
    OpClass.STORE: _rec_store,
    OpClass.AMO: _rec_amo,
    OpClass.VSET: _rec_vset,
    OpClass.VLOAD: _rec_vload,
    OpClass.VSTORE: _rec_vstore,
    OpClass.VGATHER: _rec_indexed,
    OpClass.VSCATTER: _rec_indexed,
    OpClass.VAMO: _rec_indexed,
    OpClass.VALU_OP: _rec_valu,
    OpClass.VRED: _rec_vred,
    OpClass.FENCE: _rec_nop,
    OpClass.RET: _rec_nop,
}


# ---------------------------------------------------------------------------
# verified replay (hit path)
# ---------------------------------------------------------------------------


def _replay_lane(unit, family, live, t0: float, asid: int, period: float,
                 read_cache: dict) -> tuple[float, PointPathEntry]:
    """Replay one lane against a family's path trie in a single pass.

    ``live`` maps base token -> live value ('x1', 'x2', 'x3').  The trie
    walk resolves each shared step exactly once: a guard's live outcome
    selects the child subtree, so candidate paths are never retried
    individually.  Raises :class:`_PathMismatch` when an outcome has no
    recorded subtree (a control path never walked before) and
    :class:`StaleTrace` when verified bytes changed (invalidate the
    family + retrace).  On success the stores/AMOs are committed, timing
    is charged, and (completion_ns, matched path entry) returned.
    """
    memory = unit.memory_for(asid)
    overlay = _Overlay(memory, read_cache)
    loads: dict[int, tuple[bytes, bool]] = {}
    lvals: dict[int, int] = {}           # memoized load-value integers
    # a refresh replay rebuilds MemAccess events and charges them live,
    # re-recording the matched path's latency profile; the replays in
    # between apply the recorded deltas and only tally traffic counters
    refresh = family.replays % _REFRESH_PERIOD == 0
    spad_lo, spad_hi = unit._spad_base, unit._spad_end
    spad_bytes = glob_bytes = glob_count = 0

    def resolve(spec) -> int:
        if isinstance(spec, int):
            return spec
        total = spec[1]
        for tok, coef in spec[2]:
            if isinstance(tok, tuple):
                k = tok[1]
                value = lvals.get(k)
                if value is None:
                    raw, signed = loads[k]
                    value = lvals[k] = int.from_bytes(raw, "little",
                                                      signed=signed)
                total += coef * value
            else:
                total += coef * live[tok]
        return total

    # -- phase A: resolve, guard, verify (zero mutation, zero charges) --
    timeline: list[tuple[int, tuple]] = []
    pre_total = 0
    commits: list[tuple] = []
    node = family.root
    try:
        while True:
            for step in node.mems:
                _, pre, accesses = step
                events = [] if refresh else None
                for access in accesses:
                    akind = access[0]
                    addr = to_unsigned64(resolve(access[1]))
                    size = access[2]
                    if spad_lo <= addr < spad_hi:
                        spad_bytes += size
                    else:
                        glob_bytes += size
                        glob_count += 1
                    if akind == "ld":
                        raw = overlay.read(addr, size)
                        if access[5] is not None and raw != access[5]:
                            raise StaleTrace("point path data went stale")
                        loads[access[3]] = (raw, access[4])
                        if refresh:
                            events.append(MemAccess(addr, size,
                                                    is_write=False))
                    elif akind == "st":
                        spec = access[3]
                        if spec[0] == "lit":
                            raw = spec[1]
                        elif spec[0] == "pass":
                            raw = loads[spec[1]][0]
                        else:
                            value = to_signed64(resolve(spec[1]))
                            raw = ((value & ((1 << (8 * spec[2])) - 1))
                                   .to_bytes(spec[2], "little"))
                        overlay.write(addr, raw)
                        commits.append(("st", addr, raw))
                        if refresh:
                            events.append(MemAccess(addr, size,
                                                    is_write=True))
                    else:                # amo
                        _, _, _, k, op, is_float, op_spec, verify = access
                        old_raw = overlay.read(addr, size)
                        if verify is not None and old_raw != verify:
                            raise StaleTrace("point path AMO old went stale")
                        loads[k] = (old_raw, _AMO_SIGNED)
                        if op_spec[0] == "lit":
                            operand = op_spec[1]
                        else:
                            operand = to_signed64(resolve(op_spec[1]))
                            if size == 4:
                                operand = to_signed32(operand)
                        commits.append(("amo", addr, size, op, operand,
                                        is_float))
                        # keep the overlay coherent for later reads
                        if is_float:
                            packer = _F32 if size == 4 else _F64
                            old = packer.unpack(old_raw)[0]
                            new = _apply_amo(op, old, operand)
                            overlay.write(addr, packer.pack(new))
                        else:
                            old = int.from_bytes(old_raw, "little",
                                                 signed=True)
                            new = _apply_amo(op, old, operand)
                            bits = new & ((1 << (8 * size)) - 1)
                            overlay.write(addr,
                                          bits.to_bytes(size, "little"))
                        if refresh:
                            events.append(MemAccess(addr, size,
                                                    is_write=True,
                                                    is_amo=True))
                if refresh:
                    timeline.append((pre, tuple(events)))
                else:
                    pre_total += pre
            guard = node.guard
            if guard is not None:
                m, a, b = guard
                av = (a[1] if a[0] == "lit"
                      else to_signed64(resolve(a[1])))
                if b is None:
                    outcome = _BRANCHES_Z[m](av)
                else:
                    bv = (b[1] if b[0] == "lit"
                          else to_signed64(resolve(b[1])))
                    outcome = _BRANCHES[m](av, bv)
                child = node.children.get(outcome)
                if child is None:
                    raise _PathMismatch  # unrecorded control path
                node = child
            else:
                entry = node.entry
                if entry is None:
                    raise _PathMismatch  # empty family
                break
    except TranslationFault:
        raise _PathMismatch from None

    # -- phase B: commit + timing (resolve order == commit order) -------
    for commit in commits:
        if commit[0] == "st":
            memory.store(commit[1], commit[2])
        else:
            memory.amo(commit[3], commit[1], commit[4], commit[2], commit[5])
    family.replays += 1
    entry.replays += 1
    if refresh:
        t = t0
        new_lat = []
        for pre, events in timeline:
            t += pre * period
            issue = t
            t = unit.timed_accesses(events, t, asid)
            new_lat.append(t - issue)
        entry.lat = new_lat
        entry.lat_sum = sum(new_lat)
    else:
        stats = unit.stats
        if spad_bytes:
            stats.add("ndp.spad_traffic_bytes", spad_bytes)
        if glob_count:
            stats.add("ndp.global_traffic_bytes", glob_bytes)
            stats.add("ndp.global_accesses", glob_count)
        t = t0 + pre_total * period + entry.lat_sum
    return t + entry.tail_cycles * period, entry


# ---------------------------------------------------------------------------
# launch orchestration
# ---------------------------------------------------------------------------


def attempt_point(backend, execution, now_ns: float) -> None:
    """Run a point launch through walk/replay; always succeeds.

    The caller has already checked eligibility (single body, no phases,
    n <= number of units).  Commits are immediate and interpreter-
    equivalent, so there is no fallback: translation faults propagate
    exactly as the interpreter's would.
    """
    device = backend.device
    cache = backend.trace_cache
    stats = device.stats
    instance = execution.instance
    cfg = device.config.ndp
    period = cfg.clock.period_ns
    num_units = execution.num_units
    exec_units = device.units[execution.unit_base:
                              execution.unit_base + num_units]
    asid = instance.asid
    stride = instance.uthread_stride
    n = instance.num_body_uthreads
    tv = device.translation_version

    key = point_key(execution, cache.generalize) if cache.enabled else None
    family = cache.lookup_point(key, tv) if cache.enabled else None
    identity = (instance.pool_base, instance.offset_bias, instance.args)

    t0 = max(now_ns, device.sim.now) + SPAWN_LATENCY_NS
    lane_done: list[float] = []
    total_inst = 0
    hits = misses = gen_hits = 0

    for lane in range(n):
        unit = exec_units[lane % num_units]
        live = {
            "x1": instance.pool_base + lane * stride,
            "x2": instance.offset_bias + lane * stride,
            "x3": execution.args_vaddr,
        }
        done_t = None
        lane_len = 0
        lane_fu: dict = {}
        if family is not None:
            try:
                done_t, entry = _replay_lane(unit, family, live, t0, asid,
                                             period, {})
            except _PathMismatch:
                pass
            except StaleTrace:
                cache.invalidate_point(key)
                family = None
            else:
                hits += 1
                if identity != entry.exemplar:
                    gen_hits += 1
                lane_len, lane_fu = entry.trace_len, entry.fu_counts
        if done_t is None:
            walk = _LaneWalk(device, unit, execution,
                             mapped=live["x1"], offset=live["x2"],
                             cache_enabled=cache.enabled)
            done_t, entry = walk.run(t0)
            lane_len, lane_fu = walk.trace_len, walk.fu_counts
            if cache.enabled:
                misses += 1
                if entry is not None:
                    entry.exemplar = identity
                    cache.store_point(key, tv, entry)
                    family = cache.lookup_point(key, tv)
        total_inst += lane_len
        # bulk issue pressure on the lane's sub-core (no per-inst servers)
        subcore = unit.subcores[0]
        subcore.dispatch.service_batch(t0, lane_len)
        subcore.instructions_issued += lane_len
        for fu, count in lane_fu.items():
            server = subcore.units.get(fu)
            if server is not None:
                server.service_batch(t0, count)
        lane_done.append(done_t)

    stats.add("ndp.instructions", total_inst)
    stats.add("ndp.uthreads_spawned", n)
    stats.add("ndp.uthreads_finished", n)
    stats.add("exec.simt_launches")
    stats.add("exec.point_launches")
    if hits:
        stats.add("exec.trace_cache_hits", hits)
        stats.add("exec.trace_cache_hits_point", hits)
    if gen_hits:
        stats.add("exec.trace_cache_hits_generalized", gen_hits)
    if misses:
        stats.add("exec.trace_cache_misses", misses)

    slots = cfg.subcores_per_unit * cfg.uthread_slots_per_subcore
    ratio = min((n + num_units - 1) // num_units, slots) / slots
    for unit in exec_units:
        unit.occupancy.sampler.record(t0, ratio)

    completion = max(lane_done) if lane_done else t0
    instance.lane_complete_ns = list(lane_done)
    if obs_tracer.ENABLED:
        obs_tracer.tracer_of(device.sim).record(
            "exec.point", t0, completion, pid=device.trace_pid,
            instance=instance.instance_id, lanes=n,
            cache_hits=hits, cache_misses=misses,
            generalized_hits=gen_hits)

    def finish() -> None:
        now = device.sim.now
        instance.instructions += total_inst
        instance.uthreads_done = instance.uthreads_total
        for unit in exec_units:
            unit.occupancy.sampler.record(now, 0.0)
        execution.finish_now(now)

    execution.consume_plan()
    backend._active.append(execution)
    device.sim.schedule_at(completion, finish)
