"""Masked SIMT execution engine for formerly-fallback launches.

The batched fast path (:mod:`repro.exec.batched`) only covers launches
whose µthreads march through the kernel in perfect, branch-uniform
lockstep.  Everything else — initializer/finalizer phases, atomics,
indexed gathers/scatters, scratchpad state, µthread-divergent control
flow, sub-threshold launch sizes — used to fall all the way back to the
per-µthread interpreter, a ~60x wall-clock cliff.  This module executes
those launches the way GPU simulators do: every µthread is a numpy
*lane*, divergent control flow is handled with an **active-mask stack**
that reconverges at immediate post-dominators (if-conversion for hammocks,
shrinking loop masks for divergent trip counts), and each instruction
executes once for all active lanes.

Functional guarantees
---------------------

* **Byte-identical memory results** vs the interpreter for every launch
  the engine accepts.  Stores are buffered per phase and committed at the
  phase barrier; AMOs are applied immediately in deterministic lane order,
  grouped by address (``np.add.at``-style segmented prefix reductions), so
  commutative integer reductions land on exactly the bytes the
  interpreter's sequential interleaving produces.  Scratchpads execute on
  per-unit shadow copies (lane -> NDP unit mapping mirrors the
  generator's), written back only on success.
* **Hazard detection, not hazard emulation.**  Cross-lane communication
  through memory within one phase (a load overlapping another lane's
  buffered store or applied AMO, conflicting cross-lane stores,
  order-sensitive AMO overlap such as swaps or float accumulation onto a
  shared address) makes results depend on the interpreter's scheduling —
  those launches raise :class:`LaunchFallback` and run on the
  interpreter, with the launch's memory effects rolled back through an
  undo log.  Translation faults fall back the same way.
* **Determinism.**  Given the same launch, the engine always applies AMOs
  in the same lane order and produces the same ``runtime_ns`` — cached
  replays verify the recorded mask schedule and address vectors step by
  step (:class:`~repro.exec.trace_cache.SimtTraceEntry`) and retrace on
  any divergence, so the trace cache can never change results.

Timing is analytic, like the batched tier: per-FU issue pressure from the
lane-weighted dynamic trace, a latency floor from a per-unit
chunked-wave model over per-lane latency estimates (which makes the
Fig 12a spawn-granularity ablation visible without per-event simulation),
and the launch's deduplicated sector stream paced through the real
L2/DRAM servers via the bulk charge APIs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TranslationFault
from repro.isa import vectorops as vo
from repro.isa.encoding import FUnit, Instruction, OpClass
from repro.isa.registers import to_signed64
from repro.isa.vector import vlmax
from repro.isa.vectorops import UnsupportedVectorOp
from repro.mem.physical import PAGE_SIZE
from repro.ndp.generator import (
    ARG_SLOT_BYTES,
    SPAWN_LATENCY_NS,
    KernelExecution,
)
from repro.ndp.tlb import PAGE_SHIFT
from repro.ndp.unit import ATOMIC_OP_NS, CROSSBAR_NS
from repro.ndp.uthread import Phase
from repro.obs import tracer as obs_tracer

#: Safety cap on the dynamic trace length of one launch walk.
MAX_TRACE_STEPS = 200_000

_PAGE_MASK = PAGE_SIZE - 1

#: Fallback classes the backend counts under ``exec.fallback_reason.<slug>``.
FALLBACK_SLUGS = ("phases", "atomic", "gather", "divergent", "scratchpad",
                  "raw", "fault", "small", "vconfig", "cap", "unsupported")


class LaunchFallback(Exception):
    """Raised when a launch cannot run on a vectorized engine.

    ``slug`` attributes the fallback to one of :data:`FALLBACK_SLUGS` so
    ``exec.fallback_reason.<slug>`` counters make the residual interpreter
    traffic diagnosable instead of one opaque total.
    """

    def __init__(self, message: str, slug: str = "unsupported") -> None:
        super().__init__(message)
        self.slug = slug


class _Done(Exception):
    """Internal control-flow signal: every lane retired."""


class Translator:
    """Vectorized virtual-to-physical translation with a per-launch cache.

    Matches the functional path of :class:`repro.ndp.unit.UnitMemory`:
    only the *start* address of an access is translated (the allocator maps
    workload data with identity translations, so contiguity holds).
    """

    def __init__(self, page_table) -> None:
        self._table = page_table
        self._cache: dict[int, int] = {}

    def translate(self, vaddrs: np.ndarray) -> np.ndarray:
        vpns = np.unique(np.atleast_1d(vaddrs) >> np.int64(PAGE_SHIFT))
        ppns = np.empty_like(vpns)
        identity = True
        for i, vpn in enumerate(vpns):
            key = int(vpn)
            ppn = self._cache.get(key)
            if ppn is None:
                try:
                    ppn = self._table.lookup(key).ppn
                except TranslationFault:
                    raise LaunchFallback(
                        f"unmapped page vpn={key:#x}", "fault") from None
                self._cache[key] = ppn
            ppns[i] = ppn
            identity = identity and ppn == key
        if identity:
            return vaddrs
        idx = np.searchsorted(vpns, np.asarray(vaddrs) >> np.int64(PAGE_SHIFT))
        return (ppns[idx] << np.int64(PAGE_SHIFT)) | (vaddrs & _PAGE_MASK)


# ---------------------------------------------------------------------------
# shared stream helpers (used by both vectorized engines)
# ---------------------------------------------------------------------------


def step_sectors(paddrs: np.ndarray, size: int, sector_bytes: int) -> np.ndarray:
    """Unique sector addresses touched by one trace step, ascending.

    Reads are deduped (every unit's L1/the shared L2 would absorb the
    repeats); write-through writes are coalesced per sector — both are
    timing-neutral for the hit path, which carries no bandwidth charge.
    """
    p = np.atleast_1d(paddrs).astype(np.int64)
    first = p // sector_bytes
    last = (p + size - 1) // sector_bytes
    span = int((last - first).max()) + 1
    if span == 1:
        sectors = first
    else:
        grid = first[:, None] + np.arange(span)
        sectors = grid[grid <= last[:, None]]
    return np.unique(sectors) * sector_bytes


def merge_streams(
    streams: list[tuple[np.ndarray, bool]],
) -> tuple[np.ndarray, np.ndarray]:
    """Proportionally interleave the per-step sector streams.

    All µthreads progress through the trace roughly together (they are
    spawned together and FGMT round-robins them), so at any instant the
    launch's memory traffic mixes *every* step's stream — e.g. column
    reads interleave with mask writes.  Merging each stream at its own
    uniform rate reproduces that mix (and its DRAM bank behaviour)
    instead of an artificially bank-friendly step-by-step sweep.
    Returns (addresses, is_write) arrays ready for the bulk charge.
    """
    if not streams:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    if len(streams) == 1:
        sectors, is_write = streams[0]
        return (np.asarray(sectors, dtype=np.int64),
                np.full(len(sectors), is_write, dtype=bool))
    positions = np.concatenate([
        (np.arange(len(sectors)) + 0.5) / max(len(sectors), 1)
        for sectors, _ in streams
    ])
    addrs = np.concatenate([sectors for sectors, _ in streams])
    writes = np.concatenate([
        np.full(len(sectors), is_write) for sectors, is_write in streams
    ])
    order = np.argsort(positions, kind="stable")
    return addrs[order].astype(np.int64), writes[order]


# ---------------------------------------------------------------------------
# control-flow analysis: immediate post-dominators for reconvergence
# ---------------------------------------------------------------------------


#: Vector mnemonics that read their ``rd`` field as a source.
_RD_READERS = {"vmacc.vv", "vfmacc.vv", "vfmacc.vf", "vmv.s.x"}


def x_read_counts(program) -> dict[int, int]:
    """How many instructions read each register index as a source.

    Used to decide whether an AMO's returned *old value* is ever
    consumed: contended old values are order-dependent, but a result
    nobody reads (the common reduce/histogram pattern) keeps the launch
    on the deterministic grouped path.  Bank-agnostic and therefore
    conservative (an f/v register sharing the index counts as a read).
    Memoized on the program object.
    """
    cached = getattr(program, "_x_read_counts", None)
    if cached is not None:
        return cached
    counts: dict[int, int] = {}
    for inst in program.instructions:
        regs = [inst.rs1, inst.rs2, inst.rs3]
        if (inst.mnemonic in _RD_READERS
                or inst.op_class in (OpClass.VSTORE, OpClass.VSCATTER,
                                     OpClass.VAMO)):
            regs.append(inst.rd)
        for reg in regs:
            if reg:
                counts[reg] = counts.get(reg, 0) + 1
    try:
        program._x_read_counts = counts
    except AttributeError:  # pragma: no cover - slotted program objects
        pass
    return counts


def immediate_postdominators(program) -> list[int]:
    """Reconvergence PC for every instruction index (exit = len(program)).

    Instruction-granular CFG: straight-line successors, resolved branch
    targets, ``ret``/end-of-program edges into a virtual exit node.
    Divergent branches reconverge at their immediate post-dominator —
    exactly the GPGPU-Sim SIMT-stack discipline.  Memoized on the program
    object (cluster runtimes re-assemble identical programs per launch).
    """
    cached = getattr(program, "_simt_ipdom", None)
    if cached is not None:
        return cached
    instructions = program.instructions
    count = len(instructions)
    exit_node = count
    succs: list[list[int]] = []
    for pc, inst in enumerate(instructions):
        if inst.op_class is OpClass.RET:
            succs.append([exit_node])
        elif inst.op_class is OpClass.BRANCH:
            target = inst.target if inst.target is not None else exit_node
            if inst.mnemonic == "j":
                succs.append([target])
            else:
                nxt = pc + 1 if pc + 1 < count else exit_node
                succs.append(sorted({nxt, target}))
        else:
            succs.append([pc + 1 if pc + 1 < count else exit_node])

    # Iterative postdominator sets over the ≤ few-hundred-instruction
    # programs of this ISA; bitsets keep it simple and fast enough.
    full = (1 << (count + 1)) - 1
    pdom = [full] * count + [1 << exit_node]
    changed = True
    while changed:
        changed = False
        for pc in range(count - 1, -1, -1):
            meet = full
            for s in succs[pc]:
                meet &= pdom[s]
            new = meet | (1 << pc)
            if new != pdom[pc]:
                pdom[pc] = new
                changed = True

    ipdom: list[int] = []
    for pc in range(count):
        strict = pdom[pc] & ~(1 << pc)
        # the immediate postdominator is the strict postdominator deepest
        # in the postdominator tree = the one with the largest pdom set
        best, best_size = exit_node, -1
        node = strict
        while node:
            bit = node & -node
            idx = bit.bit_length() - 1
            node ^= bit
            size = bin(pdom[idx]).count("1") if idx < count else 1
            if size > best_size:
                best, best_size = idx, size
        ipdom.append(best)
    try:
        program._simt_ipdom = ipdom
    except AttributeError:  # pragma: no cover - slotted program objects
        pass
    return ipdom


# ---------------------------------------------------------------------------
# hazard interval logs
# ---------------------------------------------------------------------------


class _IntervalLog:
    """Append-only [lo, hi) interval set with a fast any-overlap query.

    The sorted index is rebuilt lazily on the first query after an
    ``add`` — quadratic in the worst case (alternating add/query), but a
    log only ever holds one phase's memory steps (bounded by the trace
    cap, typically tens), so a smarter incremental merge has not been
    worth its complexity; revisit if a profile ever says otherwise.
    """

    def __init__(self) -> None:
        self._los: list[np.ndarray] = []
        self._his: list[np.ndarray] = []
        self._starts: np.ndarray | None = None
        self._end_max: np.ndarray | None = None
        self.count = 0

    def add(self, los: np.ndarray, his: np.ndarray) -> None:
        if los.size:
            self._los.append(np.asarray(los, dtype=np.int64))
            self._his.append(np.asarray(his, dtype=np.int64))
            self._starts = None
            self.count += int(los.size)

    def overlaps(self, los: np.ndarray, his: np.ndarray) -> bool:
        if not self.count or not los.size:
            return False
        if self._starts is None:
            starts = np.concatenate(self._los)
            ends = np.concatenate(self._his)
            order = np.argsort(starts, kind="stable")
            self._starts = starts[order]
            self._end_max = np.maximum.accumulate(ends[order])
        idx = np.searchsorted(self._starts, np.asarray(his, dtype=np.int64),
                              side="left")
        cand = idx > 0
        if not cand.any():
            return False
        return bool((self._end_max[idx[cand] - 1]
                     > np.asarray(los, dtype=np.int64)[cand]).any())


class _PhaseHazards:
    """Per-phase, per-address-space memory ordering hazards.

    The lockstep walk gives every phase a single canonical interleaving:
    all lanes execute step k before any lane executes step k+1, loads see
    pre-phase memory (stores buffer to the barrier), AMOs apply in lane
    order.  Whenever the interpreter's fine-grained schedule could order
    two overlapping accesses of *different* µthreads differently, the
    result is a race the engine must not silently pick a winner for —
    ``check_*`` raises :class:`LaunchFallback` (slug ``raw``) instead.
    Single-lane launches keep only the buffered-store rules: program
    order within one µthread is always preserved by the walk itself.
    """

    def __init__(self, single_lane: bool) -> None:
        self.single = single_lane
        self.loads = _IntervalLog()
        self.stores = _IntervalLog()
        #: commutative integer atomics, keyed by (op, size): only atomics
        #: of the *same* op and width commute byte-for-byte (a 4-byte add
        #: under an 8-byte add interacts through the carry chain)
        self.amos: dict[tuple[str, int], _IntervalLog] = {}
        self.amos_sensitive = _IntervalLog()   # swap / float accumulation

    def _amo_overlap(self, los, his, except_key=None) -> bool:
        if self.amos_sensitive.overlaps(los, his):
            return True
        return any(
            log.overlaps(los, his)
            for key, log in self.amos.items() if key != except_key
        )

    def add_amo(self, los, his, key: tuple[str, int],
                sensitive: bool) -> None:
        if sensitive:
            self.amos_sensitive.add(los, his)
        else:
            self.amos.setdefault(key, _IntervalLog()).add(los, his)

    def check_load(self, los, his) -> None:
        if self.stores.overlaps(los, his):
            raise LaunchFallback(
                "load overlaps a buffered store (RAW via memory)", "raw")
        if self.single:
            return  # applied AMOs are same-lane program order
        if self._amo_overlap(los, his):
            raise LaunchFallback(
                "load overlaps an applied atomic (RAW via memory)", "raw")

    def check_store(self, los, his) -> None:
        if self.single:
            return
        if self.loads.overlaps(los, his):
            raise LaunchFallback(
                "store overlaps an earlier cross-lane load", "raw")
        if self._amo_overlap(los, his):
            raise LaunchFallback(
                "store overlaps an applied atomic", "raw")
        if self.stores.overlaps(los, his):
            raise LaunchFallback(
                "store overlaps an earlier cross-lane store", "raw")

    def check_amo(self, los, his, key: tuple[str, int],
                  sensitive: bool) -> None:
        if self.stores.overlaps(los, his):
            raise LaunchFallback(
                "atomic overlaps a buffered store", "raw")
        if self.single:
            return
        if self.loads.overlaps(los, his):
            raise LaunchFallback(
                "atomic overlaps an earlier cross-lane load", "raw")
        if self._amo_overlap(los, his, except_key=None if sensitive else key):
            raise LaunchFallback(
                "order-sensitive atomic overlap", "raw")


# ---------------------------------------------------------------------------
# recorded memory steps + phase profiles (also the trace-cache payload)
# ---------------------------------------------------------------------------


@dataclass
class SimtStep:
    """One memory instruction of the walk, flattened per element access.

    ``lanes``/``vaddrs`` are lane-major (element-minor) — the engine's
    canonical AMO application order and the *mask schedule* a cached
    replay verifies against.
    """

    op: str                     # "load" | "store" | "amo"
    size: int                   # bytes per element access
    lanes: np.ndarray           # (e,) lane id of each element access
    vaddrs: np.ndarray          # (e,) start vaddr of each element access
    spad: np.ndarray | None     # (e,) bool scratchpad routing; None = global
    paddrs: np.ndarray | None = None   # translated global element addresses
    sector_count: int = 0
    amo_op: str | None = None
    amo_float: bool = False


@dataclass
class SimtPhaseProfile:
    """Everything reusable about one phase of a traced SIMT launch."""

    kind: str
    n: int
    unit_of_lane: np.ndarray
    steps: list[SimtStep] = field(default_factory=list)
    instr_steps: int = 0
    lane_instructions: int = 0
    fu_counts: dict[FUnit, int] = field(default_factory=dict)
    lat_cycles: np.ndarray | None = None
    mem_lat: np.ndarray | None = None
    merged_addrs: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    merged_writes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=bool))
    page_count: int = 0
    global_bytes: int = 0
    global_accesses: int = 0
    spad_bytes: int = 0
    atomics: int = 0
    #: per-unit functional scratchpad counter deltas:
    #: unit -> (reads, writes, atomics, bytes)
    spad_counters: dict[int, tuple[int, int, int, int]] = field(
        default_factory=dict)


# ---------------------------------------------------------------------------
# SIMT stack entry
# ---------------------------------------------------------------------------


@dataclass
class _StackEntry:
    next_pc: int
    reconv_pc: int
    mask: np.ndarray            # bool (n,)


# ---------------------------------------------------------------------------
# one-phase masked walk
# ---------------------------------------------------------------------------


class _PhaseWalk:
    """Masked lockstep execution of one phase's µthreads."""

    def __init__(self, plan: "SimtPlan", kind: Phase, program, n: int,
                 x1: np.ndarray, x2: np.ndarray, unit_of_lane: np.ndarray,
                 profile: SimtPhaseProfile | None) -> None:
        self.plan = plan
        self.program = program
        self.n = n
        self.unit_of_lane = unit_of_lane
        self._verify = profile
        self._step_i = 0
        self._executed = 0
        self._lane_instructions = 0
        self._fu_counts: dict[FUnit, int] = {}
        self._steps: list[SimtStep] = []
        self._lat_cycles = np.zeros(n, dtype=np.int64)
        self._mem_lat = np.zeros(n, dtype=np.float64)
        self._spad_counters: dict[int, list[int]] = {}
        self._global_bytes = 0
        self._global_accesses = 0
        self._spad_bytes = 0
        self._atomics = 0
        self.kind = kind
        self.hazards_global = _PhaseHazards(n == 1)
        self.hazards_spad = _PhaseHazards(n == 1)
        self.store_log: list[tuple[np.ndarray, np.ndarray]] = []
        self._seen_sectors: np.ndarray | None = None

        self.xr: list[np.ndarray] = [np.zeros(n, dtype=np.int64)] * 32
        self.xr[1] = np.asarray(x1, dtype=np.int64)
        self.xr[2] = np.asarray(x2, dtype=np.int64)
        self.xr[3] = np.full(n, plan.execution.args_vaddr, dtype=np.int64)
        self.fr: list[np.ndarray] = [np.zeros(n, dtype=np.float64)] * 32
        self.vr: list[np.ndarray | None] = [None] * 32
        self.vl = np.full(n, -1, dtype=np.int64)      # -1 = VLMAX sentinel
        self.sew = np.full(n, 64, dtype=np.int64)

        device = plan.device
        spad = device.units[plan.execution.unit_base].scratchpad
        self._spad_lo = spad.base_vaddr
        self._spad_size = spad.size_bytes
        self._spad_hi = spad.base_vaddr + spad.size_bytes
        self._spad_latency = spad.latency_ns
        self._args_lo = plan.execution.args_vaddr
        self._args_hi = plan.execution.args_vaddr + ARG_SLOT_BYTES
        cfg = device.config
        self._period = cfg.ndp.clock.period_ns
        self._l1_hit = cfg.ndp.l1d.hit_latency_ns
        self._l2_hit = cfg.l2.hit_latency_ns
        dram = (device.dram if plan.execution.partition is None
                else plan.execution.partition.dram)
        self._dram_lat = dram.typical_random_latency_ns()
        self._sector_bytes = cfg.l2.sector_bytes

    # -- register plumbing -------------------------------------------------

    def _wx(self, idx: int, val, m: np.ndarray | None) -> None:
        if not idx:
            return
        v = np.broadcast_to(
            np.asarray(val).astype(np.int64), (self.n,))
        self.xr[idx] = v.copy() if m is None else np.where(m, v, self.xr[idx])

    def _wf(self, idx: int, val, m: np.ndarray | None) -> None:
        v = np.broadcast_to(np.asarray(val, dtype=np.float64), (self.n,))
        self.fr[idx] = v.copy() if m is None else np.where(m, v, self.fr[idx])

    def _read_v(self, idx: int, count: int) -> np.ndarray:
        arr = self.vr[idx]
        if arr is None or arr.shape[-1] == 0:
            return np.zeros((self.n, count), dtype=np.uint64)
        k = arr.shape[-1]
        if k < count:
            pad = np.zeros((self.n, count - k), dtype=np.uint64)
            arr = np.concatenate([arr, pad], axis=-1)
        return arr[:, :count]

    def _wv(self, idx: int, val: np.ndarray, m: np.ndarray | None) -> None:
        v = np.asarray(val, dtype=np.uint64)
        if v.ndim == 1:
            v = np.broadcast_to(v[None, :], (self.n, v.shape[0]))
        if m is None:
            self.vr[idx] = np.ascontiguousarray(v)
            return
        # Inactive lanes keep their full-width old register (the write may
        # narrow it); active lanes read zeros past the written elements,
        # exactly like the scalar executor's shorter value list.
        old = self.vr[idx]
        k_old = old.shape[-1] if old is not None else 0
        k = max(k_old, v.shape[-1])
        if v.shape[-1] < k:
            v = np.concatenate(
                [v, np.zeros((self.n, k - v.shape[-1]), dtype=np.uint64)],
                axis=-1)
        self.vr[idx] = np.where(m[:, None], v, self._read_v(idx, k))

    def _uniform(self, arr: np.ndarray, m: np.ndarray | None,
                 what: str, slug: str = "vconfig") -> int:
        vals = arr if m is None else arr[m]
        first = vals[0] if vals.size else 0
        if vals.size and not np.all(vals == first):
            raise LaunchFallback(f"µthread-divergent {what}", slug)
        return int(first)

    def _eff_vl(self, m: np.ndarray | None, sew_bits: int) -> int:
        limit = vlmax(sew_bits)
        v = self._uniform(self.vl, m, "vector length")
        return limit if v < 0 else min(v, limit)

    def _cur_sew(self, m: np.ndarray | None) -> int:
        return self._uniform(self.sew, m, "vector SEW")

    # -- memory ------------------------------------------------------------

    def _normalize_vaddrs(self, vaddrs: np.ndarray) -> np.ndarray:
        """Relocate arg-block addresses before recording/verifying.

        The 64 B argument block rotates through scratchpad slots per
        kernel *instance* (``instance_id % max_concurrent_kernels``), so
        otherwise-identical launches read their arguments at different
        vaddrs.  Mapping those onto a slot-independent synthetic base
        keeps the recorded mask schedule comparable across instances;
        any access straddling the block boundary normalizes differently
        per launch and simply retraces.
        """
        in_args = (vaddrs >= self._args_lo) & (vaddrs < self._args_hi)
        if not in_args.any():
            return vaddrs
        out = vaddrs.copy()
        out[in_args] = vaddrs[in_args] - self._args_lo - np.int64(1 << 40)
        return out

    def _verify_step(self, op: str, size: int, lanes: np.ndarray,
                     vaddrs: np.ndarray, spad: np.ndarray | None,
                     amo_op: str | None, amo_float: bool) -> SimtStep:
        from repro.exec.trace_cache import StaleTrace

        profile = self._verify
        if self._step_i >= len(profile.steps):
            raise StaleTrace("more memory steps than the cached trace")
        step = profile.steps[self._step_i]
        self._step_i += 1
        same_spad = (
            (step.spad is None and spad is None)
            or (step.spad is not None and spad is not None
                and np.array_equal(step.spad, spad))
        )
        if (step.op != op or step.size != size or step.amo_op != amo_op
                or step.amo_float != amo_float or not same_spad
                or not np.array_equal(step.lanes, lanes)
                or not np.array_equal(step.vaddrs, vaddrs)):
            raise StaleTrace("memory step diverged from cached trace")
        return step

    def _record_step(self, op: str, size: int, lanes: np.ndarray,
                     vaddrs: np.ndarray, spad: np.ndarray | None,
                     global_vaddrs: np.ndarray,
                     amo_op: str | None = None,
                     amo_float: bool = False) -> tuple[SimtStep, np.ndarray]:
        """Record (or verify) one memory step; returns it + global paddrs."""
        vaddrs = self._normalize_vaddrs(vaddrs)
        if self._verify is not None:
            step = self._verify_step(op, size, lanes, vaddrs, spad,
                                     amo_op, amo_float)
            paddrs = step.paddrs if step.paddrs is not None else np.empty(
                0, dtype=np.int64)
            return step, paddrs
        if global_vaddrs.size:
            paddrs = np.atleast_1d(
                self.plan.translator.translate(global_vaddrs))
        else:
            paddrs = np.empty(0, dtype=np.int64)
        step = SimtStep(op=op, size=size, lanes=lanes, vaddrs=vaddrs,
                        spad=spad, paddrs=paddrs, amo_op=amo_op,
                        amo_float=amo_float)
        self._steps.append(step)
        return step, paddrs

    def _sector_novelty(self, step: SimtStep) -> float:
        """Record the step's sectors; returns the first-touch fraction.

        Only a step's *first-touch* sectors pay the DRAM round trip in
        the per-lane latency estimate — re-walked data (a pointer-chased
        contribution array, re-read partials) sits in the memory-side L2
        by then, exactly as the interpreter's timed path observes.
        """
        sectors = step_sectors(step.paddrs, step.size, self._sector_bytes)
        step.sector_count = int(sectors.size)
        if self._seen_sectors is None:
            self._seen_sectors = sectors
            return 1.0
        fresh = ~np.isin(sectors, self._seen_sectors, assume_unique=True)
        new = int(fresh.sum())
        if new:
            self._seen_sectors = np.union1d(self._seen_sectors,
                                            sectors[fresh])
        return new / sectors.size

    def _bump_spad(self, units: np.ndarray, what: int, count_each: int,
                   bytes_each: int) -> None:
        """Accumulate per-unit scratchpad counter deltas (flushed on
        success only).  ``what``: 0=reads, 1=writes, 2=atomics."""
        uniq, counts = np.unique(units, return_counts=True)
        for u, c in zip(uniq, counts):
            row = self._spad_counters.setdefault(int(u), [0, 0, 0, 0])
            row[what] += int(c) * count_each
            row[3] += int(c) * count_each * bytes_each

    def _spad_offsets(self, vaddrs: np.ndarray, size: int) -> np.ndarray:
        offs = vaddrs - np.int64(self._spad_lo)
        if (offs < 0).any() or (offs + size > self._spad_size).any():
            raise LaunchFallback("scratchpad access outside window",
                                 "scratchpad")
        return offs

    def _spad_synthetic(self, lanes: np.ndarray, offs: np.ndarray) -> np.ndarray:
        """Disambiguate per-unit scratchpad intervals for hazard logs."""
        units = self.unit_of_lane[lanes].astype(np.int64)
        return units * np.int64(self._spad_size) + offs

    def _spad_gather(self, lanes: np.ndarray, offs: np.ndarray,
                     size: int) -> np.ndarray:
        out = np.empty((lanes.size, size), dtype=np.uint8)
        units = self.unit_of_lane[lanes]
        cols = np.arange(size)
        for u in np.unique(units):
            sel = np.nonzero(units == u)[0]
            view = self.plan.spad_view(int(u), write=False)
            out[sel] = view[offs[sel][:, None] + cols]
        return out

    def _spad_scatter(self, lanes: np.ndarray, offs: np.ndarray,
                      rows: np.ndarray) -> None:
        units = self.unit_of_lane[lanes]
        cols = np.arange(rows.shape[-1])
        for u in np.unique(units):
            sel = np.nonzero(units == u)[0]
            view = self.plan.spad_view(int(u), write=True)
            view[offs[sel][:, None] + cols] = rows[sel]

    def _check_intra_store(self, lanes: np.ndarray, los: np.ndarray,
                           size: int, rows: np.ndarray) -> None:
        """Cross-lane conflicting writes inside one step are races."""
        if self.n == 1 or los.size <= 1:
            return
        order = np.argsort(los, kind="stable")
        lo_s, lane_s, rows_s = los[order], lanes[order], rows[order]
        overlap = lo_s[1:] < lo_s[:-1] + size
        if not overlap.any():
            return
        idx = np.nonzero(overlap)[0]
        cross = lane_s[idx] != lane_s[idx + 1]
        if not cross.any():
            return
        bad = idx[cross]
        exact = lo_s[bad] == lo_s[bad + 1]
        same = exact & np.all(rows_s[bad] == rows_s[bad + 1], axis=1)
        if not same.all():
            raise LaunchFallback("cross-lane conflicting stores", "raw")

    def _route_spad(self, addrs: np.ndarray):
        """Split one access vector into scratchpad and global elements.

        Returns ``(spad_field, s_sel, g_sel)``: the per-element routing
        vector cached-trace verification compares (``None`` when fully
        global) plus the element selectors for each side.
        """
        in_spad = (addrs >= self._spad_lo) & (addrs < self._spad_hi)
        if not in_spad.any():
            return None, np.empty(0, dtype=np.int64), np.arange(addrs.size)
        return (in_spad, np.nonzero(in_spad)[0], np.nonzero(~in_spad)[0])

    def _load(self, lanes: np.ndarray, addrs: np.ndarray,
              size: int) -> np.ndarray:
        """Load ``size`` bytes per (lane, addr) element; (e, size) uint8."""
        spad_field, s_sel, g_sel = self._route_spad(addrs)
        step, paddrs = self._record_step(
            "load", size, lanes, addrs, spad_field, addrs[g_sel])
        out = np.empty((addrs.size, size), dtype=np.uint8)
        if s_sel.size:
            offs = self._spad_offsets(addrs[s_sel], size)
            syn = self._spad_synthetic(lanes[s_sel], offs)
            if self._verify is None:
                self.hazards_spad.check_load(syn, syn + size)
                self.hazards_spad.loads.add(syn, syn + size)
            out[s_sel] = self._spad_gather(lanes[s_sel], offs, size)
            self._bump_spad(self.unit_of_lane[lanes[s_sel]], 0, 1, size)
            self._spad_bytes += int(s_sel.size) * size
            if self._verify is None:
                self._mem_lat_add(lanes[s_sel], self._spad_latency)
        if g_sel.size:
            out[g_sel] = self.plan.device.physical.gather_rows(paddrs, size)
            self._global_bytes += int(g_sel.size) * size
            self._global_accesses += int(g_sel.size)
            if self._verify is None:
                self.hazards_global.check_load(paddrs, paddrs + size)
                self.hazards_global.loads.add(paddrs, paddrs + size)
                frac = self._sector_novelty(step)
                hot = step.sector_count * 8 <= g_sel.size
                self._mem_lat_add(
                    lanes[g_sel],
                    self._l1_hit if hot
                    else 2 * CROSSBAR_NS + self._l2_hit
                    + frac * self._dram_lat)
        return out

    def _store(self, lanes: np.ndarray, addrs: np.ndarray,
               rows: np.ndarray) -> None:
        size = rows.shape[-1]
        spad_field, s_sel, g_sel = self._route_spad(addrs)
        step, paddrs = self._record_step(
            "store", size, lanes, addrs, spad_field, addrs[g_sel])
        if s_sel.size:
            offs = self._spad_offsets(addrs[s_sel], size)
            syn = self._spad_synthetic(lanes[s_sel], offs)
            self._check_intra_store(lanes[s_sel], syn, size, rows[s_sel])
            if self._verify is None:
                self.hazards_spad.check_store(syn, syn + size)
                self.hazards_spad.stores.add(syn, syn + size)
            # scratchpad writes apply immediately (to the shadow): later
            # same-lane reads are program order, cross-lane reads are
            # hazard-checked above
            self._spad_scatter(lanes[s_sel], offs, rows[s_sel])
            self._bump_spad(self.unit_of_lane[lanes[s_sel]], 1, 1, size)
            self._spad_bytes += int(s_sel.size) * size
            if self._verify is None:
                self._mem_lat_add(lanes[s_sel], self._spad_latency)
        if g_sel.size:
            # the data-dependent half of the conflict rule is re-checked
            # even on cached replays (addresses are verified, data is not)
            self._check_intra_store(lanes[g_sel], paddrs, size, rows[g_sel])
            if self._verify is None:
                self.hazards_global.check_store(paddrs, paddrs + size)
                self.hazards_global.stores.add(paddrs, paddrs + size)
                self._sector_novelty(step)
                self._mem_lat_add(lanes[g_sel], self._l1_hit)
            self.store_log.append(
                (paddrs, np.ascontiguousarray(rows[g_sel])))
            self._global_bytes += int(g_sel.size) * size
            self._global_accesses += int(g_sel.size)

    def _amo(self, lanes: np.ndarray, addrs: np.ndarray, operands,
             op: str, size: int, is_float: bool,
             consumed: bool = False):
        """Apply one AMO step in lane order; returns old values (e,).

        ``consumed`` marks AMOs whose returned old value some later
        instruction reads: under contention those olds depend on the
        interpreter's scheduling, so the step is treated as
        order-sensitive (fallback on any contention or overlap).
        """
        spad_field, s_sel, g_sel = self._route_spad(addrs)
        step, paddrs = self._record_step(
            "amo", size, lanes, addrs, spad_field, addrs[g_sel],
            amo_op=op, amo_float=is_float)
        sensitive = is_float or op == "swap" or consumed
        amo_key = (op, size)
        olds = (np.empty(addrs.size, dtype=np.float64) if is_float
                else np.empty(addrs.size, dtype=np.int64))
        if s_sel.size:
            offs = self._spad_offsets(addrs[s_sel], size)
            syn = self._spad_synthetic(lanes[s_sel], offs)
            if self._verify is None:
                self.hazards_spad.check_amo(syn, syn + size, amo_key,
                                            sensitive)
                self.hazards_spad.add_amo(syn, syn + size, amo_key,
                                          sensitive)
            olds[s_sel] = self._apply_amo_grouped(
                syn, np.asarray(operands)[s_sel], op, size, is_float,
                sensitive, spad_lanes=lanes[s_sel], spad_offs=offs)
            self._bump_spad(self.unit_of_lane[lanes[s_sel]], 2, 1, 2 * size)
            self._spad_bytes += int(s_sel.size) * size
            if self._verify is None:
                self._mem_lat_add(lanes[s_sel], self._spad_latency)
        if g_sel.size:
            if self._verify is None:
                self.hazards_global.check_amo(paddrs, paddrs + size,
                                              amo_key, sensitive)
                self.hazards_global.add_amo(paddrs, paddrs + size,
                                            amo_key, sensitive)
            olds[g_sel] = self._apply_amo_grouped(
                paddrs, np.asarray(operands)[g_sel], op, size, is_float,
                sensitive)
            self._atomics += int(g_sel.size)
            self._global_bytes += int(g_sel.size) * size
            self._global_accesses += int(g_sel.size)
            if self._verify is None:
                frac = self._sector_novelty(step)
                self._mem_lat_add(
                    lanes[g_sel],
                    2 * CROSSBAR_NS + self._l2_hit + ATOMIC_OP_NS
                    + frac * self._dram_lat)
        return olds

    def _apply_amo_grouped(self, addrs: np.ndarray, operands: np.ndarray,
                           op: str, size: int, is_float: bool,
                           sensitive: bool,
                           spad_lanes: np.ndarray | None = None,
                           spad_offs: np.ndarray | None = None) -> np.ndarray:
        """Lane-ordered, grouped-by-address read-modify-write.

        Returns per-element old values.  Grouping by address makes the
        application order deterministic (ascending lane within each
        address); for the commutative integer ops the final bytes equal
        any interleaving, including the interpreter's.  Multi-lane groups
        of order-sensitive steps (swap, float adds, any AMO whose old
        value is consumed downstream) are rejected — their result depends
        on scheduling the engine does not model.
        """
        e = addrs.size
        order = np.argsort(addrs, kind="stable")
        pa = addrs[order]
        ops_sorted = np.asarray(operands)[order]
        starts = np.ones(e, dtype=bool)
        starts[1:] = pa[1:] != pa[:-1]
        start_idx = np.nonzero(starts)[0]
        uniq = pa[start_idx]
        gid = np.cumsum(starts) - 1
        multi = np.diff(np.append(start_idx, e)) > 1
        if multi.any() and self.n > 1 and sensitive:
            raise LaunchFallback(
                "order-sensitive atomic contention "
                "(swap / float / consumed old value)", "atomic")

        # read the current values
        if spad_lanes is None:
            rows = self.plan.device.physical.gather_rows(uniq, size)
            self.plan.push_undo(uniq.copy(), rows.copy())
        else:
            sl = spad_lanes[order][start_idx]
            so = spad_offs[order][start_idx]
            rows = self._spad_gather(sl, so, size)
        sew = size * 8
        if is_float:
            init = vo.bits_to_float(vo.from_le_bytes(rows), sew)
        else:
            init = vo.sign_extend(vo.from_le_bytes(rows), sew)

        olds_sorted = np.empty(e, dtype=np.float64 if is_float else np.int64)
        finals = np.empty(uniq.size, dtype=olds_sorted.dtype)
        if not is_float and op == "add":
            ops64 = ops_sorted.astype(np.int64)
            csum = np.cumsum(ops64)
            base = csum[start_idx] - ops64[start_idx]
            excl = csum - ops64 - base[gid]
            olds_sorted = vo.sign_extend(
                vo.to_pattern(init[gid] + excl, sew), sew)
            finals = vo.sign_extend(
                vo.to_pattern(init + csum[np.append(start_idx[1:] - 1, e - 1)]
                              - base, sew), sew)
        elif not multi.any():
            olds_sorted = init[gid]
            finals = self._amo_scalar(op, init, ops_sorted, sew, is_float)
        else:
            # rare: multi-lane min/max/or/and groups — small ordered loop
            bounds = np.append(start_idx, e)
            for g in range(uniq.size):
                val = init[g]
                for j in range(bounds[g], bounds[g + 1]):
                    olds_sorted[j] = val
                    nxt = self._amo_scalar(
                        op, np.asarray([val]), np.asarray([ops_sorted[j]]),
                        sew, is_float)
                    val = nxt[0]
                finals[g] = val
        # write the new values back
        if is_float:
            if size == 4:
                out_rows = np.ascontiguousarray(
                    finals.astype(np.float32)).view(np.uint8).reshape(-1, 4)
            else:
                out_rows = np.ascontiguousarray(finals).view(
                    np.uint8).reshape(-1, 8)
        else:
            out_rows = vo.to_le_bytes(vo.to_pattern(finals, sew), size)
        if spad_lanes is None:
            self.plan.device.physical.scatter_rows(uniq, out_rows)
        else:
            self._spad_scatter(sl, so, out_rows)
        olds = np.empty_like(olds_sorted)
        olds[order] = olds_sorted
        return olds

    @staticmethod
    def _amo_scalar(op: str, old: np.ndarray, operand: np.ndarray,
                    sew: int, is_float: bool) -> np.ndarray:
        if op == "add":
            new = old + operand
        elif op == "swap":
            new = operand.astype(old.dtype)
        elif op == "min":
            new = np.minimum(old, operand)
        elif op == "max":
            new = np.maximum(old, operand)
        elif op == "or":
            new = old.astype(np.int64) | operand.astype(np.int64)
        elif op == "and":
            new = old.astype(np.int64) & operand.astype(np.int64)
        elif op == "xor":
            new = old.astype(np.int64) ^ operand.astype(np.int64)
        else:
            raise LaunchFallback(f"unsupported AMO op {op!r}")
        if is_float:
            if sew == 32:
                return new.astype(np.float32).astype(np.float64)
            return np.asarray(new, dtype=np.float64)
        return vo.sign_extend(vo.to_pattern(new, sew), sew)

    def _mem_lat_add(self, lanes: np.ndarray, amount: float) -> None:
        # one latency charge per lane per step; multi-element accesses of
        # one lane issue back to back, adding a period per extra element
        uniq, counts = np.unique(lanes, return_counts=True)
        self._mem_lat[uniq] += amount + (counts - 1) * self._period

    # -- main walk ---------------------------------------------------------

    def run(self) -> SimtPhaseProfile:
        from repro.exec.trace_cache import StaleTrace

        instructions = self.program.instructions
        count = len(instructions)
        ipdom = immediate_postdominators(self.program)
        exit_pc = count
        stack = [_StackEntry(0, exit_pc, np.ones(self.n, dtype=bool))]
        exited = np.zeros(self.n, dtype=bool)

        with np.errstate(all="ignore"):
            try:
                while stack:
                    top = stack[-1]
                    mask = top.mask & ~exited
                    if not mask.any() or top.next_pc == top.reconv_pc:
                        stack.pop()
                        continue
                    if top.next_pc >= count:
                        exited |= mask
                        stack.pop()
                        continue
                    if self._executed >= MAX_TRACE_STEPS:
                        raise LaunchFallback("trace exceeds step cap", "cap")
                    self._executed += 1
                    active = int(mask.sum())
                    self._lane_instructions += active
                    inst = instructions[top.next_pc]
                    if self._verify is None:
                        self._fu_counts[inst.unit] = (
                            self._fu_counts.get(inst.unit, 0) + active)
                        self._lat_cycles[mask] += inst.latency_cycles
                    m = None if active == self.n else mask
                    op = inst.op_class
                    if op is OpClass.BRANCH:
                        self._branch(inst, top, mask, m, stack, ipdom)
                        continue
                    if op is OpClass.RET:
                        exited |= mask
                        top.next_pc = top.reconv_pc
                        continue
                    self._step(inst, m, mask)
                    top.next_pc += 1
            except UnsupportedVectorOp as exc:
                raise LaunchFallback(str(exc)) from None

        profile = self._verify
        if profile is not None:
            if (self._executed != profile.instr_steps
                    or self._lane_instructions != profile.lane_instructions
                    or self._step_i != len(profile.steps)):
                raise StaleTrace("control flow diverged from cached trace")
            return profile
        return self._build_profile()

    def _branch(self, inst: Instruction, top: _StackEntry, mask: np.ndarray,
                m: np.ndarray | None, stack: list[_StackEntry],
                ipdom: list[int]) -> None:
        mnemonic = inst.mnemonic
        pc = top.next_pc
        if mnemonic == "j":
            top.next_pc = inst.target
            return
        if mnemonic in vo.BRANCHES:
            cond = vo.BRANCHES[mnemonic](self.xr[inst.rs1], self.xr[inst.rs2])
        elif mnemonic in vo.BRANCHES_Z:
            cond = vo.BRANCHES_Z[mnemonic](self.xr[inst.rs1])
        else:
            raise LaunchFallback(f"unsupported branch {mnemonic}")
        taken = np.asarray(cond, dtype=bool) & mask
        n_taken = int(taken.sum())
        if n_taken == int(mask.sum()):
            top.next_pc = inst.target
            return
        if n_taken == 0:
            top.next_pc = pc + 1
            return
        # divergence: current entry waits at the reconvergence point, the
        # two sides execute under their sub-masks (fall-through first)
        reconv = ipdom[pc]
        top.next_pc = reconv
        stack.append(_StackEntry(inst.target, reconv, taken))
        stack.append(_StackEntry(pc + 1, reconv, mask & ~taken))

    def _step(self, inst: Instruction, m: np.ndarray | None,
              mask: np.ndarray) -> None:
        op = inst.op_class
        if op is OpClass.ALU:
            self._exec_alu(inst, m)
        elif op is OpClass.VALU_OP:
            self._exec_valu(inst, m)
        elif op is OpClass.LOAD:
            self._exec_load(inst, m, mask)
        elif op is OpClass.STORE:
            self._exec_store(inst, m, mask)
        elif op is OpClass.AMO:
            self._exec_amo(inst, m, mask)
        elif op is OpClass.VLOAD:
            self._exec_vload(inst, m, mask)
        elif op is OpClass.VSTORE:
            self._exec_vstore(inst, m, mask)
        elif op is OpClass.VGATHER:
            self._exec_vgather(inst, m, mask)
        elif op is OpClass.VSCATTER:
            self._exec_vscatter(inst, m, mask)
        elif op is OpClass.VAMO:
            self._exec_vamo(inst, m, mask)
        elif op is OpClass.VRED:
            self._exec_vred(inst, m)
        elif op is OpClass.VSET:
            self._exec_vset(inst, m)
        elif op is OpClass.FENCE:
            pass
        else:
            raise LaunchFallback(f"unsupported op class {op.value}")

    # -- scalar ------------------------------------------------------------

    def _exec_alu(self, inst: Instruction, m: np.ndarray | None) -> None:
        mn = inst.mnemonic
        xr, fr = self.xr, self.fr
        if mn in vo.INT_BINOPS:
            self._wx(inst.rd, vo.INT_BINOPS[mn](xr[inst.rs1], xr[inst.rs2]), m)
        elif mn in vo.INT_IMMOPS:
            self._wx(inst.rd, vo.INT_BINOPS[vo.INT_IMMOPS[mn]](
                xr[inst.rs1], np.int64(inst.imm)), m)
        elif mn in ("addw", "mulw"):
            base = vo.INT_BINOPS["add" if mn == "addw" else "mul"]
            self._wx(inst.rd,
                     base(xr[inst.rs1], xr[inst.rs2]).astype(np.int32), m)
        elif mn == "li":
            self._wx(inst.rd, np.int64(to_signed64(inst.imm)), m)
        elif mn == "lui":
            self._wx(inst.rd, np.int64(to_signed64(inst.imm << 12)), m)
        elif mn == "mv":
            self._wx(inst.rd, xr[inst.rs1], m)
        elif mn == "neg":
            self._wx(inst.rd, -xr[inst.rs1], m)
        elif mn == "seqz":
            self._wx(inst.rd, (xr[inst.rs1] == 0).astype(np.int64), m)
        elif mn == "snez":
            self._wx(inst.rd, (xr[inst.rs1] != 0).astype(np.int64), m)
        elif mn in vo.FP_BINOPS:
            self._wf(inst.rd, vo.FP_BINOPS[mn](fr[inst.rs1], fr[inst.rs2]), m)
        elif mn in vo.FP_COMPARES:
            self._wx(inst.rd,
                     vo.FP_COMPARES[mn](fr[inst.rs1], fr[inst.rs2]), m)
        elif mn == "fmadd.d":
            self._wf(inst.rd,
                     fr[inst.rs1] * fr[inst.rs2] + fr[inst.rs3], m)
        elif mn == "fsqrt.d":
            val = fr[inst.rs1]
            check = val if m is None else val[m]
            if np.any(check < 0):
                raise LaunchFallback("fsqrt of negative value")
            self._wf(inst.rd, np.sqrt(np.abs(val)), m)
        elif mn == "fmv.d":
            self._wf(inst.rd, fr[inst.rs1], m)
        elif mn == "fmv.x.d":
            bits = np.ascontiguousarray(fr[inst.rs1], dtype=np.float64)
            self._wx(inst.rd, bits.view(np.int64), m)
        elif mn == "fmv.d.x":
            bits = np.ascontiguousarray(xr[inst.rs1], dtype=np.int64)
            self._wf(inst.rd, bits.view(np.float64), m)
        elif mn in ("fcvt.d.l", "fcvt.s.l"):
            self._wf(inst.rd, xr[inst.rs1].astype(np.float64), m)
        elif mn == "fcvt.l.d":
            self._wx(inst.rd, np.trunc(fr[inst.rs1]).astype(np.int64), m)
        else:
            raise LaunchFallback(f"unsupported mnemonic {mn}")

    def _active(self, mask: np.ndarray) -> np.ndarray:
        return np.nonzero(mask)[0]

    def _exec_load(self, inst: Instruction, m: np.ndarray | None,
                   mask: np.ndarray) -> None:
        lanes = self._active(mask)
        addrs = self.xr[inst.rs1][lanes] + np.int64(inst.imm)
        mn = inst.mnemonic
        if mn in vo.FP_LOADS:
            size = vo.FP_LOADS[mn]
            bits = vo.from_le_bytes(self._load(lanes, addrs, size))
            vals = np.zeros(self.n, dtype=np.float64)
            vals[lanes] = vo.bits_to_float(bits, size * 8)
            self._wf(inst.rd, vals, m)
            return
        size = vo.LOAD_SIGNED.get(mn) or vo.LOAD_UNSIGNED[mn]
        value = vo.from_le_bytes(self._load(lanes, addrs, size))
        out = np.zeros(self.n, dtype=np.int64)
        if mn in vo.LOAD_SIGNED:
            out[lanes] = vo.sign_extend(value, size * 8)
        else:
            out[lanes] = value.astype(np.int64)
        self._wx(inst.rd, out, m)

    def _exec_store(self, inst: Instruction, m: np.ndarray | None,
                    mask: np.ndarray) -> None:
        lanes = self._active(mask)
        addrs = self.xr[inst.rs1][lanes] + np.int64(inst.imm)
        mn = inst.mnemonic
        if mn in vo.FP_STORES:
            size = vo.FP_STORES[mn]
            bits = vo.float_to_bits(self.fr[inst.rs2][lanes], size * 8)
        else:
            size = vo.STORES[mn]
            bits = self.xr[inst.rs2][lanes].astype(np.uint64)
        self._store(lanes, addrs, vo.to_le_bytes(bits, size))

    def _exec_amo(self, inst: Instruction, m: np.ndarray | None,
                  mask: np.ndarray) -> None:
        op, size, is_float = vo.AMO_OPS[inst.mnemonic]
        lanes = self._active(mask)
        addrs = self.xr[inst.rs1][lanes] + np.int64(inst.imm)
        consumed = False
        if inst.rd:
            # under contention the returned old value depends on thread
            # scheduling; only a result some later instruction reads makes
            # that observable (the AMO's own operand/base reads don't
            # consume the result — they read the pre-AMO register)
            reads = x_read_counts(self.program).get(inst.rd, 0)
            self_reads = (inst.rs1 == inst.rd) + (inst.rs2 == inst.rd)
            consumed = reads - self_reads > 0
        if is_float:
            operands = self.fr[inst.rs2][lanes]
            olds = self._amo(lanes, addrs, operands, op, size, True,
                             consumed)
            vals = np.zeros(self.n, dtype=np.float64)
            vals[lanes] = olds
            self._wf(inst.rd, vals, m)
        else:
            operands = self.xr[inst.rs2][lanes]
            if size == 4:
                operands = vo.sign_extend(vo.to_pattern(operands, 32), 32)
            olds = self._amo(lanes, addrs, operands, op, size, False,
                             consumed)
            out = np.zeros(self.n, dtype=np.int64)
            out[lanes] = olds
            self._wx(inst.rd, out, m)

    # -- vector ------------------------------------------------------------

    def _exec_vset(self, inst: Instruction, m: np.ndarray | None) -> None:
        sew = inst.imm
        requested = self.xr[inst.rs1]
        check = requested if m is None else requested[m]
        if np.any(check < 0):
            raise LaunchFallback("vsetvli with negative AVL")
        vl = np.minimum(requested, np.int64(vlmax(sew)))
        if m is None:
            self.vl = vl.copy()
            self.sew = np.full(self.n, sew, dtype=np.int64)
        else:
            self.vl = np.where(m, vl, self.vl)
            self.sew = np.where(m, np.int64(sew), self.sew)
        self._wx(inst.rd, vl, m)

    def _exec_vload(self, inst: Instruction, m: np.ndarray | None,
                    mask: np.ndarray) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(m, sew)
        if vl == 0:
            self._wv(inst.rd, np.zeros((self.n, 0), dtype=np.uint64), m)
            return
        lanes = self._active(mask)
        addrs = self.xr[inst.rs1][lanes] + np.int64(inst.imm)
        raw = self._load(lanes, addrs, vl * inst.size)
        elems = vo.from_le_bytes(raw.reshape(lanes.size, vl, inst.size))
        out = self._read_v(inst.rd, vl).copy()
        out[lanes] = elems
        self._wv(inst.rd, out, m)

    def _exec_vstore(self, inst: Instruction, m: np.ndarray | None,
                     mask: np.ndarray) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(m, sew)
        if vl == 0:
            return
        lanes = self._active(mask)
        addrs = self.xr[inst.rs1][lanes] + np.int64(inst.imm)
        values = vo.to_pattern(
            self._read_v(inst.rd, vl)[lanes].astype(np.int64), sew)
        raw = vo.to_le_bytes(values, inst.size)
        self._store(lanes, addrs, raw.reshape(lanes.size, vl * inst.size))

    def _flatten_indexed(self, inst: Instruction, mask: np.ndarray,
                         vl: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-element (lanes, addrs) for indexed vector memory ops,
        lane-major — the canonical application order."""
        lanes = self._active(mask)
        base = self.xr[inst.rs1][lanes]
        offsets = self._read_v(inst.rs2, vl)[lanes].astype(np.int64)
        addrs = (base[:, None] + offsets).reshape(-1)
        flat_lanes = np.repeat(lanes, vl)
        return flat_lanes, addrs

    def _exec_vgather(self, inst: Instruction, m: np.ndarray | None,
                      mask: np.ndarray) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(m, sew)
        if vl == 0:
            self._wv(inst.rd, np.zeros((self.n, 0), dtype=np.uint64), m)
            return
        lanes = self._active(mask)
        flat_lanes, addrs = self._flatten_indexed(inst, mask, vl)
        raw = self._load(flat_lanes, addrs, inst.size)
        elems = vo.from_le_bytes(raw).reshape(lanes.size, vl)
        out = self._read_v(inst.rd, vl).copy()
        out[lanes] = elems
        self._wv(inst.rd, out, m)

    def _exec_vscatter(self, inst: Instruction, m: np.ndarray | None,
                       mask: np.ndarray) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(m, sew)
        if vl == 0:
            return
        lanes = self._active(mask)
        flat_lanes, addrs = self._flatten_indexed(inst, mask, vl)
        values = vo.to_pattern(
            self._read_v(inst.rd, vl)[lanes].astype(np.int64), sew)
        rows = vo.to_le_bytes(values.reshape(-1), inst.size)
        self._store(flat_lanes, addrs, rows)

    def _exec_vamo(self, inst: Instruction, m: np.ndarray | None,
                   mask: np.ndarray) -> None:
        sew = inst.size * 8
        vl = self._eff_vl(m, sew)
        if vl == 0:
            return
        lanes = self._active(mask)
        flat_lanes, addrs = self._flatten_indexed(inst, mask, vl)
        values = vo.sign_extend(self._read_v(inst.rd, vl)[lanes], sew)
        self._amo(flat_lanes, addrs, values.reshape(-1), "add", inst.size,
                  False)

    def _exec_valu(self, inst: Instruction, m: np.ndarray | None) -> None:
        mn = inst.mnemonic
        sew = self._cur_sew(m)
        vl = self._eff_vl(m, sew)

        if mn in vo.V_INT_BINOPS:
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            b = vo.sign_extend(self._read_v(inst.rs2, vl), sew)
            self._wv(inst.rd, vo.to_pattern(vo.V_INT_BINOPS[mn](a, b), sew), m)
        elif mn in vo.V_INT_SCALAR:
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(self.xr[inst.rs2])
            self._wv(inst.rd, vo.to_pattern(vo.V_INT_SCALAR[mn](a, s), sew), m)
        elif mn in vo.V_INT_IMM:
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            self._wv(inst.rd, vo.to_pattern(
                vo.V_INT_IMM[mn](a, np.int64(inst.imm)), sew), m)
        elif mn == "vmacc.vv":
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            b = vo.sign_extend(self._read_v(inst.rs2, vl), sew)
            d = vo.sign_extend(self._read_v(inst.rd, vl), sew)
            self._wv(inst.rd, vo.to_pattern(d + a * b, sew), m)
        elif mn in vo.V_FP_BINOPS:
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            b = vo.bits_to_float(self._read_v(inst.rs2, vl), sew)
            self._wv(inst.rd, vo.float_to_bits(
                vo.V_FP_BINOPS[mn](a, b), sew), m)
        elif mn in vo.V_FP_SCALAR:
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(self.fr[inst.rs2])
            self._wv(inst.rd, vo.float_to_bits(
                vo.V_FP_SCALAR[mn](a, s), sew), m)
        elif mn == "vfmacc.vf":
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(self.fr[inst.rs2])
            d = vo.bits_to_float(self._read_v(inst.rd, vl), sew)
            self._wv(inst.rd, vo.float_to_bits(d + a * s, sew), m)
        elif mn == "vfmacc.vv":
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            b = vo.bits_to_float(self._read_v(inst.rs2, vl), sew)
            d = vo.bits_to_float(self._read_v(inst.rd, vl), sew)
            self._wv(inst.rd, vo.float_to_bits(d + a * b, sew), m)
        elif mn in vo.V_INT_COMPARES:
            a = vo.sign_extend(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(self.xr[inst.rs2])
            self._wv(inst.rd,
                     vo.V_INT_COMPARES[mn](a, s).astype(np.uint64), m)
        elif mn in vo.V_FP_COMPARES:
            a = vo.bits_to_float(self._read_v(inst.rs1, vl), sew)
            s = vo.per_thread(self.fr[inst.rs2])
            self._wv(inst.rd,
                     vo.V_FP_COMPARES[mn](a, s).astype(np.uint64), m)
        elif mn in ("vmand.mm", "vmor.mm"):
            a = self._read_v(inst.rs1, vl) != 0
            b = self._read_v(inst.rs2, vl) != 0
            out = (a & b) if mn == "vmand.mm" else (a | b)
            self._wv(inst.rd, out.astype(np.uint64), m)
        elif mn == "vmerge.vxm":
            a = self._read_v(inst.rs1, vl)
            s = vo.to_pattern(vo.per_thread(self.xr[inst.rs2]), sew)
            vmask = self._read_v(0, vl) != 0
            self._wv(inst.rd, np.where(vmask, s, a), m)
        elif mn == "vmerge.vim":
            a = self._read_v(inst.rs1, vl)
            vmask = self._read_v(0, vl) != 0
            self._wv(inst.rd, np.where(
                vmask, vo.to_pattern(np.int64(inst.imm), sew), a), m)
        elif mn == "vmv.v.i":
            self._wv(inst.rd, np.full(
                (self.n, vl), vo.to_pattern(np.int64(inst.imm), sew),
                dtype=np.uint64), m)
        elif mn == "vmv.v.x":
            s = vo.to_pattern(self.xr[inst.rs1], sew)
            self._wv(inst.rd, np.repeat(s[:, None], max(vl, 1), axis=1), m)
        elif mn == "vmv.v.v":
            self._wv(inst.rd, self._read_v(inst.rs1, vl).copy(), m)
        elif mn == "vid.v":
            self._wv(inst.rd, np.broadcast_to(
                np.arange(vl, dtype=np.uint64), (self.n, vl)), m)
        elif mn == "vfmv.v.f":
            s = vo.float_to_bits(self.fr[inst.rs1], sew)
            self._wv(inst.rd, np.repeat(s[:, None], max(vl, 1), axis=1), m)
        elif mn == "vmv.x.s":
            values = self.vr[inst.rs1]
            if values is None or values.shape[-1] == 0:
                self._wx(inst.rd, np.int64(0), m)
            else:
                self._wx(inst.rd, vo.sign_extend(values[:, 0], sew), m)
        elif mn == "vmv.s.x":
            cur = self.vr[inst.rd]
            k = cur.shape[-1] if cur is not None and cur.shape[-1] else 1
            arr = self._read_v(inst.rd, k).copy()
            arr[:, 0] = vo.to_pattern(self.xr[inst.rs1], sew)
            self._wv(inst.rd, arr, m)
        elif mn == "vfmv.f.s":
            values = self.vr[inst.rs1]
            if values is None or values.shape[-1] == 0:
                self._wf(inst.rd, 0.0, m)
            else:
                self._wf(inst.rd, vo.bits_to_float(values[:, 0], sew), m)
        else:
            raise LaunchFallback(f"unsupported vector mnemonic {mn}")

    def _exec_vred(self, inst: Instruction, m: np.ndarray | None) -> None:
        mn = inst.mnemonic
        sew = self._cur_sew(m)
        vl = self._eff_vl(m, sew)
        va = self._read_v(inst.rs1, vl)
        seed = self._read_v(inst.rs2, max(vl, 1))[:, 0]

        # Element accumulation is an *ordered* loop over the (tiny) vl so
        # float rounding matches the scalar executor exactly.
        if mn == "vredsum.vs":
            acc = vo.sign_extend(seed, sew)
            vs = vo.sign_extend(va, sew)
            for j in range(vl):
                acc = acc + vs[:, j]
            result = vo.to_pattern(acc, sew)
        elif mn in ("vredmax.vs", "vredmin.vs"):
            fold = np.maximum if mn == "vredmax.vs" else np.minimum
            acc = vo.sign_extend(seed, sew)
            vs = vo.sign_extend(va, sew)
            for j in range(vl):
                acc = fold(acc, vs[:, j])
            result = vo.to_pattern(acc, sew)
        elif mn == "vfredusum.vs":
            acc = vo.bits_to_float(seed, sew)
            vs = vo.bits_to_float(va, sew)
            for j in range(vl):
                acc = acc + vs[:, j]
            result = vo.float_to_bits(acc, sew)
        elif mn == "vfredmax.vs":
            acc = vo.bits_to_float(seed, sew)
            vs = vo.bits_to_float(va, sew)
            for j in range(vl):
                acc = np.maximum(acc, vs[:, j])
            result = vo.float_to_bits(acc, sew)
        else:
            raise LaunchFallback(f"unsupported reduction {mn}")
        self._wv(inst.rd, np.asarray(result, dtype=np.uint64)[:, None], m)

    # -- profile -----------------------------------------------------------

    def _build_profile(self) -> SimtPhaseProfile:
        streams: list[tuple[np.ndarray, bool]] = []
        for step in self._steps:
            if step.paddrs is not None and step.paddrs.size:
                sectors = step_sectors(step.paddrs, step.size,
                                       self._sector_bytes)
                streams.append((sectors, step.op in ("store", "amo")))
        merged_addrs, merged_writes = merge_streams(streams)
        page_count = int(np.unique(
            merged_addrs >> np.int64(PAGE_SHIFT)).size
        ) if merged_addrs.size else 0
        return SimtPhaseProfile(
            kind=self.kind.value,
            n=self.n,
            unit_of_lane=self.unit_of_lane,
            steps=self._steps,
            instr_steps=self._executed,
            lane_instructions=self._lane_instructions,
            fu_counts=self._fu_counts,
            lat_cycles=self._lat_cycles,
            mem_lat=self._mem_lat,
            merged_addrs=merged_addrs,
            merged_writes=merged_writes,
            page_count=page_count,
            global_bytes=self._global_bytes,
            global_accesses=self._global_accesses,
            spad_bytes=self._spad_bytes,
            atomics=self._atomics,
            spad_counters={
                u: tuple(row) for u, row in self._spad_counters.items()
            },
        )


# ---------------------------------------------------------------------------
# whole-launch plan: phases, shadows, undo, timing
# ---------------------------------------------------------------------------


class SimtPlan:
    """Run one launch through the masked engine, phase by phase.

    ``run()`` walks initializer -> bodies -> finalizer with the barrier
    semantics of :class:`~repro.ndp.generator.KernelExecution`: each
    phase's buffered global stores commit at its barrier (with undo
    records), scratchpad effects accumulate on per-unit shadows, and a
    fallback or stale-trace abort anywhere rolls the whole launch back so
    the interpreter re-executes it from pristine state.
    """

    def __init__(self, device, execution: KernelExecution,
                 entry=None) -> None:
        self.device = device
        self.execution = execution
        self.entry = entry
        self.translator = Translator(
            device.page_table(execution.instance.asid))
        self.spad_shadows: dict[int, np.ndarray] = {}
        self.undo: list[tuple[np.ndarray, np.ndarray]] = []
        self.profiles: list[SimtPhaseProfile] = []
        self._committed = False

    # -- scratchpad shadows ------------------------------------------------

    def spad_view(self, unit: int, write: bool) -> np.ndarray:
        """``unit`` is plan-local; shadows map to the physical unit."""
        shadow = self.spad_shadows.get(unit)
        if shadow is not None:
            return shadow
        real = self.device.units[
            self.execution.unit_base + unit].scratchpad.view()
        if not write:
            return real
        shadow = real.copy()
        self.spad_shadows[unit] = shadow
        return shadow

    def push_undo(self, paddrs: np.ndarray, rows: np.ndarray) -> None:
        self.undo.append((paddrs, rows))

    # -- lane layouts (mirror repro.ndp.generator._PhasePlan) ---------------

    def _phase_lanes(self, phase: Phase):
        instance = self.execution.instance
        num_units = self.execution.num_units
        if phase is Phase.BODY:
            n = instance.num_body_uthreads
            idx = np.arange(n, dtype=np.int64)
            stride = np.int64(instance.uthread_stride)
            x1 = np.int64(instance.pool_base) + idx * stride
            x2 = np.int64(instance.offset_bias) + idx * stride
            unit_of_lane = idx % np.int64(num_units)
            return n, x1, x2, unit_of_lane
        slots = self.execution.slots_per_unit
        n = num_units * slots
        lane = np.arange(n, dtype=np.int64)
        x1 = lane // np.int64(slots)        # NDP unit index
        x2 = lane % np.int64(slots)         # slot-local unique ID
        return n, x1, x2, x1.copy()

    # -- execution ----------------------------------------------------------

    def run(self) -> "SimtPlan":
        program = self.execution.instance.kernel.program
        phases: list[tuple[Phase, object]] = []
        if program.initializer is not None:
            phases.append((Phase.INITIALIZER, program.initializer))
        for body in program.bodies:
            phases.append((Phase.BODY, body))
        if program.finalizer is not None:
            phases.append((Phase.FINALIZER, program.finalizer))

        entry_profiles = self.entry.profiles if self.entry is not None else None
        try:
            # Only phases that actually spawn lanes are executed (and
            # recorded), so cached profiles index by *executed* phase.
            executed = []
            for kind, section in phases:
                n, x1, x2, unit_of_lane = self._phase_lanes(kind)
                if n:
                    executed.append((kind, section, n, x1, x2, unit_of_lane))
            if (entry_profiles is not None
                    and len(entry_profiles) != len(executed)):
                from repro.exec.trace_cache import StaleTrace
                raise StaleTrace("phase count diverged from cached trace")
            for i, (kind, section, n, x1, x2, unit_of_lane) in enumerate(
                    executed):
                walk = _PhaseWalk(
                    self, kind, section, n, x1, x2, unit_of_lane,
                    entry_profiles[i] if entry_profiles is not None else None,
                )
                profile = walk.run()
                self._commit_stores(walk)
                self.profiles.append(profile)
        except BaseException:
            self.rollback()
            raise
        return self

    def _commit_stores(self, walk: _PhaseWalk) -> None:
        """Phase barrier: land buffered global stores, keeping undo."""
        physical = self.device.physical
        for paddrs, rows in walk.store_log:
            old = physical.gather_rows(paddrs, rows.shape[-1])
            self.push_undo(paddrs, old)
            physical.scatter_rows(paddrs, rows)

    def rollback(self) -> None:
        """Restore every byte the aborted walk changed (reverse order)."""
        physical = self.device.physical
        for paddrs, rows in reversed(self.undo):
            physical.scatter_rows(paddrs, rows)
        self.undo.clear()
        self.spad_shadows.clear()

    def commit(self) -> None:
        """Launch success: write scratchpad shadows back, flush counters."""
        stats = self.device.stats
        unit_base = self.execution.unit_base
        for unit, shadow in self.spad_shadows.items():
            self.device.units[unit_base + unit].scratchpad.view()[:] = shadow
        for profile in self.profiles:
            for unit, (reads, writes, atomics, bytes_) in (
                    profile.spad_counters.items()):
                prefix = f"unit{unit_base + unit}.spad"
                if reads:
                    stats.add(f"{prefix}.reads", reads)
                if writes:
                    stats.add(f"{prefix}.writes", writes)
                if atomics:
                    stats.add(f"{prefix}.atomics", atomics)
                if bytes_:
                    stats.add(f"{prefix}.bytes", bytes_)
            if profile.atomics:
                stats.add("ndp.global_atomics", profile.atomics)
        self.undo.clear()
        self._committed = True

    # -- timing -------------------------------------------------------------

    def schedule(self, now_ns: float) -> None:
        """Charge the launch analytically and schedule its completion."""
        device = self.device
        cfg = device.config.ndp
        stats = device.stats
        period = cfg.clock.period_ns
        num_units = self.execution.num_units
        units = device.units[self.execution.unit_base:
                             self.execution.unit_base + num_units]
        subcores = cfg.subcores_per_unit
        slots_per_unit = cfg.subcores_per_unit * cfg.uthread_slots_per_subcore
        granularity = units[0].occupancy.subcores[0].spawn_granularity
        fu_width = {
            FUnit.SALU: cfg.scalar_alus_per_subcore,
            FUnit.VALU: cfg.vector_alus_per_subcore,
        }
        execution = self.execution
        t = max(now_ns, device.sim.now)
        total_instructions = 0
        total_lanes = 0
        tracer = None
        launch_span = None
        if obs_tracer.ENABLED:
            tracer = obs_tracer.tracer_of(device.sim)
            launch_span = tracer.begin(
                "exec.simt", t + SPAWN_LATENCY_NS, pid=device.trace_pid,
                instance=execution.instance.instance_id,
                phases=len(self.profiles),
                trace_cache="hit" if getattr(self, "cache_hit", False)
                else "miss")

        for profile in self.profiles:
            start = t + SPAWN_LATENCY_NS
            n = profile.n
            total_instructions += profile.lane_instructions
            total_lanes += n

            # --- issue-throughput bound + bulk sub-core pressure ---------
            # Spread the launch's *exact* op totals across the sub-cores
            # (remainders one op at a time, unit 0 first — where a tiny
            # launch's lanes actually sit) instead of ceil-ing per
            # sub-core, which would charge a one-µthread kvstore launch
            # ~128x its real instruction count.
            n_sub = num_units * subcores
            per_subcore = profile.lane_instructions / n_sub
            compute_ns = per_subcore * period / cfg.issue_width
            d_base, d_rem = divmod(profile.lane_instructions, n_sub)
            fu_split = {}
            for fu, count in profile.fu_counts.items():
                compute_ns = max(compute_ns,
                                 count / n_sub * period / fu_width.get(fu, 1))
                fu_split[fu] = divmod(count, n_sub)
            sub_i = 0
            for unit in units:
                for subcore in unit.subcores:
                    ops = d_base + (1 if sub_i < d_rem else 0)
                    if ops:
                        subcore.dispatch.service_batch(start, ops)
                        subcore.instructions_issued += ops
                    for fu, (f_base, f_rem) in fu_split.items():
                        f_ops = f_base + (1 if sub_i < f_rem else 0)
                        if f_ops:
                            subcore.units[fu].service_batch(start, f_ops)
                    sub_i += 1

            # --- traffic + footprint stats -------------------------------
            if profile.global_bytes:
                stats.add("ndp.global_traffic_bytes", profile.global_bytes)
                stats.add("ndp.global_accesses", profile.global_accesses)
            if profile.spad_bytes:
                stats.add("ndp.spad_traffic_bytes", profile.spad_bytes)
            if profile.merged_addrs.size:
                stats.add("ndp.tlb_fill",
                          profile.page_count * min(num_units, n))

            # --- latency floor: per-unit chunked-wave model --------------
            lat = profile.lat_cycles * period + profile.mem_lat
            floor = _latency_floor(lat, profile.unit_of_lane,
                                   slots_per_unit, granularity)
            window = max(compute_ns, floor, period)

            # --- memory-system bound: sector stream through L2/DRAM ------
            completion = start + window
            merged = profile.merged_addrs.size
            mem_done = None
            if merged:
                dt = window / merged
                arrivals = start + dt * np.arange(merged)
                mem_done = device.l2_dram_access_batch(
                    profile.merged_addrs, arrivals, profile.merged_writes,
                    partition=execution.partition,
                )
                completion = max(completion, mem_done)

            if tracer is not None:
                phase_span = tracer.record(
                    "exec.simt.phase", start, completion,
                    parent=launch_span, pid=device.trace_pid, lanes=n)
                if mem_done is not None:
                    tracer.record("mem.charge", start, mem_done,
                                  parent=phase_span, pid=device.trace_pid,
                                  sectors=merged)

            ratio = min(int(profile.unit_of_lane.size and np.bincount(
                profile.unit_of_lane, minlength=num_units).max()),
                slots_per_unit) / slots_per_unit
            for unit in units:
                unit.occupancy.sampler.record(start, ratio)
            t = completion

        if tracer is not None:
            tracer.end(launch_span, t)
        stats.add("ndp.instructions", total_instructions)
        stats.add("ndp.uthreads_spawned", total_lanes)
        stats.add("ndp.uthreads_finished", total_lanes)

        instance = execution.instance
        done_instructions = total_instructions

        def finish() -> None:
            now = device.sim.now
            instance.instructions += done_instructions
            instance.uthreads_done = instance.uthreads_total
            for unit in units:
                unit.occupancy.sampler.record(now, 0.0)
            execution.finish_now(now)

        device.sim.schedule_at(t, finish)


def _latency_floor(lat: np.ndarray, unit_of_lane: np.ndarray,
                   slots_per_unit: int, granularity: int) -> float:
    """Serial-latency floor of one phase under FGMT occupancy.

    Lanes land on their unit in spawn order and occupy µthread slots in
    groups of ``granularity`` (the Fig 12a "w/o fine-grained" ablation:
    a group's slots free only when its *slowest* lane finishes, so
    coarse spawning serializes behind stragglers).  Each unit's floor is
    the busiest slot-group's summed group latencies; with ``granularity
    == 1`` and uniform lanes this reduces to the classic
    ``waves x thread latency`` bound.
    """
    floor = 0.0
    g = max(1, min(granularity, slots_per_unit))
    groups = max(slots_per_unit // g, 1)
    for u in np.unique(unit_of_lane):
        unit_lat = lat[unit_of_lane == u]
        k = unit_lat.size
        if not k:
            continue
        pad = (-k) % g
        if pad:
            unit_lat = np.concatenate([unit_lat, np.zeros(pad)])
        chunks = unit_lat.reshape(-1, g).max(axis=1)
        c = chunks.size
        pad2 = (-c) % groups
        if pad2:
            chunks = np.concatenate([chunks, np.zeros(pad2)])
        busy = chunks.reshape(-1, groups).sum(axis=0)
        floor = max(floor, float(busy.max()))
    return floor
