"""Cross-launch trace cache for the batched execution backend.

Tracing a launch — walking the kernel body over all µthreads while
recording its memory steps, then deriving the sector-unique address
streams the timing fill-in charges — costs far more than the numpy
functional replay itself.  But the paper's whole point is that launches
repeat: a serving workload issues the *same* kernel over the *same* pool
slices millions of times (§V's KVStore/OLAP streams), and the cluster
scheduler multiplies every logical launch into per-device sub-launches of
identical shape.  This module memoizes everything about a launch that is
a pure function of (kernel code, pool region, stride, offset bias, ASID,
argument bytes) and the device's translation state:

* the dynamic trace aggregates (per-FU instruction counts, latency sum),
* each memory step's translated address vector, and
* the launch's deduplicated, proportionally merged sector stream plus
  page footprint.

A cache hit re-runs only the numpy functional replay (data may have
changed — outputs must stay byte-identical) and verifies each step's
address vector against the cached one; the sector derivation, stream
merge and trace bookkeeping are skipped, and the timing fill-in charges
the cached stream through the live L2/DRAM servers.  Launch-uniform
walks cache :class:`TraceEntry`; masked SIMT launches (divergent /
atomic / phased kernels, which used to bypass the cache entirely via
interpreter fallback) cache :class:`SimtTraceEntry`, whose per-phase
profiles include every memory step's recorded *mask schedule*.  Any
divergence — different addresses, different control flow or active-lane
masks, a remapped page (the device's ``translation_version``) —
invalidates the entry and falls back to a full trace, so the cache can
change wall-clock time but never results.

``REPRO_TRACE_CACHE=0`` disables the cache entirely (every launch takes
the full trace path); ``REPRO_TRACE_CACHE_CAPACITY`` bounds the number of
retained entries (LRU, default 64).

Point launches (n <= lane width, :mod:`repro.exec.point`) cache
:class:`PointPathEntry` *families*: one cache slot per **structural** key
holding the distinct control-flow paths observed for that kernel shape.
Their key deliberately omits the pool base and the raw argument bytes —
the recorded path carries symbolic address/branch expressions that are
re-evaluated against the live launch, so a KVS GET for key A replays a
path recorded for key B as long as both walks take the same branches
(``exec.trace_cache_hits_generalized`` counts such hits).
``REPRO_TRACE_CACHE_GENERALIZE=0`` restores exact-value keys (pool base,
bound, bias and argument bytes all pinned), the pre-generalization
behaviour.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.isa.encoding import FUnit

#: Default number of cached launch shapes kept per device.
DEFAULT_CAPACITY = 64

#: Distinct control-flow paths retained per point-launch family (one
#: family occupies one LRU slot; a hash-chain walk needs roughly
#: depth x first-mismatch-word paths, well under this).
MAX_POINT_PATHS = 16


class StaleTrace(Exception):
    """A cached trace no longer matches the launch's observed behaviour."""


def kernel_code_hash(program) -> int:
    """Structural hash of one kernel body's decoded instructions.

    Memoized on the program object: cluster runtimes re-register the same
    kernel source per logical launch, producing fresh ``Program`` objects
    with identical instruction streams, so the hash must follow content,
    not identity.
    """
    cached = getattr(program, "_trace_code_hash", None)
    if cached is not None:
        return cached
    digest = hash(tuple(
        (inst.mnemonic, inst.rd, inst.rs1, inst.rs2, inst.rs3, inst.imm,
         inst.target, inst.size)
        for inst in program.instructions
    ))
    try:
        program._trace_code_hash = digest
    except AttributeError:  # pragma: no cover - slotted program objects
        pass
    return digest


def trace_key(execution) -> tuple:
    """Cache key for one launch: kernel identity plus launch geometry.

    The argument *bytes* are part of the key (not just their shape):
    kernels read pointers and scalars out of the argument block, so two
    launches with different arguments trace different address streams.
    """
    instance = execution.instance
    return (
        kernel_code_hash(instance.kernel.program.bodies[0]),
        instance.pool_base,
        instance.pool_bound,
        instance.uthread_stride,
        instance.offset_bias,
        instance.asid,
        instance.args,
    )


def point_key(execution, generalize: bool = True) -> tuple:
    """Structural cache key for a point launch (n <= lane width).

    With ``generalize`` the key is value-free: code hash, stride, ASID
    and argument-block *length* only.  Pool base, offset bias and the
    argument bytes are excluded because the cached path stores them
    symbolically (see :mod:`repro.exec.point`) and re-resolves them
    against the live launch; relational branch guards + verified load
    bytes ensure a path only replays when it reproduces the launch's
    exact control flow.  Without ``generalize`` every value is pinned,
    restoring exact-key (pre-generalization) matching.
    """
    instance = execution.instance
    code = kernel_code_hash(instance.kernel.program.bodies[0])
    if not generalize:
        return ("point", code, instance.pool_base, instance.pool_bound,
                instance.uthread_stride, instance.offset_bias,
                instance.asid, instance.args)
    return ("point", code, instance.uthread_stride, instance.asid,
            len(instance.args))


@dataclass
class PointPathEntry:
    """One recorded control-flow path of a point launch's body walk.

    ``steps`` is the ordered event stream the verified replay consumes:
    ``('mem', pre_cycles, accesses)`` items interleaved with
    ``('br', mnemonic, a_spec, b_spec, taken)`` relational guards.
    Access/operand specs are either concrete values or ``('lin', ...)``
    expressions over the live launch's ``x1``/``x2``/``x3`` bases and
    earlier load results — see :mod:`repro.exec.point` for the algebra.
    """

    translation_version: int
    steps: list
    tail_cycles: int
    trace_len: int
    fu_counts: dict
    #: (pool_base, offset_bias, args) of the recording launch — a hit
    #: from any other launch is a *generalized* hit.
    exemplar: tuple
    #: per-mem-step latency deltas recorded from the last live-charged
    #: execution of this path; replays re-apply them instead of walking
    #: the memory-system servers, refreshing periodically (see
    #: ``repro.exec.point._REFRESH_PERIOD``)
    lat: list = field(default_factory=list)
    #: precomputed ``sum(lat)`` (non-refresh replays apply the total)
    lat_sum: float = 0.0
    #: successful replays so far (observability: per-path popularity)
    replays: int = 0

    @property
    def verify_bytes(self) -> int:
        """Total load bytes the replay re-checks (observability)."""
        total = 0
        for step in self.steps:
            if step[0] != "mem":
                continue
            for access in step[2]:
                if access[0] == "ld" and access[5] is not None:
                    total += len(access[5])
        return total


class PointTrieNode:
    """One node of a point family's control-flow decision trie.

    All paths of a family share step prefixes up to their first
    differing branch outcome, so the family is stored as a trie: a node
    carries the run of memory steps every path through it shares
    (``mems``), then either branches on one relational guard
    (``guard`` + ``children`` keyed by outcome) or terminates a path
    (``entry``).  Replay walks the trie once — shared prefixes are
    resolved exactly once per lane, and reaching an outcome with no
    child is a clean miss (a control path never yet recorded).
    """

    __slots__ = ("mems", "guard", "children", "entry")

    def __init__(self) -> None:
        self.mems: list = []
        #: (mnemonic, a_spec, b_spec) of the branching guard, or None
        self.guard: tuple | None = None
        self.children: dict[bool, "PointTrieNode"] = {}
        self.entry: PointPathEntry | None = None


def _build_trie(steps: list, i: int, entry: PointPathEntry) -> PointTrieNode:
    """Chain of fresh trie nodes for a path suffix ``steps[i:]``."""
    node = PointTrieNode()
    while i < len(steps) and steps[i][0] == "mem":
        node.mems.append(steps[i])
        i += 1
    if i < len(steps):
        guard = steps[i]
        node.guard = (guard[1], guard[2], guard[3])
        node.children[guard[4]] = _build_trie(steps, i + 1, entry)
    else:
        node.entry = entry
    return node


@dataclass
class PointFamily:
    """All cached paths of one structural point key (one LRU slot)."""

    translation_version: int
    root: PointTrieNode = field(default_factory=PointTrieNode)
    leaves: int = 0
    #: successful replays across the family (drives latency refresh)
    replays: int = 0

    def insert(self, steps: list, entry: PointPathEntry) -> bool:
        """Merge one recorded path into the trie.

        Returns False on a structural conflict — the new path shares a
        guard-outcome prefix with a cached one but records different
        steps (e.g. different verified bytes), which deterministic
        control flow makes vanishingly rare; the caller drops the
        family and starts fresh.
        """
        if self.leaves >= MAX_POINT_PATHS:
            return True                  # full: keep the established paths
        node = self.root
        i = 0
        while True:
            for mem in node.mems:
                if i >= len(steps) or steps[i] != mem:
                    return False
                i += 1
            if node.guard is not None:
                if i >= len(steps):
                    return False
                step = steps[i]
                if step[0] != "br" or (step[1], step[2], step[3]) != node.guard:
                    return False
                i += 1
                child = node.children.get(step[4])
                if child is None:
                    node.children[step[4]] = _build_trie(steps, i, entry)
                    self.leaves += 1
                    return True
                node = child
            elif node.entry is not None:
                if i != len(steps):
                    return False
                node.entry = entry       # re-recorded after staleness
                return True
            else:                        # empty root: first path
                fresh = _build_trie(steps, i, entry)
                node.mems = fresh.mems
                node.guard = fresh.guard
                node.children = fresh.children
                node.entry = fresh.entry
                self.leaves += 1
                return True


@dataclass
class CachedStep:
    """One recorded memory step of the trace (all µthreads at once)."""

    is_spad: bool
    size: int
    is_write: bool
    #: virtual / physical start-address vectors of the step (global steps
    #: only); the replay verifies its freshly computed addresses against
    #: ``vaddrs`` and reuses ``paddrs``, skipping translation
    vaddrs: np.ndarray | None = None
    paddrs: np.ndarray | None = None
    #: unique sectors this step contributes to the timing stream
    sector_count: int = 0


@dataclass
class TraceEntry:
    """Everything reusable about one traced launch-uniform launch."""

    translation_version: int
    trace_len: int
    latency_cycles: int
    fu_counts: dict[FUnit, int]
    steps: list[CachedStep] = field(default_factory=list)
    merged_addrs: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    merged_writes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=bool))
    page_count: int = 0


@dataclass
class SimtTraceEntry:
    """Cached schedule of a masked SIMT launch (divergent / atomic / phased).

    ``profiles`` holds one :class:`~repro.exec.simt.SimtPhaseProfile` per
    executed phase — including every memory step's **mask schedule** (the
    per-element active-lane vector) and address vectors.  A hit re-runs the
    functional walk and verifies each step's lanes and addresses against
    the recording; any divergence (a chain grew, a branch flipped, a page
    remapped) raises :class:`StaleTrace` and the launch retraces from
    scratch, so caching divergent and atomic traces can change wall-clock
    time but never results or ``runtime_ns``.
    """

    translation_version: int
    profiles: list = field(default_factory=list)


class TraceCache:
    """Per-device LRU cache of :class:`TraceEntry` keyed by launch shape."""

    def __init__(self, enabled: bool = True,
                 capacity: int = DEFAULT_CAPACITY,
                 generalize: bool = True) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.generalize = generalize
        self._entries: OrderedDict[tuple, TraceEntry] = OrderedDict()

    @classmethod
    def from_env(cls) -> "TraceCache":
        enabled = os.environ.get("REPRO_TRACE_CACHE", "1") != "0"
        capacity = int(os.environ.get("REPRO_TRACE_CACHE_CAPACITY",
                                      DEFAULT_CAPACITY))
        generalize = os.environ.get("REPRO_TRACE_CACHE_GENERALIZE",
                                    "1") != "0"
        return cls(enabled=enabled, capacity=capacity, generalize=generalize)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, translation_version: int) -> TraceEntry | None:
        """Return a fresh entry or None; stale entries are dropped here."""
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.translation_version != translation_version:
            # memory layout changed under the trace: invalidate
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return entry

    def store(self, key: tuple, entry: TraceEntry) -> None:
        if not self.enabled:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, key: tuple) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    # -- point-launch path families -----------------------------------

    def lookup_point(self, key: tuple,
                     translation_version: int) -> PointFamily | None:
        """Fresh path-trie family for a structural point key, or None."""
        if not self.enabled:
            return None
        family = self._entries.get(key)
        if not isinstance(family, PointFamily):
            return None
        if family.translation_version != translation_version:
            # memory layout changed under the recorded paths: invalidate
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return family

    def store_point(self, key: tuple, translation_version: int,
                    entry: PointPathEntry) -> None:
        if not self.enabled:
            return
        family = self._entries.get(key)
        if (not isinstance(family, PointFamily)
                or family.translation_version != translation_version):
            family = PointFamily(translation_version=translation_version)
        if not family.insert(entry.steps, entry):
            # structural conflict: restart the family with the fresh path
            family = PointFamily(translation_version=translation_version)
            family.insert(entry.steps, entry)
        self._entries[key] = family
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_point(self, key: tuple) -> None:
        """Drop a whole family (stale verified bytes somewhere in it)."""
        family = self._entries.get(key)
        if isinstance(family, PointFamily):
            del self._entries[key]
