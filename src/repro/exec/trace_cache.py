"""Cross-launch trace cache for the batched execution backend.

Tracing a launch — walking the kernel body over all µthreads while
recording its memory steps, then deriving the sector-unique address
streams the timing fill-in charges — costs far more than the numpy
functional replay itself.  But the paper's whole point is that launches
repeat: a serving workload issues the *same* kernel over the *same* pool
slices millions of times (§V's KVStore/OLAP streams), and the cluster
scheduler multiplies every logical launch into per-device sub-launches of
identical shape.  This module memoizes everything about a launch that is
a pure function of (kernel code, pool region, stride, offset bias, ASID,
argument bytes) and the device's translation state:

* the dynamic trace aggregates (per-FU instruction counts, latency sum),
* each memory step's translated address vector, and
* the launch's deduplicated, proportionally merged sector stream plus
  page footprint.

A cache hit re-runs only the numpy functional replay (data may have
changed — outputs must stay byte-identical) and verifies each step's
address vector against the cached one; the sector derivation, stream
merge and trace bookkeeping are skipped, and the timing fill-in charges
the cached stream through the live L2/DRAM servers.  Launch-uniform
walks cache :class:`TraceEntry`; masked SIMT launches (divergent /
atomic / phased kernels, which used to bypass the cache entirely via
interpreter fallback) cache :class:`SimtTraceEntry`, whose per-phase
profiles include every memory step's recorded *mask schedule*.  Any
divergence — different addresses, different control flow or active-lane
masks, a remapped page (the device's ``translation_version``) —
invalidates the entry and falls back to a full trace, so the cache can
change wall-clock time but never results.

``REPRO_TRACE_CACHE=0`` disables the cache entirely (every launch takes
the full trace path); ``REPRO_TRACE_CACHE_CAPACITY`` bounds the number of
retained entries (LRU, default 64).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.isa.encoding import FUnit

#: Default number of cached launch shapes kept per device.
DEFAULT_CAPACITY = 64


class StaleTrace(Exception):
    """A cached trace no longer matches the launch's observed behaviour."""


def kernel_code_hash(program) -> int:
    """Structural hash of one kernel body's decoded instructions.

    Memoized on the program object: cluster runtimes re-register the same
    kernel source per logical launch, producing fresh ``Program`` objects
    with identical instruction streams, so the hash must follow content,
    not identity.
    """
    cached = getattr(program, "_trace_code_hash", None)
    if cached is not None:
        return cached
    digest = hash(tuple(
        (inst.mnemonic, inst.rd, inst.rs1, inst.rs2, inst.rs3, inst.imm,
         inst.target, inst.size)
        for inst in program.instructions
    ))
    try:
        program._trace_code_hash = digest
    except AttributeError:  # pragma: no cover - slotted program objects
        pass
    return digest


def trace_key(execution) -> tuple:
    """Cache key for one launch: kernel identity plus launch geometry.

    The argument *bytes* are part of the key (not just their shape):
    kernels read pointers and scalars out of the argument block, so two
    launches with different arguments trace different address streams.
    """
    instance = execution.instance
    return (
        kernel_code_hash(instance.kernel.program.bodies[0]),
        instance.pool_base,
        instance.pool_bound,
        instance.uthread_stride,
        instance.offset_bias,
        instance.asid,
        instance.args,
    )


@dataclass
class CachedStep:
    """One recorded memory step of the trace (all µthreads at once)."""

    is_spad: bool
    size: int
    is_write: bool
    #: virtual / physical start-address vectors of the step (global steps
    #: only); the replay verifies its freshly computed addresses against
    #: ``vaddrs`` and reuses ``paddrs``, skipping translation
    vaddrs: np.ndarray | None = None
    paddrs: np.ndarray | None = None
    #: unique sectors this step contributes to the timing stream
    sector_count: int = 0


@dataclass
class TraceEntry:
    """Everything reusable about one traced launch-uniform launch."""

    translation_version: int
    trace_len: int
    latency_cycles: int
    fu_counts: dict[FUnit, int]
    steps: list[CachedStep] = field(default_factory=list)
    merged_addrs: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    merged_writes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=bool))
    page_count: int = 0


@dataclass
class SimtTraceEntry:
    """Cached schedule of a masked SIMT launch (divergent / atomic / phased).

    ``profiles`` holds one :class:`~repro.exec.simt.SimtPhaseProfile` per
    executed phase — including every memory step's **mask schedule** (the
    per-element active-lane vector) and address vectors.  A hit re-runs the
    functional walk and verifies each step's lanes and addresses against
    the recording; any divergence (a chain grew, a branch flipped, a page
    remapped) raises :class:`StaleTrace` and the launch retraces from
    scratch, so caching divergent and atomic traces can change wall-clock
    time but never results or ``runtime_ns``.
    """

    translation_version: int
    profiles: list = field(default_factory=list)


class TraceCache:
    """Per-device LRU cache of :class:`TraceEntry` keyed by launch shape."""

    def __init__(self, enabled: bool = True,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._entries: OrderedDict[tuple, TraceEntry] = OrderedDict()

    @classmethod
    def from_env(cls) -> "TraceCache":
        enabled = os.environ.get("REPRO_TRACE_CACHE", "1") != "0"
        capacity = int(os.environ.get("REPRO_TRACE_CACHE_CAPACITY",
                                      DEFAULT_CAPACITY))
        return cls(enabled=enabled, capacity=capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, translation_version: int) -> TraceEntry | None:
        """Return a fresh entry or None; stale entries are dropped here."""
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.translation_version != translation_version:
            # memory layout changed under the trace: invalidate
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return entry

    def store(self, key: tuple, entry: TraceEntry) -> None:
        if not self.enabled:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, key: tuple) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
