"""Exception types shared across the repro package.

Keeping all error classes in one module lets callers catch a single
:class:`ReproError` for any library-level failure while still allowing
precise handling of specific conditions (bad assembly, invalid launch
arguments, protocol violations, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class MemoryError_(ReproError):
    """Physical/virtual memory subsystem failure (bad address, overlap)."""


class TranslationFault(MemoryError_):
    """Virtual address has no mapping for the requesting ASID."""

    def __init__(self, asid: int, vaddr: int):
        super().__init__(f"no translation for ASID {asid:#x} vaddr {vaddr:#x}")
        self.asid = asid
        self.vaddr = vaddr


class AssemblerError(ReproError):
    """Malformed assembly source (unknown mnemonic, bad operand, ...)."""

    def __init__(self, message: str, line_no: int | None = None, line: str | None = None):
        location = f" (line {line_no}: {line!r})" if line_no is not None else ""
        super().__init__(message + location)
        self.line_no = line_no
        self.line = line


class ExecutionError(ReproError):
    """A µthread performed an illegal operation at runtime."""


class ProtocolError(ReproError):
    """CXL protocol misuse (malformed packet, illegal M2func call)."""


class LaunchError(ReproError):
    """NDP kernel registration/launch failed (mirrors Table II ERR codes)."""

    def __init__(self, message: str, code: int = -1):
        super().__init__(message)
        self.code = code


class LaunchFailed(LaunchError):
    """A launch was lost to a fault (device failure, timeout, poison).

    Unlike a plain :class:`LaunchError` — the device *rejected* the call
    with a Table II ERR code — a ``LaunchFailed`` means the launch was
    accepted but never completed: the device died, the watchdog fired,
    or a poisoned line faulted the µthreads.  ``device`` is the expander
    the launch was lost on (-1 when no single device is to blame) and
    ``reason`` a short machine-readable tag (``device_failure`` /
    ``timeout`` / ``poison``).
    """

    def __init__(self, message: str, device: int = -1,
                 reason: str = "device_failure"):
        super().__init__(message)
        self.device = device
        self.reason = reason


class DeviceUnavailable(LaunchError):
    """No routable device can take the launch (all DOWN or draining)."""

    def __init__(self, message: str, devices: tuple[int, ...] = ()):
        super().__init__(message)
        self.devices = devices


class PoisonError(MemoryError_):
    """A load touched a poisoned address range (CXL data-poison semantics)."""

    def __init__(self, base: int, size: int, addr: int | None = None):
        at = f" at {addr:#x}" if addr is not None else ""
        super().__init__(
            f"poisoned range [{base:#x}, {base + size:#x}) accessed{at}"
        )
        self.base = base
        self.size = size
        self.addr = addr


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""
