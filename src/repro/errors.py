"""Exception types shared across the repro package.

Keeping all error classes in one module lets callers catch a single
:class:`ReproError` for any library-level failure while still allowing
precise handling of specific conditions (bad assembly, invalid launch
arguments, protocol violations, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class MemoryError_(ReproError):
    """Physical/virtual memory subsystem failure (bad address, overlap)."""


class TranslationFault(MemoryError_):
    """Virtual address has no mapping for the requesting ASID."""

    def __init__(self, asid: int, vaddr: int):
        super().__init__(f"no translation for ASID {asid:#x} vaddr {vaddr:#x}")
        self.asid = asid
        self.vaddr = vaddr


class AssemblerError(ReproError):
    """Malformed assembly source (unknown mnemonic, bad operand, ...)."""

    def __init__(self, message: str, line_no: int | None = None, line: str | None = None):
        location = f" (line {line_no}: {line!r})" if line_no is not None else ""
        super().__init__(message + location)
        self.line_no = line_no
        self.line = line


class ExecutionError(ReproError):
    """A µthread performed an illegal operation at runtime."""


class ProtocolError(ReproError):
    """CXL protocol misuse (malformed packet, illegal M2func call)."""


class LaunchError(ReproError):
    """NDP kernel registration/launch failed (mirrors Table II ERR codes)."""

    def __init__(self, message: str, code: int = -1):
        super().__init__(message)
        self.code = code


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""
