"""Area model (§IV-F): CACTI-style estimates at 7 nm.

The paper reports, per NDP unit: 0.25 mm² of register files, 0.45 mm² of
unified L1/scratchpad, 0.002 mm² per µthread slot, 0.83 mm² total with
FPnew-class compute units [99]; 32 units cost 26.4 mm².  The GPU Iso-Area
comparison point (16.2 Ampere SMs) comes from the same methodology.

This module reproduces those numbers from structural parameters so the
ablations (e.g. "81 % smaller register file than an SM", "69 % less ALU
area") are derivable rather than hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import KIB, NDPConfig

# mm^2 per KiB of SRAM at 7 nm (CACTI 6.5 scaled).  The multiported RF
# array is calibrated on the paper's 48 KB = 0.25 mm²; the unified
# L1/scratchpad on its 128 KB = 0.45 mm².
MM2_PER_KIB_SRAM = 0.25 / 48
MM2_PER_KIB_CACHE = 0.45 / 128
MM2_PER_UTHREAD_SLOT = 0.002          # PC + CSR + decoded-op state
# FPnew-class compute units [99] are tiny at 7 nm; SRAM dominates the unit.
MM2_PER_SCALAR_ALU = 0.0006
MM2_PER_SCALAR_SFU = 0.0006
MM2_PER_VECTOR_ALU_LANE = 0.0003      # per 32-bit lane
MM2_FIXED_PER_SUBCORE = 0.002         # decode, dispatch, LSU queues
MM2_PER_TLB_ENTRY = 0.00001

# Ampere GA102 SM at comparable node.
GPU_SM_REGFILE_KIB = 256
GPU_SM_ALUS = 184                     # FP32 + INT32 lanes
GPU_SM_MM2 = 1.63                     # derived: 26.4 mm² / 16.2 SMs
# GPU register files are denser (heavily banked, fewer ports per bank).
GPU_MM2_PER_KIB_RF = 0.70 / 256


@dataclass
class AreaBreakdown:
    parts: dict[str, float]

    @property
    def total_mm2(self) -> float:
        return sum(self.parts.values())


def ndp_unit_area(config: NDPConfig | None = None) -> AreaBreakdown:
    """Area of one NDP unit (paper: 0.83 mm²)."""
    cfg = config if config is not None else NDPConfig()
    subcores = cfg.subcores_per_unit
    slots = subcores * cfg.uthread_slots_per_subcore
    vector_lanes = cfg.vector_bits // 32
    parts = {
        "register_file": cfg.regfile_bytes_per_unit / KIB * MM2_PER_KIB_SRAM,
        "l1_scratchpad": cfg.scratchpad_bytes / KIB * MM2_PER_KIB_CACHE,
        "uthread_slots": slots * MM2_PER_UTHREAD_SLOT,
        "scalar_alus": subcores * cfg.scalar_alus_per_subcore * MM2_PER_SCALAR_ALU,
        "scalar_sfus": subcores * MM2_PER_SCALAR_SFU,
        "vector_units": subcores * cfg.vector_alus_per_subcore
        * vector_lanes * MM2_PER_VECTOR_ALU_LANE,
        "frontend": subcores * MM2_FIXED_PER_SUBCORE,
        "tlbs": (cfg.itlb_entries + cfg.dtlb_entries) * MM2_PER_TLB_ENTRY,
    }
    return AreaBreakdown(parts=parts)


def m2ndp_total_area(config: NDPConfig | None = None) -> float:
    """All NDP units of the device (paper: 26.4 mm² for 32 units)."""
    cfg = config if config is not None else NDPConfig()
    return ndp_unit_area(cfg).total_mm2 * cfg.num_units


def gpu_sm_area() -> AreaBreakdown:
    """An Ampere-class SM under the same methodology."""
    register_file = GPU_SM_REGFILE_KIB * GPU_MM2_PER_KIB_RF
    l1_shared = 128 * MM2_PER_KIB_CACHE
    alus = GPU_SM_ALUS * MM2_PER_VECTOR_ALU_LANE
    parts = {
        "register_file": register_file,
        "l1_shared": l1_shared,
        "alus": alus,
        "frontend_other": GPU_SM_MM2 - register_file - l1_shared - alus,
    }
    return AreaBreakdown(parts=parts)


def iso_area_sm_count(config: NDPConfig | None = None) -> float:
    """SMs that fit in the M2NDP area budget (paper: 16.2)."""
    return m2ndp_total_area(config) / GPU_SM_MM2


def register_file_reduction_vs_sm(config: NDPConfig | None = None) -> float:
    """Fraction by which the per-unit RF is smaller than an SM's (paper: 81 %)."""
    cfg = config if config is not None else NDPConfig()
    return 1.0 - (cfg.regfile_bytes_per_unit / KIB) / GPU_SM_REGFILE_KIB


def alu_area_reduction_vs_sm(config: NDPConfig | None = None) -> float:
    """ALU area saved vs an SM (paper: 69 %)."""
    cfg = config if config is not None else NDPConfig()
    ndp_alu = (
        cfg.subcores_per_unit * cfg.scalar_alus_per_subcore * MM2_PER_SCALAR_ALU
        + cfg.subcores_per_unit * MM2_PER_SCALAR_SFU
        + cfg.subcores_per_unit * cfg.vector_alus_per_subcore
        * (cfg.vector_bits // 32) * MM2_PER_VECTOR_ALU_LANE
    )
    sm_alu = GPU_SM_ALUS * MM2_PER_VECTOR_ALU_LANE
    return 1.0 - ndp_alu / sm_alu
