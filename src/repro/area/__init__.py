"""Hardware cost model (§IV-F)."""

from repro.area.model import (
    AreaBreakdown,
    alu_area_reduction_vs_sm,
    gpu_sm_area,
    iso_area_sm_count,
    m2ndp_total_area,
    ndp_unit_area,
    register_file_reduction_vs_sm,
)

__all__ = [
    "AreaBreakdown",
    "alu_area_reduction_vs_sm",
    "gpu_sm_area",
    "iso_area_sm_count",
    "m2ndp_total_area",
    "ndp_unit_area",
    "register_file_reduction_vs_sm",
]
