"""Discrete-event simulation core (engine, clocks, statistics)."""

from repro.sim.clock import Clock
from repro.sim.engine import BandwidthServer, IssueServer, Simulator
from repro.sim.stats import (
    Distribution,
    IntervalSampler,
    StatsRegistry,
    geometric_mean,
    percentile,
)

__all__ = [
    "BandwidthServer",
    "Clock",
    "Distribution",
    "IntervalSampler",
    "IssueServer",
    "Simulator",
    "StatsRegistry",
    "geometric_mean",
    "percentile",
]
