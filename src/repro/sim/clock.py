"""Clock-domain helpers.

Every component in Table IV of the paper runs in its own frequency domain
(NDP units at 2 GHz, host GPU SMs at 1695 MHz, CPU cores at 3.2 GHz, DRAM at
its own tCK).  The global simulation time is nanoseconds; a :class:`Clock`
converts between that and component-local cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Clock:
    """A fixed-frequency clock domain.

    >>> ndp = Clock.from_ghz(2.0)
    >>> ndp.cycles_to_ns(4)
    2.0
    >>> ndp.ns_to_cycles(2.0)
    4.0
    """

    freq_ghz: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ConfigError(f"clock frequency must be positive, got {self.freq_ghz}")

    @classmethod
    def from_ghz(cls, freq_ghz: float) -> "Clock":
        return cls(freq_ghz=freq_ghz)

    @classmethod
    def from_mhz(cls, freq_mhz: float) -> "Clock":
        return cls(freq_ghz=freq_mhz / 1000.0)

    @classmethod
    def from_period_ns(cls, period_ns: float) -> "Clock":
        if period_ns <= 0:
            raise ConfigError(f"clock period must be positive, got {period_ns}")
        return cls(freq_ghz=1.0 / period_ns)

    @property
    def period_ns(self) -> float:
        """Duration of one cycle in nanoseconds."""
        return 1.0 / self.freq_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.freq_ghz

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.freq_ghz

    def scaled(self, factor: float) -> "Clock":
        """A clock running ``factor`` times faster (used by Fig 13a sweeps)."""
        return Clock(freq_ghz=self.freq_ghz * factor)
