"""Discrete-event simulation engine.

All timing models in the package share one global notion of time measured in
**nanoseconds** (floats).  The engine is a classic calendar queue built on
``heapq``: events are ``(time, sequence, callback)`` triples and execute in
nondecreasing time order, with the sequence number breaking ties FIFO so the
simulation is deterministic.

Two usage styles coexist:

* callback events (``schedule`` / ``run``) for open systems such as the
  KVStore client population or kernel launches arriving over time; and
* *virtual-time servers* (:class:`IssueServer`, :class:`BandwidthServer`)
  that model throughput-limited resources without per-cycle events.  A
  server hands out start times given an arrival time and charges occupancy,
  which is how sub-core issue slots, DRAM data buses and CXL link bandwidth
  are all modeled.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

# Events are plain (time, seq, callback) tuples: tuple comparison in the
# heap is much cheaper than a dataclass __lt__ on this hot path.


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], Any]]] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to fire ``delay`` ns after the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at an absolute timestamp."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the earliest event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        self.events_processed += 1
        callback()
        return True

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the next event is past ``until``.

        When ``until`` is given, time is advanced to exactly ``until`` after
        the last executed event so components can be sampled at that instant.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    break
                self.step()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind time to zero."""
        self.now = 0.0
        self._queue.clear()
        self._seq = 0
        self.events_processed = 0


class IssueServer:
    """Virtual-time model of a throughput-limited pipeline resource.

    A resource that accepts up to ``width`` operations per ``period`` ns is
    modeled by a running *virtual time*: each accepted operation advances it
    by ``period / width``.  An operation arriving at ``t`` starts at
    ``max(t, virtual_time)``.  This reproduces the long-run throughput limit
    and queueing delay of a ``width``-wide issue stage without simulating
    individual cycles.
    """

    def __init__(self, width: int, period_ns: float) -> None:
        if width <= 0 or period_ns <= 0:
            raise SimulationError("IssueServer needs positive width and period")
        self.width = width
        self.period_ns = period_ns
        self._cost = period_ns / width
        self._virtual_time = 0.0
        self.ops_issued = 0

    def issue(self, arrival_ns: float) -> float:
        """Accept one operation arriving at ``arrival_ns``; return start time."""
        start = arrival_ns if arrival_ns > self._virtual_time else self._virtual_time
        self._virtual_time = start + self._cost
        self.ops_issued += 1
        return start

    def next_free(self, arrival_ns: float) -> float:
        """Earliest start time for an op arriving at ``arrival_ns`` (no charge)."""
        return max(arrival_ns, self._virtual_time)

    @property
    def busy_until(self) -> float:
        return self._virtual_time

    def reset(self) -> None:
        self._virtual_time = 0.0
        self.ops_issued = 0


class BandwidthServer:
    """Virtual-time model of a bandwidth-limited channel (bytes per ns).

    Used for CXL link directions and DRAM data buses.  A transfer of ``size``
    bytes arriving at ``t`` starts once the channel drains previous traffic
    and occupies it for ``size / bw`` ns; the method returns the transfer's
    *finish* time.
    """

    def __init__(self, bytes_per_ns: float) -> None:
        if bytes_per_ns <= 0:
            raise SimulationError("BandwidthServer needs positive bandwidth")
        self.bytes_per_ns = bytes_per_ns
        self._busy_until = 0.0
        self.bytes_transferred = 0

    def transfer(self, arrival_ns: float, size_bytes: int) -> float:
        """Charge a transfer; returns the time its last byte leaves."""
        start = arrival_ns if arrival_ns > self._busy_until else self._busy_until
        finish = start + size_bytes / self.bytes_per_ns
        self._busy_until = finish
        self.bytes_transferred += size_bytes
        return finish

    def occupancy_end(self) -> float:
        return self._busy_until

    def reset(self) -> None:
        self._busy_until = 0.0
        self.bytes_transferred = 0
