"""Discrete-event simulation engine.

All timing models in the package share one global notion of time measured in
**nanoseconds** (floats).  The engine is a classic calendar queue built on
``heapq``: events are ``(time, sequence, callback)`` triples and execute in
nondecreasing time order, with the sequence number breaking ties FIFO so the
simulation is deterministic.

Two usage styles coexist:

* callback events (``schedule`` / ``run``) for open systems such as the
  KVStore client population or kernel launches arriving over time; and
* *virtual-time servers* (:class:`IssueServer`, :class:`BandwidthServer`)
  that model throughput-limited resources without per-cycle events.  A
  server hands out start times given an arrival time and charges occupancy,
  which is how sub-core issue slots, DRAM data buses and CXL link bandwidth
  are all modeled.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

import numpy as np

from repro.errors import SimulationError


def virtual_queue_finish(arrivals: np.ndarray, costs: np.ndarray,
                         busy_until: float = 0.0) -> np.ndarray:
    """Vectorized FIFO queue: finish times of ordered arrivals at one server.

    Solves ``finish[i] = max(arrival[i], finish[i-1]) + cost[i]`` (with
    ``finish[-1] = busy_until``) without a Python loop: writing
    ``C[i] = sum(cost[:i+1])`` the recurrence unrolls to
    ``finish[i] = C[i] + max(busy_until, max_{j<=i}(arrival[j] - C[j-1]))``,
    which is one ``cumsum`` and one running max.  This is the bulk analogue
    of calling :meth:`BandwidthServer.transfer` once per element.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if arrivals.size == 0:
        return arrivals.copy()
    cum = np.cumsum(costs) if costs.ndim else np.arange(1, arrivals.size + 1) * costs
    slack = arrivals - (cum - costs)
    return cum + np.maximum(np.maximum.accumulate(slack), busy_until)


def segmented_queue_finish(arrivals_plus_service: np.ndarray,
                           chain_costs: np.ndarray,
                           segment_ids: np.ndarray,
                           segment_init: np.ndarray) -> np.ndarray:
    """Max-plus queue recurrence solved independently per segment.

    Elements must be grouped so each segment is contiguous and
    ``segment_ids`` is nondecreasing (0..S-1).  Within a segment this solves

        done[i] = max(arrivals_plus_service[i],
                      done[i-1] + chain_costs[i]),   done[-1] = init[s]

    which models a pipelined resource (a DRAM bank, a channel bus) whose
    per-element completion depends on both its own arrival path and the
    previous element's completion.  The running max is computed for all
    segments at once by offsetting each segment into its own disjoint value
    band before ``np.maximum.accumulate`` (segments are short-lived virtual
    time windows, so the offset costs no precision that matters at ns
    scale).
    """
    n = arrivals_plus_service.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    cum = np.cumsum(chain_costs)
    starts = np.flatnonzero(np.diff(segment_ids, prepend=segment_ids[0] - 1))
    base = np.zeros(n, dtype=np.float64)
    base[starts] = cum[starts] - chain_costs[starts]
    seg_base = np.maximum.accumulate(np.where(base > 0, base, 0.0))
    # within-segment cumulative chain cost
    local_cum = cum - seg_base
    slack = arrivals_plus_service - local_cum
    # fold each segment's initial state into its first element
    slack[starts] = np.maximum(slack[starts], segment_init[segment_ids[starts]])
    span = float(slack.max() - slack.min()) + 1.0
    shifted = slack + segment_ids * span
    running = np.maximum.accumulate(shifted) - segment_ids * span
    return local_cum + running

# Events are plain (time, seq, callback) tuples: tuple comparison in the
# heap is much cheaper than a dataclass __lt__ on this hot path.


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], Any]]] = []
        self._seq = 0
        self._running = False
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to fire ``delay`` ns after the current time.

        Hot path: a nonnegative delay added to ``now`` can never land in
        the past, so the heap push is done directly with a single guard
        instead of re-validating through :meth:`schedule_at`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at an absolute timestamp."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the earliest event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        self.events_processed += 1
        callback()
        return True

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the next event is past ``until``.

        When ``until`` is given, time is advanced to exactly ``until`` after
        the last executed event so components can be sampled at that instant.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    break
                self.step()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind time to zero."""
        self.now = 0.0
        self._queue.clear()
        self._seq = 0
        self.events_processed = 0


class IssueServer:
    """Virtual-time model of a throughput-limited pipeline resource.

    A resource that accepts up to ``width`` operations per ``period`` ns is
    modeled by a running *virtual time*: each accepted operation advances it
    by ``period / width``.  An operation arriving at ``t`` starts at
    ``max(t, virtual_time)``.  This reproduces the long-run throughput limit
    and queueing delay of a ``width``-wide issue stage without simulating
    individual cycles.
    """

    def __init__(self, width: int, period_ns: float) -> None:
        if width <= 0 or period_ns <= 0:
            raise SimulationError("IssueServer needs positive width and period")
        self.width = width
        self.period_ns = period_ns
        self._cost = period_ns / width
        self._virtual_time = 0.0
        self.ops_issued = 0

    def issue(self, arrival_ns: float) -> float:
        """Accept one operation arriving at ``arrival_ns``; return start time."""
        start = arrival_ns if arrival_ns > self._virtual_time else self._virtual_time
        self._virtual_time = start + self._cost
        self.ops_issued += 1
        return start

    def service_batch(self, arrival_ns: float, count: int) -> float:
        """Charge ``count`` operations arriving together at ``arrival_ns``.

        Bulk analogue of ``count`` back-to-back :meth:`issue` calls (their
        virtual-time advance telescopes to one multiply); returns the time
        the last operation clears the resource.  Used by the batched
        execution backend to occupy sub-core dispatch/FU servers with a
        whole launch's instruction stream in O(1).
        """
        if count <= 0:
            return max(arrival_ns, self._virtual_time)
        start = arrival_ns if arrival_ns > self._virtual_time else self._virtual_time
        self._virtual_time = start + count * self._cost
        self.ops_issued += count
        return self._virtual_time

    def next_free(self, arrival_ns: float) -> float:
        """Earliest start time for an op arriving at ``arrival_ns`` (no charge)."""
        return max(arrival_ns, self._virtual_time)

    @property
    def busy_until(self) -> float:
        return self._virtual_time

    def reset(self) -> None:
        self._virtual_time = 0.0
        self.ops_issued = 0


class BandwidthServer:
    """Virtual-time model of a bandwidth-limited channel (bytes per ns).

    Used for CXL link directions and DRAM data buses.  A transfer of ``size``
    bytes arriving at ``t`` starts once the channel drains previous traffic
    and occupies it for ``size / bw`` ns; the method returns the transfer's
    *finish* time.
    """

    def __init__(self, bytes_per_ns: float) -> None:
        if bytes_per_ns <= 0:
            raise SimulationError("BandwidthServer needs positive bandwidth")
        self.bytes_per_ns = bytes_per_ns
        self._busy_until = 0.0
        self.bytes_transferred = 0

    def transfer(self, arrival_ns: float, size_bytes: int) -> float:
        """Charge a transfer; returns the time its last byte leaves."""
        start = arrival_ns if arrival_ns > self._busy_until else self._busy_until
        finish = start + size_bytes / self.bytes_per_ns
        self._busy_until = finish
        self.bytes_transferred += size_bytes
        return finish

    def charge_batch(self, arrivals_ns: np.ndarray,
                     size_bytes) -> np.ndarray:
        """Charge an ordered batch of transfers; returns per-transfer finish.

        ``size_bytes`` may be a scalar (uniform transfers) or an array.
        Equivalent to calling :meth:`transfer` once per element, solved in
        one vectorized pass via :func:`virtual_queue_finish`.
        """
        arrivals_ns = np.asarray(arrivals_ns, dtype=np.float64)
        if arrivals_ns.size == 0:
            return arrivals_ns.copy()
        costs = np.asarray(size_bytes, dtype=np.float64) / self.bytes_per_ns
        finishes = virtual_queue_finish(arrivals_ns, costs, self._busy_until)
        self._busy_until = float(finishes[-1])
        self.bytes_transferred += int(np.sum(size_bytes)) if np.ndim(
            size_bytes) else int(size_bytes) * arrivals_ns.size
        return finishes

    def occupancy_end(self) -> float:
        return self._busy_until

    def reset(self) -> None:
        self._busy_until = 0.0
        self.bytes_transferred = 0
