"""Statistics collection: counters, distributions and percentile helpers.

The paper reports P95 latencies (KVStore), bandwidth utilization, active
context ratios over time, and traffic breakdowns.  :class:`StatsRegistry`
is the shared sink every component writes into so experiments can pull one
coherent snapshot after a run.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


def percentile(samples: list[float], pct: float) -> float:
    """Linear-interpolated percentile of ``samples`` (pct in [0, 100]).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be within [0, 100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    value = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    # FP rounding of the interpolation must not escape the bracketing
    # samples (e.g. -53*(0.92) + -53*0.08 can land below -53).
    return min(max(value, ordered[lo]), ordered[hi])


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, used for the paper's GMEAN speedup rows."""
    if not values:
        raise ValueError("geometric mean of empty list")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Distribution:
    """Streaming collection of scalar samples with summary accessors.

    Percentile queries share one cached ``np.sort`` of the sample set
    (invalidated on :meth:`add`) and interpolate vectorized — serving
    reports asking for p50/p95/p99 over tens of thousands of latencies
    pay one O(n log n) sort total, not one Python sort per quantile.
    """

    samples: list[float] = field(default_factory=list)
    _ordered: np.ndarray | None = field(
        default=None, repr=False, compare=False)

    def add(self, value: float) -> None:
        self.samples.append(value)
        self._ordered = None

    def add_many(self, values) -> None:
        """Bulk ingestion of an array/iterable of samples.

        One ``extend`` instead of a Python ``add()`` loop (the serving
        engine lands a whole scatter batch's latencies at once); the
        percentile sort cache is invalidated exactly as :meth:`add` does.
        """
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size:
            self.samples.extend(arr.tolist())
            self._ordered = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("mean of empty distribution")
        return self.total / len(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)

    @property
    def min(self) -> float:
        return min(self.samples)

    def _sorted_samples(self) -> np.ndarray:
        if self._ordered is None or self._ordered.size != len(self.samples):
            self._ordered = np.sort(
                np.asarray(self.samples, dtype=np.float64))
        return self._ordered

    def percentiles(self, pcts) -> list[float]:
        """All requested percentiles from one vectorized interpolation.

        Matches :func:`percentile` exactly: linear interpolation at rank
        ``pct/100 * (n-1)``, clamped to the bracketing samples so FP
        rounding cannot escape them.
        """
        if not self.samples:
            raise ValueError("percentile of empty sample set")
        p = np.asarray(pcts, dtype=np.float64)
        if ((p < 0) | (p > 100)).any():
            raise ValueError(
                f"percentile must be within [0, 100], got {pcts}")
        ordered = self._sorted_samples()
        if ordered.size == 1:
            return [float(ordered[0])] * p.size
        ranks = p / 100.0 * (ordered.size - 1)
        lo = np.floor(ranks).astype(np.int64)
        hi = np.ceil(ranks).astype(np.int64)
        frac = ranks - lo
        values = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        values = np.minimum(np.maximum(values, ordered[lo]), ordered[hi])
        return [float(v) for v in values]

    def percentile(self, pct: float) -> float:
        return self.percentiles([pct])[0]

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


class StatsRegistry:
    """Hierarchical counter / distribution sink.

    Counter names are dotted paths such as ``"dram.row_hits"`` or
    ``"cxl.tx_bytes"``; components increment them and experiments read a
    flat snapshot.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = defaultdict(float)
        self._distributions: dict[str, Distribution] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def observe(self, name: str, value: float) -> None:
        dist = self._distributions.get(name)
        if dist is None:
            dist = self._distributions[name] = Distribution()
        dist.add(value)

    def observe_many(self, name: str, values) -> None:
        """Bulk form of :meth:`observe` (one :meth:`Distribution.add_many`)."""
        dist = self._distributions.get(name)
        if dist is None:
            dist = self._distributions[name] = Distribution()
        dist.add_many(values)

    def distribution(self, name: str) -> Distribution:
        if name not in self._distributions:
            raise KeyError(f"no distribution named {name!r}")
        return self._distributions[name]

    def counters(self, prefix: str = "") -> dict[str, float]:
        """Snapshot of all counters whose name starts with ``prefix``."""
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """Counter snapshot with **deterministically sorted** keys.

        Counter insertion order depends on execution interleaving, so raw
        :meth:`counters` dicts differ between otherwise identical runs;
        benchmark JSON and run manifests serialize this view instead so
        they diff stably.
        """
        return {key: self._counters[key] for key in sorted(self._counters)
                if key.startswith(prefix)}

    def to_json(self, prefix: str = "", indent: int = 2) -> str:
        """The sorted snapshot as a stable JSON document."""
        return json.dumps(self.snapshot(prefix), indent=indent,
                          sort_keys=True)

    def clear_prefix(self, prefix: str) -> None:
        """Drop counters and distributions under ``prefix`` only.

        Components embedded in a shared registry (e.g. a CXL switch inside
        an experiment's registry) use this from their ``reset()`` so
        repeated runs don't accumulate stale counts — without wiping the
        rest of the registry.
        """
        for key in [k for k in self._counters if k.startswith(prefix)]:
            del self._counters[key]
        for key in [k for k in self._distributions if k.startswith(prefix)]:
            del self._distributions[key]

    def reset(self) -> None:
        self._counters.clear()
        self._distributions.clear()

    def timeline(self, prefix: str = "",
                 start_ns: float = 0.0) -> "Timeline":
        """Windowed view of counter deltas under ``prefix``.

        Call :meth:`Timeline.mark` at window boundaries; each mark closes
        a window holding the counter *deltas* accumulated since the
        previous mark.  Serving reports and the smoke benchmark use this
        instead of hand-rolling snapshot/subtract interval math.
        """
        return Timeline(self, prefix, start_ns)


@dataclass
class TimelineWindow:
    """One window of counter deltas: [start_ns, end_ns)."""

    start_ns: float
    end_ns: float
    deltas: dict[str, float]

    @property
    def span_ns(self) -> float:
        return self.end_ns - self.start_ns

    def rate_per_s(self, name: str) -> float:
        """Counter delta expressed as a per-second rate over the window."""
        if self.span_ns <= 0:
            return 0.0
        return self.deltas.get(name, 0.0) / (self.span_ns * 1e-9)

    def sum_suffix(self, suffix: str) -> float:
        """Sum of deltas across counters ending with ``suffix`` (e.g. the
        total ``.served`` over all tenants in a ``serve.`` timeline)."""
        return sum(v for k, v in self.deltas.items() if k.endswith(suffix))

    def rate_suffix_per_s(self, suffix: str) -> float:
        if self.span_ns <= 0:
            return 0.0
        return self.sum_suffix(suffix) / (self.span_ns * 1e-9)


class Timeline:
    """Counter-delta windows over a registry (see `StatsRegistry.timeline`)."""

    def __init__(self, registry: StatsRegistry, prefix: str = "",
                 start_ns: float = 0.0) -> None:
        self._registry = registry
        self._prefix = prefix
        self._last_ns = start_ns
        self._last_snapshot = registry.counters(prefix)
        self.windows: list[TimelineWindow] = []

    def mark(self, now_ns: float) -> TimelineWindow:
        """Close the current window at ``now_ns`` and start the next one."""
        if now_ns < self._last_ns:
            raise ValueError(
                f"timeline mark at {now_ns} before previous {self._last_ns}"
            )
        snapshot = self._registry.counters(self._prefix)
        deltas = {
            key: value - self._last_snapshot.get(key, 0.0)
            for key, value in snapshot.items()
            if value != self._last_snapshot.get(key, 0.0)
        }
        window = TimelineWindow(self._last_ns, now_ns, deltas)
        self.windows.append(window)
        self._last_ns = now_ns
        self._last_snapshot = snapshot
        return window

    def series(self, name: str) -> list[tuple[float, float, float]]:
        """(start_ns, end_ns, delta) for one counter across all windows."""
        return [(w.start_ns, w.end_ns, w.deltas.get(name, 0.0))
                for w in self.windows]

    def total(self, name: str) -> float:
        return sum(w.deltas.get(name, 0.0) for w in self.windows)

    def peak_rate_per_s(self, name: str) -> float:
        """Highest per-second rate of ``name`` over any closed window."""
        if not self.windows:
            return 0.0
        return max(w.rate_per_s(name) for w in self.windows)

    def peak_rate_suffix_per_s(self, suffix: str) -> float:
        """Highest summed per-second rate of ``*suffix`` counters."""
        if not self.windows:
            return 0.0
        return max(w.rate_suffix_per_s(suffix) for w in self.windows)


@dataclass
class IntervalSampler:
    """Time series of (time, value) points, for Fig 6a-style plots.

    The ratio of active µthread contexts over time is recorded by sampling
    a gauge whenever it changes; :meth:`series` resamples onto a uniform
    grid for table output.
    """

    points: list[tuple[float, float]] = field(default_factory=list)

    def record(self, time_ns: float, value: float) -> None:
        # Virtual-time execution can complete work slightly out of order;
        # clamp to keep the series monotonic.
        if self.points and time_ns < self.points[-1][0]:
            time_ns = self.points[-1][0]
        self.points.append((time_ns, value))

    def series(self, start_ns: float, end_ns: float, steps: int) -> list[tuple[float, float]]:
        """Step-function resample onto ``steps`` uniform buckets."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        if end_ns <= start_ns:
            raise ValueError("end must be after start")
        out: list[tuple[float, float]] = []
        idx = 0
        current = self.points[0][1] if self.points else 0.0
        for step in range(steps):
            t = start_ns + (end_ns - start_ns) * step / (steps - 1 if steps > 1 else 1)
            while idx < len(self.points) and self.points[idx][0] <= t:
                current = self.points[idx][1]
                idx += 1
            out.append((t, current))
        return out

    def time_weighted_mean(self, start_ns: float, end_ns: float) -> float:
        """Average value over [start, end] treating points as a step function."""
        if end_ns <= start_ns:
            raise ValueError("end must be after start")
        area = 0.0
        current = 0.0
        prev_t = start_ns
        for t, v in self.points:
            if t < start_ns:
                current = v
                continue
            if t > end_ns:
                break
            area += current * (t - prev_t)
            prev_t = t
            current = v
        area += current * (end_ns - prev_t)
        return area / (end_ns - start_ns)
