"""Two-pass assembler for the M2NDP RISC-V/RVV subset.

Since no production RISC-V+RVV compiler targets M2NDP yet, the paper's
kernels were written in assembly (§IV-B); ours are too.  The assembler
turns text like Fig 8's reduction kernel into :class:`Program` objects:

.. code-block:: text

    .init
        li   x3, 0x10000000
        sd   x0, 0(x3)
    .body
        vle64.v    v2, (x1)
        vmv.v.i    v1, 0
        vredsum.vs v3, v2, v1
        vmv.x.s    x4, v3
        li         x3, 0x10000000
        amoadd.d   x4, x4, (x3)
        ret
    .final
        li   x3, 0x10000000
        ld   x4, 0(x3)
        ld   x5, 8(x3)
        amoadd.d x4, x4, (x5)
        ret

Sections: ``.init`` (one µthread per slot, runs once per kernel launch),
``.body`` (one µthread per pool-region slice; may repeat for multi-phase
kernels), ``.final`` (post-processing).  A bare program with no directives
is treated as a single body.

Comments start with ``//``, ``#`` or ``;``.  Labels end with ``:``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.isa.encoding import Instruction, OpClass, OPCODES
from repro.isa.registers import RegisterUsage

_ABI_X = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    **{f"a{i}": 10 + i for i in range(8)},
    **{f"s{i}": 16 + i for i in range(2, 12)},
    **{f"t{i}": 25 + i for i in range(3, 7)},
}

_ABI_F = {
    **{f"ft{i}": i for i in range(8)},
    **{f"fa{i}": 10 + i for i in range(8)},
    **{f"fs{i}": 8 + i for i in range(2)},
}

_REG_RE = re.compile(r"^(x|f|v)(\d+)$")
_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))?\(([a-z]+\d*)\)$")
_EW_RE = re.compile(r"^e(8|16|32|64)$")
_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


@dataclass
class Operand:
    kind: str                    # "reg" | "mem" | "imm" | "ew" | "label"
    bank: str | None = None      # "x" | "f" | "v" for registers
    index: int | None = None
    imm: int | None = None
    offset: int = 0
    base: int | None = None      # base register index for mem operands
    label: str | None = None


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {token!r}") from None


def parse_operand(token: str) -> Operand:
    """Classify one operand token."""
    token = token.strip()
    match = _REG_RE.match(token)
    if match:
        bank, idx = match.group(1), int(match.group(2))
        if idx >= 32:
            raise AssemblerError(f"register index out of range: {token}")
        return Operand("reg", bank=bank, index=idx)
    if token in _ABI_X:
        return Operand("reg", bank="x", index=_ABI_X[token])
    if token in _ABI_F:
        return Operand("reg", bank="f", index=_ABI_F[token])
    match = _MEM_RE.match(token)
    if match:
        offset = _parse_int(match.group(1)) if match.group(1) else 0
        base = parse_operand(match.group(2))
        if base.kind != "reg" or base.bank != "x":
            raise AssemblerError(f"memory base must be an x register: {token}")
        return Operand("mem", offset=offset, base=base.index)
    match = _EW_RE.match(token)
    if match:
        return Operand("ew", imm=int(match.group(1)))
    if re.match(r"^-?(0x[0-9a-fA-F]+|\d+)$", token):
        return Operand("imm", imm=_parse_int(token))
    if _LABEL_RE.match(token):
        return Operand("label", label=token)
    raise AssemblerError(f"cannot parse operand {token!r}")


@dataclass
class Program:
    """A fully assembled instruction sequence (one kernel section)."""

    instructions: list[Instruction]
    labels: dict[str, int]
    usage: RegisterUsage
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def static_instruction_count(self) -> int:
        return len(self.instructions)


@dataclass
class KernelProgram:
    """A complete NDP kernel: initializer, bodies, finalizer (§III-G)."""

    bodies: list[Program]
    initializer: Program | None = None
    finalizer: Program | None = None
    name: str = "kernel"

    @property
    def usage(self) -> RegisterUsage:
        merged = RegisterUsage()
        for section in self.sections():
            merged = merged.merge(section.usage)
        return merged

    def sections(self) -> list[Program]:
        out: list[Program] = []
        if self.initializer is not None:
            out.append(self.initializer)
        out.extend(self.bodies)
        if self.finalizer is not None:
            out.append(self.finalizer)
        return out

    @property
    def static_instruction_count(self) -> int:
        return sum(len(s) for s in self.sections())


_COMMENT_RE = re.compile(r"(//|#|;).*$")


def _strip_line(line: str) -> str:
    return _COMMENT_RE.sub("", line).strip()


def _split_operands(rest: str) -> list[str]:
    """Split an operand list on commas (parens never nest in this ISA)."""
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


class _SectionBuilder:
    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[tuple[int, str]] = []


def _assemble_section(builder: _SectionBuilder) -> Program:
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    pending: list[tuple[int, str, int, str]] = []  # (inst idx, label, line no, line)
    usage = RegisterUsage()

    for line_no, line in builder.lines:
        # Peel off any leading labels.
        while True:
            match = re.match(r"^([A-Za-z_][A-Za-z0-9_.]*)\s*:\s*(.*)$", line)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}", line_no, line)
            labels[label] = len(instructions)
            line = match.group(2).strip()
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        spec = OPCODES.get(mnemonic)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no, line)

        operands = [parse_operand(tok) for tok in _split_operands(rest)]
        inst = _build_instruction(mnemonic, spec, operands, line_no, line)
        if inst.label is not None:
            pending.append((len(instructions), inst.label, line_no, line))
        _account_usage(usage, mnemonic, operands)
        instructions.append(inst)

    for idx, label, line_no, line in pending:
        if label not in labels:
            raise AssemblerError(f"undefined label {label!r}", line_no, line)
        instructions[idx].target = labels[label]

    return Program(instructions=instructions, labels=labels, usage=usage,
                   name=builder.name)


def _expect(condition: bool, message: str, line_no: int, line: str) -> None:
    if not condition:
        raise AssemblerError(message, line_no, line)


def _build_instruction(mnemonic: str, spec, ops: list[Operand],
                       line_no: int, line: str) -> Instruction:
    inst = Instruction(
        mnemonic=mnemonic,
        op_class=spec.op_class,
        unit=spec.unit,
        latency_cycles=spec.latency,
        size=spec.size,
    )
    fmt = spec.fmt
    if fmt == "-":
        _expect(not ops, f"{mnemonic} takes no operands", line_no, line)
        return inst

    expected_len = {
        "rab": 3, "rai": 3, "ri": 2, "ra": 2, "rabc": 4, "rm": 2, "am": 2,
        "ram": 3, "abl": 3, "al": 2, "l": 1, "rae": 3, "vm": 2, "vmv": 3,
        "vab": 3, "vax": 3, "vaf": 3, "vai": 3, "vi": 2, "vx": 2, "vf": 2,
        "va": 2, "v": 1,
    }[fmt]
    _expect(len(ops) == expected_len,
            f"{mnemonic} expects {expected_len} operands, got {len(ops)}",
            line_no, line)

    def reg(op: Operand) -> int:
        _expect(op.kind == "reg", f"{mnemonic}: expected register", line_no, line)
        return op.index  # type: ignore[return-value]

    def imm(op: Operand) -> int:
        _expect(op.kind == "imm", f"{mnemonic}: expected immediate", line_no, line)
        return op.imm  # type: ignore[return-value]

    def mem(op: Operand) -> tuple[int, int]:
        _expect(op.kind == "mem", f"{mnemonic}: expected off(reg)", line_no, line)
        return op.base, op.offset  # type: ignore[return-value]

    def label(op: Operand) -> str:
        _expect(op.kind == "label", f"{mnemonic}: expected label", line_no, line)
        return op.label  # type: ignore[return-value]

    if fmt == "rab":
        inst.rd, inst.rs1, inst.rs2 = reg(ops[0]), reg(ops[1]), reg(ops[2])
    elif fmt == "rabc":
        inst.rd, inst.rs1, inst.rs2, inst.rs3 = (
            reg(ops[0]), reg(ops[1]), reg(ops[2]), reg(ops[3])
        )
    elif fmt == "rai":
        inst.rd, inst.rs1, inst.imm = reg(ops[0]), reg(ops[1]), imm(ops[2])
    elif fmt == "ri":
        inst.rd, inst.imm = reg(ops[0]), imm(ops[1])
    elif fmt == "ra":
        inst.rd, inst.rs1 = reg(ops[0]), reg(ops[1])
    elif fmt == "rm":
        inst.rd = reg(ops[0])
        inst.rs1, inst.imm = mem(ops[1])
    elif fmt == "am":
        inst.rs2 = reg(ops[0])
        inst.rs1, inst.imm = mem(ops[1])
    elif fmt == "ram":
        inst.rd = reg(ops[0])
        inst.rs2 = reg(ops[1])
        inst.rs1, inst.imm = mem(ops[2])
    elif fmt == "abl":
        inst.rs1, inst.rs2, inst.label = reg(ops[0]), reg(ops[1]), label(ops[2])
    elif fmt == "al":
        inst.rs1, inst.label = reg(ops[0]), label(ops[1])
    elif fmt == "l":
        inst.label = label(ops[0])
    elif fmt == "rae":
        inst.rd, inst.rs1 = reg(ops[0]), reg(ops[1])
        _expect(ops[2].kind == "ew", f"{mnemonic}: expected eN width", line_no, line)
        inst.imm = ops[2].imm
    elif fmt == "vm":
        inst.rd = reg(ops[0])
        inst.rs1, inst.imm = mem(ops[1])
    elif fmt == "vmv":
        inst.rd = reg(ops[0])
        inst.rs1, _off = mem(ops[1])
        inst.rs2 = reg(ops[2])
        inst.imm = _off
    elif fmt == "vab":
        inst.rd, inst.rs1, inst.rs2 = reg(ops[0]), reg(ops[1]), reg(ops[2])
    elif fmt in ("vax", "vaf"):
        inst.rd, inst.rs1, inst.rs2 = reg(ops[0]), reg(ops[1]), reg(ops[2])
    elif fmt == "vai":
        inst.rd, inst.rs1, inst.imm = reg(ops[0]), reg(ops[1]), imm(ops[2])
    elif fmt == "vi":
        inst.rd, inst.imm = reg(ops[0]), imm(ops[1])
    elif fmt in ("vx", "vf"):
        inst.rd, inst.rs1 = reg(ops[0]), reg(ops[1])
    elif fmt == "va":
        inst.rd, inst.rs1 = reg(ops[0]), reg(ops[1])
    elif fmt == "v":
        inst.rd = reg(ops[0])
    return inst


def _account_usage(usage: RegisterUsage, mnemonic: str, ops: list[Operand]) -> None:
    for op in ops:
        if op.kind == "reg":
            if op.bank == "x":
                usage.int_regs = max(usage.int_regs, op.index + 1)
            elif op.bank == "f":
                usage.float_regs = max(usage.float_regs, op.index + 1)
            elif op.bank == "v":
                usage.vector_regs = max(usage.vector_regs, op.index + 1)
        elif op.kind == "mem" and op.base is not None:
            usage.int_regs = max(usage.int_regs, op.base + 1)


_SECTION_ALIASES = {
    ".init": "init",
    ".initializer": "init",
    ".body": "body",
    ".kernel": "body",
    ".final": "final",
    ".finalizer": "final",
}


def assemble(text: str, name: str = "program") -> Program:
    """Assemble a single instruction sequence (no section directives)."""
    builder = _SectionBuilder(name)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_line(raw)
        if not line:
            continue
        if line.startswith("."):
            raise AssemblerError(
                "section directives need assemble_kernel()", line_no, raw
            )
        builder.lines.append((line_no, line))
    return _assemble_section(builder)


def assemble_kernel(text: str, name: str = "kernel") -> KernelProgram:
    """Assemble a kernel with optional .init / .body+ / .final sections."""
    sections: list[_SectionBuilder] = []
    current: _SectionBuilder | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_line(raw)
        if not line:
            continue
        token = line.split()[0].lower()
        if token.startswith("."):
            kind = _SECTION_ALIASES.get(token)
            if kind is None:
                raise AssemblerError(f"unknown directive {token!r}", line_no, raw)
            current = _SectionBuilder(kind)
            sections.append(current)
            continue
        if current is None:
            current = _SectionBuilder("body")
            sections.append(current)
        current.lines.append((line_no, line))

    initializer: Program | None = None
    finalizer: Program | None = None
    bodies: list[Program] = []
    for idx, builder in enumerate(sections):
        program = _assemble_section(builder)
        program.name = f"{name}.{builder.name}{idx}"
        if builder.name == "init":
            if initializer is not None:
                raise AssemblerError("multiple .init sections")
            initializer = program
        elif builder.name == "final":
            if finalizer is not None:
                raise AssemblerError("multiple .final sections")
            finalizer = program
        else:
            bodies.append(program)
    if not bodies:
        raise AssemblerError("kernel has no body section")
    return KernelProgram(
        bodies=bodies, initializer=initializer, finalizer=finalizer, name=name
    )
