"""Modified RISC-V RV64IMAFD+V ISA: assembler, registers, executor."""

from repro.isa.assembler import (
    KernelProgram,
    Program,
    assemble,
    assemble_kernel,
    parse_operand,
)
from repro.isa.encoding import FUnit, Instruction, OpClass, OPCODES, OpSpec, spec_for
from repro.isa.executor import ExecResult, MemAccess, MemoryInterface, execute
from repro.isa.registers import (
    RegisterUsage,
    UThreadRegisters,
    to_signed32,
    to_signed64,
    to_unsigned64,
)
from repro.isa.vector import VLEN_BITS, vlmax

__all__ = [
    "ExecResult",
    "FUnit",
    "Instruction",
    "KernelProgram",
    "MemAccess",
    "MemoryInterface",
    "OPCODES",
    "OpClass",
    "OpSpec",
    "Program",
    "RegisterUsage",
    "UThreadRegisters",
    "VLEN_BITS",
    "assemble",
    "assemble_kernel",
    "execute",
    "parse_operand",
    "spec_for",
    "to_signed32",
    "to_signed64",
    "to_unsigned64",
    "vlmax",
]
