"""Functional executor for the M2NDP RISC-V/RVV subset.

:func:`execute` runs exactly one instruction against a µthread's register
state and a :class:`MemoryInterface`, returning an :class:`ExecResult`
describing control flow and the memory accesses performed.  Timing is the
caller's job (``repro.ndp.subcore``): the executor moves real data
immediately so kernels compute correct results, while the returned access
descriptors let the timing model charge cache/DRAM/scratchpad latencies.

Atomics execute atomically here, so racy bulk-synchronous µthreads still
produce the correct reductions regardless of how the timing model
interleaves them — the same guarantee the hardware gives.
"""

from __future__ import annotations

import struct
from typing import Protocol

from repro.errors import ExecutionError
from repro.isa.encoding import Instruction, OpClass
from repro.isa.registers import UThreadRegisters, to_signed32, to_signed64, to_unsigned64
from repro.isa.vector import (
    as_signed,
    as_unsigned,
    bits_to_float,
    float_to_bits,
    pack_elements,
    unpack_elements,
    vlmax,
)


class MemoryInterface(Protocol):
    """Functional memory the executor reads and writes.

    Implementations route by virtual address (scratchpad window vs. global
    HDM) and perform translation; see ``repro.ndp.unit``.
    """

    def load(self, vaddr: int, size: int) -> bytes: ...

    def store(self, vaddr: int, data: bytes) -> None: ...

    def amo(self, op: str, vaddr: int, operand, size: int,
            is_float: bool) -> int | float: ...


class MemAccess:
    """One memory access performed by an instruction (for the timing model).

    A plain slotted class (not a dataclass): these are constructed on the
    hot path of every load/store the simulator executes.
    """

    __slots__ = ("vaddr", "size", "is_write", "is_amo")

    def __init__(self, vaddr: int, size: int, is_write: bool,
                 is_amo: bool = False) -> None:
        self.vaddr = vaddr
        self.size = size
        self.is_write = is_write
        self.is_amo = is_amo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "amo" if self.is_amo else ("st" if self.is_write else "ld")
        return f"<{kind} {self.vaddr:#x}+{self.size}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MemAccess)
            and (self.vaddr, self.size, self.is_write, self.is_amo)
            == (other.vaddr, other.size, other.is_write, other.is_amo)
        )


class ExecResult:
    """Effects of one executed instruction (slotted, hot path)."""

    __slots__ = ("accesses", "jump_to", "done")

    def __init__(self, accesses: tuple = (), jump_to: int | None = None,
                 done: bool = False) -> None:
        self.accesses = accesses
        self.jump_to = jump_to
        self.done = done


_PLAIN = ExecResult()
_DONE = ExecResult(done=True)

# ---------------------------------------------------------------------------
# scalar integer / FP ALU
# ---------------------------------------------------------------------------

_INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 63),
    "srl": lambda a, b: to_unsigned64(a) >> (b & 63),
    "sra": lambda a, b: a >> (b & 63),
    "slt": lambda a, b: int(a < b),
    "sltu": lambda a, b: int(to_unsigned64(a) < to_unsigned64(b)),
    "mul": lambda a, b: a * b,
    "mulhu": lambda a, b: (to_unsigned64(a) * to_unsigned64(b)) >> 64,
    "div": lambda a, b: _int_div(a, b),
    "divu": lambda a, b: _unsigned_div(a, b),
    "rem": lambda a, b: _int_rem(a, b),
    "remu": lambda a, b: _unsigned_rem(a, b),
}

_INT_IMMOPS = {
    "addi": "add", "andi": "and", "ori": "or", "xori": "xor",
    "slli": "sll", "srli": "srl", "srai": "sra",
    "slti": "slt", "sltiu": "sltu",
}

_FP_BINOPS = {
    "fadd.s": lambda a, b: a + b, "fadd.d": lambda a, b: a + b,
    "fsub.s": lambda a, b: a - b, "fsub.d": lambda a, b: a - b,
    "fmul.s": lambda a, b: a * b, "fmul.d": lambda a, b: a * b,
    "fdiv.s": lambda a, b: _fp_div(a, b), "fdiv.d": lambda a, b: _fp_div(a, b),
    "fmax.d": max, "fmin.d": min,
}

_FP_COMPARES = {
    "flt.d": lambda a, b: int(a < b),
    "fle.d": lambda a, b: int(a <= b),
    "feq.d": lambda a, b: int(a == b),
}

_BRANCHES = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bltu": lambda a, b: to_unsigned64(a) < to_unsigned64(b),
    "bgeu": lambda a, b: to_unsigned64(a) >= to_unsigned64(b),
}

_BRANCHES_Z = {
    "beqz": lambda a: a == 0,
    "bnez": lambda a: a != 0,
    "blez": lambda a: a <= 0,
    "bgez": lambda a: a >= 0,
    "bltz": lambda a: a < 0,
    "bgtz": lambda a: a > 0,
}


def _int_div(a: int, b: int) -> int:
    if b == 0:
        return -1
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _int_rem(a: int, b: int) -> int:
    if b == 0:
        return a
    return a - _int_div(a, b) * b


def _unsigned_div(a: int, b: int) -> int:
    ua, ub = to_unsigned64(a), to_unsigned64(b)
    return (1 << 64) - 1 if ub == 0 else ua // ub


def _unsigned_rem(a: int, b: int) -> int:
    ua, ub = to_unsigned64(a), to_unsigned64(b)
    return ua if ub == 0 else ua % ub


def _fp_div(a: float, b: float) -> float:
    if b == 0.0:
        return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
    return a / b


_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")


# ---------------------------------------------------------------------------
# scalar memory
# ---------------------------------------------------------------------------

# Public names: these tables are the single source of truth for memory-op
# metadata (access widths, AMO op/width/float), reused by the vectorized
# engines through repro.isa.vectorops.
LOAD_SIGNED = {"lb": 1, "lh": 2, "lw": 4, "ld": 8}
LOAD_UNSIGNED = {"lbu": 1, "lhu": 2, "lwu": 4}
FP_LOADS = {"flw": 4, "fld": 8}
FP_STORES = {"fsw": 4, "fsd": 8}
STORES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}

AMO_OPS = {
    "amoadd.w": ("add", 4, False), "amoadd.d": ("add", 8, False),
    "amoswap.d": ("swap", 8, False), "amomax.d": ("max", 8, False),
    "amomin.d": ("min", 8, False), "amomin.w": ("min", 4, False),
    "amoor.d": ("or", 8, False),
    "famoadd.s": ("add", 4, True), "famoadd.d": ("add", 8, True),
}


def _exec_scalar_alu(inst: Instruction, regs: UThreadRegisters) -> ExecResult:
    m = inst.mnemonic
    if m in _INT_BINOPS:
        result = _INT_BINOPS[m](regs.x[inst.rs1], regs.x[inst.rs2])
        regs.write_x(inst.rd, result)
    elif m in _INT_IMMOPS:
        result = _INT_BINOPS[_INT_IMMOPS[m]](regs.x[inst.rs1], inst.imm)
        regs.write_x(inst.rd, result)
    elif m in ("addw", "mulw"):
        base = "add" if m == "addw" else "mul"
        result = to_signed32(_INT_BINOPS[base](regs.x[inst.rs1], regs.x[inst.rs2]))
        regs.write_x(inst.rd, result)
    elif m == "li":
        regs.write_x(inst.rd, inst.imm)
    elif m == "lui":
        regs.write_x(inst.rd, inst.imm << 12)
    elif m == "mv":
        regs.write_x(inst.rd, regs.x[inst.rs1])
    elif m == "neg":
        regs.write_x(inst.rd, -regs.x[inst.rs1])
    elif m == "seqz":
        regs.write_x(inst.rd, int(regs.x[inst.rs1] == 0))
    elif m == "snez":
        regs.write_x(inst.rd, int(regs.x[inst.rs1] != 0))
    elif m in _FP_BINOPS:
        regs.write_f(inst.rd, _FP_BINOPS[m](regs.f[inst.rs1], regs.f[inst.rs2]))
    elif m in _FP_COMPARES:
        regs.write_x(inst.rd, _FP_COMPARES[m](regs.f[inst.rs1], regs.f[inst.rs2]))
    elif m == "fmadd.d":
        regs.write_f(
            inst.rd,
            regs.f[inst.rs1] * regs.f[inst.rs2] + regs.f[inst.rs3],
        )
    elif m == "fsqrt.d":
        value = regs.f[inst.rs1]
        if value < 0:
            raise ExecutionError("fsqrt of negative value")
        regs.write_f(inst.rd, value ** 0.5)
    elif m == "fmv.d":
        regs.write_f(inst.rd, regs.f[inst.rs1])
    elif m == "fmv.x.d":
        regs.write_x(inst.rd, _U64.unpack(_F64.pack(regs.f[inst.rs1]))[0])
    elif m == "fmv.d.x":
        regs.write_f(inst.rd, _F64.unpack(_U64.pack(to_unsigned64(regs.x[inst.rs1])))[0])
    elif m in ("fcvt.d.l", "fcvt.s.l"):
        regs.write_f(inst.rd, float(regs.x[inst.rs1]))
    elif m == "fcvt.l.d":
        regs.write_x(inst.rd, int(regs.f[inst.rs1]))
    else:  # pragma: no cover - table and dispatch kept in sync by tests
        raise ExecutionError(f"unhandled ALU mnemonic {m}")
    return _PLAIN


def _exec_load(inst: Instruction, regs: UThreadRegisters,
               mem: MemoryInterface) -> ExecResult:
    addr = to_unsigned64(regs.x[inst.rs1] + inst.imm)
    m = inst.mnemonic
    if m in FP_LOADS:
        size = FP_LOADS[m]
        raw = mem.load(addr, size)
        value = _F32.unpack(raw)[0] if size == 4 else _F64.unpack(raw)[0]
        regs.write_f(inst.rd, value)
    else:
        size = LOAD_SIGNED.get(m) or LOAD_UNSIGNED[m]
        raw = mem.load(addr, size)
        value = int.from_bytes(raw, "little", signed=m in LOAD_SIGNED)
        regs.write_x(inst.rd, value)
    return ExecResult(accesses=(MemAccess(addr, size, is_write=False),))


def _exec_store(inst: Instruction, regs: UThreadRegisters,
                mem: MemoryInterface) -> ExecResult:
    addr = to_unsigned64(regs.x[inst.rs1] + inst.imm)
    m = inst.mnemonic
    if m in FP_STORES:
        size = FP_STORES[m]
        value = regs.f[inst.rs2]
        raw = _F32.pack(value) if size == 4 else _F64.pack(value)
    else:
        size = STORES[m]
        raw = (regs.x[inst.rs2] & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
    mem.store(addr, raw)
    return ExecResult(accesses=(MemAccess(addr, size, is_write=True),))


def _exec_amo(inst: Instruction, regs: UThreadRegisters,
              mem: MemoryInterface) -> ExecResult:
    op, size, is_float = AMO_OPS[inst.mnemonic]
    addr = to_unsigned64(regs.x[inst.rs1] + inst.imm)
    if is_float:
        operand = regs.f[inst.rs2]
        old = mem.amo(op, addr, operand, size, True)
        regs.write_f(inst.rd, old)
    else:
        operand = regs.x[inst.rs2]
        if size == 4:
            operand = to_signed32(operand)
        old = mem.amo(op, addr, operand, size, False)
        regs.write_x(inst.rd, old)
    return ExecResult(accesses=(MemAccess(addr, size, is_write=True, is_amo=True),))


def _exec_branch(inst: Instruction, regs: UThreadRegisters) -> ExecResult:
    m = inst.mnemonic
    if m == "j":
        return ExecResult(jump_to=inst.target)
    if m in _BRANCHES:
        taken = _BRANCHES[m](regs.x[inst.rs1], regs.x[inst.rs2])
    else:
        taken = _BRANCHES_Z[m](regs.x[inst.rs1])
    return ExecResult(jump_to=inst.target) if taken else _PLAIN


# ---------------------------------------------------------------------------
# vector
# ---------------------------------------------------------------------------

_V_INT_BINOPS = {
    "vadd.vv": lambda a, b: a + b,
    "vsub.vv": lambda a, b: a - b,
    "vmul.vv": lambda a, b: a * b,
}

_V_INT_SCALAR = {
    "vadd.vx": lambda a, s: a + s,
    "vmul.vx": lambda a, s: a * s,
    "vand.vx": lambda a, s: a & s,
}

_V_INT_IMM = {
    "vadd.vi": lambda a, s: a + s,
    "vsll.vi": lambda a, s: a << s,
    "vsrl.vi": lambda a, s: a >> s,
}

_V_FP_BINOPS = {
    "vfadd.vv": lambda a, b: a + b,
    "vfsub.vv": lambda a, b: a - b,
    "vfmul.vv": lambda a, b: a * b,
}

_V_FP_SCALAR = {
    "vfadd.vf": lambda a, s: a + s,
    "vfmul.vf": lambda a, s: a * s,
}

_V_INT_COMPARES = {
    "vmseq.vx": lambda a, s: int(a == s),
    "vmsne.vx": lambda a, s: int(a != s),
    "vmslt.vx": lambda a, s: int(a < s),
    "vmsle.vx": lambda a, s: int(a <= s),
    "vmsgt.vx": lambda a, s: int(a > s),
    "vmsge.vx": lambda a, s: int(a >= s),
}

_V_FP_COMPARES = {
    "vmflt.vf": lambda a, s: int(a < s),
    "vmfle.vf": lambda a, s: int(a <= s),
    "vmfgt.vf": lambda a, s: int(a > s),
    "vmfge.vf": lambda a, s: int(a >= s),
}


def _vl_of(regs: UThreadRegisters, sew: int) -> int:
    return regs.effective_vl(vlmax(sew))


def _read_v(regs: UThreadRegisters, idx: int, count: int) -> list[int]:
    values = regs.v[idx]
    if len(values) < count:
        values = values + [0] * (count - len(values))
    return values[:count]


def _exec_vset(inst: Instruction, regs: UThreadRegisters) -> ExecResult:
    sew = inst.imm
    requested = regs.x[inst.rs1]
    if requested < 0:
        raise ExecutionError(f"vsetvli with negative AVL {requested}")
    vl = min(requested, vlmax(sew))
    regs.sew = sew
    regs.vl = vl
    regs.write_x(inst.rd, vl)
    return _PLAIN


def _exec_vload(inst: Instruction, regs: UThreadRegisters,
                mem: MemoryInterface) -> ExecResult:
    sew = inst.size * 8
    vl = _vl_of(regs, sew)
    if vl == 0:
        regs.write_v(inst.rd, [])
        return _PLAIN
    addr = to_unsigned64(regs.x[inst.rs1] + inst.imm)
    raw = mem.load(addr, vl * inst.size)
    regs.write_v(inst.rd, unpack_elements(raw, sew))
    return ExecResult(accesses=(MemAccess(addr, vl * inst.size, is_write=False),))


def _exec_vstore(inst: Instruction, regs: UThreadRegisters,
                 mem: MemoryInterface) -> ExecResult:
    sew = inst.size * 8
    vl = _vl_of(regs, sew)
    if vl == 0:
        return _PLAIN
    addr = to_unsigned64(regs.x[inst.rs1] + inst.imm)
    values = _read_v(regs, inst.rd, vl)
    mem.store(addr, pack_elements(values, sew))
    return ExecResult(accesses=(MemAccess(addr, vl * inst.size, is_write=True),))


def _exec_vgather(inst: Instruction, regs: UThreadRegisters,
                  mem: MemoryInterface) -> ExecResult:
    """Indexed load: vd[i] = mem[x[rs1] + offsets[i]] (offsets in bytes)."""
    sew = inst.size * 8
    vl = _vl_of(regs, sew)
    base = to_unsigned64(regs.x[inst.rs1])
    offsets = _read_v(regs, inst.rs2, vl)
    out: list[int] = []
    accesses: list[MemAccess] = []
    for off in offsets:
        addr = to_unsigned64(base + off)
        raw = mem.load(addr, inst.size)
        out.append(int.from_bytes(raw, "little"))
        accesses.append(MemAccess(addr, inst.size, is_write=False))
    regs.write_v(inst.rd, out)
    return ExecResult(accesses=tuple(accesses))


def _exec_vscatter(inst: Instruction, regs: UThreadRegisters,
                   mem: MemoryInterface) -> ExecResult:
    sew = inst.size * 8
    vl = _vl_of(regs, sew)
    base = to_unsigned64(regs.x[inst.rs1])
    offsets = _read_v(regs, inst.rs2, vl)
    values = _read_v(regs, inst.rd, vl)
    accesses: list[MemAccess] = []
    for off, value in zip(offsets, values):
        addr = to_unsigned64(base + off)
        mem.store(addr, pack_elements([value], sew))
        accesses.append(MemAccess(addr, inst.size, is_write=True))
    return ExecResult(accesses=tuple(accesses))


def _exec_vamo(inst: Instruction, regs: UThreadRegisters,
               mem: MemoryInterface) -> ExecResult:
    """Indexed atomic add (v-amo): mem[base + off[i]] += vs3[i]."""
    sew = inst.size * 8
    vl = _vl_of(regs, sew)
    base = to_unsigned64(regs.x[inst.rs1])
    offsets = _read_v(regs, inst.rs2, vl)
    values = _read_v(regs, inst.rd, vl)
    accesses: list[MemAccess] = []
    for off, value in zip(offsets, values):
        addr = to_unsigned64(base + off)
        mem.amo("add", addr, as_signed(value, sew), inst.size, False)
        accesses.append(MemAccess(addr, inst.size, is_write=True, is_amo=True))
    return ExecResult(accesses=tuple(accesses))


def _exec_valu(inst: Instruction, regs: UThreadRegisters) -> ExecResult:
    m = inst.mnemonic
    sew = regs.sew
    vl = _vl_of(regs, sew)

    if m in _V_INT_BINOPS:
        op = _V_INT_BINOPS[m]
        va = _read_v(regs, inst.rs1, vl)
        vb = _read_v(regs, inst.rs2, vl)
        regs.write_v(inst.rd, [
            as_unsigned(op(as_signed(a, sew), as_signed(b, sew)), sew)
            for a, b in zip(va, vb)
        ])
    elif m in _V_INT_SCALAR:
        op = _V_INT_SCALAR[m]
        va = _read_v(regs, inst.rs1, vl)
        scalar = regs.x[inst.rs2]
        regs.write_v(inst.rd, [
            as_unsigned(op(as_signed(a, sew), scalar), sew) for a in va
        ])
    elif m in _V_INT_IMM:
        op = _V_INT_IMM[m]
        va = _read_v(regs, inst.rs1, vl)
        regs.write_v(inst.rd, [
            as_unsigned(op(as_signed(a, sew), inst.imm), sew) for a in va
        ])
    elif m == "vmacc.vv":
        va = _read_v(regs, inst.rs1, vl)
        vb = _read_v(regs, inst.rs2, vl)
        vd = _read_v(regs, inst.rd, vl)
        regs.write_v(inst.rd, [
            as_unsigned(as_signed(d, sew) + as_signed(a, sew) * as_signed(b, sew), sew)
            for d, a, b in zip(vd, va, vb)
        ])
    elif m in _V_FP_BINOPS:
        op = _V_FP_BINOPS[m]
        va = _read_v(regs, inst.rs1, vl)
        vb = _read_v(regs, inst.rs2, vl)
        regs.write_v(inst.rd, [
            float_to_bits(op(bits_to_float(a, sew), bits_to_float(b, sew)), sew)
            for a, b in zip(va, vb)
        ])
    elif m in _V_FP_SCALAR:
        op = _V_FP_SCALAR[m]
        va = _read_v(regs, inst.rs1, vl)
        scalar = regs.f[inst.rs2]
        regs.write_v(inst.rd, [
            float_to_bits(op(bits_to_float(a, sew), scalar), sew) for a in va
        ])
    elif m == "vfmacc.vf":
        va = _read_v(regs, inst.rs1, vl)
        scalar = regs.f[inst.rs2]
        vd = _read_v(regs, inst.rd, vl)
        regs.write_v(inst.rd, [
            float_to_bits(
                bits_to_float(d, sew) + bits_to_float(a, sew) * scalar, sew
            )
            for d, a in zip(vd, va)
        ])
    elif m == "vfmacc.vv":
        va = _read_v(regs, inst.rs1, vl)
        vb = _read_v(regs, inst.rs2, vl)
        vd = _read_v(regs, inst.rd, vl)
        regs.write_v(inst.rd, [
            float_to_bits(
                bits_to_float(d, sew) + bits_to_float(a, sew) * bits_to_float(b, sew),
                sew,
            )
            for d, a, b in zip(vd, va, vb)
        ])
    elif m in _V_INT_COMPARES:
        op = _V_INT_COMPARES[m]
        va = _read_v(regs, inst.rs1, vl)
        scalar = regs.x[inst.rs2]
        regs.write_v(inst.rd, [op(as_signed(a, sew), scalar) for a in va])
    elif m in _V_FP_COMPARES:
        op = _V_FP_COMPARES[m]
        va = _read_v(regs, inst.rs1, vl)
        scalar = regs.f[inst.rs2]
        regs.write_v(inst.rd, [op(bits_to_float(a, sew), scalar) for a in va])
    elif m == "vmand.mm":
        va = _read_v(regs, inst.rs1, vl)
        vb = _read_v(regs, inst.rs2, vl)
        regs.write_v(inst.rd, [int(bool(a) and bool(b)) for a, b in zip(va, vb)])
    elif m == "vmor.mm":
        va = _read_v(regs, inst.rs1, vl)
        vb = _read_v(regs, inst.rs2, vl)
        regs.write_v(inst.rd, [int(bool(a) or bool(b)) for a, b in zip(va, vb)])
    elif m == "vmerge.vxm":
        va = _read_v(regs, inst.rs1, vl)
        scalar = as_unsigned(regs.x[inst.rs2], sew)
        mask = _read_v(regs, 0, vl)
        regs.write_v(inst.rd, [
            scalar if mask[i] else va[i] for i in range(vl)
        ])
    elif m == "vmerge.vim":
        va = _read_v(regs, inst.rs1, vl)
        value = as_unsigned(inst.imm, sew)
        mask = _read_v(regs, 0, vl)
        regs.write_v(inst.rd, [
            value if mask[i] else va[i] for i in range(vl)
        ])
    elif m == "vmv.v.i":
        regs.write_v(inst.rd, [as_unsigned(inst.imm, sew)] * vl)
    elif m == "vmv.v.x":
        regs.write_v(inst.rd, [as_unsigned(regs.x[inst.rs1], sew)] * vl)
    elif m == "vmv.v.v":
        regs.write_v(inst.rd, list(_read_v(regs, inst.rs1, vl)))
    elif m == "vid.v":
        regs.write_v(inst.rd, list(range(vl)))
    elif m == "vfmv.v.f":
        regs.write_v(inst.rd, [float_to_bits(regs.f[inst.rs1], sew)] * vl)
    elif m == "vmv.x.s":
        values = regs.v[inst.rs1]
        regs.write_x(inst.rd, as_signed(values[0], sew) if values else 0)
    elif m == "vmv.s.x":
        values = list(regs.v[inst.rd])
        if not values:
            values = [0]
        values[0] = as_unsigned(regs.x[inst.rs1], sew)
        regs.write_v(inst.rd, values)
    elif m == "vfmv.f.s":
        values = regs.v[inst.rs1]
        regs.write_f(inst.rd, bits_to_float(values[0], sew) if values else 0.0)
    else:  # pragma: no cover
        raise ExecutionError(f"unhandled vector mnemonic {m}")
    return _PLAIN


def _exec_vred(inst: Instruction, regs: UThreadRegisters) -> ExecResult:
    """Reductions: vd[0] = reduce(va) OP-combined with vb[0] (RVV .vs)."""
    m = inst.mnemonic
    sew = regs.sew
    vl = _vl_of(regs, sew)
    va = _read_v(regs, inst.rs1, vl)
    vb = _read_v(regs, inst.rs2, max(vl, 1))
    seed = vb[0] if vb else 0

    if m == "vredsum.vs":
        total = as_signed(seed, sew) + sum(as_signed(a, sew) for a in va)
        result = as_unsigned(total, sew)
    elif m == "vredmax.vs":
        result = as_unsigned(
            max([as_signed(seed, sew)] + [as_signed(a, sew) for a in va]), sew
        )
    elif m == "vredmin.vs":
        result = as_unsigned(
            min([as_signed(seed, sew)] + [as_signed(a, sew) for a in va]), sew
        )
    elif m == "vfredusum.vs":
        total = bits_to_float(seed, sew) + sum(bits_to_float(a, sew) for a in va)
        result = float_to_bits(total, sew)
    elif m == "vfredmax.vs":
        values = [bits_to_float(seed, sew)] + [bits_to_float(a, sew) for a in va]
        result = float_to_bits(max(values), sew)
    else:  # pragma: no cover
        raise ExecutionError(f"unhandled reduction {m}")
    regs.write_v(inst.rd, [result])
    return _PLAIN


# ---------------------------------------------------------------------------
# dispatcher
# ---------------------------------------------------------------------------

_DISPATCH = {
    OpClass.ALU: lambda inst, regs, mem: _exec_scalar_alu(inst, regs),
    OpClass.VALU_OP: lambda inst, regs, mem: _exec_valu(inst, regs),
    OpClass.BRANCH: lambda inst, regs, mem: _exec_branch(inst, regs),
    OpClass.LOAD: _exec_load,
    OpClass.STORE: _exec_store,
    OpClass.AMO: _exec_amo,
    OpClass.VLOAD: _exec_vload,
    OpClass.VSTORE: _exec_vstore,
    OpClass.VGATHER: _exec_vgather,
    OpClass.VSCATTER: _exec_vscatter,
    OpClass.VAMO: _exec_vamo,
    OpClass.VRED: lambda inst, regs, mem: _exec_vred(inst, regs),
    OpClass.VSET: lambda inst, regs, mem: _exec_vset(inst, regs),
    OpClass.FENCE: lambda inst, regs, mem: _PLAIN,
    OpClass.RET: lambda inst, regs, mem: _DONE,
}


def execute(inst: Instruction, regs: UThreadRegisters,
            mem: MemoryInterface) -> ExecResult:
    """Execute one instruction; mutate ``regs``/memory; report effects."""
    return _DISPATCH[inst.op_class](inst, regs, mem)
