"""Vectorizable per-op semantics shared by the numpy execution engines.

The scalar executor (:mod:`repro.isa.executor`) defines what every
mnemonic *means* one µthread at a time.  The two vectorized engines — the
launch-uniform batched walk (:mod:`repro.exec.batched`) and the masked
SIMT walk (:mod:`repro.exec.simt`) — need the same semantics over numpy
*lane arrays*.  This module is the single home for those array-level
primitives so the engines cannot drift apart:

* bit-pattern helpers (sign extension, IEEE-754 reinterpretation,
  little-endian byte (de)serialization) that operate on uint64 element
  matrices,
* op tables keyed by mnemonic whose lambdas accept numpy arrays and
  reproduce the scalar executor's wrap/truncate/compare semantics
  element-wise — including the RISC-V division edge cases (divide by
  zero, INT64_MIN / -1) and ``mulhu``'s 128-bit upper half,
* the memory-op metadata (access sizes, AMO op/width/float tables)
  re-exported from the scalar executor so there is exactly one source of
  truth for what ``amoadd.w`` or ``fld`` does.

Everything here is stateless and mask-agnostic: callers decide which
lanes participate and how results merge into register state.
"""

from __future__ import annotations

import numpy as np

# One source of truth for memory-op metadata: the scalar executor's
# tables, re-exported under their public names.
from repro.isa.executor import (  # noqa: F401  (re-exports)
    AMO_OPS,
    FP_LOADS,
    FP_STORES,
    LOAD_SIGNED,
    LOAD_UNSIGNED,
    STORES,
)


class UnsupportedVectorOp(Exception):
    """An operation the vectorized primitives cannot express.

    Engines translate this into their per-launch fallback (the scalar
    interpreter executes the launch instead), so raising it is always
    safe — it can cost time, never correctness.
    """


# ---------------------------------------------------------------------------
# bit-pattern helpers (uint64 element matrices)
# ---------------------------------------------------------------------------


def sign_extend(patterns: np.ndarray, sew: int) -> np.ndarray:
    """uint64 element patterns -> sign-extended int64 values."""
    vals = patterns.astype(np.int64)
    if sew == 64:
        return vals
    shift = np.int64(64 - sew)
    return (vals << shift) >> shift


def to_pattern(vals, sew: int) -> np.ndarray:
    """Wrap (possibly signed) values into uint64 patterns of width sew."""
    out = np.asarray(vals).astype(np.int64).astype(np.uint64)
    if sew < 64:
        out = out & np.uint64((1 << sew) - 1)
    return out


def bits_to_float(patterns: np.ndarray, sew: int) -> np.ndarray:
    p = np.ascontiguousarray(patterns, dtype=np.uint64)
    if sew == 64:
        return p.view(np.float64)
    if sew == 32:
        return p.astype(np.uint32).view(np.float32).astype(np.float64)
    raise UnsupportedVectorOp(f"no float interpretation for SEW {sew}")


def float_to_bits(vals, sew: int) -> np.ndarray:
    v = np.ascontiguousarray(vals, dtype=np.float64)
    if sew == 64:
        return v.view(np.uint64).copy()
    if sew == 32:
        return np.ascontiguousarray(v.astype(np.float32)).view(
            np.uint32).astype(np.uint64)
    raise UnsupportedVectorOp(f"no float representation for SEW {sew}")


_LE_VIEW_DTYPES = {1: np.dtype("u1"), 2: np.dtype("<u2"),
                   4: np.dtype("<u4"), 8: np.dtype("<u8")}


def from_le_bytes(raw: np.ndarray) -> np.ndarray:
    """(..., size) uint8 -> (...,) uint64, little endian."""
    size = raw.shape[-1]
    dtype = _LE_VIEW_DTYPES.get(size)
    if dtype is not None:
        # one reinterpreting view + widen instead of a per-byte loop
        contiguous = np.ascontiguousarray(raw).reshape(-1, size)
        return contiguous.view(dtype).reshape(raw.shape[:-1]).astype(
            np.uint64)
    out = np.zeros(raw.shape[:-1], dtype=np.uint64)
    for i in range(size):
        out |= raw[..., i].astype(np.uint64) << np.uint64(8 * i)
    return out


def to_le_bytes(vals, size: int) -> np.ndarray:
    """(...,) uint64 -> (..., size) uint8, little endian."""
    v = np.asarray(vals, dtype=np.uint64)
    dtype = _LE_VIEW_DTYPES.get(size)
    if dtype is not None:
        narrowed = np.ascontiguousarray(v.astype(dtype)).reshape(-1)
        return narrowed.view(np.uint8).reshape(v.shape + (size,))
    out = np.empty(v.shape + (size,), dtype=np.uint8)
    for i in range(size):
        out[..., i] = (v >> np.uint64(8 * i)).astype(np.uint8)
    return out


def per_thread(arr: np.ndarray) -> np.ndarray:
    """Align a per-thread scalar (n,) with (..., vl) element matrices."""
    a = np.asarray(arr)
    return a[:, None] if a.ndim == 1 else a


# ---------------------------------------------------------------------------
# scalar integer ALU (int64 lane arrays, RISC-V wrap semantics)
# ---------------------------------------------------------------------------


def _np_srl(a, b):
    sh = (b & np.int64(63)).astype(np.uint64)
    return (a.astype(np.uint64) >> sh).astype(np.int64)


def _magnitudes(a: np.ndarray) -> np.ndarray:
    # |INT64_MIN| overflows int64; the wrap through uint64 lands on 2**63,
    # which is the correct magnitude.
    return np.abs(a).astype(np.uint64)


def _np_div(a, b):
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    mag_a, mag_b = _magnitudes(a), _magnitudes(b)
    q = mag_a // np.maximum(mag_b, np.uint64(1))
    qi = q.astype(np.int64)
    res = np.where((a < 0) != (b < 0), -qi, qi)
    return np.where(b == 0, np.int64(-1), res)


def _np_rem(a, b):
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    return np.where(b == 0, a, a - _np_div(a, b) * b)


def _np_divu(a, b):
    ua = np.asarray(a).astype(np.uint64)
    ub = np.asarray(b).astype(np.uint64)
    q = ua // np.maximum(ub, np.uint64(1))
    return np.where(ub == 0, ~np.uint64(0), q).astype(np.int64)


def _np_remu(a, b):
    ua = np.asarray(a).astype(np.uint64)
    ub = np.asarray(b).astype(np.uint64)
    r = ua % np.maximum(ub, np.uint64(1))
    return np.where(ub == 0, ua, r).astype(np.int64)


def _np_mulhu(a, b):
    """Upper 64 bits of the unsigned 128-bit product, via 32-bit halves."""
    ua = np.asarray(a).astype(np.uint64)
    ub = np.asarray(b).astype(np.uint64)
    mask32 = np.uint64(0xFFFFFFFF)
    a_lo, a_hi = ua & mask32, ua >> np.uint64(32)
    b_lo, b_hi = ub & mask32, ub >> np.uint64(32)
    lo_lo = a_lo * b_lo
    mid1 = a_hi * b_lo + (lo_lo >> np.uint64(32))
    mid2 = a_lo * b_hi + (mid1 & mask32)
    high = a_hi * b_hi + (mid1 >> np.uint64(32)) + (mid2 >> np.uint64(32))
    return high.astype(np.int64)


INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & np.int64(63)),
    "srl": _np_srl,
    "sra": lambda a, b: a >> (b & np.int64(63)),
    "slt": lambda a, b: (a < b).astype(np.int64),
    "sltu": lambda a, b: (a.astype(np.uint64) < b.astype(np.uint64)).astype(np.int64),
    "mul": lambda a, b: a * b,
    "mulhu": _np_mulhu,
    "div": _np_div,
    "divu": _np_divu,
    "rem": _np_rem,
    "remu": _np_remu,
}

INT_IMMOPS = {
    "addi": "add", "andi": "and", "ori": "or", "xori": "xor",
    "slli": "sll", "srli": "srl", "srai": "sra",
    "slti": "slt", "sltiu": "sltu",
}

FP_BINOPS = {
    "fadd.s": lambda a, b: a + b, "fadd.d": lambda a, b: a + b,
    "fsub.s": lambda a, b: a - b, "fsub.d": lambda a, b: a - b,
    "fmul.s": lambda a, b: a * b, "fmul.d": lambda a, b: a * b,
    "fdiv.s": lambda a, b: a / b, "fdiv.d": lambda a, b: a / b,
    "fmax.d": np.maximum, "fmin.d": np.minimum,
}

FP_COMPARES = {
    "flt.d": lambda a, b: (a < b).astype(np.int64),
    "fle.d": lambda a, b: (a <= b).astype(np.int64),
    "feq.d": lambda a, b: (a == b).astype(np.int64),
}

BRANCHES = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bltu": lambda a, b: a.astype(np.uint64) < b.astype(np.uint64),
    "bgeu": lambda a, b: a.astype(np.uint64) >= b.astype(np.uint64),
}

BRANCHES_Z = {
    "beqz": lambda a: a == 0,
    "bnez": lambda a: a != 0,
    "blez": lambda a: a <= 0,
    "bgez": lambda a: a >= 0,
    "bltz": lambda a: a < 0,
    "bgtz": lambda a: a > 0,
}

# ---------------------------------------------------------------------------
# vector ops (uint64 element-pattern matrices)
# ---------------------------------------------------------------------------

V_INT_BINOPS = {
    "vadd.vv": lambda a, b: a + b,
    "vsub.vv": lambda a, b: a - b,
    "vmul.vv": lambda a, b: a * b,
}

V_INT_SCALAR = {
    "vadd.vx": lambda a, s: a + s,
    "vmul.vx": lambda a, s: a * s,
    "vand.vx": lambda a, s: a & s,
}

V_INT_IMM = {
    "vadd.vi": lambda a, s: a + s,
    "vsll.vi": lambda a, s: a << s,
    "vsrl.vi": lambda a, s: a >> s,
}

V_FP_BINOPS = {
    "vfadd.vv": lambda a, b: a + b,
    "vfsub.vv": lambda a, b: a - b,
    "vfmul.vv": lambda a, b: a * b,
}

V_FP_SCALAR = {
    "vfadd.vf": lambda a, s: a + s,
    "vfmul.vf": lambda a, s: a * s,
}

V_INT_COMPARES = {
    "vmseq.vx": lambda a, s: a == s,
    "vmsne.vx": lambda a, s: a != s,
    "vmslt.vx": lambda a, s: a < s,
    "vmsle.vx": lambda a, s: a <= s,
    "vmsgt.vx": lambda a, s: a > s,
    "vmsge.vx": lambda a, s: a >= s,
}

V_FP_COMPARES = {
    "vmflt.vf": lambda a, s: a < s,
    "vmfle.vf": lambda a, s: a <= s,
    "vmfgt.vf": lambda a, s: a > s,
    "vmfge.vf": lambda a, s: a >= s,
}
