"""µthread register state.

A µthread carries only the architectural state its kernel declared at
registration time (§III-D): a handful of integer, float and vector
registers plus a PC and the vl/sew vector configuration.  The register
*indices* still follow RISC-V naming (x0..x31, f0..., v0...) so kernels read
naturally; the occupancy manager separately accounts the declared counts
against the 48 KB physical register file.

Spawn-time ABI (§III-E): ``x1`` holds the µthread's mapped address in the
pool region and ``x2`` the offset from the pool base.  ``x0`` is hardwired
to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError

NUM_X_REGS = 32
NUM_F_REGS = 32
NUM_V_REGS = 32

_U64_MASK = 0xFFFFFFFFFFFFFFFF


def to_signed64(value: int) -> int:
    """Wrap an integer to two's-complement signed 64-bit."""
    value &= _U64_MASK
    return value - (1 << 64) if value >= (1 << 63) else value


def to_unsigned64(value: int) -> int:
    """Interpret an integer as unsigned 64-bit."""
    return value & _U64_MASK


def to_signed32(value: int) -> int:
    """Wrap to signed 32-bit (for .w instructions)."""
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


@dataclass
class RegisterUsage:
    """Architectural registers a kernel actually touches.

    Computed by the assembler; used for registration defaults (Table II's
    numIntRegs/numFloatRegs/numVectorRegs) and the register-file
    allocation in :mod:`repro.ndp.occupancy`.
    """

    int_regs: int = 0
    float_regs: int = 0
    vector_regs: int = 0

    def merge(self, other: "RegisterUsage") -> "RegisterUsage":
        return RegisterUsage(
            int_regs=max(self.int_regs, other.int_regs),
            float_regs=max(self.float_regs, other.float_regs),
            vector_regs=max(self.vector_regs, other.vector_regs),
        )

    def bytes_required(self, vector_bytes: int) -> int:
        """Physical register file bytes for one µthread of this kernel."""
        return 8 * self.int_regs + 8 * self.float_regs + vector_bytes * self.vector_regs


#: Shared empty-register sentinel.  INVARIANT: executor handlers never
#: mutate a vector register's value list in place — they always build a new
#: list and assign it via write_v — so sharing one empty list is safe and
#: saves 32 allocations per spawned µthread.
_EMPTY_VREG: list = []


class UThreadRegisters:
    """Architectural register state of one µthread."""

    __slots__ = ("x", "f", "v", "vl", "sew")

    def __init__(self, vlen_bits: int = 256):
        self.x: list[int] = [0] * NUM_X_REGS
        self.f: list[float] = [0.0] * NUM_F_REGS
        self.v: list[list] = [_EMPTY_VREG] * NUM_V_REGS
        # Vector config: vl=None means "VLMAX for the op's element width".
        self.vl: int | None = None
        self.sew: int = 64

    def read_x(self, idx: int) -> int:
        return self.x[idx]

    def write_x(self, idx: int, value: int) -> None:
        if idx != 0:
            self.x[idx] = to_signed64(value)

    def read_f(self, idx: int) -> float:
        return self.f[idx]

    def write_f(self, idx: int, value: float) -> None:
        self.f[idx] = float(value)

    def read_v(self, idx: int) -> list:
        return self.v[idx]

    def write_v(self, idx: int, values: list) -> None:
        self.v[idx] = values

    def effective_vl(self, vlmax: int) -> int:
        """Elements processed by a vector op with the given VLMAX."""
        if self.vl is None:
            return vlmax
        if self.vl < 0:
            raise ExecutionError(f"negative vl {self.vl}")
        return min(self.vl, vlmax)
