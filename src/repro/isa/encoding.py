"""Instruction encoding: mnemonics, operand formats, functional units.

The NDP unit executes a modified RV64IMAFD+V subset (§III-D).  Each
mnemonic maps to an operand *format* (how the assembler parses it), a
*functional unit* (which Fig 7 pipe executes it) and a latency class in NDP
cycles.  The table is the single source of truth shared by the assembler,
the executor and the timing model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FUnit(enum.Enum):
    """Execution resources of one NDP sub-core (Fig 7)."""

    SALU = "scalar_alu"     # 2 per sub-core
    SSFU = "scalar_sfu"     # 1 per sub-core (mul/div, FP long ops)
    SLSU = "scalar_lsu"     # 1 per sub-core
    VALU = "vector_alu"     # 1 per sub-core, 256-bit
    VSFU = "vector_sfu"
    VLSU = "vector_lsu"


class OpClass(enum.Enum):
    """Semantic grouping the executor and timing model dispatch on."""

    ALU = "alu"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"
    AMO = "amo"
    VLOAD = "vload"
    VSTORE = "vstore"
    VGATHER = "vgather"
    VSCATTER = "vscatter"
    VAMO = "vamo"
    VALU_OP = "valu"
    VRED = "vred"
    VSET = "vset"
    FENCE = "fence"
    RET = "ret"


# Latency classes in NDP cycles (0.5 ns at 2 GHz).
LAT_SIMPLE = 1
LAT_MUL = 3
LAT_DIV = 12
LAT_FP = 4
LAT_FP_LONG = 16
LAT_VEC_INT = 2
LAT_VEC_FP = 4
LAT_VEC_RED = 4


@dataclass
class Instruction:
    """One decoded instruction.

    Register fields hold plain indices; their bank (x/f/v) is implied by
    the mnemonic.  ``target`` is a resolved instruction index for branches;
    ``imm`` doubles as the load/store displacement and the vsetvli SEW.
    """

    mnemonic: str
    op_class: OpClass
    unit: FUnit
    latency_cycles: int
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    rs3: int | None = None
    imm: int | None = None
    label: str | None = None
    target: int | None = None
    size: int = 0            # access bytes for scalar memory ops / sew for vector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = [
            f"{name}={val}"
            for name, val in (
                ("rd", self.rd), ("rs1", self.rs1), ("rs2", self.rs2),
                ("imm", self.imm), ("label", self.label),
            )
            if val is not None
        ]
        return f"<{self.mnemonic} {' '.join(ops)}>"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    fmt: str                 # operand format string (see assembler)
    op_class: OpClass
    unit: FUnit
    latency: int
    size: int = 0


def _scalar_mem(fmt: str, op_class: OpClass, size: int) -> OpSpec:
    return OpSpec(fmt, op_class, FUnit.SLSU, LAT_SIMPLE, size)


def _valu(fmt: str, latency: int = LAT_VEC_INT) -> OpSpec:
    return OpSpec(fmt, OpClass.VALU_OP, FUnit.VALU, latency)


#: The full mnemonic table.  Formats:
#:   r=register dest, a/b/c=register sources, i=immediate, m=mem "off(reg)",
#:   l=label, e=element-width token (vsetvli), -=no operands.
#: Bank prefixes are resolved by the assembler from operand spelling.
OPCODES: dict[str, OpSpec] = {
    # -- scalar integer ALU ------------------------------------------------
    "add": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "addw": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "sub": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "addi": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "and": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "andi": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "or": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "ori": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "xor": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "xori": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "sll": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "slli": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "srl": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "srli": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "sra": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "srai": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "slt": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "sltu": OpSpec("rab", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "slti": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "sltiu": OpSpec("rai", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "lui": OpSpec("ri", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "li": OpSpec("ri", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "mv": OpSpec("ra", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "neg": OpSpec("ra", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "seqz": OpSpec("ra", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "snez": OpSpec("ra", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "mul": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_MUL),
    "mulw": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_MUL),
    "mulhu": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_MUL),
    "div": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_DIV),
    "divu": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_DIV),
    "rem": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_DIV),
    "remu": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_DIV),
    # -- scalar FP -----------------------------------------------------------
    "fadd.s": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fadd.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fsub.s": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fsub.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fmul.s": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fmul.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fdiv.s": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP_LONG),
    "fdiv.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP_LONG),
    "fsqrt.d": OpSpec("ra", OpClass.ALU, FUnit.SSFU, LAT_FP_LONG),
    "fmadd.d": OpSpec("rabc", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fmv.d": OpSpec("ra", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "fmv.x.d": OpSpec("ra", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "fmv.d.x": OpSpec("ra", OpClass.ALU, FUnit.SALU, LAT_SIMPLE),
    "fcvt.d.l": OpSpec("ra", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fcvt.s.l": OpSpec("ra", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fcvt.l.d": OpSpec("ra", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "flt.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fle.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "feq.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fmax.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    "fmin.d": OpSpec("rab", OpClass.ALU, FUnit.SSFU, LAT_FP),
    # -- scalar memory ---------------------------------------------------------
    "lb": _scalar_mem("rm", OpClass.LOAD, 1),
    "lbu": _scalar_mem("rm", OpClass.LOAD, 1),
    "lh": _scalar_mem("rm", OpClass.LOAD, 2),
    "lhu": _scalar_mem("rm", OpClass.LOAD, 2),
    "lw": _scalar_mem("rm", OpClass.LOAD, 4),
    "lwu": _scalar_mem("rm", OpClass.LOAD, 4),
    "ld": _scalar_mem("rm", OpClass.LOAD, 8),
    "flw": _scalar_mem("rm", OpClass.LOAD, 4),
    "fld": _scalar_mem("rm", OpClass.LOAD, 8),
    "sb": _scalar_mem("am", OpClass.STORE, 1),
    "sh": _scalar_mem("am", OpClass.STORE, 2),
    "sw": _scalar_mem("am", OpClass.STORE, 4),
    "sd": _scalar_mem("am", OpClass.STORE, 8),
    "fsw": _scalar_mem("am", OpClass.STORE, 4),
    "fsd": _scalar_mem("am", OpClass.STORE, 8),
    # -- atomics (global at L2, local in scratchpad) ------------------------------
    "amoadd.w": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 4),
    "amoadd.d": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 8),
    "amoswap.d": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 8),
    "amomax.d": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 8),
    "amomin.d": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 8),
    "amomin.w": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 4),
    "amoor.d": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 8),
    # "modified RISC-V" FP atomics for local reductions (paper §III-G notes a
    # vector-AMO extension; we provide the scalar-FP equivalent).
    "famoadd.s": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 4),
    "famoadd.d": OpSpec("ram", OpClass.AMO, FUnit.SLSU, LAT_SIMPLE, 8),
    # -- control flow -----------------------------------------------------------
    "beq": OpSpec("abl", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "bne": OpSpec("abl", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "blt": OpSpec("abl", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "bge": OpSpec("abl", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "bltu": OpSpec("abl", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "bgeu": OpSpec("abl", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "beqz": OpSpec("al", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "bnez": OpSpec("al", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "blez": OpSpec("al", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "bgez": OpSpec("al", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "bltz": OpSpec("al", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "bgtz": OpSpec("al", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "j": OpSpec("l", OpClass.BRANCH, FUnit.SALU, LAT_SIMPLE),
    "ret": OpSpec("-", OpClass.RET, FUnit.SALU, LAT_SIMPLE),
    "fence": OpSpec("-", OpClass.FENCE, FUnit.SALU, LAT_SIMPLE),
    # -- vector config ------------------------------------------------------------
    "vsetvli": OpSpec("rae", OpClass.VSET, FUnit.VALU, LAT_SIMPLE),
    # -- vector memory (unit stride) ----------------------------------------------
    "vle8.v": OpSpec("vm", OpClass.VLOAD, FUnit.VLSU, LAT_SIMPLE, 1),
    "vle16.v": OpSpec("vm", OpClass.VLOAD, FUnit.VLSU, LAT_SIMPLE, 2),
    "vle32.v": OpSpec("vm", OpClass.VLOAD, FUnit.VLSU, LAT_SIMPLE, 4),
    "vle64.v": OpSpec("vm", OpClass.VLOAD, FUnit.VLSU, LAT_SIMPLE, 8),
    "vse8.v": OpSpec("vm", OpClass.VSTORE, FUnit.VLSU, LAT_SIMPLE, 1),
    "vse16.v": OpSpec("vm", OpClass.VSTORE, FUnit.VLSU, LAT_SIMPLE, 2),
    "vse32.v": OpSpec("vm", OpClass.VSTORE, FUnit.VLSU, LAT_SIMPLE, 4),
    "vse64.v": OpSpec("vm", OpClass.VSTORE, FUnit.VLSU, LAT_SIMPLE, 8),
    # -- vector indexed gather/scatter ----------------------------------------------
    "vluxei32.v": OpSpec("vmv", OpClass.VGATHER, FUnit.VLSU, LAT_SIMPLE, 4),
    "vluxei64.v": OpSpec("vmv", OpClass.VGATHER, FUnit.VLSU, LAT_SIMPLE, 8),
    "vsuxei64.v": OpSpec("vmv", OpClass.VSCATTER, FUnit.VLSU, LAT_SIMPLE, 8),
    # -- vector AMO (the RVV v-amo extension the paper cites [12]): indexed
    # atomic add of vs3 elements at base + vs2 byte offsets.
    "vamoadde32.v": OpSpec("vmv", OpClass.VAMO, FUnit.VLSU, LAT_SIMPLE, 4),
    "vamoadde64.v": OpSpec("vmv", OpClass.VAMO, FUnit.VLSU, LAT_SIMPLE, 8),
    # -- vector integer ALU -------------------------------------------------------------
    "vadd.vv": _valu("vab"),
    "vadd.vx": _valu("vax"),
    "vadd.vi": _valu("vai"),
    "vsub.vv": _valu("vab"),
    "vmul.vv": _valu("vab", LAT_MUL),
    "vmul.vx": _valu("vax", LAT_MUL),
    "vsll.vi": _valu("vai"),
    "vsrl.vi": _valu("vai"),
    "vand.vx": _valu("vax"),
    "vmacc.vv": _valu("vab", LAT_MUL),
    "vmv.v.i": _valu("vi"),
    "vmv.v.x": _valu("vx"),
    "vmv.v.v": _valu("va"),
    "vid.v": _valu("v"),
    # -- vector FP ----------------------------------------------------------------------
    "vfadd.vv": _valu("vab", LAT_VEC_FP),
    "vfadd.vf": _valu("vaf", LAT_VEC_FP),
    "vfsub.vv": _valu("vab", LAT_VEC_FP),
    "vfmul.vv": _valu("vab", LAT_VEC_FP),
    "vfmul.vf": _valu("vaf", LAT_VEC_FP),
    "vfmacc.vv": _valu("vab", LAT_VEC_FP),
    "vfmacc.vf": _valu("vaf", LAT_VEC_FP),
    "vfmv.v.f": _valu("vf", LAT_VEC_FP),
    # -- reductions (vd gets scalar result in element 0) -----------------------------------
    "vredsum.vs": OpSpec("vab", OpClass.VRED, FUnit.VALU, LAT_VEC_RED),
    "vredmax.vs": OpSpec("vab", OpClass.VRED, FUnit.VALU, LAT_VEC_RED),
    "vredmin.vs": OpSpec("vab", OpClass.VRED, FUnit.VALU, LAT_VEC_RED),
    "vfredusum.vs": OpSpec("vab", OpClass.VRED, FUnit.VALU, LAT_VEC_RED),
    "vfredmax.vs": OpSpec("vab", OpClass.VRED, FUnit.VALU, LAT_VEC_RED),
    # -- vector compares (mask result) ------------------------------------------------------
    "vmseq.vx": _valu("vax"),
    "vmsne.vx": _valu("vax"),
    "vmslt.vx": _valu("vax"),
    "vmsle.vx": _valu("vax"),
    "vmsgt.vx": _valu("vax"),
    "vmsge.vx": _valu("vax"),
    "vmflt.vf": _valu("vaf", LAT_VEC_FP),
    "vmfle.vf": _valu("vaf", LAT_VEC_FP),
    "vmfgt.vf": _valu("vaf", LAT_VEC_FP),
    "vmfge.vf": _valu("vaf", LAT_VEC_FP),
    "vmand.mm": _valu("vab"),
    "vmor.mm": _valu("vab"),
    # -- mask/select -------------------------------------------------------------------------
    "vmerge.vxm": _valu("vax"),     # vd[i] = mask(v0)[i] ? rs : va[i]
    "vmerge.vim": _valu("vai"),
    # -- scalar <-> vector moves ----------------------------------------------------------------
    "vmv.x.s": OpSpec("ra", OpClass.VALU_OP, FUnit.VALU, LAT_SIMPLE),
    "vmv.s.x": OpSpec("vx", OpClass.VALU_OP, FUnit.VALU, LAT_SIMPLE),
    "vfmv.f.s": OpSpec("ra", OpClass.VALU_OP, FUnit.VALU, LAT_SIMPLE),
}


def spec_for(mnemonic: str) -> OpSpec:
    try:
        return OPCODES[mnemonic]
    except KeyError:
        raise KeyError(f"unknown mnemonic {mnemonic!r}") from None
