"""RVV element helpers: bit-pattern <-> value conversions.

Vector registers hold raw element *bit patterns* (unsigned Python ints),
exactly like hardware: integer ops reinterpret them as signed two's
complement, floating-point ops as IEEE-754 of the current SEW.  These
helpers centralize the conversions so the executor stays readable.
"""

from __future__ import annotations

import struct

from repro.errors import ExecutionError

#: VLEN in bits for the NDP unit's 256-bit vector datapath (Table IV).
VLEN_BITS = 256

_FLOAT_PACK = {32: struct.Struct("<f"), 64: struct.Struct("<d")}
_INT_PACK = {8: struct.Struct("<B"), 16: struct.Struct("<H"),
             32: struct.Struct("<I"), 64: struct.Struct("<Q")}


def vlmax(sew: int, vlen_bits: int = VLEN_BITS) -> int:
    """Elements per vector register at the given element width.

    >>> vlmax(64)
    4
    >>> vlmax(32)
    8
    """
    if sew not in (8, 16, 32, 64):
        raise ExecutionError(f"unsupported SEW {sew}")
    return vlen_bits // sew


def mask_bits(sew: int) -> int:
    return (1 << sew) - 1


def as_signed(pattern: int, sew: int) -> int:
    """Reinterpret a bit pattern as signed."""
    pattern &= mask_bits(sew)
    half = 1 << (sew - 1)
    return pattern - (1 << sew) if pattern >= half else pattern


def as_unsigned(value: int, sew: int) -> int:
    """Wrap a value into an unsigned bit pattern of the element width."""
    return value & mask_bits(sew)


def bits_to_float(pattern: int, sew: int) -> float:
    """IEEE-754 interpretation of a 32- or 64-bit pattern."""
    packer = _FLOAT_PACK.get(sew)
    if packer is None:
        raise ExecutionError(f"no float interpretation for SEW {sew}")
    return packer.unpack(_INT_PACK[sew].pack(pattern & mask_bits(sew)))[0]


def float_to_bits(value: float, sew: int) -> int:
    packer = _FLOAT_PACK.get(sew)
    if packer is None:
        raise ExecutionError(f"no float representation for SEW {sew}")
    return _INT_PACK[sew].unpack(packer.pack(value))[0]


def unpack_elements(data: bytes, sew: int) -> list[int]:
    """Split raw bytes into element bit patterns (little endian)."""
    step = sew // 8
    packer = _INT_PACK[sew]
    return [packer.unpack_from(data, i)[0] for i in range(0, len(data), step)]


def pack_elements(elements: list[int], sew: int) -> bytes:
    step = sew // 8
    packer = _INT_PACK[sew]
    out = bytearray(len(elements) * step)
    for i, element in enumerate(elements):
        packer.pack_into(out, i * step, element & mask_bits(sew))
    return bytes(out)
