"""Serving-tier resilience policies: retries with backoff, hedging.

A :class:`RetryPolicy` is a tenant's budget for re-driving launches lost
to faults (device failure, watchdog timeout): up to ``max_retries``
re-queues, each delayed by exponential backoff plus deterministic jitter
drawn from the tenant's seeded RNG stream.  ``deadline_aware`` retries
never fire past a request's SLO deadline — a retry that cannot possibly
meet the SLO is a wasted launch, so the request fails fast instead.

Poison faults are never retried: the data itself is bad, and re-driving
the same launch would fault the same way (CXL poison persists until the
range is scrubbed).

Hedging lives on :class:`~repro.serve.tenant.TenantSpec` directly
(``hedge_delay_ns``): for replicated point reads, a duplicate launch is
issued if the primary has not completed within the delay, and the first
completion wins — the classic tail-latency insurance for replicated
data, safe here because GET result-slot writes are idempotent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Per-tenant retry budget (default: no retries)."""

    #: Additional attempts after the first (0 disables retries).
    max_retries: int = 0
    #: Delay before the first retry; attempt ``k`` waits
    #: ``backoff_ns * backoff_factor**k`` (+ jitter).
    backoff_ns: float = 1_000.0
    backoff_factor: float = 2.0
    #: Uniform jitter in [0, jitter_ns) added per retry, drawn from the
    #: tenant's seeded stream — deterministic, but decorrelates tenants.
    jitter_ns: float = 0.0
    #: Never schedule a retry that would fire past the request's deadline.
    deadline_aware: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("retry budget must be >= 0")
        if (not math.isfinite(self.backoff_ns) or self.backoff_ns < 0
                or self.jitter_ns < 0):
            raise ConfigError("retry backoff and jitter must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("retry backoff_factor must be >= 1")

    def delay_ns(self, attempt: int, rng) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        delay = self.backoff_ns * self.backoff_factor ** attempt
        if self.jitter_ns > 0:
            delay += float(rng.uniform(0.0, self.jitter_ns))
        return delay
