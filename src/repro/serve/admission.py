"""Admission control: token-bucket rate limits and queue-depth shedding.

Every arrival passes through the tenant's :class:`AdmissionController`
before it may queue.  Two independent gates:

* **token bucket** — the tenant's contracted rate: ``rate_limit_rps``
  tokens/s refill up to a ``burst`` cap; an arrival with no token is shed
  (``rate_limit``).  A zero rate limit disables the gate.
* **queue depth** — when the tenant already has ``max_queue_depth``
  requests waiting, further arrivals are shed (``queue_full``) instead of
  growing an unbounded backlog whose tail latency is meaningless.  Zero
  disables the gate.

Both sheds are terminal and *accounted*: together with requests that
expire past their deadline before dispatch, every offered request ends in
exactly one of {served, shed_rate_limit, shed_queue_full, expired}, so
shed accounting always sums back to offered load (asserted in the serve
test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Admission verdicts (also the per-tenant stats counter suffixes).
ADMIT = "admitted"
SHED_RATE_LIMIT = "shed_rate_limit"
SHED_QUEUE_FULL = "shed_queue_full"


@dataclass
class TokenBucket:
    """Classic token bucket in simulated time (tokens refill at ``rate``)."""

    rate_per_ns: float            # tokens per simulated ns
    burst: float                  # bucket capacity (max tokens banked)
    tokens: float = 0.0
    last_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_ns <= 0 or self.burst < 1:
            raise ConfigError(
                "token bucket needs a positive rate and burst >= 1"
            )
        self.tokens = self.burst

    def try_take(self, now_ns: float) -> bool:
        elapsed = max(now_ns - self.last_ns, 0.0)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_ns)
        self.last_ns = now_ns
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-tenant admission gates, configured from the tenant specs."""

    def __init__(self) -> None:
        self._buckets: dict[str, TokenBucket] = {}
        self._depth_caps: dict[str, int] = {}

    def configure(self, tenant: str, rate_limit_rps: float = 0.0,
                  burst: float = 32.0, max_queue_depth: int = 0) -> None:
        if rate_limit_rps < 0 or max_queue_depth < 0:
            raise ConfigError(
                f"tenant {tenant!r}: rate limit and queue depth must be >= 0"
            )
        if rate_limit_rps > 0:
            self._buckets[tenant] = TokenBucket(
                rate_per_ns=rate_limit_rps * 1e-9, burst=burst
            )
        if max_queue_depth > 0:
            self._depth_caps[tenant] = max_queue_depth

    def admit(self, tenant: str, now_ns: float, queue_depth: int) -> str:
        """Verdict for one arrival: ADMIT or a shed reason.

        Queue depth is checked first — a full queue sheds without spending
        a token, so the tenant's contracted rate is not burned on requests
        that could never be served.
        """
        cap = self._depth_caps.get(tenant)
        if cap is not None and queue_depth >= cap:
            return SHED_QUEUE_FULL
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.try_take(now_ns):
            return SHED_RATE_LIMIT
        return ADMIT
