"""Tenant specifications and per-tenant workload state.

A :class:`TenantSpec` is the serving contract for one client population:
what work each request does (``kind``), how requests arrive
(:class:`~repro.serve.arrivals.ArrivalSpec`), the latency class and WFQ
weight, the SLO, and the admission limits.  :class:`TenantWorkload`
materializes the tenant's data in cluster HDM and turns (slice-range)
requests into concrete kernel launches, mirroring the per-kind setup the
single-purpose traffic driver uses — but exposing *range* launches so the
dynamic batcher can fuse contiguous slices into one launch.

Request kinds (same trio as the cluster traffic driver):

``vecadd``  bandwidth-bound batched vector jobs; slices of C = A + B.
``olap``    column-scan analytics; slices of a predicate mask sweep.
``kvstore`` point GETs/SETs against a replicated hash table (one
            µthread per request; ``get_fraction`` sets the mix).
            Contiguous-slice merging never applies (every request walks
            its own bucket into its own slot), but with **scatter
            batching** (``REPRO_SERVE_SCATTER_BATCH``, default on)
            multiple same-op requests fuse into one wide launch: the
            host writes one descriptor per request (bucket pointer, key
            words, slot pointer — SETs add a preallocated node pointer)
            into a 64 B-stride staging ring and launches
            ``KVS_GET_SCATTER`` / ``KVS_SET_SCATTER`` over the ring, one
            µthread per descriptor — byte-identical results to unbatched
            dispatch, one launch's worth of machinery for the whole
            batch.  Batches never mix GETs and SETs (the two ops run
            different kernels), which the batcher enforces via each
            request's ``batch_key``.

Tenants on a partitioned cluster may pin to one hardware partition
(``TenantSpec.partition``): every allocation — and therefore every
launch — lands inside that partition's sub-cores, L2 slices and DRAM
channels, so a noisy neighbour in another partition cannot touch this
tenant's timing.
"""

from __future__ import annotations

import math
import os
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.host.api import pack_args
from repro.kernels.kvstore import (
    KVS_GET,
    KVS_GET_SCATTER,
    KVS_SET,
    KVS_SET_SCATTER,
)
from repro.kernels.olap import EVAL_RANGE_I32
from repro.kernels.vecadd import VECADD
from repro.serve.arrivals import ArrivalSpec, stream_rng
from repro.serve.qos import QOS_CLASSES, Request, validate_qos_class
from repro.serve.resilience import RetryPolicy
from repro.workloads import kvstore

#: Request kinds the serving tiers implement.
SERVE_KINDS = ("vecadd", "olap", "kvstore")

#: Default per-request size per kind (elements / rows / table items).
DEFAULT_SIZES = {"vecadd": 1 << 14, "olap": 1 << 15, "kvstore": 1 << 10}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's serving contract."""

    name: str
    kind: str
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    qos_class: str = "interactive"
    weight: float = 1.0
    #: Relative SLO deadline per request; inf = no SLO.
    slo_ns: float = math.inf
    #: Admission limits (0 disables each gate).
    rate_limit_rps: float = 0.0
    burst: float = 32.0
    max_queue_depth: int = 0
    #: Requests past their deadline before dispatch are dropped (counted
    #: ``expired``) instead of served uselessly late.
    drop_expired: bool = False
    #: vecadd: elements per request; olap: rows per request; kvstore:
    #: items in the tenant's table (0 = kind default).
    size: int = 0
    #: Working-set slices requests cycle through (vecadd / olap).
    slices: int = 8
    placement: str | None = None
    #: Pin every allocation (and therefore every launch) to one hardware
    #: partition of a partitioned cluster.  None = unpinned.
    partition: str | None = None
    #: kvstore only: fraction of requests that are GETs (the rest are
    #: SETs that overwrite existing keys in place).
    get_fraction: float = 1.0
    #: Retry budget for launches lost to faults (default: none).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Hedged requests: > 0 issues a duplicate launch if the primary has
    #: not completed within this delay (replicated point reads only; the
    #: first completion wins).  0 disables hedging.
    hedge_delay_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVE_KINDS:
            raise ConfigError(
                f"unknown tenant kind {self.kind!r}; "
                f"choose from {list(SERVE_KINDS)}"
            )
        validate_qos_class(self.qos_class,
                           source=f"tenant {self.name!r} qos_class")
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name!r} needs a positive weight")
        if self.slo_ns <= 0:
            raise ConfigError(f"tenant {self.name!r} needs a positive SLO")
        if self.slices <= 0:
            raise ConfigError(f"tenant {self.name!r} needs >= 1 slice")
        if self.size < 0 or self.rate_limit_rps < 0 or self.max_queue_depth < 0:
            raise ConfigError(
                f"tenant {self.name!r}: sizes and limits must be >= 0"
            )
        if not math.isfinite(self.hedge_delay_ns) or self.hedge_delay_ns < 0:
            raise ConfigError(
                f"tenant {self.name!r}: hedge_delay_ns must be >= 0"
            )
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ConfigError(
                f"tenant {self.name!r}: get_fraction must be in [0, 1], "
                f"got {self.get_fraction}"
            )
        if self.get_fraction < 1.0 and self.kind != "kvstore":
            raise ConfigError(
                f"tenant {self.name!r}: get_fraction applies to kvstore "
                f"tenants only"
            )

    @property
    def effective_size(self) -> int:
        return self.size if self.size else DEFAULT_SIZES[self.kind]

    @property
    def total_requests(self) -> int:
        return self.arrivals.total_requests


#: Per-request staging-ring entry stride for scatter batches (the 40 B
#: descriptor padded to its own cache sector so lanes never share one).
SCATTER_ENTRY_BYTES = 64


@dataclass
class LaunchPlan:
    """Concrete kernel launch realizing one batch of requests.

    ``scatter`` marks a gather-batched point launch whose per-request
    completion times the engine reads back from the fused launch's
    per-lane timing.
    """

    kernel_id: int
    base: int
    bound: int
    args: bytes
    stride: int = 32
    scatter: bool = False


class TenantWorkload:
    """Data + request factories for one tenant on a cluster runtime."""

    def __init__(self, platform, spec: TenantSpec, seed: int) -> None:
        self.spec = spec
        self.runtime = platform.runtime
        self.gen = stream_rng(seed, spec.name)
        self._touched: set[int] = set()
        getattr(self, f"_setup_{spec.kind}")()
        # Pinned tenants resolve their partition through one anchor shard
        # so a partition failover (ShardMap remap) is visible to the
        # engine's per-partition capacity accounting.
        self._anchor_shard = None
        if spec.partition is not None:
            anchor_addr = {
                "vecadd": lambda: self.addr_a,
                "olap": lambda: self.addr_col,
                "kvstore": lambda: self.table.buckets_addr,
            }[spec.kind]()
            self._anchor_shard = self.runtime.shard_map(anchor_addr)

    @property
    def active_partition(self) -> str | None:
        """The partition this tenant's launches currently land in, after
        any fault-driven remap; None when unpinned."""
        if self._anchor_shard is None:
            return None
        return self._anchor_shard.active_partition

    # -- batching contract --------------------------------------------------

    @property
    def batchable(self) -> bool:
        """Contiguous slice ranges merge into one launch (not KVStore)."""
        return self.spec.kind != "kvstore"

    @property
    def scatter_batchable(self) -> bool:
        """Independent point requests fuse via the staging ring."""
        return self.spec.kind == "kvstore" and self._scatter_enabled

    @property
    def hedgeable(self) -> bool:
        """Point reads over replicated data may be hedged: any device can
        serve them, and the result-slot writes are idempotent, so racing
        a duplicate launch is safe."""
        return (self.spec.kind == "kvstore"
                and (self.spec.placement or "replicated") == "replicated")

    def slice_of(self, index: int) -> tuple[int, int]:
        """Working-set slice range request ``index`` covers."""
        if self.spec.kind == "kvstore":
            return (index, index + 1)     # identity: one slot per request
        s = index % self.spec.slices
        return (s, s + 1)

    def batch_group(self, index: int) -> int:
        """Fusion group for request ``index``: requests in different
        groups must never share a scatter batch (GETs and SETs run
        different kernels)."""
        if self.spec.kind != "kvstore":
            return 0
        return 0 if self.data.requests[index].is_get else 1

    # -- per-kind data setup ------------------------------------------------

    def _alloc_kw(self, default_placement: str | None = None) -> dict:
        placement = self.spec.placement or default_placement
        kw = {"placement": placement} if placement else {}
        if self.spec.partition is not None:
            kw["partition"] = self.spec.partition
        return kw

    def _setup_vecadd(self) -> None:
        n = self.spec.effective_size
        total = n * self.spec.slices
        self.a = (np.arange(total, dtype=np.int64)
                  * int(self.gen.integers(1, 9)))
        self.b = self.a[::-1].copy()
        kw = self._alloc_kw()
        self.addr_a = self.runtime.alloc_array(self.a, **kw)
        self.addr_b = self.runtime.alloc_array(self.b, **kw)
        self.addr_c = self.runtime.alloc(self.a.nbytes, **kw)
        self.kid = self.runtime.register_kernel(
            VECADD, name=f"{self.spec.name}.vecadd"
        )

    def _setup_olap(self) -> None:
        rows = self.spec.effective_size
        total = rows * self.spec.slices
        self.lo, self.hi = 100, 900
        self.column = self.gen.integers(0, 1000, total).astype(np.int32)
        kw = self._alloc_kw()
        self.addr_col = self.runtime.alloc_array(self.column, **kw)
        self.addr_mask = self.runtime.alloc(total, **kw)
        self.kid = self.runtime.register_kernel(
            EVAL_RANGE_I32, name=f"{self.spec.name}.scan"
        )

    def _setup_kvstore(self) -> None:
        # Read-mostly tables replicate by default so any expander serves
        # a GET without a switch hop.
        kw = self._alloc_kw("replicated")
        frac = self.spec.get_fraction
        requests = self.spec.total_requests
        self.data = kvstore.generate(
            self.spec.effective_size, requests,
            get_fraction=frac,
            mix_name="GET" if frac >= 1.0 else f"GET{round(frac * 100)}",
            salt=int(self.gen.integers(0, 1 << 16)),
        )
        set_indices = [i for i, r in enumerate(self.data.requests)
                       if not r.is_get]
        self.table = kvstore.setup_table(
            self.runtime, self.data,
            spare_nodes=max(1, len(set_indices)),
            placement=kw.get("placement"), partition=kw.get("partition"),
        )
        # one result slot per request; slots are verified post-run
        self.slots_addr = self.runtime.alloc(requests * 128, align=128, **kw)
        self.kid = self.runtime.register_kernel(
            KVS_GET, name=f"{self.spec.name}.get"
        )
        self._checks: list[tuple[int, int]] = []
        self._set_checks: list[int] = []
        # SETs overwrite existing keys: each SET's node (key + canonical
        # value) is host-prewritten once at setup, so re-planning a retry
        # or replaying a hedge writes identical bytes.
        self._set_node: dict[int, int] = {}
        if set_indices:
            self.set_kid = self.runtime.register_kernel(
                KVS_SET, name=f"{self.spec.name}.set"
            )
            for ordinal, i in enumerate(set_indices):
                node = self.table.spare_addr + ordinal * kvstore.NODE_BYTES
                kvstore._prewrite_node(self.runtime, node,
                                       self.data.requests[i])
                self._set_node[i] = node
        # scatter batching: a staging ring of per-request descriptors the
        # fused KVS_GET_SCATTER / KVS_SET_SCATTER launch walks, one
        # µthread per entry
        self._scatter_enabled = (
            os.environ.get("REPRO_SERVE_SCATTER_BATCH", "1") != "0"
        )
        if self._scatter_enabled:
            self.scatter_kid = self.runtime.register_kernel(
                KVS_GET_SCATTER, name=f"{self.spec.name}.get_scatter"
            )
            if set_indices:
                self.set_scatter_kid = self.runtime.register_kernel(
                    KVS_SET_SCATTER, name=f"{self.spec.name}.set_scatter"
                )
            # retried requests are re-planned into fresh ring entries, so
            # the ring is sized for the worst-case attempt count
            entries = requests * (1 + self.spec.retry.max_retries)
            self.staging_addr = self.runtime.alloc(
                entries * SCATTER_ENTRY_BYTES, align=128, **kw
            )
            self._staging_cursor = 0

    # -- launch construction ------------------------------------------------

    def plan(self, requests: list[Request]) -> LaunchPlan:
        """One launch covering a batch's merged slice range.

        Planning is side-effect free on the verification state: launches
        can fail (faults) and be re-planned on retry, so what-was-served
        bookkeeping happens in :meth:`note_served` on the success path.
        """
        spec = self.spec
        lo = min(r.slice_lo for r in requests)
        hi = max(r.slice_hi for r in requests)
        if spec.kind == "vecadd":
            off = lo * spec.effective_size * 8
            base = self.addr_a + off
            bound = self.addr_a + hi * spec.effective_size * 8
            return LaunchPlan(self.kid, base, bound,
                              pack_args(self.addr_b + off, self.addr_c + off))
        if spec.kind == "olap":
            rows = spec.effective_size
            base = self.addr_col + lo * rows * 4
            bound = self.addr_col + hi * rows * 4
            return LaunchPlan(
                self.kid, base, bound,
                pack_args(self.addr_mask + lo * rows, self.lo, self.hi),
            )
        # kvstore: one µthread per request — alone over its result slot,
        # or scatter-batched over a run of staging-ring descriptors.
        # Batches are op-homogeneous (batch_group): GETs and SETs never
        # share a launch.
        is_get = self.data.requests[requests[0].index].is_get
        if len(requests) == 1:
            (request,) = requests
            req = self.data.requests[request.index]
            bucket_ptr = self.table.buckets_addr + 8 * kvstore.hash_key(
                *req.key, self.data.buckets
            )
            slot = self.slots_addr + request.index * 128
            if is_get:
                return LaunchPlan(self.kid, slot, slot + 32,
                                  pack_args(bucket_ptr, *req.key))
            node = self._set_node[request.index]
            return LaunchPlan(self.set_kid, slot, slot + 32,
                              pack_args(bucket_ptr, *req.key, node))
        base = (self.staging_addr
                + self._staging_cursor * SCATTER_ENTRY_BYTES)
        physical = self.runtime.physical
        for i, request in enumerate(requests):
            req = self.data.requests[request.index]
            bucket_ptr = self.table.buckets_addr + 8 * kvstore.hash_key(
                *req.key, self.data.buckets
            )
            slot = self.slots_addr + request.index * 128
            if is_get:
                entry = struct.pack("<5Q", bucket_ptr, *req.key, slot)
            else:
                entry = struct.pack("<6Q", bucket_ptr, *req.key,
                                    self._set_node[request.index], slot)
            physical.write_bytes(base + i * SCATTER_ENTRY_BYTES, entry)
        self._staging_cursor += len(requests)
        return LaunchPlan(
            self.scatter_kid if is_get else self.set_scatter_kid, base,
            base + len(requests) * SCATTER_ENTRY_BYTES,
            args=b"", stride=SCATTER_ENTRY_BYTES, scatter=True,
        )

    def note_served(self, requests: list[Request]) -> None:
        """Record a successfully served batch for post-run verification.

        Called by the engine on launch completion (not at plan time):
        requests whose every launch attempt failed must not be verified —
        their slices/slots were legitimately never produced.
        """
        spec = self.spec
        if spec.kind == "kvstore":
            for request in requests:
                req = self.data.requests[request.index]
                slot = self.slots_addr + request.index * 128
                if req.is_get:
                    self._checks.append((slot, req.value_seed))
                else:
                    self._set_checks.append(slot)
            return
        for request in requests:
            self._touched.update(range(request.slice_lo, request.slice_hi))

    # -- post-run verification ----------------------------------------------

    def verify(self) -> bool:
        spec = self.spec
        if spec.kind == "vecadd":
            n = spec.effective_size
            produced = self.runtime.read_array(self.addr_c, np.int64,
                                               len(self.a))
            expected = self.a + self.b
            return all(
                np.array_equal(produced[s * n:(s + 1) * n],
                               expected[s * n:(s + 1) * n])
                for s in self._touched
            )
        if spec.kind == "olap":
            rows = spec.effective_size
            produced = self.runtime.read_array(
                self.addr_mask, np.uint8, len(self.column)
            ).astype(bool)
            expected = (self.column >= self.lo) & (self.column < self.hi)
            return all(
                np.array_equal(produced[s * rows:(s + 1) * rows],
                               expected[s * rows:(s + 1) * rows])
                for s in self._touched
            )
        physical = self.runtime.physical
        for slot, seed in self._checks:
            if (physical.read_u64(slot + 64) != 1
                    or physical.read_u64(slot) != seed):
                return False
        # Every serving SET targets an existing key, so it must report
        # "updated" (1) — an "inserted" (2) would mean an order-dependent
        # chain mutation and a broken byte-identity guarantee.
        for slot in self._set_checks:
            if physical.read_u64(slot + 64) != 1:
                return False
        return True

    def result_snapshot(self) -> bytes:
        """Raw bytes of the tenant's result region.

        Two runs that served the same requests must produce identical
        snapshots regardless of scheduling or batching — the smoke point's
        per-request-identity check.
        """
        physical = self.runtime.physical
        spec = self.spec
        if spec.kind == "vecadd":
            return bytes(physical.read_bytes(self.addr_c, self.a.nbytes))
        if spec.kind == "olap":
            return bytes(physical.read_bytes(self.addr_mask, len(self.column)))
        return bytes(
            physical.read_bytes(self.slots_addr, spec.total_requests * 128)
        )
