"""Dynamic batching: coalesce compatible requests into one cluster launch.

The M2NDP kernels the serving tiers run (VectorAdd, OLAP column scans)
compute every derived address as ``argument_base + f(x2)`` with ``x2``
relative to the launch's pool base, so two requests over *adjacent*
working-set slices are exactly equivalent to one launch spanning both
slices whose arguments point at the first slice — merged launches are
byte-identical to dispatching the requests one by one.  The batcher
exploits that under a classic **max-batch / max-wait** policy:

* up to ``max_batch`` queue-head requests whose slice ranges chain
  contiguously (or duplicate a slice already in the run — idempotent
  re-computation) fuse into a single logical launch;
* a lone head request may be *held* up to ``max_wait_ns`` after arrival
  waiting for batchmates, but never longer, and never when the stream has
  no arrivals left to wait for.

Beyond amortizing the per-launch overheads (M2func fan-out, host
dispatch), merging collapses many distinct per-slice launch shapes into a
few wide ones, which is precisely what the cross-launch trace cache
(:mod:`repro.exec.trace_cache`) wants: a tenant cycling through more
slices than the cache holds thrashes it unbatched, and hits on every
launch once batched (measured by the serving smoke point).

Point-lookup workloads (KVStore GETs — one µthread walking one bucket
chain, every request a different pool region and key) can never merge by
slice contiguity.  They batch through the **scatter** mode instead: up
to ``max_batch`` arbitrary queue-head requests fuse into one wide launch
over a staging ring of per-request descriptors (see
:meth:`repro.serve.tenant.TenantWorkload.plan`), one µthread per
request.  Scatter batches never hold the queue head — they take whatever
has accumulated, so an idle system still dispatches single requests at
the lowest possible latency and a loaded one amortizes the launch
machinery across the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.serve.qos import Request, RequestQueue


@dataclass(frozen=True)
class BatchPolicy:
    """Max-batch / max-wait coalescing knobs (``max_batch=1`` disables)."""

    max_batch: int = 8
    max_wait_ns: float = 2_000.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.max_wait_ns < 0:
            raise ConfigError("max_wait_ns must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.max_batch > 1


@dataclass
class Batch:
    """One dispatchable unit: requests covering slices [slice_lo, slice_hi).

    ``scatter`` marks a gather-batch of independent point requests (the
    slice range is then merely the covering interval of the members'
    identity slices, not a contiguous merged run).
    """

    tenant: str
    requests: list[Request]
    slice_lo: int
    slice_hi: int
    scatter: bool = False

    @property
    def size(self) -> int:
        return len(self.requests)


class DynamicBatcher:
    """Forms batches from a tenant's queue head (see module docstring)."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy

    def preview(self, queue: RequestQueue, tenant: str,
                batchable: bool, scatter: bool = False) -> list[Request]:
        """The mergeable head run that :meth:`take` would dispatch now."""
        if scatter and self.policy.enabled:
            head = queue.head_run(tenant, self.policy.max_batch)
            if not head:
                return []
            # op-homogeneous fusion: stop at the first request whose
            # batch_key differs from the head's (different kernel)
            run = []
            for request in head:
                if request.batch_key != head[0].batch_key:
                    break
                run.append(request)
            return run
        limit = self.policy.max_batch if batchable else 1
        head = queue.head_run(tenant, limit)
        if not head:
            return []
        run = [head[0]]
        lo, hi = head[0].slice_lo, head[0].slice_hi
        for request in head[1:]:
            if request.slice_lo == hi:                      # extends the run
                hi = request.slice_hi
            elif lo <= request.slice_lo and request.slice_hi <= hi:
                pass                                        # duplicate slice
            else:
                break
            run.append(request)
        return run

    def should_hold(self, queue: RequestQueue, tenant: str, batchable: bool,
                    now_ns: float, more_arrivals: bool,
                    scatter: bool = False) -> float | None:
        """Hold the tenant's head for batchmates?  Returns the flush time.

        ``None`` means dispatch now: batching disabled, the run is already
        full, the head has aged ``max_wait_ns``, or the stream has no
        future arrivals that could ever join the batch.  Scatter batches
        never hold — they fuse whatever has already queued.
        """
        if scatter:
            return None
        if not (self.policy.enabled and batchable and self.policy.max_wait_ns):
            return None
        if not more_arrivals:
            return None
        run = self.preview(queue, tenant, batchable)
        if not run or len(run) >= self.policy.max_batch:
            return None
        flush_at = run[0].arrival_ns + self.policy.max_wait_ns
        return flush_at if flush_at > now_ns else None

    def take(self, queue: RequestQueue, tenant: str,
             batchable: bool, scatter: bool = False) -> Batch:
        """Remove and return the head batch for ``tenant``."""
        run = self.preview(queue, tenant, batchable, scatter)
        if not run:
            raise ConfigError(f"no queued requests for tenant {tenant!r}")
        taken = queue.pop_run(tenant, len(run))
        scatter = scatter and self.policy.enabled and len(taken) > 1
        if not scatter:
            # A merged run must genuinely chain contiguously (or duplicate
            # covered slices): a covering [min, max) range over a run with
            # gaps would launch over slices no request asked for.
            lo, hi = taken[0].slice_lo, taken[0].slice_hi
            for request in taken[1:]:
                if request.slice_lo == hi:
                    hi = request.slice_hi
                elif lo <= request.slice_lo and request.slice_hi <= hi:
                    pass
                else:
                    raise ConfigError(
                        f"batch for tenant {tenant!r} is not contiguous: "
                        f"slice [{request.slice_lo}, {request.slice_hi}) "
                        f"does not extend or duplicate [{lo}, {hi})"
                    )
            return Batch(tenant=tenant, requests=taken,
                         slice_lo=lo, slice_hi=hi)
        return Batch(
            tenant=tenant,
            requests=taken,
            slice_lo=min(r.slice_lo for r in taken),
            slice_hi=max(r.slice_hi for r in taken),
            scatter=True,
        )
