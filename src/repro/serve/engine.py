"""The serving engine: SLO-aware multi-tenant frontend over a cluster.

Event flow, all in simulated time on the cluster's shared simulator:

1. **Arrivals** — each tenant's :class:`ArrivalProcess` (seeded from
   ``ClusterConfig.seed``) schedules request arrivals; closed-loop
   streams regenerate from completion feedback.
2. **Admission** — the :class:`AdmissionController` sheds arrivals that
   exceed the tenant's token-bucket rate contract or queue-depth cap.
3. **Queueing + scheduling** — admitted requests queue per tenant
   (deadline-aware EDF order) and the :class:`QoSScheduler` picks the
   next tenant to serve (weighted-fair with latency-class priority and
   batch-class aging; plain FIFO as the baseline).
4. **Batching** — the :class:`DynamicBatcher` fuses contiguous-slice
   requests into one cluster launch under max-batch/max-wait, holding a
   lone head briefly when batchmates may still arrive.
5. **Dispatch** — at most ``active_devices x inflight_per_device``
   launches are in flight; the :class:`Autoscaler` hook moves the active
   device count against windowed utilization.
6. **Accounting** — :class:`ServingStats` streams per-tenant latency
   distributions, SLO attainment, shed counts and windowed throughput
   into the cluster's :class:`~repro.sim.stats.StatsRegistry`.

Environment knobs (validated at construction, explicit arguments win):
``REPRO_SERVE_SCHEDULER`` (``fifo``/``wfq``), ``REPRO_SERVE_MAX_BATCH``
(int >= 1; 1 disables batching) and ``REPRO_SERVE_MAX_WAIT_NS`` (float
>= 0).  ``REPRO_SERVE_SCATTER_BATCH=0`` disables scatter batching of
point-lookup tenants (see :mod:`repro.serve.batcher`); it is read by
the tenant workload, not here.
"""

from __future__ import annotations

import math
import os
from typing import Callable

from repro.cluster.runtime import ClusterPlatform
from repro.errors import ConfigError, DeviceUnavailable, PoisonError
from repro.faults.health import DRAINING, UP
from repro.obs import tracer as obs_tracer
from repro.obs.incidents import IncidentReporter
from repro.obs.monitor import (
    DEFAULT_MONITOR_INTERVAL_NS,
    SLOMonitor,
    default_objectives,
    resolve_monitoring,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.timeline import UtilizationSampler
from repro.serve.admission import ADMIT, AdmissionController
from repro.serve.arrivals import make_arrival_process, stream_rng
from repro.serve.autoscaler import AutoscalePolicy, Autoscaler
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.qos import (
    QoSScheduler,
    Request,
    RequestQueue,
    validate_serve_scheduler,
)
from repro.serve.stats import ServingReport, ServingStats
from repro.serve.tenant import TenantSpec, TenantWorkload

#: Host-side per-launch compute (request parsing, dispatch) — paid once
#: per *launch*, so batching amortizes it across the batch.
HOST_DISPATCH_NS = 150.0

#: Default concurrent launches per active device.
DEFAULT_INFLIGHT_PER_DEVICE = 4


def resolve_serve_scheduler(explicit: str | None) -> str:
    """Explicit argument > REPRO_SERVE_SCHEDULER env > default (wfq)."""
    if explicit is not None:
        return validate_serve_scheduler(explicit, source="scheduler argument")
    env = os.environ.get("REPRO_SERVE_SCHEDULER")
    if env is not None:
        return validate_serve_scheduler(
            env, source="REPRO_SERVE_SCHEDULER environment variable"
        )
    return "wfq"


def resolve_batch_policy(explicit: BatchPolicy | None) -> BatchPolicy:
    """Explicit policy > REPRO_SERVE_MAX_BATCH / _MAX_WAIT_NS env > default."""
    if explicit is not None:
        return explicit
    kwargs = {}
    raw = os.environ.get("REPRO_SERVE_MAX_BATCH")
    if raw is not None:
        try:
            kwargs["max_batch"] = int(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_SERVE_MAX_BATCH must be an integer, got {raw!r}"
            ) from None
    raw = os.environ.get("REPRO_SERVE_MAX_WAIT_NS")
    if raw is not None:
        try:
            kwargs["max_wait_ns"] = float(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_SERVE_MAX_WAIT_NS must be a number, got {raw!r}"
            ) from None
    return BatchPolicy(**kwargs)


class _TenantState:
    """Engine-side runtime state for one tenant."""

    def __init__(self, platform: ClusterPlatform, spec: TenantSpec,
                 seed: int) -> None:
        self.spec = spec
        self.workload = TenantWorkload(platform, spec, seed)
        self.process = make_arrival_process(
            spec.arrivals, stream_rng(seed, spec.name + "#arrivals")
        )
        #: Deterministic jitter stream for retry backoff (seeded like the
        #: arrival stream, so retries replay byte-identically per seed).
        self.retry_rng = stream_rng(seed, spec.name + "#retry")
        self.issued = 0               # next request index

    @property
    def more_arrivals(self) -> bool:
        """Will further arrival events fire after now?  (``process.exhausted``
        only says the open-loop times are all *generated* — they may still
        be future simulator events a held batch can wait for.)"""
        return self.issued < self.spec.total_requests


class ServingEngine:
    """Runs tenant traffic against a :class:`ClusterRuntime` to completion."""

    def __init__(
        self,
        platform: ClusterPlatform,
        tenants: list[TenantSpec],
        scheduler: str | None = None,
        batch: BatchPolicy | None = None,
        autoscale: AutoscalePolicy | None = None,
        inflight_per_device: int = DEFAULT_INFLIGHT_PER_DEVICE,
        starvation_ns: float | None = None,
        stats_window_ns: float | None = None,
        monitoring: bool | None = None,
        objectives: dict | None = None,
        incident_dir: str | None = None,
        recorder_capacity: int | None = None,
        monitor_interval_ns: float | None = None,
    ) -> None:
        if not tenants:
            raise ConfigError("serving engine needs at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {names}")
        if inflight_per_device <= 0:
            raise ConfigError("inflight_per_device must be positive")

        self.platform = platform
        self.sim = platform.sim
        self.runtime = platform.runtime
        seed = self.runtime.cluster_config.seed

        policy = resolve_serve_scheduler(scheduler)
        scheduler_kwargs = {"policy": policy,
                            "weights": {s.name: s.weight for s in tenants}}
        if starvation_ns is not None:
            scheduler_kwargs["starvation_ns"] = starvation_ns
        self.scheduler = QoSScheduler(**scheduler_kwargs)
        self.batcher = DynamicBatcher(resolve_batch_policy(batch))
        self.autoscale_policy = (autoscale if autoscale is not None
                                 else AutoscalePolicy())
        self.autoscaler = Autoscaler(self.autoscale_policy,
                                     self.runtime.num_devices)
        # the engine runs one periodic tick driving both the utilization
        # observations and the stats-timeline windows; stats_window_ns
        # overrides its cadence (e.g. windows finer than the run span)
        # without having to touch the autoscale policy
        if stats_window_ns is not None and stats_window_ns <= 0:
            raise ConfigError("stats_window_ns must be positive")
        self._tick_interval = (stats_window_ns if stats_window_ns is not None
                               else self.autoscale_policy.interval_ns)
        self.inflight_per_device = inflight_per_device
        self.admission = AdmissionController()
        for spec in tenants:
            self.admission.configure(
                spec.name, rate_limit_rps=spec.rate_limit_rps,
                burst=spec.burst, max_queue_depth=spec.max_queue_depth,
            )

        self.queue = RequestQueue()
        self.stats = ServingStats(self.runtime.stats, tenants)
        # Workload setup below steps the simulator (M2func registration);
        # tenant states must be built before arrivals are scheduled.
        self.tenants = {spec.name: _TenantState(platform, spec, seed)
                        for spec in tenants}

        # Always-on monitoring stack (REPRO_MONITOR=0 disables it, and
        # then *nothing* below exists: no recorder appends, no monitor
        # beats — byte-identical to the unmonitored engine).  The
        # monitor only reads counters, so enabling it never changes
        # workload results.
        if monitor_interval_ns is not None and monitor_interval_ns <= 0:
            raise ConfigError("monitor_interval_ns must be positive")
        self._monitor_interval = (monitor_interval_ns
                                  if monitor_interval_ns is not None
                                  else DEFAULT_MONITOR_INTERVAL_NS)
        self._monitor_scheduled = False
        self.monitoring = resolve_monitoring(monitoring)
        self.recorder: FlightRecorder | None = None
        self.monitor: SLOMonitor | None = None
        self.reporter: IncidentReporter | None = None
        if self.monitoring:
            self.recorder = FlightRecorder(recorder_capacity)
            slos = default_objectives([spec.name for spec in tenants])
            if objectives:
                unknown = set(objectives) - set(slos)
                if unknown:
                    raise ConfigError(
                        f"objectives for unknown tenants: {sorted(unknown)}"
                    )
                slos.update(objectives)
            self.monitor = SLOMonitor(self.runtime.stats, slos,
                                      recorder=self.recorder,
                                      start_ns=self.sim.now)
            self.reporter = IncidentReporter(
                self.runtime, self.recorder, monitor=self.monitor,
                out_dir=incident_dir,
            )
            self.runtime.recorder = self.recorder
            self.runtime.incidents = self.reporter

        self._seq = 0                 # global admission order
        self._inflight = 0
        #: In-flight launches per hardware partition (pinned tenants
        #: only); caps each partition at its unit-proportional share of
        #: the cluster-wide in-flight budget.
        self._inflight_parts: dict[str, int] = {}
        self._busy_integral = 0.0     # inflight x time, for utilization
        self._last_busy_ns = 0.0
        self._last_tick_ns = 0.0
        self._tick_scheduled = False
        self._flush_at: dict[str, float] = {}
        #: Devices quiescing (no new routing, in-flight work finishing)
        #: and devices fully quiesced.  Only devices *this engine* drained
        #: live here — fault-detected DOWN devices are the injector's.
        self._draining: set[int] = set()
        self._drained: set[int] = set()
        self._ran = False
        self._util: UtilizationSampler | None = None
        # the platform's counters are cumulative; report this run's delta
        self._cache_base = (
            self.platform.stats.get("exec.trace_cache_hits"),
            self.platform.stats.get("exec.trace_cache_misses"),
        )

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Concurrent-launch cap under the current active device set.

        Capped by the scheduler's routable count so failed/draining
        devices stop backing in-flight slots; identical to
        ``active x inflight_per_device`` while the cluster is healthy.
        """
        usable = min(self.autoscaler.active,
                     self.runtime.scheduler.num_routable)
        return usable * self.inflight_per_device

    def _partition_capacity(self, partition: str | None) -> int:
        """In-flight cap for launches pinned to one hardware partition:
        the cluster-wide budget scaled by the partition's sub-core share
        (floor 1, so a tiny partition still makes progress)."""
        pmap = self.runtime.partitions
        if pmap is None or partition is None:
            return self.capacity
        share = pmap.share(partition)
        return max(1, round(self.capacity * share.num_units
                            / pmap.total_units))

    def _charge_busy(self, now_ns: float) -> None:
        self._busy_integral += self._inflight * (now_ns - self._last_busy_ns)
        self._last_busy_ns = now_ns

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def run(self) -> ServingReport:
        """Schedule all arrivals, drain the simulator, return the report."""
        if self._ran:
            raise ConfigError("a ServingEngine instance runs once")
        self._ran = True
        epoch = self.sim.now
        self._last_busy_ns = epoch
        self._last_tick_ns = epoch
        if obs_tracer.ENABLED:
            self._util = UtilizationSampler(self.platform.devices,
                                            start_ns=epoch)
        self.stats.start(epoch)
        for state in self.tenants.values():
            for when in state.process.initial(epoch):
                self.sim.schedule_at(
                    float(when),
                    (lambda s=state: self._arrive(s)),
                )
        self._ensure_tick()
        self.sim.run()
        return self._finish()

    def _arrive(self, state: _TenantState) -> None:
        now = self.sim.now
        spec = state.spec
        index = state.issued
        state.issued += 1
        self.stats.offered(spec.name, now)
        tracer = obs_tracer.tracer_of(self.sim) if obs_tracer.ENABLED \
            else None
        root = None
        if tracer is not None:
            root = tracer.begin(
                "serve.request", now, tid=tracer.alloc_tid(0),
                tenant=spec.name, index=index, qos=spec.qos_class)
        verdict = self.admission.admit(spec.name, now,
                                       self.queue.depth(spec.name))
        if tracer is not None:
            tracer.instant("serve.admission", now, parent=root,
                           verdict=verdict)
        if verdict != ADMIT:
            if tracer is not None:
                tracer.end(root, now, outcome=verdict)
            self.stats.shed(spec.name, verdict)
            self._feedback(state, now)
            return
        slice_lo, slice_hi = state.workload.slice_of(index)
        deadline = (now + spec.slo_ns if math.isfinite(spec.slo_ns)
                    else math.inf)
        request = Request(
            tenant=spec.name, index=index, seq=self._seq, arrival_ns=now,
            qos_class=spec.qos_class, deadline_ns=deadline,
            slice_lo=slice_lo, slice_hi=slice_hi,
            batch_key=state.workload.batch_group(index),
        )
        if tracer is not None:
            request.trace_root = root
            request.trace_queue = tracer.begin("serve.queue", now,
                                               parent=root)
        self._seq += 1
        self.queue.push(request)
        self._ensure_tick()
        self._pump()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _eligible_heads(self, now: float) -> dict[str, Request]:
        """Head requests of tenants ready to dispatch (hold-aware)."""
        heads: dict[str, Request] = {}
        for tenant in self.queue.tenants():
            state = self.tenants[tenant]
            self._expire_heads(state, now)
            if not self.queue.depth(tenant):
                continue
            part = state.workload.active_partition
            if (part is not None
                    and self._inflight_parts.get(part, 0)
                    >= self._partition_capacity(part)):
                continue              # partition's in-flight share is full
            flush_at = self.batcher.should_hold(
                self.queue, tenant, state.workload.batchable, now,
                more_arrivals=state.more_arrivals,
                scatter=state.workload.scatter_batchable,
            )
            if flush_at is not None:
                if obs_tracer.ENABLED:
                    head = self.queue.peek(tenant)
                    if (head.trace_hold is None
                            and head.trace_queue is not None):
                        head.trace_hold = obs_tracer.tracer_of(
                            self.sim).begin("serve.batch_wait", now,
                                            parent=head.trace_queue)
                self._schedule_flush(tenant, flush_at)
                continue
            heads[tenant] = self.queue.peek(tenant)
        return heads

    def _expire_heads(self, state: _TenantState, now: float) -> None:
        """Drop queue-head requests already past their deadline."""
        if not state.spec.drop_expired:
            return
        tenant = state.spec.name
        while (self.queue.depth(tenant)
               and self.queue.peek(tenant).deadline_ns < now):
            request = self.queue.pop(tenant)
            if obs_tracer.ENABLED and request.trace_root is not None:
                tracer = obs_tracer.tracer_of(self.sim)
                tracer.end(request.trace_hold, now)
                tracer.end(request.trace_queue, now)
                tracer.end(request.trace_root, now, outcome="expired")
            self.stats.expired(tenant)
            self._feedback(state, now)

    def _pump(self) -> None:
        now = self.sim.now
        while self._inflight < self.capacity:
            heads = self._eligible_heads(now)
            if not heads:
                break
            tenant = self.scheduler.pick(heads, now)
            state = self.tenants[tenant]
            batch = self.batcher.take(self.queue, tenant,
                                      state.workload.batchable,
                                      scatter=state.workload.scatter_batchable)
            self.scheduler.charge(tenant, float(batch.size))
            plan = state.workload.plan(batch.requests)
            self.stats.launched(tenant, batch.size)
            if self.recorder is not None:
                self.recorder.record("serve.launch", now, tenant=tenant,
                                     batch=batch.size)
            self._charge_busy(now)
            self._inflight += 1
            partition = state.workload.active_partition
            if partition is not None:
                self._inflight_parts[partition] = (
                    self._inflight_parts.get(partition, 0) + 1
                )
            launch_span = None
            if obs_tracer.ENABLED:
                tracer = obs_tracer.tracer_of(self.sim)
                for request in batch.requests:
                    tracer.end(request.trace_hold, now)
                    tracer.end(request.trace_queue, now)
                    request.trace_inflight = tracer.begin(
                        "serve.inflight", now, parent=request.trace_root)
                # the launch subtree hangs off the batch head's request
                # on its own swim-lane (it can outlive the head's root)
                launch_span = tracer.begin(
                    "serve.launch", now, tid=tracer.alloc_tid(0),
                    parent=batch.requests[0].trace_root,
                    tenant=tenant, batch=batch.size)
            try:
                self._dispatch(state, plan, batch.requests, now, launch_span,
                               partition)
            except DeviceUnavailable as exc:
                # every device is DOWN or draining: fail the batch through
                # the retry machinery rather than crashing the run loop
                self._charge_busy(now)
                self._inflight -= 1
                if partition is not None:
                    self._inflight_parts[partition] -= 1
                if obs_tracer.ENABLED:
                    obs_tracer.tracer_of(self.sim).end(
                        launch_span, now, outcome="unroutable")
                self._handle_failure(state, batch.requests, exc, now)

    def _dispatch(self, state: _TenantState, plan, requests: list[Request],
                  now: float, launch_span: int | None,
                  partition: str | None = None) -> None:
        """Issue the cluster launch, optionally racing a hedged duplicate.

        Hedging applies only to ``hedgeable`` workloads (replicated
        idempotent point lookups): if the primary launch has not finished
        ``hedge_delay_ns`` after dispatch, a duplicate of the same plan is
        issued and the first success wins.  The completion callback fires
        exactly once; a failed copy defers to an outstanding sibling.
        """
        spec = state.spec
        done_cb = self._make_done(state, requests, plan, launch_span,
                                  partition)
        if spec.hedge_delay_ns <= 0 or not state.workload.hedgeable:
            self.runtime.launch_async(
                plan.kernel_id, plan.base, plan.bound, args=plan.args,
                stride=plan.stride, at_ns=now + HOST_DISPATCH_NS,
                on_complete=done_cb, trace_parent=launch_span,
            )
            return
        race = {"settled": False, "pending": 1}

        def settle(handle, hedged: bool) -> None:
            race["pending"] -= 1
            if race["settled"]:
                return
            failure = getattr(handle, "failure", None)
            if failure is not None and race["pending"] > 0:
                return                # the sibling copy may still win
            race["settled"] = True
            if hedged and failure is None:
                self.stats.hedged_won(spec.name)
            done_cb(handle)

        primary = self.runtime.launch_async(
            plan.kernel_id, plan.base, plan.bound, args=plan.args,
            stride=plan.stride, at_ns=now + HOST_DISPATCH_NS,
            on_complete=(lambda h: settle(h, False)),
            trace_parent=launch_span,
        )

        def maybe_hedge() -> None:
            if race["settled"] or primary.finished:
                return
            try:
                self.runtime.launch_async(
                    plan.kernel_id, plan.base, plan.bound, args=plan.args,
                    stride=plan.stride, at_ns=self.sim.now,
                    on_complete=(lambda h: settle(h, True)),
                    trace_parent=launch_span,
                )
            except DeviceUnavailable:
                return                # nowhere to hedge to; primary stands
            race["pending"] += 1
            self.stats.hedged(spec.name)

        self.sim.schedule_at(now + HOST_DISPATCH_NS + spec.hedge_delay_ns,
                             maybe_hedge)

    def _lane_completions(self, handle, plan, count: int) -> list[float] | None:
        """Per-request completion times of a scatter batch, lane order.

        Each fused lane walks one staging-ring descriptor, so request i's
        completion is the finish time of the lane over descriptor i —
        reconstructed across sub-launches via each instance's pool base.
        Falls back to ``None`` (uniform batch completion) when the
        backend doesn't expose per-lane times (e.g. the interpreter).
        """
        times: list[float | None] = [None] * count
        for instance in self.runtime.instances_of(handle).instances:
            lanes = getattr(instance, "lane_complete_ns", None)
            if lanes is None:
                return None
            first = (instance.pool_base - plan.base) // plan.stride
            if first < 0 or first + len(lanes) > count:
                return None
            for offset, lane_ns in enumerate(lanes):
                times[first + offset] = lane_ns
        if any(t is None for t in times):
            return None
        return times

    def _make_done(self, state: _TenantState, requests: list[Request],
                   plan, launch_span: int | None = None,
                   partition: str | None = None) -> Callable:
        def done(handle) -> None:
            when = handle.complete_ns if handle.complete_ns is not None \
                else self.sim.now
            self._charge_busy(when)
            self._inflight -= 1
            if partition is not None:
                self._inflight_parts[partition] -= 1
            tracer = obs_tracer.tracer_of(self.sim) if obs_tracer.ENABLED \
                else None
            failure = getattr(handle, "failure", None)
            if failure is not None:
                if tracer is not None:
                    tracer.end(launch_span, when, outcome="failed")
                self._handle_failure(state, requests, failure, when)
                self._check_drains(when)
                self._pump()
                return
            if tracer is not None:
                tracer.end(launch_span, when)
            state.workload.note_served(requests)
            lane_times = (self._lane_completions(handle, plan, len(requests))
                          if plan.scatter else None)
            latencies: list[float] = []
            completions: list[float] = []
            within_slo: list[bool] = []
            for i, request in enumerate(requests):
                done_ns = lane_times[i] if lane_times is not None else when
                request.complete_ns = done_ns
                latencies.append(done_ns - request.arrival_ns)
                completions.append(done_ns)
                within_slo.append(done_ns <= request.deadline_ns)
                if tracer is not None:
                    tracer.end(request.trace_inflight, done_ns)
                    tracer.end(request.trace_root, done_ns, outcome="served")
            self.stats.served_batch(state.spec.name, latencies, completions,
                                    within_slo)
            for done_ns in completions:
                self._feedback(state, done_ns)
            self._check_drains(when)
            self._pump()
        return done

    # ------------------------------------------------------------------
    # failure handling (retries + terminal accounting)
    # ------------------------------------------------------------------

    def _handle_failure(self, state: _TenantState, requests: list[Request],
                        failure: Exception, when: float) -> None:
        """Route a failed batch through the tenant's retry policy.

        Each request independently either re-queues after a backoff
        (budget left, and — under a deadline-aware policy — the retry
        still fires before its deadline) or terminates as ``failed``.
        Poison is never retried: the corrupted range persists, so a
        retry would deterministically hit it again.
        """
        spec = state.spec
        policy = spec.retry
        retryable = not isinstance(failure, PoisonError)
        tracer = obs_tracer.tracer_of(self.sim) if obs_tracer.ENABLED \
            else None
        for request in requests:
            if tracer is not None:
                tracer.end(request.trace_inflight, when)
                request.trace_inflight = None
            fire = None
            if retryable and request.attempts < policy.max_retries:
                delay = policy.delay_ns(request.attempts, state.retry_rng)
                candidate = when + delay
                if not policy.deadline_aware \
                        or candidate <= request.deadline_ns:
                    fire = candidate
            if fire is None:
                self.stats.failed(spec.name)
                if self.recorder is not None:
                    self.recorder.record("serve.failed", when,
                                         tenant=spec.name,
                                         index=request.index,
                                         cause=type(failure).__name__)
                if tracer is not None:
                    tracer.end(request.trace_root, when, outcome="failed")
                self._feedback(state, when)
                continue
            request.attempts += 1
            self.stats.retried(spec.name)
            if self.recorder is not None:
                self.recorder.record("serve.retry", when, tenant=spec.name,
                                     index=request.index,
                                     attempt=request.attempts,
                                     cause=type(failure).__name__)
            if tracer is not None:
                tracer.instant(
                    "serve.retry", when, parent=request.trace_root,
                    attempt=request.attempts,
                    cause=type(failure).__name__)
            self.sim.schedule_at(fire,
                                 (lambda r=request: self._requeue(r)))
        if self.reporter is not None:
            self.reporter.on_launch_failed(failure, when, tenant=spec.name,
                                           requests=len(requests))

    def _requeue(self, request: Request) -> None:
        """Put a retried request back in its tenant's queue (EDF keeps
        its original absolute deadline, so it sorts ahead of newer work)."""
        now = self.sim.now
        request.trace_hold = None
        if obs_tracer.ENABLED and request.trace_root is not None:
            request.trace_queue = obs_tracer.tracer_of(self.sim).begin(
                "serve.queue", now, parent=request.trace_root,
                attempt=request.attempts)
        self.queue.push(request)
        self._ensure_tick()
        self._pump()

    # ------------------------------------------------------------------
    # graceful drain (planned maintenance / autoscale scale-down)
    # ------------------------------------------------------------------

    def schedule_drain(self, device: int, at_ns: float) -> None:
        """Planned maintenance: start quiescing ``device`` at ``at_ns``."""
        if not 0 <= device < self.runtime.num_devices:
            raise ConfigError(f"cannot drain device {device}: cluster has "
                              f"{self.runtime.num_devices} devices")
        self.sim.schedule_at(float(at_ns),
                             (lambda: self._start_drain(device)))

    def _start_drain(self, device: int) -> None:
        now = self.sim.now
        if device in self._draining or device in self._drained:
            return
        if not self.runtime.scheduler.set_routable(device, False):
            return                    # already unroutable (e.g. DOWN)
        self._draining.add(device)
        self.runtime.stats.add("recovery.drains_started")
        if self.runtime.faults is not None:
            self.runtime.faults.health.mark(device, DRAINING, now)
        if obs_tracer.ENABLED:
            obs_tracer.tracer_of(self.sim).instant(
                "recovery.drain_start", now, device=device)
        self._check_drains(now)

    def _undrain(self, device: int) -> None:
        if device in self._draining:
            self._draining.discard(device)
        elif device in self._drained:
            self._drained.discard(device)
        else:
            return
        self.runtime.scheduler.set_routable(device, True)
        if self.runtime.faults is not None:
            self.runtime.faults.health.mark(device, UP, self.sim.now)
        self.runtime.stats.add("recovery.undrains")

    def _check_drains(self, now: float) -> None:
        """Promote draining devices with no in-flight work to drained."""
        if not self._draining:
            return
        outstanding = self.runtime.scheduler.outstanding
        for device in sorted(self._draining):
            if outstanding[device] == 0:
                self._draining.discard(device)
                self._drained.add(device)
                self.runtime.stats.add("recovery.drains_completed")
                if obs_tracer.ENABLED:
                    obs_tracer.tracer_of(self.sim).instant(
                        "recovery.drain_complete", now, device=device)

    def _sync_autoscale_drain(self, now: float) -> None:
        """Align drained devices with the autoscaler's active count.

        Scale-down drains the highest-index routable devices (so device
        0 — the remap fail-over anchor — leaves last); scale-up
        un-drains the lowest-index drained device first.  Only devices
        this engine drained are ever un-drained.
        """
        scheduler = self.runtime.scheduler
        want = self.runtime.num_devices - self.autoscaler.active
        have = len(self._draining) + len(self._drained)
        while have < want:
            candidates = [d for d in range(self.runtime.num_devices)
                          if scheduler.routable[d]]
            if len(candidates) <= 1:
                break                 # never drain the last routable device
            self._start_drain(candidates[-1])
            have += 1
        while have > want and (self._draining or self._drained):
            pool = self._draining | self._drained
            self._undrain(min(pool))
            have -= 1

    def _feedback(self, state: _TenantState, when: float) -> None:
        """Terminal outcome feedback: closed loops issue their next request."""
        next_arrival = state.process.on_completion(when)
        if next_arrival is not None:
            self.sim.schedule_at(
                max(float(next_arrival), self.sim.now),
                (lambda s=state: self._arrive(s)),
            )

    # ------------------------------------------------------------------
    # timers (batch flush + autoscale / stats windows)
    # ------------------------------------------------------------------

    def _schedule_flush(self, tenant: str, flush_at: float) -> None:
        if self._flush_at.get(tenant) == flush_at:
            return
        self._flush_at[tenant] = flush_at

        def flush() -> None:
            if self._flush_at.get(tenant) == flush_at:
                del self._flush_at[tenant]
            self._pump()

        self.sim.schedule_at(flush_at, flush)

    def _ensure_tick(self) -> None:
        self._ensure_monitor()
        if self._tick_scheduled:
            return
        self._tick_scheduled = True
        self.sim.schedule(self._tick_interval, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        self._charge_busy(now)
        # utilization over the *actual* span since the last tick — the
        # chain lapses while the system idles, and a restarted tick must
        # average the idle gap in, not assume one nominal interval
        span = now - self._last_tick_ns
        self._last_tick_ns = now
        utilization = (self._busy_integral / (self.capacity * span)
                       if self.capacity and span > 0 else 0.0)
        self._busy_integral = 0.0
        self.autoscaler.observe(now, min(utilization, 1.0))
        if self.autoscale_policy.enabled and self.autoscale_policy.drain:
            self._sync_autoscale_drain(now)
        self._check_drains(now)
        self.stats.mark_window(now)
        if self._util is not None:
            self._util.mark(now)
        self._tick_scheduled = False
        if self.queue.total or self._inflight or any(
                s.more_arrivals for s in self.tenants.values()):
            self._ensure_tick()
        self._pump()

    # ------------------------------------------------------------------
    # monitoring heartbeat (read-only: cannot change workload results)
    # ------------------------------------------------------------------

    def _ensure_monitor(self) -> None:
        if self.monitor is None or self._monitor_scheduled:
            return
        self._monitor_scheduled = True
        self.sim.schedule(self._monitor_interval, self._monitor_beat)

    def _monitor_beat(self) -> None:
        now = self.sim.now
        self._monitor_scheduled = False
        self._evaluate_monitor(now)
        # re-arm on the tick chain's liveness condition: beats continue
        # exactly while work remains, then the chain lapses so the run
        # drains on schedule
        if self.queue.total or self._inflight or any(
                s.more_arrivals for s in self.tenants.values()):
            self._ensure_monitor()

    def _evaluate_monitor(self, now: float) -> None:
        for alert in self.monitor.evaluate(now):
            # the alert lands in the ring first so the bundle the
            # reporter snapshots already shows it in the timeline
            self.recorder.record("alert", now, device=alert.device,
                                 tenant=alert.tenant, alert=alert.kind,
                                 severity=alert.severity)
            self.reporter.on_alert(alert, now)

    # ------------------------------------------------------------------
    # wrap-up
    # ------------------------------------------------------------------

    def _finish(self) -> ServingReport:
        now = self.sim.now
        if self.queue.total or self._inflight:
            raise ConfigError(
                "serving run drained with work still queued or in flight"
            )
        self.stats.mark_window(now)
        if self._util is not None:
            self._util.mark(now)
        if self.monitor is not None:
            # close the monitor's final window so tail outcomes (the
            # last completions, a detection on the run's final beat)
            # still alert before the report is built
            self._evaluate_monitor(now)
        cluster_stats = self.platform.stats
        reports = []
        for state in self.tenants.values():
            report = self.stats.reports[state.spec.name]
            report.correct = state.workload.verify()
            reports.append(report)
        span = max(
            self.stats.last_completion_ns - self.stats.first_arrival_ns, 0.0
        ) if self.stats.aggregate.count else 0.0
        return ServingReport(
            tenants=reports,
            span_ns=span,
            aggregate=self.stats.aggregate,
            timeline=self.stats.timeline,
            active_device_series=list(self.autoscaler.series.points),
            scale_ups=self.autoscaler.scale_ups,
            scale_downs=self.autoscaler.scale_downs,
            trace_cache_hits=(cluster_stats.get("exec.trace_cache_hits")
                              - self._cache_base[0]),
            trace_cache_misses=(cluster_stats.get("exec.trace_cache_misses")
                                - self._cache_base[1]),
        )

    # ------------------------------------------------------------------

    def result_snapshots(self) -> dict[str, bytes]:
        """Per-tenant result-region bytes (cross-run identity checks)."""
        return {name: state.workload.result_snapshot()
                for name, state in self.tenants.items()}


def serve(platform: ClusterPlatform, tenants: list[TenantSpec],
          **kwargs) -> ServingReport:
    """One-shot convenience: build a :class:`ServingEngine` and run it."""
    return ServingEngine(platform, tenants, **kwargs).run()
