"""QoS machinery: requests, per-tenant queues, and the dispatch scheduler.

The serving frontend classifies every request into a latency class —
``interactive`` (user-facing point lookups, scans behind a dashboard) or
``batch`` (bulk analytics, background vector jobs) — and dispatches from
per-tenant queues under one of two policies:

``fifo``
    Global arrival order, blind to tenants, weights, classes and
    deadlines.  The baseline every serving paper compares against.
``wfq``
    Start-time fair queueing (SFQ) across tenants: each tenant carries a
    virtual finish tag advanced by ``cost / weight`` per dispatched
    request, and the backlogged tenant with the smallest start tag is
    served next, so long-run service share converges to the weight ratio
    regardless of arrival patterns.  Interactive-class heads are served
    before batch-class heads, **except** that a batch request waiting
    longer than ``starvation_ns`` is promoted into the interactive band —
    strict priority would starve batch tenants under interactive
    overload, and the promotion bounds their wait instead.

Within one tenant the queue is ordered by (class, deadline, arrival):
deadline-aware EDF inside each class band, FIFO among equal deadlines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Latency classes, in priority order.
QOS_CLASSES = ("interactive", "batch")

#: Valid serving scheduler policies.
SERVE_SCHEDULERS = ("fifo", "wfq")

#: A batch-class request waiting this long is promoted to the interactive
#: band (starvation freedom under interactive overload).
DEFAULT_STARVATION_NS = 100_000.0


def validate_serve_scheduler(name: str, source: str = "scheduler") -> str:
    if name not in SERVE_SCHEDULERS:
        raise ConfigError(
            f"unknown serving scheduler {name!r} (from {source}); "
            f"choose from {list(SERVE_SCHEDULERS)}"
        )
    return name


def validate_qos_class(name: str, source: str = "qos_class") -> str:
    if name not in QOS_CLASSES:
        raise ConfigError(
            f"unknown QoS class {name!r} (from {source}); "
            f"choose from {list(QOS_CLASSES)}"
        )
    return name


@dataclass
class Request:
    """One tenant request from arrival to completion."""

    tenant: str
    index: int                    # per-tenant request number (data identity)
    seq: int                      # global admission order (FIFO key)
    arrival_ns: float
    qos_class: str
    deadline_ns: float            # absolute; inf when the tenant has no SLO
    #: Working-set slice range [slice_lo, slice_hi) this request touches;
    #: contiguous ranges are what the dynamic batcher merges.
    slice_lo: int
    slice_hi: int
    #: Fusion group (workload-defined): requests with different keys must
    #: never share a scatter batch (e.g. KVStore GETs vs SETs, which run
    #: different kernels).
    batch_key: int = 0
    complete_ns: float | None = None
    #: Launches this request has been part of that failed (fault/timeout);
    #: compared against the tenant's retry budget.
    attempts: int = 0
    #: Trace span ids (``repro.obs``), populated only while tracing is
    #: enabled.  Safe to carry here: queue heaps key on ``sort_key``
    #: whose ``seq`` component is unique, so Requests never compare.
    trace_root: int | None = None
    trace_queue: int | None = None
    trace_hold: int | None = None
    trace_inflight: int | None = None

    @property
    def class_rank(self) -> int:
        return QOS_CLASSES.index(self.qos_class)

    @property
    def latency_ns(self) -> float:
        if self.complete_ns is None:
            raise ConfigError(f"request {self.tenant}#{self.index} not done")
        return self.complete_ns - self.arrival_ns

    @property
    def sort_key(self) -> tuple:
        return (self.class_rank, self.deadline_ns, self.seq)


class RequestQueue:
    """Admitted-but-undispatched requests, one EDF heap per tenant."""

    def __init__(self) -> None:
        self._heaps: dict[str, list[tuple]] = {}

    def push(self, request: Request) -> None:
        heap = self._heaps.setdefault(request.tenant, [])
        heapq.heappush(heap, (*request.sort_key, request))

    def depth(self, tenant: str) -> int:
        return len(self._heaps.get(tenant, ()))

    @property
    def total(self) -> int:
        return sum(len(h) for h in self._heaps.values())

    def tenants(self) -> list[str]:
        """Tenants with at least one queued request."""
        return [t for t, h in self._heaps.items() if h]

    def peek(self, tenant: str) -> Request:
        return self._heaps[tenant][0][-1]

    def pop(self, tenant: str) -> Request:
        return heapq.heappop(self._heaps[tenant])[-1]

    def head_run(self, tenant: str, limit: int) -> list[Request]:
        """The first ``limit`` requests in dispatch order (not removed)."""
        heap = self._heaps.get(tenant, ())
        if not heap:
            return []
        return [entry[-1] for entry in heapq.nsmallest(limit, heap)]

    def pop_run(self, tenant: str, count: int) -> list[Request]:
        """Remove and return the first ``count`` requests in dispatch order."""
        heap = self._heaps[tenant]
        return [heapq.heappop(heap)[-1] for _ in range(min(count, len(heap)))]


@dataclass
class QoSScheduler:
    """Picks which tenant's queue to serve next (see module docstring)."""

    policy: str = "wfq"
    weights: dict[str, float] = field(default_factory=dict)
    starvation_ns: float = DEFAULT_STARVATION_NS
    _finish: dict[str, float] = field(default_factory=dict)
    _vtime: float = 0.0

    def __post_init__(self) -> None:
        validate_serve_scheduler(self.policy)
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ConfigError(
                    f"tenant {tenant!r} needs a positive weight, got {weight}"
                )
        if self.starvation_ns <= 0:
            raise ConfigError("starvation promotion threshold must be > 0")

    # ------------------------------------------------------------------

    def _band(self, request: Request, now_ns: float) -> int:
        """Effective class band: batch ages into the interactive band."""
        if request.class_rank == 0:
            return 0
        if now_ns - request.arrival_ns >= self.starvation_ns:
            return 0
        return request.class_rank

    def pick(self, heads: dict[str, Request], now_ns: float) -> str:
        """Choose among tenants' head-of-queue requests."""
        if not heads:
            raise ConfigError("scheduler asked to pick from no tenants")
        if self.policy == "fifo":
            return min(heads, key=lambda t: heads[t].seq)
        best_band = min(self._band(r, now_ns) for r in heads.values())
        candidates = [t for t, r in heads.items()
                      if self._band(r, now_ns) == best_band]
        return min(
            candidates,
            key=lambda t: (max(self._finish.get(t, 0.0), self._vtime),
                           heads[t].deadline_ns, t),
        )

    def charge(self, tenant: str, cost: float) -> None:
        """Account ``cost`` units of service against ``tenant``'s share."""
        if self.policy == "fifo":
            return
        weight = self.weights.get(tenant, 1.0)
        start = max(self._finish.get(tenant, 0.0), self._vtime)
        self._vtime = start
        self._finish[tenant] = start + cost / weight
