"""Arrival processes: when do requests reach the serving frontend?

One tenant's traffic is described by an :class:`ArrivalSpec` and realized
by an :class:`ArrivalProcess` seeded from a per-stream
:class:`numpy.random.Generator` (see :func:`stream_rng` — every stream's
sequence is a pure function of the cluster config seed and the stream
name, so traffic runs are reproducible bit-for-bit across processes).

Five processes cover the serving scenarios the literature measures:

``poisson``
    Open-loop memoryless arrivals at a constant rate — the baseline the
    paper's KVStore P95 methodology uses (Fig 1b / Fig 10b).
``bursty``
    Two-state MMPP (Markov-modulated Poisson): the stream alternates
    between a calm phase at ``rate_rps`` and a burst phase at
    ``burst_rate_rps``, with exponentially distributed phase dwell times.
    Stresses admission control and autoscaling.
``diurnal``
    Nonhomogeneous Poisson whose instantaneous rate follows a sinusoid
    (``rate_rps`` mean, ``amplitude`` swing over ``period_ns``), sampled
    by thinning — a compressed day/night load curve.
``closed``
    Closed-loop client population: ``clients`` concurrent clients each
    issue, wait for the completion, think ``think_ns`` (exponential), and
    issue again.  Throughput is completion-driven, so an overloaded
    cluster sees backpressure instead of an unbounded queue.
``trace``
    Replay of explicit arrival offsets (ns since epoch) — regression
    traces and adversarial patterns for scheduler tests.

Open-loop processes expose every arrival up front via :meth:`initial`;
the closed loop seeds one arrival per client and generates the rest from
:meth:`on_completion` feedback.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Valid arrival process names (TenantSpec / ArrivalSpec validation).
ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal", "closed", "trace")


def stream_rng(seed: int, name: str) -> np.random.Generator:
    """Deterministic per-stream generator from a config seed + stream name.

    ``hash()`` is process-randomized, so the name is folded in with crc32;
    the (seed, crc32) entropy pair makes every stream's sequence stable
    across processes and independent of sibling streams.  The seed passes
    through unmasked — SeedSequence takes arbitrary nonnegative ints, and
    masking would alias seeds 2**32 apart into identical traffic.
    """
    return np.random.default_rng([seed, zlib.crc32(name.encode())])


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative description of one tenant's arrival process."""

    process: str = "poisson"
    rate_rps: float = 1e5         # mean rate (calm-phase rate for bursty)
    requests: int = 100           # total arrivals generated
    #: bursty: burst-phase rate and mean dwell per phase
    burst_rate_rps: float = 0.0
    dwell_ns: float = 100_000.0
    #: diurnal: sinusoid swing (0..1 of rate_rps) and period
    amplitude: float = 0.5
    period_ns: float = 1e6
    #: closed loop: concurrent clients and mean think time
    clients: int = 4
    think_ns: float = 10_000.0
    #: trace: explicit arrival offsets (ns since epoch), nondecreasing
    times: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.process!r}; "
                f"choose from {list(ARRIVAL_PROCESSES)}"
            )
        if self.process == "trace":
            if not self.times:
                raise ConfigError("trace arrivals need at least one time")
            if any(b < a for a, b in zip(self.times, self.times[1:])):
                raise ConfigError("trace arrival times must be nondecreasing")
            if any(t < 0 for t in self.times):
                raise ConfigError("trace arrival times must be >= 0")
            return
        if self.requests <= 0:
            raise ConfigError("arrival spec needs a positive request count")
        if self.rate_rps <= 0:
            raise ConfigError("arrival spec needs a positive rate")
        if self.process == "bursty":
            if self.burst_rate_rps < self.rate_rps:
                raise ConfigError("burst rate must be >= the calm rate")
            if self.dwell_ns <= 0:
                raise ConfigError("bursty dwell time must be positive")
        if self.process == "diurnal":
            if not 0.0 <= self.amplitude <= 1.0:
                raise ConfigError("diurnal amplitude must be in [0, 1]")
            if self.period_ns <= 0:
                raise ConfigError("diurnal period must be positive")
        if self.process == "closed":
            if self.clients <= 0:
                raise ConfigError("closed loop needs at least one client")
            if self.think_ns < 0:
                raise ConfigError("think time must be >= 0")

    @property
    def total_requests(self) -> int:
        return len(self.times) if self.process == "trace" else self.requests

    @property
    def interarrival_ns(self) -> float:
        return 1e9 / self.rate_rps


class ArrivalProcess:
    """Generates one stream's arrival timestamps (ns, absolute)."""

    #: Closed-loop processes return new arrivals from completion feedback.
    open_loop = True

    def __init__(self, spec: ArrivalSpec, gen: np.random.Generator) -> None:
        self.spec = spec
        self.gen = gen
        self.generated = 0

    def initial(self, epoch_ns: float) -> np.ndarray:
        """Arrival times known before the run starts."""
        times = self._initial(epoch_ns)
        self.generated += len(times)
        return times

    def on_completion(self, complete_ns: float) -> float | None:
        """Next arrival triggered by a request finishing (closed loop)."""
        return None

    @property
    def exhausted(self) -> bool:
        """True once every arrival this process will ever emit is out."""
        return self.generated >= self.spec.total_requests

    def _initial(self, epoch_ns: float) -> np.ndarray:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Constant-rate open-loop Poisson stream."""

    def _initial(self, epoch_ns: float) -> np.ndarray:
        gaps = self.gen.exponential(self.spec.interarrival_ns,
                                    self.spec.requests)
        return epoch_ns + np.cumsum(gaps)


class BurstyArrivals(ArrivalProcess):
    """Two-state MMPP: calm at ``rate_rps``, bursts at ``burst_rate_rps``."""

    def _initial(self, epoch_ns: float) -> np.ndarray:
        spec = self.spec
        out: list[float] = []
        now = epoch_ns
        bursting = False
        while len(out) < spec.requests:
            dwell = float(self.gen.exponential(spec.dwell_ns))
            rate = spec.burst_rate_rps if bursting else spec.rate_rps
            t = now
            while len(out) < spec.requests:
                t += float(self.gen.exponential(1e9 / rate))
                if t >= now + dwell:
                    break
                out.append(t)
            now += dwell
            bursting = not bursting
        return np.asarray(out[:spec.requests])


class DiurnalArrivals(ArrivalProcess):
    """Sinusoid-modulated Poisson sampled by thinning."""

    def _initial(self, epoch_ns: float) -> np.ndarray:
        spec = self.spec
        peak = spec.rate_rps * (1.0 + spec.amplitude)
        out: list[float] = []
        t = epoch_ns
        omega = 2.0 * np.pi / spec.period_ns
        while len(out) < spec.requests:
            t += float(self.gen.exponential(1e9 / peak))
            rate = spec.rate_rps * (
                1.0 + spec.amplitude * np.sin(omega * (t - epoch_ns))
            )
            if self.gen.random() * peak < rate:
                out.append(t)
        return np.asarray(out)


class TraceArrivals(ArrivalProcess):
    """Replay explicit arrival offsets relative to the epoch."""

    def _initial(self, epoch_ns: float) -> np.ndarray:
        return epoch_ns + np.asarray(self.spec.times, dtype=np.float64)


class ClosedLoopArrivals(ArrivalProcess):
    """``clients`` concurrent clients with exponential think time."""

    open_loop = False

    def _think(self) -> float:
        if self.spec.think_ns == 0:
            return 0.0
        return float(self.gen.exponential(self.spec.think_ns))

    def _initial(self, epoch_ns: float) -> np.ndarray:
        count = min(self.spec.clients, self.spec.requests)
        return epoch_ns + np.sort(
            np.asarray([self._think() for _ in range(count)])
        )

    def on_completion(self, complete_ns: float) -> float | None:
        if self.exhausted:
            return None
        self.generated += 1
        return complete_ns + self._think()


_PROCESS_CLASSES = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
    "diurnal": DiurnalArrivals,
    "closed": ClosedLoopArrivals,
    "trace": TraceArrivals,
}


def make_arrival_process(spec: ArrivalSpec,
                         gen: np.random.Generator) -> ArrivalProcess:
    """Instantiate the process class named by ``spec.process``."""
    return _PROCESS_CLASSES[spec.process](spec, gen)
