"""SLO-aware multi-tenant serving subsystem over the M2NDP cluster.

The ROADMAP's "heavy traffic from millions of users" scenario made
executable: a production-style serving frontend on top of
:class:`~repro.cluster.ClusterRuntime`, with

- :mod:`repro.serve.arrivals` — arrival processes (Poisson, bursty MMPP,
  diurnal, closed-loop with think time, trace replay) seeded bit-for-bit
  reproducibly from ``ClusterConfig.seed``;
- :mod:`repro.serve.qos` — per-tenant request queues and the
  weighted-fair / FIFO dispatch scheduler with latency-class priority,
  deadline-aware ordering and batch-class starvation protection;
- :mod:`repro.serve.admission` — token-bucket rate limits and
  queue-depth shedding with full shed accounting;
- :mod:`repro.serve.batcher` — dynamic max-batch/max-wait coalescing of
  contiguous-slice requests into single cluster launches (maximizing
  trace-cache hits);
- :mod:`repro.serve.autoscaler` — utilization-targeted growth/shrink of
  the active device set;
- :mod:`repro.serve.stats` — per-tenant p50/p95/p99, SLO attainment,
  goodput and shed counters in the shared :class:`StatsRegistry`;
- :mod:`repro.serve.engine` — the :class:`ServingEngine` event loop
  tying it all together on the cluster's simulator.
"""

from repro.serve.admission import (
    ADMIT,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    AdmissionController,
    TokenBucket,
)
from repro.serve.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalProcess,
    ArrivalSpec,
    BurstyArrivals,
    ClosedLoopArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrival_process,
    stream_rng,
)
from repro.serve.autoscaler import AutoscalePolicy, Autoscaler
from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.engine import (
    HOST_DISPATCH_NS,
    ServingEngine,
    resolve_batch_policy,
    resolve_serve_scheduler,
    serve,
)
from repro.serve.qos import (
    QOS_CLASSES,
    SERVE_SCHEDULERS,
    QoSScheduler,
    Request,
    RequestQueue,
    validate_serve_scheduler,
)
from repro.serve.resilience import RetryPolicy
from repro.serve.stats import ServingReport, ServingStats, TenantReport
from repro.serve.tenant import (
    SERVE_KINDS,
    LaunchPlan,
    TenantSpec,
    TenantWorkload,
)

__all__ = [
    "ADMIT",
    "ARRIVAL_PROCESSES",
    "AdmissionController",
    "ArrivalProcess",
    "ArrivalSpec",
    "AutoscalePolicy",
    "Autoscaler",
    "Batch",
    "BatchPolicy",
    "BurstyArrivals",
    "ClosedLoopArrivals",
    "DiurnalArrivals",
    "DynamicBatcher",
    "HOST_DISPATCH_NS",
    "LaunchPlan",
    "PoissonArrivals",
    "QOS_CLASSES",
    "QoSScheduler",
    "Request",
    "RequestQueue",
    "RetryPolicy",
    "SERVE_KINDS",
    "SERVE_SCHEDULERS",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMIT",
    "ServingEngine",
    "ServingReport",
    "ServingStats",
    "TenantReport",
    "TenantSpec",
    "TenantWorkload",
    "TokenBucket",
    "TraceArrivals",
    "make_arrival_process",
    "resolve_batch_policy",
    "resolve_serve_scheduler",
    "serve",
    "stream_rng",
    "validate_serve_scheduler",
]
