"""Autoscaler hook: grow/shrink the active device set against utilization.

The serving engine dispatches at most ``active_devices x
inflight_per_device`` concurrent cluster launches; the autoscaler is the
hook that moves ``active_devices`` between ``min_devices`` and
``max_devices`` from windowed utilization observations (time-weighted
in-flight launches over capacity).  Utilization above the high watermark
grows the set by one device per interval, below the low watermark shrinks
it — the standard hysteresis loop, sized so a bursty tenant ramps the
cluster up within a few intervals and a quiet diurnal trough releases it.

This models capacity the way datacenter serving stacks do (admission to
the device pool), not device power-down: the devices still exist behind
the switch, the engine just stops filling more of them with work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.stats import IntervalSampler


@dataclass(frozen=True)
class AutoscalePolicy:
    """Hysteresis scaling policy (disabled by default: fixed full set)."""

    enabled: bool = False
    min_devices: int = 1
    max_devices: int = 0          # 0 = the whole cluster
    interval_ns: float = 50_000.0
    high_watermark: float = 0.85
    low_watermark: float = 0.30
    #: Opt-in graceful drain on scale-down: instead of only lowering the
    #: concurrency cap, the engine quiesces specific devices (stop routing
    #: new sub-launches, let in-flight work finish) and un-drains them on
    #: scale-up — the planned-maintenance lifecycle driven by load.
    drain: bool = False

    def __post_init__(self) -> None:
        if self.min_devices < 1:
            raise ConfigError("autoscaler needs min_devices >= 1")
        if self.max_devices and self.max_devices < self.min_devices:
            raise ConfigError("autoscaler max_devices below min_devices")
        if self.interval_ns <= 0:
            raise ConfigError("autoscaler interval must be positive")
        if not 0.0 <= self.low_watermark < self.high_watermark <= 1.0:
            raise ConfigError(
                "autoscaler watermarks need 0 <= low < high <= 1"
            )


class Autoscaler:
    """Tracks the active device count from utilization observations."""

    def __init__(self, policy: AutoscalePolicy, num_devices: int) -> None:
        self.policy = policy
        self.num_devices = num_devices
        self.max_devices = (min(policy.max_devices, num_devices)
                            if policy.max_devices else num_devices)
        if policy.min_devices > num_devices:
            raise ConfigError(
                f"autoscaler min_devices {policy.min_devices} exceeds the "
                f"cluster's {num_devices} devices"
            )
        self.active = (policy.min_devices if policy.enabled
                       else self.max_devices)
        self.scale_ups = 0
        self.scale_downs = 0
        #: (time, active devices) step series for reports.
        self.series = IntervalSampler()
        self.series.record(0.0, float(self.active))

    def observe(self, now_ns: float, utilization: float) -> int:
        """Feed one interval's utilization; returns the new active count."""
        if not self.policy.enabled:
            return self.active
        if (utilization > self.policy.high_watermark
                and self.active < self.max_devices):
            self.active += 1
            self.scale_ups += 1
            self.series.record(now_ns, float(self.active))
        elif (utilization < self.policy.low_watermark
                and self.active > self.policy.min_devices):
            self.active -= 1
            self.scale_downs += 1
            self.series.record(now_ns, float(self.active))
        return self.active
