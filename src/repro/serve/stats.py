"""Serving statistics: per-tenant SLO accounting into the StatsRegistry.

Every terminal request outcome lands in exactly one per-tenant counter
(``serve.<tenant>.served`` / ``.shed_rate_limit`` / ``.shed_queue_full``
/ ``.expired``), latencies stream into per-tenant distributions, and a
:class:`~repro.sim.stats.Timeline` over the ``serve.`` prefix captures
windowed throughput without hand-rolled interval math.  The final
:class:`ServingReport` renders the table serving papers print: p50/p95/
p99, SLO attainment, goodput, shed counts — per tenant and aggregate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.serve.admission import SHED_QUEUE_FULL, SHED_RATE_LIMIT
from repro.serve.tenant import TenantSpec
from repro.sim.stats import Distribution, StatsRegistry, Timeline


@dataclass
class TenantReport:
    """End-of-run accounting for one tenant."""

    name: str
    kind: str
    qos_class: str
    weight: float
    slo_ns: float
    offered: int = 0
    shed_rate_limit: int = 0
    shed_queue_full: int = 0
    expired: int = 0
    slo_met: int = 0
    launches: int = 0
    #: Resilience outcomes: retries are *events* (a request may retry
    #: several times), ``failed`` is terminal (all attempts lost).
    retried: int = 0
    hedged: int = 0
    hedged_won: int = 0
    failed: int = 0
    latencies: Distribution = field(default_factory=Distribution)
    completion_times: list[float] = field(default_factory=list)
    correct: bool = True
    first_arrival_ns: float = math.inf
    last_completion_ns: float = 0.0
    _summary_cache: tuple | None = field(default=None, repr=False,
                                         compare=False)

    @property
    def served(self) -> int:
        return self.latencies.count

    @property
    def shed(self) -> int:
        return self.shed_rate_limit + self.shed_queue_full

    @property
    def admitted(self) -> int:
        return self.offered - self.shed

    @property
    def accounted(self) -> int:
        """Terminal outcomes: must equal ``offered`` after a drained run
        (every offered request is served, shed, expired or failed —
        exactly once)."""
        return self.served + self.shed + self.expired + self.failed

    @property
    def accounting_ok(self) -> bool:
        return self.accounted == self.offered

    @property
    def span_ns(self) -> float:
        return max(self.last_completion_ns - self.first_arrival_ns, 0.0)

    @property
    def throughput_rps(self) -> float:
        return self.served / (self.span_ns * 1e-9) if self.span_ns > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """Completions *within the SLO* per second of the tenant's span."""
        return self.slo_met / (self.span_ns * 1e-9) if self.span_ns > 0 else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of *offered* requests served within the SLO (sheds and
        expiries count against attainment — they are broken promises)."""
        return self.slo_met / self.offered if self.offered else 0.0

    @property
    def mean_batch(self) -> float:
        return self.served / self.launches if self.launches else 0.0

    def latency_summary(self) -> tuple[float, float, float]:
        """(p50, p95, p99) from one vectorized percentile pass.

        The per-request latency list is sorted once and all three
        quantiles interpolate from that sort
        (:meth:`~repro.sim.stats.Distribution.percentiles`) instead of
        one Python sort per quantile; memoized per served count since
        reports query the quantiles repeatedly while rendering.
        """
        cached = self._summary_cache
        if cached is None or cached[0] != self.latencies.count:
            if self.latencies.count:
                p50, p95, p99 = self.latencies.percentiles(
                    (50.0, 95.0, 99.0))
            else:
                # a tenant that served nothing (all shed, all failed, or
                # simply zero requests) reports zero latency, not a
                # ValueError out of an empty percentile
                p50 = p95 = p99 = 0.0
            cached = (self.latencies.count, (p50, p95, p99))
            self._summary_cache = cached
        return cached[1]

    @property
    def p50_ns(self) -> float:
        return self.latency_summary()[0]

    @property
    def p95_ns(self) -> float:
        return self.latency_summary()[1]

    @property
    def p99_ns(self) -> float:
        return self.latency_summary()[2]


class ServingStats:
    """Streaming sink the engine writes while serving."""

    def __init__(self, registry: StatsRegistry,
                 tenants: list[TenantSpec]) -> None:
        self.registry = registry
        self.reports = {
            spec.name: TenantReport(
                name=spec.name, kind=spec.kind, qos_class=spec.qos_class,
                weight=spec.weight, slo_ns=spec.slo_ns,
            )
            for spec in tenants
        }
        self.aggregate = Distribution()
        #: Created by :meth:`start` once the run epoch is known.
        self.timeline: Timeline | None = None
        self.first_arrival_ns = math.inf
        self.last_completion_ns = 0.0

    # ------------------------------------------------------------------

    def start(self, epoch_ns: float) -> None:
        """Open the timeline at the run epoch: workload setup (kernel
        registration) advances the simulator before serving starts, and
        that dead time must not dilute the first window's rates."""
        self.timeline = self.registry.timeline("serve.", start_ns=epoch_ns)

    def mark_window(self, now_ns: float) -> None:
        if self.timeline is None:
            raise ValueError("ServingStats.start() must open the timeline "
                             "before windows are marked")
        self.timeline.mark(now_ns)

    def _bump(self, tenant: str, what: str, amount: float = 1.0) -> None:
        self.registry.add(f"serve.{tenant}.{what}", amount)

    def offered(self, tenant: str, arrival_ns: float) -> None:
        report = self.reports[tenant]
        report.offered += 1
        report.first_arrival_ns = min(report.first_arrival_ns, arrival_ns)
        self.first_arrival_ns = min(self.first_arrival_ns, arrival_ns)
        self._bump(tenant, "offered")

    def shed(self, tenant: str, reason: str) -> None:
        report = self.reports[tenant]
        if reason == SHED_RATE_LIMIT:
            report.shed_rate_limit += 1
        elif reason == SHED_QUEUE_FULL:
            report.shed_queue_full += 1
        else:
            raise ValueError(f"unknown shed reason {reason!r}")
        self._bump(tenant, reason)

    def expired(self, tenant: str) -> None:
        self.reports[tenant].expired += 1
        self._bump(tenant, "expired")

    def launched(self, tenant: str, batch_size: int) -> None:
        self.reports[tenant].launches += 1
        self._bump(tenant, "launches")
        self._bump(tenant, "batched_requests", batch_size)

    def retried(self, tenant: str, count: int = 1) -> None:
        self.reports[tenant].retried += count
        self._bump(tenant, "retried", float(count))

    def hedged(self, tenant: str) -> None:
        self.reports[tenant].hedged += 1
        self._bump(tenant, "hedged")

    def hedged_won(self, tenant: str) -> None:
        self.reports[tenant].hedged_won += 1
        self._bump(tenant, "hedged_won")

    def failed(self, tenant: str, count: int = 1) -> None:
        """Terminal failure: every attempt for the request was lost."""
        self.reports[tenant].failed += count
        self._bump(tenant, "failed", float(count))

    def served(self, tenant: str, latency_ns: float, complete_ns: float,
               within_slo: bool) -> None:
        report = self.reports[tenant]
        report.latencies.add(latency_ns)
        report.completion_times.append(complete_ns)
        report.last_completion_ns = max(report.last_completion_ns,
                                        complete_ns)
        self.last_completion_ns = max(self.last_completion_ns, complete_ns)
        self.aggregate.add(latency_ns)
        self._bump(tenant, "served")
        self.registry.observe(f"serve.{tenant}.latency_ns", latency_ns)
        if within_slo:
            report.slo_met += 1
        else:
            self._bump(tenant, "slo_violations")

    def served_batch(self, tenant: str, latencies: list[float],
                     complete_ns_list: list[float],
                     within_slo: list[bool]) -> None:
        """Land a whole batch's completions in one pass.

        Equivalent to calling :meth:`served` per request in list order —
        same counters, same distribution contents — but the latency
        distributions ingest via
        :meth:`~repro.sim.stats.Distribution.add_many`, so a scatter
        batch costs three bulk appends instead of a Python loop.
        """
        if not latencies:
            return
        report = self.reports[tenant]
        report.latencies.add_many(latencies)
        report.completion_times.extend(complete_ns_list)
        peak = max(complete_ns_list)
        report.last_completion_ns = max(report.last_completion_ns, peak)
        self.last_completion_ns = max(self.last_completion_ns, peak)
        self.aggregate.add_many(latencies)
        self._bump(tenant, "served", float(len(latencies)))
        self.registry.observe_many(f"serve.{tenant}.latency_ns", latencies)
        met = sum(1 for ok in within_slo if ok)
        report.slo_met += met
        violations = len(within_slo) - met
        if violations:
            self._bump(tenant, "slo_violations", float(violations))

@dataclass
class ServingReport:
    """Whole-run summary across all tenants."""

    tenants: list[TenantReport]
    span_ns: float
    aggregate: Distribution
    timeline: Timeline
    active_device_series: list[tuple[float, float]]
    scale_ups: int = 0
    scale_downs: int = 0
    trace_cache_hits: float = 0.0
    trace_cache_misses: float = 0.0

    @property
    def served(self) -> int:
        return self.aggregate.count

    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.tenants)

    @property
    def launches(self) -> int:
        return sum(t.launches for t in self.tenants)

    @property
    def correct(self) -> bool:
        return all(t.correct for t in self.tenants)

    @property
    def throughput_rps(self) -> float:
        return self.served / (self.span_ns * 1e-9) if self.span_ns > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        total_met = sum(t.slo_met for t in self.tenants)
        return total_met / (self.span_ns * 1e-9) if self.span_ns > 0 else 0.0

    @property
    def slo_attainment(self) -> float:
        offered = self.offered
        return (sum(t.slo_met for t in self.tenants) / offered
                if offered else 0.0)

    @property
    def mean_batch(self) -> float:
        return self.served / self.launches if self.launches else 0.0

    @property
    def trace_cache_hit_rate(self) -> float:
        total = self.trace_cache_hits + self.trace_cache_misses
        return self.trace_cache_hits / total if total else 0.0

    @property
    def p50_ns(self) -> float:
        return self.aggregate.percentile(50.0) if self.aggregate.count \
            else 0.0

    @property
    def p95_ns(self) -> float:
        return self.aggregate.p95 if self.aggregate.count else 0.0

    @property
    def p99_ns(self) -> float:
        return self.aggregate.p99 if self.aggregate.count else 0.0

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.name == name:
                return report
        raise KeyError(f"no tenant named {name!r}")

    def render(self) -> str:
        lines = [
            f"{'tenant':>10} | {'class':>11} | {'offered':>7} | "
            f"{'served':>6} | {'shed':>5} | {'exp':>4} | {'fail':>4} | "
            f"{'retry':>5} | {'p50 ns':>9} | "
            f"{'p99 ns':>10} | {'SLO':>6} | {'goodput':>10} | {'batch':>5}"
        ]
        for t in self.tenants:
            p50 = f"{t.p50_ns:>9.0f}" if t.served else f"{'-':>9}"
            p99 = f"{t.p99_ns:>10.0f}" if t.served else f"{'-':>10}"
            slo = (f"{t.slo_attainment:>5.0%}" if math.isfinite(t.slo_ns)
                   else f"{'-':>5}")
            lines.append(
                f"{t.name:>10} | {t.qos_class:>11} | {t.offered:>7} | "
                f"{t.served:>6} | {t.shed:>5} | {t.expired:>4} | "
                f"{t.failed:>4} | {t.retried:>5} | {p50} | "
                f"{p99} | {slo:>6} | {t.goodput_rps:>10,.0f} | "
                f"{t.mean_batch:>5.1f}"
            )
        lines.append(
            f"aggregate: {self.served}/{self.offered} served in "
            f"{self.span_ns:,.0f} ns ({self.throughput_rps:,.0f} rps, "
            f"goodput {self.goodput_rps:,.0f} rps), p99 {self.p99_ns:,.0f} ns, "
            f"{self.launches} launches (mean batch {self.mean_batch:.1f}), "
            f"trace cache {self.trace_cache_hits:.0f}H/"
            f"{self.trace_cache_misses:.0f}M"
        )
        if self.scale_ups or self.scale_downs:
            peak = max(v for _, v in self.active_device_series)
            lines.append(
                f"autoscaler: {self.scale_ups} up / {self.scale_downs} down, "
                f"peak {peak:.0f} active devices"
            )
        return "\n".join(lines)
