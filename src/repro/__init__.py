"""M2NDP: Low-overhead General-purpose Near-Data Processing in CXL Memory
Expanders (MICRO 2024) — a full-system reproduction in Python.

Public API tour
---------------
* :class:`repro.sim.Simulator` — the discrete-event engine everything runs on.
* :class:`repro.ndp.M2NDPDevice` — a CXL memory expander with the M2NDP
  controller, packet filter, 32 NDP units, memory-side L2 and banked LPDDR5.
* :class:`repro.host.M2NDPRuntime` — the user-level Table II API
  (``register_kernel`` / ``launch_kernel`` / ``poll_kernel_status`` / ...).
* :mod:`repro.kernels` — the RISC-V/RVV assembly kernel library.
* :mod:`repro.workloads` — Table V workload generators and NDP/GPU/CPU runs.
* :mod:`repro.experiments` — one driver per paper figure.

Quickstart::

    from repro.sim import Simulator
    from repro.ndp import M2NDPDevice
    from repro.host import M2NDPRuntime, pack_args

    sim = Simulator()
    device = M2NDPDevice(sim)
    runtime = M2NDPRuntime(device)
    # ... allocate arrays, then runtime.run_kernel(asm, pool, args)
"""

from repro.config import SystemConfig, default_system
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "SystemConfig", "default_system", "__version__"]
