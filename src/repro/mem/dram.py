"""Banked DRAM timing model (Ramulator-lite).

Each channel has a set of banks with open-row state and a shared data bus.
An access is decomposed into device-granularity bursts; each burst pays

* row **hit**: tCL,
* row **miss** (bank precharged): tRCD + tCL,
* row **conflict** (wrong row open): tRP + tRCD + tCL, gated by tRC since
  the previous activate,

then occupies the channel data bus for ``burst_bytes / channel_bw``.  Banks
serialize their own accesses; different banks and channels overlap — which
is exactly the behaviour that lets many concurrent µthreads (or GPU warps)
saturate aggregate bandwidth while a single pointer-chasing thread sees the
full random-access latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import DRAMConfig
from repro.mem.layout import AddressLayout
from repro.sim.engine import BandwidthServer, segmented_queue_finish
from repro.sim.stats import StatsRegistry


@dataclass
class _Bank:
    open_row: int | None = None
    ready_ns: float = 0.0          # earliest time the bank accepts a command
    last_activate_ns: float = field(default=-1e18)


class DRAMModel:
    """Timing model for one DRAM subsystem (all channels of one device)."""

    def __init__(
        self,
        config: DRAMConfig,
        stats: StatsRegistry | None = None,
        stats_prefix: str = "dram",
    ) -> None:
        self.config = config
        self.layout = AddressLayout(config)
        self.stats = stats if stats is not None else StatsRegistry()
        self.prefix = stats_prefix
        self._banks = [
            [_Bank() for _ in range(config.banks_per_channel)]
            for _ in range(config.channels)
        ]
        self._buses = [
            BandwidthServer(config.channel_bw_bytes_per_ns)
            for _ in range(config.channels)
        ]

    # ------------------------------------------------------------------

    def access(self, addr: int, size: int, now_ns: float, is_write: bool) -> float:
        """Perform a timed access; returns completion time of the last burst.

        Bursts to different banks/channels proceed in parallel, so the
        completion time is the max over per-burst completions.
        """
        completion = now_ns
        for base, grain in self.layout.split_by_access(addr, size):
            completion = max(completion, self._burst(base, grain, now_ns, is_write))
        return completion

    def _burst(self, addr: int, size: int, now_ns: float, is_write: bool) -> float:
        coords = self.layout.coordinates(addr)
        bank = self._banks[coords.channel][coords.bank]
        bus = self._buses[coords.channel]
        timing = self.config.timing

        start = max(now_ns, bank.ready_ns)
        if bank.open_row == coords.row:
            cas_done = start + timing.row_hit_ns
            self.stats.add(f"{self.prefix}.row_hits")
        else:
            if bank.open_row is None:
                activate = max(start, bank.last_activate_ns + timing.t_rc_ns)
                self.stats.add(f"{self.prefix}.row_misses")
            else:
                precharged = start + timing.row_conflict_extra_ns
                activate = max(precharged, bank.last_activate_ns + timing.t_rc_ns)
                self.stats.add(f"{self.prefix}.row_conflicts")
            bank.last_activate_ns = activate
            bank.open_row = coords.row
            cas_done = activate + timing.row_miss_ns
        finish = bus.transfer(cas_done, size)
        bank.ready_ns = cas_done  # bank can pipeline the next CAS once issued

        kind = "writes" if is_write else "reads"
        self.stats.add(f"{self.prefix}.{kind}")
        self.stats.add(f"{self.prefix}.bytes", size)
        return finish

    # ------------------------------------------------------------------

    def access_batch(self, addrs: np.ndarray, size: int,
                     arrivals_ns: np.ndarray,
                     is_write: np.ndarray) -> np.ndarray:
        """Bulk timed access: one burst per element, vectorized.

        Semantics mirror calling :meth:`access` element by element in
        stream order — same row hit/miss/conflict classification (the
        per-bank open-row chain), the same bank CAS pipelining and channel
        data-bus occupancy, and the same stats — solved with segmented
        max-plus recurrences instead of a Python loop per burst.  Each
        access must fit one device burst (``addr % granularity + size <=
        granularity``), which holds for the sector streams the batched
        execution backend charges.  The one approximation: the tRC
        activate-to-activate gate is applied between *consecutive*
        activates of a bank; an activate separated from the previous one
        by intervening row hits is not re-gated (the hits' CAS latencies
        almost always cover tRC anyway).

        Returns per-access completion times; bank and bus state are left
        exactly as a matching sequence of scalar calls would leave them.
        """
        n = int(addrs.size)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        grain = self.config.access_granularity
        timing = self.config.timing
        bursts = (addrs // grain) * grain
        channel, bank, row = self.layout.coordinates_batch(bursts)
        gid = channel * self.config.banks_per_channel + bank

        order = np.argsort(gid, kind="stable")
        g_s = gid[order]
        row_s = row[order]
        t_s = np.asarray(arrivals_ns, dtype=np.float64)[order]
        starts = np.flatnonzero(np.diff(g_s, prepend=g_s[0] - 1))
        marker = np.zeros(n, dtype=np.int64)
        marker[starts] = 1
        seg_of = np.cumsum(marker) - 1
        touched = g_s[starts]
        banks = [self._banks[int(g) // self.config.banks_per_channel]
                 [int(g) % self.config.banks_per_channel] for g in touched]

        # row classification along each bank's access chain
        prev_row = np.empty(n, dtype=np.int64)
        prev_row[1:] = row_s[:-1]
        open_rows = np.array(
            [-1 if b.open_row is None else b.open_row for b in banks],
            dtype=np.int64,
        )
        closed0 = np.array([b.open_row is None for b in banks])
        prev_row[starts] = open_rows
        hit = row_s == prev_row
        closed = np.zeros(n, dtype=bool)
        closed[starts] = closed0
        conflict = ~hit & ~closed
        miss_type = ~hit

        a = np.where(hit, timing.row_hit_ns, timing.row_miss_ns)
        a = a + np.where(conflict, timing.row_conflict_extra_ns, 0.0)
        prev_miss = np.empty(n, dtype=bool)
        prev_miss[1:] = miss_type[:-1]
        prev_miss[starts] = False
        b = a.copy()
        np.maximum(b, timing.t_rc_ns, out=b, where=miss_type & prev_miss)

        init = np.empty(len(touched), dtype=np.float64)
        for i, bk in enumerate(banks):
            init[i] = bk.ready_ns
            first = starts[i]
            if miss_type[first]:
                gated = bk.last_activate_ns + timing.t_rc_ns \
                    + timing.row_miss_ns - b[first]
                if gated > init[i]:
                    init[i] = gated
        cas_s = segmented_queue_finish(t_s + a, b, seg_of, init)

        # write final bank state back (last access / last activate per bank)
        ends = np.append(starts[1:], n) - 1
        act_idx = np.where(miss_type, np.arange(n), -1)
        last_act = np.maximum.reduceat(act_idx, starts)
        for i, bk in enumerate(banks):
            bk.open_row = int(row_s[ends[i]])
            bk.ready_ns = float(cas_s[ends[i]])
            if last_act[i] >= 0:
                bk.last_activate_ns = float(
                    cas_s[last_act[i]] - timing.row_miss_ns
                )

        # channel data buses, in original stream order
        cas = np.empty(n, dtype=np.float64)
        cas[order] = cas_s
        finish = np.empty(n, dtype=np.float64)
        for ch in np.unique(channel):
            mask = channel == ch
            finish[mask] = self._buses[int(ch)].charge_batch(cas[mask], grain)

        writes = int(np.count_nonzero(is_write))
        for name, count in (
            ("row_hits", int(np.count_nonzero(hit))),
            ("row_misses", int(np.count_nonzero(closed))),
            ("row_conflicts", int(np.count_nonzero(conflict))),
            ("writes", writes),
            ("reads", n - writes),
            ("bytes", n * grain),
        ):
            if count:
                self.stats.add(f"{self.prefix}.{name}", count)
        return finish

    # ------------------------------------------------------------------

    @property
    def peak_bw_bytes_per_ns(self) -> float:
        return self.config.total_bw_bytes_per_ns

    def bytes_accessed(self) -> float:
        return self.stats.get(f"{self.prefix}.bytes")

    def achieved_bandwidth(self, elapsed_ns: float) -> float:
        """Average bytes/ns moved over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.bytes_accessed() / elapsed_ns

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of peak bandwidth achieved over ``elapsed_ns``."""
        return self.achieved_bandwidth(elapsed_ns) / self.peak_bw_bytes_per_ns

    def typical_random_latency_ns(self) -> float:
        """Closed-bank access latency + transfer of one burst (for analytic
        host models that need a scalar latency)."""
        burst_ns = self.config.access_granularity / self.config.channel_bw_bytes_per_ns
        return self.config.timing.row_miss_ns + burst_ns

    def reset(self) -> None:
        for channel in self._banks:
            for bank in channel:
                bank.open_row = None
                bank.ready_ns = 0.0
                bank.last_activate_ns = -1e18
        for bus in self._buses:
            bus.reset()
