"""Banked DRAM timing model (Ramulator-lite).

Each channel has a set of banks with open-row state and a shared data bus.
An access is decomposed into device-granularity bursts; each burst pays

* row **hit**: tCL,
* row **miss** (bank precharged): tRCD + tCL,
* row **conflict** (wrong row open): tRP + tRCD + tCL, gated by tRC since
  the previous activate,

then occupies the channel data bus for ``burst_bytes / channel_bw``.  Banks
serialize their own accesses; different banks and channels overlap — which
is exactly the behaviour that lets many concurrent µthreads (or GPU warps)
saturate aggregate bandwidth while a single pointer-chasing thread sees the
full random-access latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DRAMConfig
from repro.mem.layout import AddressLayout
from repro.sim.engine import BandwidthServer
from repro.sim.stats import StatsRegistry


@dataclass
class _Bank:
    open_row: int | None = None
    ready_ns: float = 0.0          # earliest time the bank accepts a command
    last_activate_ns: float = field(default=-1e18)


class DRAMModel:
    """Timing model for one DRAM subsystem (all channels of one device)."""

    def __init__(
        self,
        config: DRAMConfig,
        stats: StatsRegistry | None = None,
        stats_prefix: str = "dram",
    ) -> None:
        self.config = config
        self.layout = AddressLayout(config)
        self.stats = stats if stats is not None else StatsRegistry()
        self.prefix = stats_prefix
        self._banks = [
            [_Bank() for _ in range(config.banks_per_channel)]
            for _ in range(config.channels)
        ]
        self._buses = [
            BandwidthServer(config.channel_bw_bytes_per_ns)
            for _ in range(config.channels)
        ]

    # ------------------------------------------------------------------

    def access(self, addr: int, size: int, now_ns: float, is_write: bool) -> float:
        """Perform a timed access; returns completion time of the last burst.

        Bursts to different banks/channels proceed in parallel, so the
        completion time is the max over per-burst completions.
        """
        completion = now_ns
        for base, grain in self.layout.split_by_access(addr, size):
            completion = max(completion, self._burst(base, grain, now_ns, is_write))
        return completion

    def _burst(self, addr: int, size: int, now_ns: float, is_write: bool) -> float:
        coords = self.layout.coordinates(addr)
        bank = self._banks[coords.channel][coords.bank]
        bus = self._buses[coords.channel]
        timing = self.config.timing

        start = max(now_ns, bank.ready_ns)
        if bank.open_row == coords.row:
            cas_done = start + timing.row_hit_ns
            self.stats.add(f"{self.prefix}.row_hits")
        else:
            if bank.open_row is None:
                activate = max(start, bank.last_activate_ns + timing.t_rc_ns)
                self.stats.add(f"{self.prefix}.row_misses")
            else:
                precharged = start + timing.row_conflict_extra_ns
                activate = max(precharged, bank.last_activate_ns + timing.t_rc_ns)
                self.stats.add(f"{self.prefix}.row_conflicts")
            bank.last_activate_ns = activate
            bank.open_row = coords.row
            cas_done = activate + timing.row_miss_ns
        finish = bus.transfer(cas_done, size)
        bank.ready_ns = cas_done  # bank can pipeline the next CAS once issued

        kind = "writes" if is_write else "reads"
        self.stats.add(f"{self.prefix}.{kind}")
        self.stats.add(f"{self.prefix}.bytes", size)
        return finish

    # ------------------------------------------------------------------

    @property
    def peak_bw_bytes_per_ns(self) -> float:
        return self.config.total_bw_bytes_per_ns

    def bytes_accessed(self) -> float:
        return self.stats.get(f"{self.prefix}.bytes")

    def achieved_bandwidth(self, elapsed_ns: float) -> float:
        """Average bytes/ns moved over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.bytes_accessed() / elapsed_ns

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of peak bandwidth achieved over ``elapsed_ns``."""
        return self.achieved_bandwidth(elapsed_ns) / self.peak_bw_bytes_per_ns

    def typical_random_latency_ns(self) -> float:
        """Closed-bank access latency + transfer of one burst (for analytic
        host models that need a scalar latency)."""
        burst_ns = self.config.access_granularity / self.config.channel_bw_bytes_per_ns
        return self.config.timing.row_miss_ns + burst_ns

    def reset(self) -> None:
        for channel in self._banks:
            for bank in channel:
                bank.open_row = None
                bank.ready_ns = 0.0
                bank.last_activate_ns = -1e18
        for bus in self._buses:
            bus.reset()
