"""Set-associative sector cache (timing/tag model).

Data always lives in :class:`~repro.mem.physical.PhysicalMemory`; caches
here only track tags, valid sectors and LRU state so the timing hierarchy
knows which accesses hit and which sectors must be fetched from the next
level.  Lines are 128 B with 32 B sectors (Table IV), matching the paper's
GPU-style hierarchy: write-through, no-write-allocate L1; memory-side
write-back L2 that also performs global atomics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig
from repro.sim.stats import StatsRegistry


@dataclass
class _Line:
    tag: int
    valid_sectors: int = 0          # bitmask over sectors in the line
    dirty_sectors: int = 0
    lru_stamp: int = 0


@dataclass
class AccessResult:
    """Outcome of a cache lookup.

    ``missing_sectors`` lists (sector_addr, sector_size) pairs that must be
    supplied by the next level; ``writebacks`` lists (addr, size) of dirty
    data evicted to make room.
    """

    hit_sectors: int = 0
    missing_sectors: list[tuple[int, int]] = field(default_factory=list)
    writebacks: list[tuple[int, int]] = field(default_factory=list)

    @property
    def full_hit(self) -> bool:
        return not self.missing_sectors


class SectorCache:
    """LRU set-associative sector cache."""

    def __init__(
        self,
        config: CacheConfig,
        stats: StatsRegistry | None = None,
        stats_prefix: str = "cache",
        write_allocate: bool = True,
        write_back: bool = True,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.prefix = stats_prefix
        self.write_allocate = write_allocate
        self.write_back = write_back
        # tag -> line per set: O(1) lookup, LRU via stamps on eviction only
        self._sets: list[dict[int, _Line]] = [
            {} for _ in range(config.num_sets)
        ]
        self._stamp = 0
        self.sectors_per_line = config.line_bytes // config.sector_bytes

    # ------------------------------------------------------------------

    def _locate(self, addr: int) -> tuple[int, int, int]:
        """Return (set_index, tag, sector_index) for a byte address."""
        line_id = addr // self.config.line_bytes
        set_index = line_id % self.config.num_sets
        tag = line_id // self.config.num_sets
        sector_index = (addr % self.config.line_bytes) // self.config.sector_bytes
        return set_index, tag, sector_index

    def _touch(self, line: _Line) -> None:
        self._stamp += 1
        line.lru_stamp = self._stamp

    def _sectors_touched(self, addr: int, size: int) -> list[int]:
        """Sector-aligned addresses covered by [addr, addr+size)."""
        sector = self.config.sector_bytes
        first = (addr // sector) * sector
        last = ((addr + max(size, 1) - 1) // sector) * sector
        return list(range(first, last + sector, sector))

    def _allocate_line(self, set_index: int, tag: int, result: AccessResult) -> _Line:
        ways = self._sets[set_index]
        if len(ways) >= self.config.ways:
            victim = min(ways.values(), key=lambda line: line.lru_stamp)
            if self.write_back and victim.dirty_sectors:
                self._emit_writebacks(set_index, victim, result)
            del ways[victim.tag]
            self.stats.add(f"{self.prefix}.evictions")
        line = _Line(tag=tag)
        ways[tag] = line
        return line

    def _emit_writebacks(self, set_index: int, line: _Line, result: AccessResult) -> None:
        line_addr = (line.tag * self.config.num_sets + set_index) * self.config.line_bytes
        for idx in range(self.sectors_per_line):
            if line.dirty_sectors & (1 << idx):
                result.writebacks.append(
                    (line_addr + idx * self.config.sector_bytes, self.config.sector_bytes)
                )
        self.stats.add(f"{self.prefix}.writebacks")

    # ------------------------------------------------------------------

    def access(self, addr: int, size: int, is_write: bool) -> AccessResult:
        """Look up every sector in [addr, addr+size); fill misses."""
        result = AccessResult()
        for sector_addr in self._sectors_touched(addr, size):
            self._access_sector(sector_addr, is_write, result)
        return result

    def _access_sector(self, sector_addr: int, is_write: bool, result: AccessResult) -> None:
        set_index, tag, sector_index = self._locate(sector_addr)
        line = self._sets[set_index].get(tag)
        bit = 1 << sector_index
        kind = "write" if is_write else "read"

        if line is not None and line.valid_sectors & bit:
            self.stats.add(f"{self.prefix}.{kind}_hits")
            result.hit_sectors += 1
            self._touch(line)
            if is_write:
                if self.write_back:
                    line.dirty_sectors |= bit
                else:
                    # write-through: data goes to next level as well
                    result.missing_sectors.append(
                        (sector_addr, self.config.sector_bytes)
                    )
            return

        self.stats.add(f"{self.prefix}.{kind}_misses")
        if is_write and not self.write_allocate:
            # no-write-allocate: forward the write, do not install the line
            result.missing_sectors.append((sector_addr, self.config.sector_bytes))
            return

        if line is None:
            line = self._allocate_line(set_index, tag, result)
        line.valid_sectors |= bit
        if is_write and self.write_back:
            line.dirty_sectors |= bit
        self._touch(line)
        result.missing_sectors.append((sector_addr, self.config.sector_bytes))

    # ------------------------------------------------------------------

    def invalidate_all(self) -> int:
        """Drop every line (instruction-cache flush on unregister, §III-F)."""
        dropped = sum(len(ways) for ways in self._sets)
        self._sets = [{} for _ in range(self.config.num_sets)]
        return dropped

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def hit_rate(self) -> float:
        hits = self.stats.get(f"{self.prefix}.read_hits") + self.stats.get(
            f"{self.prefix}.write_hits"
        )
        misses = self.stats.get(f"{self.prefix}.read_misses") + self.stats.get(
            f"{self.prefix}.write_misses"
        )
        total = hits + misses
        return hits / total if total else 0.0
