"""Set-associative sector cache (timing/tag model).

Data always lives in :class:`~repro.mem.physical.PhysicalMemory`; caches
here only track tags, valid sectors and LRU state so the timing hierarchy
knows which accesses hit and which sectors must be fetched from the next
level.  Lines are 128 B with 32 B sectors (Table IV), matching the paper's
GPU-style hierarchy: write-through, no-write-allocate L1; memory-side
write-back L2 that also performs global atomics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import CacheConfig
from repro.sim.stats import StatsRegistry


@dataclass
class _Line:
    tag: int
    valid_sectors: int = 0          # bitmask over sectors in the line
    dirty_sectors: int = 0
    lru_stamp: int = 0


@dataclass
class AccessResult:
    """Outcome of a cache lookup.

    ``missing_sectors`` lists (sector_addr, sector_size) pairs that must be
    supplied by the next level; ``writebacks`` lists (addr, size) of dirty
    data evicted to make room.
    """

    hit_sectors: int = 0
    missing_sectors: list[tuple[int, int]] = field(default_factory=list)
    writebacks: list[tuple[int, int]] = field(default_factory=list)

    @property
    def full_hit(self) -> bool:
        return not self.missing_sectors


@dataclass
class BatchAccessResult:
    """Outcome of one :meth:`SectorCache.access_batch` stream.

    ``fill_idx`` are batch positions whose sector must be supplied by the
    next level (in stream order); ``wb_idx``/``wb_addrs`` pair each dirty
    evicted sector with the batch position of the allocation that evicted
    it, so the caller can interleave writeback traffic at the right time.
    """

    hit_mask: np.ndarray
    fill_idx: np.ndarray
    wb_idx: np.ndarray
    wb_addrs: np.ndarray


class SectorCache:
    """LRU set-associative sector cache."""

    def __init__(
        self,
        config: CacheConfig,
        stats: StatsRegistry | None = None,
        stats_prefix: str = "cache",
        write_allocate: bool = True,
        write_back: bool = True,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.prefix = stats_prefix
        self.write_allocate = write_allocate
        self.write_back = write_back
        # tag -> line per set: O(1) lookup, LRU via stamps on eviction only
        self._sets: list[dict[int, _Line]] = [
            {} for _ in range(config.num_sets)
        ]
        self._stamp = 0
        self.sectors_per_line = config.line_bytes // config.sector_bytes

    # ------------------------------------------------------------------

    def _locate(self, addr: int) -> tuple[int, int, int]:
        """Return (set_index, tag, sector_index) for a byte address."""
        line_id = addr // self.config.line_bytes
        set_index = line_id % self.config.num_sets
        tag = line_id // self.config.num_sets
        sector_index = (addr % self.config.line_bytes) // self.config.sector_bytes
        return set_index, tag, sector_index

    def _touch(self, line: _Line) -> None:
        self._stamp += 1
        line.lru_stamp = self._stamp

    def _sectors_touched(self, addr: int, size: int) -> list[int]:
        """Sector-aligned addresses covered by [addr, addr+size)."""
        sector = self.config.sector_bytes
        first = (addr // sector) * sector
        last = ((addr + max(size, 1) - 1) // sector) * sector
        return list(range(first, last + sector, sector))

    def _allocate_line(self, set_index: int, tag: int, result: AccessResult) -> _Line:
        ways = self._sets[set_index]
        if len(ways) >= self.config.ways:
            victim = min(ways.values(), key=lambda line: line.lru_stamp)
            if self.write_back and victim.dirty_sectors:
                self._emit_writebacks(set_index, victim, result)
            del ways[victim.tag]
            self.stats.add(f"{self.prefix}.evictions")
        line = _Line(tag=tag)
        ways[tag] = line
        return line

    def _emit_writebacks(self, set_index: int, line: _Line, result: AccessResult) -> None:
        line_addr = (line.tag * self.config.num_sets + set_index) * self.config.line_bytes
        for idx in range(self.sectors_per_line):
            if line.dirty_sectors & (1 << idx):
                result.writebacks.append(
                    (line_addr + idx * self.config.sector_bytes, self.config.sector_bytes)
                )
        self.stats.add(f"{self.prefix}.writebacks")

    # ------------------------------------------------------------------

    def access(self, addr: int, size: int, is_write: bool) -> AccessResult:
        """Look up every sector in [addr, addr+size); fill misses."""
        result = AccessResult()
        for sector_addr in self._sectors_touched(addr, size):
            self._access_sector(sector_addr, is_write, result)
        return result

    def _access_sector(self, sector_addr: int, is_write: bool, result: AccessResult) -> None:
        set_index, tag, sector_index = self._locate(sector_addr)
        line = self._sets[set_index].get(tag)
        bit = 1 << sector_index
        kind = "write" if is_write else "read"

        if line is not None and line.valid_sectors & bit:
            self.stats.add(f"{self.prefix}.{kind}_hits")
            result.hit_sectors += 1
            self._touch(line)
            if is_write:
                if self.write_back:
                    line.dirty_sectors |= bit
                else:
                    # write-through: data goes to next level as well
                    result.missing_sectors.append(
                        (sector_addr, self.config.sector_bytes)
                    )
            return

        self.stats.add(f"{self.prefix}.{kind}_misses")
        if is_write and not self.write_allocate:
            # no-write-allocate: forward the write, do not install the line
            result.missing_sectors.append((sector_addr, self.config.sector_bytes))
            return

        if line is None:
            line = self._allocate_line(set_index, tag, result)
        line.valid_sectors |= bit
        if is_write and self.write_back:
            line.dirty_sectors |= bit
        self._touch(line)
        result.missing_sectors.append((sector_addr, self.config.sector_bytes))

    # ------------------------------------------------------------------

    def access_batch(self, sector_addrs: np.ndarray,
                     is_write: np.ndarray) -> "BatchAccessResult":
        """Vectorized hit/miss classification of an ordered sector stream.

        Each element is one sector-aligned, sector-sized access.  The
        classification, install, dirty and eviction behaviour mirrors
        calling :meth:`access` per element, computed with numpy index
        arrays plus one small Python pass over the *unique lines* (not the
        accesses).  Two deliberate approximations for streams whose
        footprint exceeds the cache (documented because the sequential
        path would differ slightly):

        * a line touched earlier in the batch is assumed still resident
          when re-touched later (re-touches refresh LRU recency, so the
          sequential LRU keeps them in all but adversarial patterns);
        * when one batch pushes a set past its associativity several
          times over, victims are retired in recency order (pre-batch LRU
          stamps first, then batch order) rather than interleaved
          access-by-access.

        Only meaningful for write-allocate write-back caches (the
        memory-side L2); other configurations keep the scalar path.
        """
        if not (self.write_allocate and self.write_back):
            raise NotImplementedError(
                "access_batch models write-allocate/write-back caches only"
            )
        n = int(sector_addrs.size)
        if n == 0:
            return BatchAccessResult(
                hit_mask=np.empty(0, dtype=bool),
                fill_idx=np.empty(0, dtype=np.int64),
                wb_idx=np.empty(0, dtype=np.int64),
                wb_addrs=np.empty(0, dtype=np.int64),
            )
        cfg = self.config
        spl = self.sectors_per_line
        sector_ids = sector_addrs // cfg.sector_bytes
        line_ids = sector_ids // spl
        sector_idx = sector_ids - line_ids * spl
        bit = (np.int64(1) << sector_idx)

        _, sec_first = np.unique(sector_ids, return_index=True)
        first_mask = np.zeros(n, dtype=bool)
        first_mask[sec_first] = True

        uniq_lines, line_inv = np.unique(line_ids, return_inverse=True)
        m = len(uniq_lines)
        sets_arr = uniq_lines % cfg.num_sets
        tags_arr = uniq_lines // cfg.num_sets
        # one Python pass over the unique lines; .tolist() gives native
        # ints (numpy scalars hash an order of magnitude slower)
        sets_list = sets_arr.tolist()
        tags_list = tags_arr.tolist()
        all_sets = self._sets
        lines = [all_sets[s].get(t) for s, t in zip(sets_list, tags_list)]
        resident = np.fromiter((ln is not None for ln in lines), bool, m)
        valid_pre = np.fromiter(
            (ln.valid_sectors if ln is not None else 0 for ln in lines),
            np.int64, m,
        )
        hit = (~first_mask) | (
            resident[line_inv] & ((valid_pre[line_inv] & bit) != 0)
        )
        w = np.asarray(is_write, dtype=bool)
        for name, count in (
            ("read_hits", int(np.count_nonzero(hit & ~w))),
            ("write_hits", int(np.count_nonzero(hit & w))),
            ("read_misses", int(np.count_nonzero(~hit & ~w))),
            ("write_misses", int(np.count_nonzero(~hit & w))),
        ):
            if count:
                self.stats.add(f"{self.prefix}.{name}", count)

        # per-line aggregates over the batch
        order = np.argsort(line_inv, kind="stable")
        seg_starts = np.flatnonzero(
            np.diff(line_inv[order], prepend=np.int64(-1))
        )
        positions = np.arange(n, dtype=np.int64)[order]
        valid_or = np.bitwise_or.reduceat(bit[order], seg_starts)
        dirty_or = np.bitwise_or.reduceat(
            np.where(w, bit, np.int64(0))[order], seg_starts
        )
        first_occ = np.minimum.reduceat(positions, seg_starts)
        last_occ = np.maximum.reduceat(positions, seg_starts)

        base_stamp = self._stamp
        self._stamp += n
        wb_idx: list[int] = []
        wb_addrs: list[int] = []
        transient: set[int] = set()
        new_mask = ~resident
        if new_mask.any():
            self._evict_for_batch(
                sets_arr, tags_arr, resident, first_occ, last_occ,
                dirty_or, new_mask, wb_idx, wb_addrs, transient,
            )
        valid_list = valid_or.tolist()
        dirty_list = dirty_or.tolist()
        stamp_list = (last_occ + (base_stamp + 1)).tolist()
        for i in range(m):
            if i in transient:
                continue
            line = lines[i]
            if line is None:
                line = _Line(tag=tags_list[i])
                all_sets[sets_list[i]][line.tag] = line
            line.valid_sectors |= valid_list[i]
            line.dirty_sectors |= dirty_list[i]
            line.lru_stamp = stamp_list[i]

        return BatchAccessResult(
            hit_mask=hit,
            fill_idx=np.flatnonzero(~hit),
            wb_idx=np.asarray(wb_idx, dtype=np.int64),
            wb_addrs=np.asarray(wb_addrs, dtype=np.int64),
        )

    def _evict_for_batch(self, sets_arr, tags_arr, resident, first_occ,
                         last_occ, dirty_or, new_mask, wb_idx, wb_addrs,
                         transient) -> None:
        """Retire LRU victims for every set a batch pushes past capacity.

        Victim ``j`` (0-based, after the set's free ways are consumed) is
        evicted by the ``j``-th over-capacity allocation, so its dirty
        sectors write back at that allocation's position in the stream —
        the same interleaving the sequential path produces.  New lines
        are grouped per set with one lexsort up front; the Python loop
        below runs only over sets that actually overflow.
        """
        cfg = self.config
        new_idx = np.flatnonzero(new_mask)
        order = np.lexsort((first_occ[new_idx], sets_arr[new_idx]))
        new_sorted = new_idx[order]
        s_sorted = sets_arr[new_sorted]
        bounds = np.flatnonzero(
            np.diff(s_sorted, prepend=s_sorted[0] - 1)
        ).tolist() + [len(s_sorted)]
        touched_by_set: dict[int, list[int]] | None = None
        evictions = 0
        writebacks = 0
        for bi in range(len(bounds) - 1):
            lo, hi = bounds[bi], bounds[bi + 1]
            s = int(s_sorted[lo])
            ways = self._sets[s]
            free = cfg.ways - len(ways)
            n_evict = (hi - lo) - free
            if n_evict <= 0:
                continue
            sel = new_sorted[lo:hi]           # ordered by first occurrence
            alloc_ks = first_occ[sel[free:]].tolist()
            if touched_by_set is None:
                # built once, lazily: resident lines re-touched this
                # batch, grouped by set in last-touch order
                touched_by_set = {}
                res_idx = np.flatnonzero(resident)
                res_order = np.lexsort((last_occ[res_idx],
                                        sets_arr[res_idx]))
                for i in res_idx[res_order].tolist():
                    touched_by_set.setdefault(int(sets_arr[i]), []).append(i)
            touched = touched_by_set.get(s, [])
            touched_tags = {int(tags_arr[i]) for i in touched}
            victims: list[tuple[object, int | None]] = [
                (ln, None) for ln in sorted(
                    (ln for t, ln in ways.items() if t not in touched_tags),
                    key=lambda ln: ln.lru_stamp,
                )
            ]
            if n_evict > len(victims):
                # deep overflow: resident lines re-touched this batch go
                # next (ordered by their last touch), then the earliest
                # batch lines themselves (installed, then evicted)
                victims.extend((ways[int(tags_arr[i])], i) for i in touched)
            if n_evict > len(victims):
                for i in sel[:n_evict - len(victims)].tolist():
                    victims.append((None, i))
            for j, (line, uniq_i) in enumerate(victims[:n_evict]):
                k = alloc_ks[j]
                if uniq_i is not None:
                    transient.add(uniq_i)
                dirty = 0
                if line is not None:
                    dirty = line.dirty_sectors
                    line_addr = (line.tag * cfg.num_sets + s) \
                        * cfg.line_bytes
                    del ways[line.tag]
                if uniq_i is not None:
                    dirty |= int(dirty_or[uniq_i])
                    line_addr = (int(tags_arr[uniq_i]) * cfg.num_sets
                                 + s) * cfg.line_bytes
                evictions += 1
                if dirty:
                    writebacks += 1
                    for idx in range(self.sectors_per_line):
                        if dirty & (1 << idx):
                            wb_idx.append(k)
                            wb_addrs.append(
                                line_addr + idx * cfg.sector_bytes
                            )
        if evictions:
            self.stats.add(f"{self.prefix}.evictions", evictions)
        if writebacks:
            self.stats.add(f"{self.prefix}.writebacks", writebacks)

    # ------------------------------------------------------------------

    def invalidate_all(self) -> int:
        """Drop every line (instruction-cache flush on unregister, §III-F)."""
        dropped = sum(len(ways) for ways in self._sets)
        self._sets = [{} for _ in range(self.config.num_sets)]
        return dropped

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def hit_rate(self) -> float:
        hits = self.stats.get(f"{self.prefix}.read_hits") + self.stats.get(
            f"{self.prefix}.write_hits"
        )
        misses = self.stats.get(f"{self.prefix}.read_misses") + self.stats.get(
            f"{self.prefix}.write_misses"
        )
        total = hits + misses
        return hits / total if total else 0.0
