"""NDP-unit scratchpad memory.

Unlike CUDA shared memory (threadblock scope), the M2NDP scratchpad is
shared by *all* µthreads running on one NDP unit (§III-D, advantage A3).
It is mapped into an otherwise-unused virtual region so kernels access it
with ordinary loads/stores, and it supports the atomic operations used for
local reductions (the AMOADD in Fig 8's kernel body).

This model is functional (it stores real bytes) with a fixed access
latency; traffic counters feed the Fig 6b comparison against CUDA shared
memory.
"""

from __future__ import annotations

import struct

from repro.errors import MemoryError_
from repro.sim.stats import StatsRegistry

#: Virtual base address of the scratchpad window (paper example: kernels
#: address it at 0x10000000).
SCRATCHPAD_VBASE = 0x1000_0000


class Scratchpad:
    """Byte-addressable scratchpad with atomics and a fixed latency."""

    def __init__(
        self,
        size_bytes: int,
        latency_ns: float = 2.0,
        stats: StatsRegistry | None = None,
        stats_prefix: str = "scratchpad",
        base_vaddr: int = SCRATCHPAD_VBASE,
    ) -> None:
        self.size_bytes = size_bytes
        self.latency_ns = latency_ns
        self.base_vaddr = base_vaddr
        self.stats = stats if stats is not None else StatsRegistry()
        self.prefix = stats_prefix
        self._data = bytearray(size_bytes)

    # ------------------------------------------------------------------

    def contains(self, vaddr: int) -> bool:
        return self.base_vaddr <= vaddr < self.base_vaddr + self.size_bytes

    def _offset(self, vaddr: int, size: int) -> int:
        offset = vaddr - self.base_vaddr
        if offset < 0 or offset + size > self.size_bytes:
            raise MemoryError_(
                f"scratchpad access {vaddr:#x}+{size} outside window "
                f"[{self.base_vaddr:#x}, {self.base_vaddr + self.size_bytes:#x})"
            )
        return offset

    # ------------------------------------------------------------------

    def read(self, vaddr: int, size: int) -> bytes:
        offset = self._offset(vaddr, size)
        self.stats.add(f"{self.prefix}.reads")
        self.stats.add(f"{self.prefix}.bytes", size)
        return bytes(self._data[offset:offset + size])

    def write(self, vaddr: int, data: bytes) -> None:
        offset = self._offset(vaddr, len(data))
        self.stats.add(f"{self.prefix}.writes")
        self.stats.add(f"{self.prefix}.bytes", len(data))
        self._data[offset:offset + len(data)] = data

    # ------------------------------------------------------------------

    _FMT = {4: "<i", 8: "<q"}
    _FMT_F = {4: "<f", 8: "<d"}

    def amo(self, op: str, vaddr: int, operand, size: int = 8, is_float: bool = False):
        """Atomic read-modify-write; returns the *old* value (RISC-V AMO)."""
        offset = self._offset(vaddr, size)
        fmt = (self._FMT_F if is_float else self._FMT)[size]
        old = struct.unpack_from(fmt, self._data, offset)[0]
        new = _apply_amo(op, old, operand)
        struct.pack_into(fmt, self._data, offset, new)
        self.stats.add(f"{self.prefix}.atomics")
        self.stats.add(f"{self.prefix}.bytes", 2 * size)
        return old

    def view(self):
        """Writable uint8 numpy view of the scratchpad contents (the batched
        execution backend gathers argument blocks through this)."""
        import numpy as np

        return np.frombuffer(self._data, dtype=np.uint8)

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Zero the scratchpad (done between kernel instances)."""
        self._data = bytearray(self.size_bytes)


def _apply_amo(op: str, old, operand):
    """Shared AMO arithmetic, also used by the memory-side L2 atomics."""
    if op == "add":
        return old + operand
    if op == "swap":
        return operand
    if op == "and":
        return old & operand
    if op == "or":
        return old | operand
    if op == "xor":
        return old ^ operand
    if op == "min":
        return min(old, operand)
    if op == "max":
        return max(old, operand)
    raise MemoryError_(f"unsupported AMO op {op!r}")
