"""Memory substrate: physical store, address layout, DRAM timing, caches."""

from repro.mem.cache import AccessResult, SectorCache
from repro.mem.dram import DRAMModel
from repro.mem.layout import INTERLEAVE_GRANULE, AddressLayout, DRAMCoordinates
from repro.mem.physical import PAGE_SIZE, PhysicalMemory
from repro.mem.scratchpad import SCRATCHPAD_VBASE, Scratchpad

__all__ = [
    "AccessResult",
    "AddressLayout",
    "DRAMCoordinates",
    "DRAMModel",
    "INTERLEAVE_GRANULE",
    "PAGE_SIZE",
    "PhysicalMemory",
    "SCRATCHPAD_VBASE",
    "SectorCache",
    "Scratchpad",
]
