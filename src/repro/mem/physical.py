"""Sparse byte-addressable physical memory.

This is the *functional* backing store for everything the simulator touches:
host-managed device memory (HDM) contents, kernel code, workload arrays and
the M2func region all live here.  Timing is modeled elsewhere (``dram.py``,
``cache.py``); this module only stores bytes.

Storage is paged so a 256 GB address space costs memory only for pages
actually written.  Typed accessors cover the widths the RISC-V executor
needs, and numpy helpers bulk-load workload arrays.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import MemoryError_

PAGE_SIZE = 4096

_STRUCT = {
    ("u", 1): struct.Struct("<B"),
    ("u", 2): struct.Struct("<H"),
    ("u", 4): struct.Struct("<I"),
    ("u", 8): struct.Struct("<Q"),
    ("i", 1): struct.Struct("<b"),
    ("i", 2): struct.Struct("<h"),
    ("i", 4): struct.Struct("<i"),
    ("i", 8): struct.Struct("<q"),
    ("f", 4): struct.Struct("<f"),
    ("f", 8): struct.Struct("<d"),
}


class PhysicalMemory:
    """Sparse little-endian byte store with typed and bulk accessors."""

    def __init__(self, capacity_bytes: int | None = None) -> None:
        self.capacity_bytes = capacity_bytes
        self._pages: dict[int, bytearray] = {}

    # -- raw byte access ----------------------------------------------------

    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0:
            raise MemoryError_(f"negative address/size: {addr:#x}/{size}")
        if self.capacity_bytes is not None and addr + size > self.capacity_bytes:
            raise MemoryError_(
                f"access [{addr:#x}, {addr + size:#x}) beyond capacity "
                f"{self.capacity_bytes:#x}"
            )

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = self._pages[index] = bytearray(PAGE_SIZE)
        return page

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._check_range(addr, size)
        # fast path: access within one page (the overwhelmingly common case)
        offset = addr % PAGE_SIZE
        if offset + size <= PAGE_SIZE:
            page = self._pages.get(addr // PAGE_SIZE)
            if page is None:
                return bytes(size)
            return bytes(page[offset:offset + size])
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_idx, offset = divmod(addr + pos, PAGE_SIZE)
            chunk = min(size - pos, PAGE_SIZE - offset)
            page = self._pages.get(page_idx)
            if page is not None:
                out[pos:pos + chunk] = page[offset:offset + chunk]
            pos += chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes | bytearray) -> None:
        size = len(data)
        self._check_range(addr, size)
        offset = addr % PAGE_SIZE
        if offset + size <= PAGE_SIZE:
            self._page(addr // PAGE_SIZE)[offset:offset + size] = data
            return
        pos = 0
        while pos < size:
            page_idx, offset = divmod(addr + pos, PAGE_SIZE)
            chunk = min(size - pos, PAGE_SIZE - offset)
            self._page(page_idx)[offset:offset + chunk] = data[pos:pos + chunk]
            pos += chunk

    # -- typed scalar access --------------------------------------------------

    def _read_typed(self, kind: str, size: int, addr: int):
        return _STRUCT[(kind, size)].unpack(self.read_bytes(addr, size))[0]

    def _write_typed(self, kind: str, size: int, addr: int, value) -> None:
        self.write_bytes(addr, _STRUCT[(kind, size)].pack(value))

    def read_u8(self, addr: int) -> int:
        return self._read_typed("u", 1, addr)

    def read_u16(self, addr: int) -> int:
        return self._read_typed("u", 2, addr)

    def read_u32(self, addr: int) -> int:
        return self._read_typed("u", 4, addr)

    def read_u64(self, addr: int) -> int:
        return self._read_typed("u", 8, addr)

    def read_i8(self, addr: int) -> int:
        return self._read_typed("i", 1, addr)

    def read_i16(self, addr: int) -> int:
        return self._read_typed("i", 2, addr)

    def read_i32(self, addr: int) -> int:
        return self._read_typed("i", 4, addr)

    def read_i64(self, addr: int) -> int:
        return self._read_typed("i", 8, addr)

    def read_f32(self, addr: int) -> float:
        return self._read_typed("f", 4, addr)

    def read_f64(self, addr: int) -> float:
        return self._read_typed("f", 8, addr)

    def write_u8(self, addr: int, value: int) -> None:
        self._write_typed("u", 1, addr, value & 0xFF)

    def write_u16(self, addr: int, value: int) -> None:
        self._write_typed("u", 2, addr, value & 0xFFFF)

    def write_u32(self, addr: int, value: int) -> None:
        self._write_typed("u", 4, addr, value & 0xFFFFFFFF)

    def write_u64(self, addr: int, value: int) -> None:
        self._write_typed("u", 8, addr, value & 0xFFFFFFFFFFFFFFFF)

    def write_i32(self, addr: int, value: int) -> None:
        self._write_typed("i", 4, addr, value)

    def write_i64(self, addr: int, value: int) -> None:
        self._write_typed("i", 8, addr, value)

    def write_f32(self, addr: int, value: float) -> None:
        self._write_typed("f", 4, addr, value)

    def write_f64(self, addr: int, value: float) -> None:
        self._write_typed("f", 8, addr, value)

    # -- numpy bulk access ----------------------------------------------------

    def store_array(self, addr: int, array: np.ndarray) -> int:
        """Copy ``array`` into memory at ``addr``; returns bytes written."""
        data = np.ascontiguousarray(array).tobytes()
        self.write_bytes(addr, data)
        return len(data)

    def load_array(self, addr: int, dtype, count: int) -> np.ndarray:
        """Read ``count`` items of ``dtype`` starting at ``addr``."""
        dt = np.dtype(dtype)
        raw = self.read_bytes(addr, dt.itemsize * count)
        return np.frombuffer(raw, dtype=dt).copy()

    def page_array(self, index: int, create: bool = False) -> np.ndarray | None:
        """Writable uint8 view of one backing page, for vectorized access.

        Returns ``None`` for a page that was never written (reads as zeros)
        unless ``create`` is set.  Views alias the page storage: writes are
        immediately visible to the byte accessors.
        """
        self._check_range(index * PAGE_SIZE, PAGE_SIZE)
        page = self._pages.get(index)
        if page is None:
            if not create:
                return None
            page = self._page(index)
        return np.frombuffer(page, dtype=np.uint8)

    # -- vectorized row access (batched execution backend) --------------------

    def gather_rows(self, paddrs: np.ndarray, size: int) -> np.ndarray:
        """Read ``size`` bytes at each physical address; (n, size) uint8.

        Rows are grouped by backing page so one numpy fancy-index serves
        every same-page row; page-crossing rows fall back to
        :meth:`read_bytes`.  Unwritten pages read as zeros.
        """
        if paddrs.ndim == 0:
            return np.frombuffer(
                self.read_bytes(int(paddrs), size), dtype=np.uint8
            ).copy()
        n = paddrs.shape[0]
        out = np.zeros((n, size), dtype=np.uint8)
        offsets = paddrs % PAGE_SIZE
        crossing = offsets + size > PAGE_SIZE
        if crossing.any():
            for row in np.nonzero(crossing)[0]:
                out[row] = np.frombuffer(
                    self.read_bytes(int(paddrs[row]), size), dtype=np.uint8
                )
        rows = np.nonzero(~crossing)[0]
        if not rows.size:
            return out
        pages = paddrs[rows] // PAGE_SIZE
        if pages.size > 1 and not (pages[1:] >= pages[:-1]).all():
            order = np.argsort(pages, kind="stable")
            rows, pages = rows[order], pages[order]
        uniq, starts = np.unique(pages, return_index=True)
        bounds = list(starts[1:]) + [rows.size]
        col = np.arange(size)
        lo = 0
        for page, hi in zip(uniq, bounds):
            sel = rows[lo:hi]
            lo = hi
            buf = self.page_array(int(page))
            if buf is None:
                continue  # unwritten pages read as zeros
            offs = (paddrs[sel] % PAGE_SIZE)[:, None] + col
            out[sel] = buf[offs]
        return out

    def scatter_rows(self, paddrs: np.ndarray, data: np.ndarray) -> None:
        """Write each (paddr, row-of-bytes) pair; later rows win on overlap."""
        size = data.shape[-1]
        offsets = paddrs % PAGE_SIZE
        crossing = offsets + size > PAGE_SIZE
        rows = np.nonzero(~crossing)[0]
        if rows.size:
            pages = paddrs[rows] // PAGE_SIZE
            if pages.size > 1 and not (pages[1:] >= pages[:-1]).all():
                order = np.argsort(pages, kind="stable")
                rows, pages = rows[order], pages[order]
            uniq, starts = np.unique(pages, return_index=True)
            bounds = list(starts[1:]) + [rows.size]
            col = np.arange(size)
            lo = 0
            for page, hi in zip(uniq, bounds):
                sel = rows[lo:hi]
                lo = hi
                buf = self.page_array(int(page), create=True)
                offs = (paddrs[sel] % PAGE_SIZE)[:, None] + col
                buf[offs] = data[sel]
        if crossing.any():
            for row in np.nonzero(crossing)[0]:
                self.write_bytes(int(paddrs[row]), data[row].tobytes())

    # -- bookkeeping ------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes of page storage actually allocated."""
        return len(self._pages) * PAGE_SIZE
