"""Physical address layout: channel/bank/row interleaving.

The paper assumes fine-grained 256 B-granularity *hashed* interleaving
across memory channels (§IV-A, citing pseudo-random interleaving [114]).
This module maps physical addresses to (channel, bank, row) coordinates for
the DRAM timing model.

The hash XOR-folds the granule index so that strided access patterns do not
camp on one channel, while consecutive granules in one channel still walk
banks round-robin and fill row buffers — the combination that makes
streaming workloads hit DRAM rows and saturate all channels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DRAMConfig

INTERLEAVE_GRANULE = 256


@dataclass(frozen=True)
class DRAMCoordinates:
    channel: int
    bank: int
    row: int
    column_offset: int  # byte offset of the granule within its row


def _fold_hash(value: int) -> int:
    """XOR-fold the upper bits into the lower ones (pseudo-random spread)."""
    return value ^ (value >> 7) ^ (value >> 14) ^ (value >> 21)


class AddressLayout:
    """Maps physical addresses onto a :class:`DRAMConfig`'s geometry."""

    def __init__(self, config: DRAMConfig, granule: int = INTERLEAVE_GRANULE):
        self.config = config
        self.granule = granule
        self.granules_per_row = max(1, config.row_bytes // granule)

    def coordinates(self, addr: int) -> DRAMCoordinates:
        gid = addr // self.granule
        channel = _fold_hash(gid) % self.config.channels
        sid = gid // self.config.channels
        bank = sid % self.config.banks_per_channel
        within_bank = sid // self.config.banks_per_channel
        row = within_bank // self.granules_per_row
        col_granule = within_bank % self.granules_per_row
        column_offset = col_granule * self.granule + addr % self.granule
        return DRAMCoordinates(channel, bank, row, column_offset)

    def coordinates_batch(
        self, addrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`coordinates`: (channel, bank, row) arrays.

        Column offsets are omitted (the timing model only consumes the
        first three), so one pass over a whole sector stream replaces one
        Python call per access.
        """
        gid = addrs // self.granule
        folded = gid ^ (gid >> 7) ^ (gid >> 14) ^ (gid >> 21)
        channel = folded % self.config.channels
        sid = gid // self.config.channels
        bank = sid % self.config.banks_per_channel
        row = (sid // self.config.banks_per_channel) // self.granules_per_row
        return channel, bank, row

    def split_by_granule(self, addr: int, size: int) -> list[tuple[int, int]]:
        """Split [addr, addr+size) into (addr, size) pieces within granules."""
        if size <= 0:
            return []
        pieces: list[tuple[int, int]] = []
        pos = addr
        end = addr + size
        while pos < end:
            boundary = (pos // self.granule + 1) * self.granule
            chunk_end = min(end, boundary)
            pieces.append((pos, chunk_end - pos))
            pos = chunk_end
        return pieces

    def split_by_access(self, addr: int, size: int) -> list[tuple[int, int]]:
        """Split into device access-granularity bursts (32 B LPDDR5, 64 B DDR5)."""
        grain = self.config.access_granularity
        if size <= 0:
            return []
        first = (addr // grain) * grain
        last = ((addr + size - 1) // grain) * grain
        return [(base, grain) for base in range(first, last + grain, grain)]
