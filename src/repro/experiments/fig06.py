"""Fig 6: microarchitectural comparisons against GPU SMs.

(a) Ratio of active contexts over time for PGRANK: µthread slots refill
individually while SM warp slots are held until a whole threadblock
drains, so the NDP unit sustains a higher active ratio.

(b) Global and scratchpad traffic for HISTO: the NDP-unit-scope scratchpad
keeps one partial histogram per unit (32 total), while CUDA keeps one per
threadblock and merges each through global memory.
"""

from __future__ import annotations

from repro.config import GPU_NDP_ISO_AREA_SMS
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.host.gpu import make_gpu_ndp
from repro.workloads import graph, histogram
from repro.workloads.base import make_platform, scale


def run_fig6a(scale_name: str = "small", steps: int = 10) -> ExperimentResult:
    """Active-context ratio over normalized time, NDP vs SM (TB sizes)."""
    preset = scale(scale_name)
    data = graph.generate(preset.nodes, preset.avg_degree)

    # M2NDP: run one PageRank iteration, sample per-unit occupancy.
    # Unpinned since the SIMT engine: the masked walk records per-phase
    # occupancy ratios into the same samplers the per-µthread engine
    # feeds, so the figure runs on the experiment default backend.
    platform = make_platform(backend=EXPERIMENT_BACKEND)
    ndp_run = graph.run_ndp_pagerank(platform, data, iterations=1)
    end = max(platform.sim.now, 1.0)
    ndp_series = platform.device.total_active_ratio_series(0.0, end, steps)
    ndp_mean = _weighted_mean(platform, end)

    result = ExperimentResult(
        "fig6a", "Active context ratio over time (PGRANK main kernel)"
    )
    means = {"ndp_unit": ndp_mean}
    for tb_size in (32, 64, 128):
        gpu_platform = make_platform()
        gpu = make_gpu_ndp(gpu_platform.sim, gpu_platform.system,
                           GPU_NDP_ISO_AREA_SMS)
        spec = graph.gpu_spec_pagerank(data, tb_size=tb_size)
        gpu.launch(spec, at_ns=0.0)
        gpu_platform.sim.run()
        gend = max(gpu_platform.sim.now, 1.0)
        sm_mean = sum(
            sm.sampler.time_weighted_mean(gpu.launch_overhead_ns, gend)
            for sm in gpu.sms
        ) / len(gpu.sms)
        means[f"sm_tb{tb_size}"] = sm_mean

    for idx, (t, ratio) in enumerate(ndp_series):
        result.add(time_frac=idx / max(steps - 1, 1), ndp_ratio=ratio)
    for name, mean in means.items():
        result.add(config=name, mean_active_ratio=mean)
    gains = {
        tb: means["ndp_unit"] / means[f"sm_tb{tb}"] - 1.0
        for tb in (32, 64, 128) if means[f"sm_tb{tb}"] > 0
    }
    result.notes = (
        f"NDP active-ratio gain vs SM: "
        + ", ".join(f"TB{tb}: {g:+.1%}" for tb, g in gains.items())
        + " (paper: +15.9% to +50.9%); correctness: "
        + str(ndp_run.correct)
    )
    return result


def _weighted_mean(platform, end_ns: float) -> float:
    values = [
        unit.occupancy.sampler.time_weighted_mean(0.0, end_ns)
        for unit in platform.device.units
    ]
    return sum(values) / len(values)


def run_fig6b(scale_name: str = "small", nbins: int = 256,
              gpu_tbs: int = 128) -> ExperimentResult:
    """HISTO global/scratchpad traffic: M2NDP vs GPU-NDP(Iso-Area)."""
    preset = scale(scale_name)
    data = histogram.generate(preset.elements, nbins)
    platform = make_platform(backend=EXPERIMENT_BACKEND)
    run = histogram.run_ndp(platform, data)

    elements = preset.elements
    input_bytes = elements * 4
    # M2NDP measured traffic:
    ndp_global = run.extras["global_bytes"]
    ndp_spad = run.extras["spad_bytes"]

    # GPU-NDP (Iso-Area) analytic traffic: persistent TB-private shared
    # histograms merged through global atomics per TB.
    gpu_global = input_bytes + gpu_tbs * nbins * 4 * 2    # merge read+write
    gpu_shared = (
        elements * 2 * 4                 # shared atomic = read + write
        + gpu_tbs * nbins * 4            # per-TB zero-init
        + gpu_tbs * nbins * 4            # merge reads from shared
    )

    result = ExperimentResult(
        "fig6b", f"HISTO{nbins} traffic: GPU-NDP(Iso-Area) vs M2NDP"
    )
    result.add(config="gpu_ndp", global_bytes=float(gpu_global),
               spad_bytes=float(gpu_shared), normalized_global=1.0,
               normalized_spad=1.0)
    result.add(
        config="m2ndp",
        global_bytes=ndp_global,
        spad_bytes=ndp_spad,
        normalized_global=ndp_global / gpu_global,
        normalized_spad=ndp_spad / gpu_shared,
    )
    result.notes = (
        "paper: global 0.90, scratchpad 0.44 normalized; correctness: "
        + str(run.correct)
    )
    return result
