"""Cluster scaling experiment: executable §III-I / Fig 12b.

Where :mod:`repro.experiments.fig12` models multi-device scaling
*analytically* (shrink the per-device workload, add an all-reduce term),
this experiment actually instantiates N :class:`M2NDPDevice` expanders
behind a :class:`CXLSwitch` via :class:`~repro.cluster.ClusterRuntime` and
drives them with the multi-tenant open-loop
:class:`~repro.cluster.driver.TrafficDriver`:

* :func:`run_scaling` sweeps 1/2/4/8 devices under saturating vecadd and
  OLAP-scan streams and reports aggregate throughput speedups — the repro
  counterpart of Fig 12b's bars (paper: 6.45-7.84x at 8 devices).
* :func:`run_policy_matrix` crosses placement x scheduler at a fixed
  device count, exposing the P2P traffic each combination pays.
"""

from __future__ import annotations

from repro.cluster import make_cluster_platform
from repro.cluster.driver import StreamSpec, TrafficDriver
from repro.cluster.placement import PLACEMENTS
from repro.cluster.scheduler import SCHEDULERS
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.workloads.base import scale

#: Offered per-stream load (requests/s) that keeps every device count
#: saturated, so served/span measures capacity, not arrival rate.
SATURATING_RPS = 1e7


def _drive(num_devices: int, placement: str, scheduler: str,
           vec_elements: int, olap_rows: int, requests: int,
           backend: str) -> dict:
    platform = make_cluster_platform(
        num_devices=num_devices, placement=placement, scheduler=scheduler,
        backend=backend,
    )
    driver = TrafficDriver(platform, [
        StreamSpec("vecadd", "vecadd", rate_rps=SATURATING_RPS,
                   requests=requests, size=vec_elements),
        StreamSpec("olap", "olap", rate_rps=SATURATING_RPS,
                   requests=requests, size=olap_rows),
    ])
    report = driver.run()
    by_name = {s.name: s for s in report.streams}
    return {
        "correct": report.correct,
        "vec_rps": by_name["vecadd"].throughput_rps,
        "olap_rps": by_name["olap"].throughput_rps,
        "agg_rps": report.throughput_rps,
        "p50_ns": report.p50_ns,
        "p95_ns": report.p95_ns,
        "p99_ns": report.p99_ns,
        "p2p_bytes": platform.stats.get("cluster.p2p_prefetch_bytes"),
        "switch_p2p_bytes": platform.stats.get("switch.p2p_bytes"),
    }


def run_scaling(scale_name: str = "tiny",
                device_counts: tuple[int, ...] = (1, 2, 4, 8),
                placement: str = "interleaved",
                scheduler: str = "locality",
                requests: int = 16,
                backend: str = EXPERIMENT_BACKEND) -> ExperimentResult:
    """Aggregate-throughput scaling of the real cluster subsystem."""
    preset = scale(scale_name)
    result = ExperimentResult(
        "scaling",
        f"Cluster scaling ({placement}/{scheduler}, scale={scale_name})",
    )
    vec_elements = preset.elements
    olap_rows = preset.rows
    baseline: dict | None = None
    for n in device_counts:
        row = _drive(n, placement, scheduler, vec_elements, olap_rows,
                     requests, backend)
        if baseline is None:
            baseline = row
        result.add(
            devices=n,
            vec_speedup=row["vec_rps"] / baseline["vec_rps"],
            olap_speedup=row["olap_rps"] / baseline["olap_rps"],
            agg_speedup=row["agg_rps"] / baseline["agg_rps"],
            p50_ns=row["p50_ns"],
            p95_ns=row["p95_ns"],
            p99_ns=row["p99_ns"],
            correct=row["correct"],
        )
    result.notes = (
        "paper Fig 12b: 6.45-7.84x at 8 devices (DLRM / OPT); aggregate L2 "
        "capacity lets bandwidth-bound streams scale superlinearly here"
    )
    return result


def run_policy_matrix(num_devices: int = 4,
                      scale_name: str = "tiny",
                      requests: int = 12,
                      backend: str = EXPERIMENT_BACKEND) -> ExperimentResult:
    """Placement x scheduler cross: throughput and switch P2P traffic."""
    preset = scale(scale_name)
    result = ExperimentResult(
        "scaling_policies",
        f"Placement x scheduler at {num_devices} devices",
    )
    for placement in PLACEMENTS:
        for scheduler in SCHEDULERS:
            row = _drive(num_devices, placement, scheduler,
                         preset.elements, preset.rows, requests, backend)
            result.add(
                placement=placement,
                scheduler=scheduler,
                agg_rps=row["agg_rps"],
                p95_ns=row["p95_ns"],
                p2p_bytes=row["switch_p2p_bytes"],
                correct=row["correct"],
            )
    result.notes = (
        "locality never pays P2P; ownership-blind policies pay switch "
        "traffic whenever their chunk assignment misses the shard owner"
    )
    return result


if __name__ == "__main__":
    print(run_scaling().render())
    print()
    print(run_policy_matrix().render())
