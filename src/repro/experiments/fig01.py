"""Fig 1: motivation — (a) roofline of local vs CXL memory placement,
(b) impact of load-to-use latency on KVS_A P95 latency."""

from __future__ import annotations

from repro.analysis.roofline import fig1a_table, max_slowdown, mean_slowdown
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.workloads import kvstore
from repro.workloads.base import make_platform, scale


def run_fig1a() -> ExperimentResult:
    result = ExperimentResult(
        "fig1a", "Roofline: workload performance, local vs CXL memory"
    )
    for row in fig1a_table():
        result.add(**row)
    result.notes = (
        f"max slowdown {max_slowdown():.1f}x (paper: up to 9.9x), "
        f"avg {mean_slowdown():.1f}x (paper: 6.3x)"
    )
    return result


def run_fig1b(scale_name: str = "small",
              interarrival_ns: float = 2_000.0) -> ExperimentResult:
    """Baseline KVS_A P95 latency at LtU 75 (local), 150 and 600 ns."""
    preset = scale(scale_name)
    data = kvstore.kvs_a(preset.kv_items, preset.kv_requests,
                         interarrival_ns=interarrival_ns)
    result = ExperimentResult(
        "fig1b", "KVS_A P95 latency vs memory load-to-use latency"
    )
    p95_by_ltu: dict[float, float] = {}
    for ltu in (75.0, 150.0, 600.0):
        platform = make_platform(backend=EXPERIMENT_BACKEND)
        run = kvstore.run_baseline(platform, data, ltu_ns=ltu)
        p95_by_ltu[ltu] = run.p95_ns
    local = p95_by_ltu[75.0]
    for ltu, p95 in p95_by_ltu.items():
        label = "local" if ltu == 75.0 else "cxl"
        result.add(memory=f"{label}_LtU_{int(ltu)}ns", p95_ns=p95,
                   normalized=p95 / local)
    result.notes = "paper: 1.0 / 2.2 / 7.4 normalized P95"
    return result
