"""Partitioning experiment: blast-radius isolation for multi-tenant serving.

An interactive KVStore tenant shares a cluster with an adversarial batch
VectorAdd tenant (large launches, no rate limit) in two hardware modes:

``shared``       the pre-partitioning cluster — every launch competes for
                 the same sub-cores, L2 slices and DRAM channels.
``partitioned``  each device is split ``rt:1,batch:2,spare:1``; the
                 interactive tenant pins to ``rt``, the adversary to
                 ``batch``, and ``spare`` idles as fail-over headroom.

Each mode also runs *solo* (the interactive tenant alone) so the sweep
reports the noisy-neighbour penalty as ``p99(with adversary) /
p99(solo)`` per mode.  Expected shape (gated by the smoke point): the
shared penalty is measurably above 1 while the partitioned penalty stays
within a few percent — the adversary physically cannot touch the ``rt``
partition's units, cache slices or channels.

The chaos rows arm a **partition-scoped** kill of the adversary's
partition mid-traffic: detection fails only that partition's in-flight
work, health marks ``devN.batch`` DOWN while the device stays routable,
pinned shards fail over to the ``spare`` partition, and the interactive
tenant must come through byte-identical to the fault-free run —
the containment guarantee the incident bundle's per-partition blast
radius records.
"""

from __future__ import annotations

from repro.cluster import make_cluster_platform
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.faults import FaultEvent, FaultPlan
from repro.obs.incidents import grade_against_plan
from repro.serve import ArrivalSpec, RetryPolicy, ServingEngine, TenantSpec

#: Partition spec under test: interactive slice, adversary slice, and a
#: spare partition kept empty as the partition-kill fail-over target.
PARTITION_SPEC = "rt:1,batch:2,spare:1"


def _interactive(requests: int, partition: str | None) -> TenantSpec:
    return TenantSpec(
        "rt", "kvstore",
        arrivals=ArrivalSpec("poisson", rate_rps=2e6, requests=requests),
        qos_class="interactive", slo_ns=150_000.0, size=512,
        placement="replicated", partition=partition,
        get_fraction=0.9,
        retry=RetryPolicy(max_retries=2, backoff_ns=500.0,
                          deadline_aware=True),
    )


def _adversary(requests: int, partition: str | None) -> TenantSpec:
    """Batch tenant sized to saturate whatever hardware it can reach."""
    return TenantSpec(
        "noisy", "vecadd",
        arrivals=ArrivalSpec("poisson", rate_rps=4e6, requests=requests),
        qos_class="batch", size=1 << 16, slices=4,
        partition=partition,
        # a retry budget so work stranded by a partition kill replays on
        # the spare partition after fail-over
        retry=RetryPolicy(max_retries=2, backoff_ns=1_000.0),
    )


def _run(tenants, num_devices: int, backend: str,
         partitions: str | None, plan: FaultPlan | None = None,
         monitoring: bool | None = None):
    platform = make_cluster_platform(num_devices=num_devices,
                                     backend=backend,
                                     partitions=partitions)
    injector = (platform.runtime.arm_faults(plan)
                if plan is not None else None)
    engine = ServingEngine(platform, tenants, monitoring=monitoring)
    report = engine.run()
    return platform, engine, injector, report


def run_partitioning(requests: int = 48,
                     adversary_requests: int = 24,
                     num_devices: int = 2,
                     backend: str = EXPERIMENT_BACKEND) -> ExperimentResult:
    """Shared vs partitioned serving under an adversarial batch tenant."""
    result = ExperimentResult(
        "partitioning",
        f"Hardware partitioning vs shared on {num_devices} devices "
        f"({PARTITION_SPEC!r}, {backend} backend)",
    )
    for mode, spec in (("shared", None), ("partitioned", PARTITION_SPEC)):
        rt_pin = "rt" if spec else None
        noisy_pin = "batch" if spec else None
        _, _, _, solo = _run(
            [_interactive(requests, rt_pin)],
            num_devices, backend, spec,
        )
        solo_p99 = solo.tenant("rt").p99_ns
        platform, _, _, report = _run(
            [_interactive(requests, rt_pin),
             _adversary(adversary_requests, noisy_pin)],
            num_devices, backend, spec,
        )
        rt = report.tenant("rt")
        noisy = report.tenant("noisy")
        result.add(
            mode=mode,
            rt_solo_p99_ns=solo_p99,
            rt_p99_ns=rt.p99_ns if rt.served else 0.0,
            rt_p99_vs_solo=(rt.p99_ns / solo_p99
                            if rt.served and solo_p99 else 0.0),
            rt_slo_att=rt.slo_attainment,
            rt_served=rt.served,
            noisy_served=noisy.served,
            noisy_p99_ns=noisy.p99_ns if noisy.served else 0.0,
            correct=rt.correct and noisy.correct,
        )
    result.notes = (
        "rt_p99_vs_solo is the noisy-neighbour penalty; the partitioned "
        "row must stay near 1.0 while the shared row degrades"
    )
    return result


def run_partitioning_containment(requests: int = 48,
                                 adversary_requests: int = 24,
                                 num_devices: int = 2,
                                 backend: str = EXPERIMENT_BACKEND
                                 ) -> ExperimentResult:
    """Partition-scoped kill: blast radius, fail-over and containment.

    The adversary's ``batch`` partition on device 0 is killed
    mid-traffic.  Containment means the interactive tenant's result
    bytes are identical to the fault-free run, its accounting identity
    holds, the device stays routable, and the adversary's pinned shards
    fail over to the ``spare`` partition.
    """
    result = ExperimentResult(
        "partitioning_containment",
        f"Partition-scoped kill on {num_devices} devices "
        f"({PARTITION_SPEC!r}, {backend} backend)",
    )
    tenants = lambda: [_interactive(requests, "rt"),
                       _adversary(adversary_requests, "batch")]
    _, baseline_engine, _, baseline = _run(
        tenants(), num_devices, backend, PARTITION_SPEC,
    )
    baseline_rt_bytes = baseline_engine.result_snapshots()["rt"]

    horizon_ns = requests / 2e6 * 1e9
    plan = FaultPlan(events=(
        FaultEvent("device_fail", at_ns=horizon_ns * 0.25, device=0,
                   partition="batch"),
    ))
    platform, engine, injector, report = _run(
        tenants(), num_devices, backend, PARTITION_SPEC,
        plan=plan, monitoring=True,
    )
    rt = report.tenant("rt")
    noisy = report.tenant("noisy")
    stats = platform.stats
    grade = grade_against_plan(injector, engine.monitor.alerts)
    blast: dict[str, int] = {}
    for bundle in engine.reporter.bundles:
        for key, kinds in bundle.get("partition_blast_radius", {}).items():
            blast[key] = max(blast.get(key, 0), sum(kinds.values()))
    partition_kernels = ",".join(
        f"{name}:{int(stats.get(f'partition.{name}.kernels_completed'))}"
        for name in platform.runtime.partitions.names)
    result.add(
        fault="partition_kill(dev0.batch)",
        rt_served=rt.served,
        rt_slo_att=rt.slo_attainment,
        rt_bytes_identical=(engine.result_snapshots()["rt"]
                            == baseline_rt_bytes),
        rt_accounted=rt.accounting_ok,
        noisy_served=noisy.served,
        noisy_accounted=noisy.accounting_ok,
        partition_kills=int(stats.get("fault.partition_kills")),
        partition_detections=int(stats.get("fault.partition_detections")),
        failovers=int(stats.get("recovery.partition_failovers")),
        alert_recall=grade["recall"],
        blast_radius=",".join(f"{k}:{v}" for k, v in sorted(blast.items()))
        or "none",
        partition_kernels=partition_kernels,
        correct=rt.correct,
    )
    result.notes = (
        "rt_bytes_identical gates the containment guarantee: a kill "
        "scoped to dev0.batch may not perturb one byte of the rt "
        "partition's results"
    )
    return result


if __name__ == "__main__":
    print(run_partitioning().render())
    print()
    print(run_partitioning_containment().render())
