"""Fig 11: M2func deep-dive.

(a) P95 latency-throughput curves for KVS_A under the three offload
mechanisms: the direct-MMIO register pair serializes kernels and saturates
orders of magnitude earlier (the paper's 47.3x throughput gap).

(b) M2func's benefit with CXL.mem latency *equal* to CXL.io (600 ns both):
the advantage that remains is purely fewer round trips and concurrency.
"""

from __future__ import annotations

from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.host.offload import make_offload_path, timeline
from repro.workloads import kvstore
from repro.workloads.base import make_platform, scale


def run_fig11a(scale_name: str = "small",
               interarrival_sweep: tuple[float, ...] = (
                   8_000.0, 4_000.0, 2_000.0, 1_000.0, 500.0),
               ) -> ExperimentResult:
    preset = scale(scale_name)
    result = ExperimentResult(
        "fig11a", "KVS_A P95 latency vs offered load by offload mechanism"
    )
    for interarrival in interarrival_sweep:
        data = kvstore.kvs_a(preset.kv_items, preset.kv_requests,
                             interarrival_ns=interarrival)
        row = {"offered_mrps": 1e3 / interarrival}
        for mech in ("m2func", "cxl_io_rb", "cxl_io_dr"):
            platform = make_platform(queue_capacity=1 << 16, backend=EXPERIMENT_BACKEND)
            run = kvstore.run_ndp(platform, data, make_offload_path(mech))
            elapsed = platform.sim.now
            row[f"{mech}_p95_us"] = run.p95_ns / 1e3
            row[f"{mech}_mrps"] = run.throughput_rps(elapsed) / 1e6
        result.add(**row)
    result.notes = (
        "paper: CXL.io_DR saturates ~47x earlier than M2func; "
        "ring buffer adds ~4 us to every request"
    )
    return result


def run_fig11b(kernel_runtimes_ns: dict[str, float] | None = None,
               equal_latency_ns: float = 600.0) -> ExperimentResult:
    """Latency-bound comparison at equal 600 ns one-way CXL.mem/CXL.io.

    Uses the Fig 5 timeline model with x = y = 300 ns (one-way, so a 600 ns
    round trip each) applied to measured kernel runtimes.
    """
    kernels = kernel_runtimes_ns if kernel_runtimes_ns is not None else {
        "SPMV": 50_000.0, "PGRANK": 40_000.0, "SSSP": 60_000.0,
        "KVS_A": 770.0, "DLRM-B4": 1_600.0,
    }
    one_way = equal_latency_ns / 2.0
    result = ExperimentResult(
        "fig11b", "M2func vs CXL.io at equal link latency (600 ns LtU)"
    )
    for name, z in kernels.items():
        rb = timeline("cxl_io_rb", z, one_way, one_way).total_ns
        dr = timeline("cxl_io_dr", z, one_way, one_way).total_ns
        m2 = timeline("m2func", z, one_way, one_way).total_ns
        result.add(workload=name,
                   vs_rb=rb / m2,
                   vs_dr=dr / m2)
    result.notes = (
        "paper: up to 1.63x latency gain for fine-grained kernels, ~1.0 for "
        "coarse ones; throughput gains (47.3x KVS, 4.58x DLRM-B4) come from "
        "concurrency and are shown in fig11a"
    )
    return result
