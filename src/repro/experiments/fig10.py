"""Fig 10: main results.

(a) OLAP filter Evaluate: baseline CPU vs CPU-NDP vs M2NDP vs Ideal NDP.
(b) KVStore P95 latency across offload mechanisms.
(c) GPU workloads: baseline GPU, GPU-NDP (Iso-FLOPS / 4x / 16x / Iso-Area),
    M2NDP, and NSU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.speedup import SpeedupRow, SpeedupTable
from repro.config import (
    GPU_NDP_16X_FLOPS_SMS,
    GPU_NDP_4X_FLOPS_SMS,
    GPU_NDP_ISO_AREA_SMS,
    GPU_NDP_ISO_FLOPS_SMS,
)
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.host.gpu import GPUDevice, GPUKernelSpec, make_gpu_baseline, make_gpu_ndp
from repro.host.nsu import NSUModel, NSUWorkload
from repro.host.offload import make_offload_path
from repro.sim.engine import Simulator
from repro.sim.stats import geometric_mean
from repro.workloads import dlrm, graph, histogram, kvstore, llm, spmv
from repro.workloads import olap
from repro.config import default_system
from repro.workloads.base import NDPRunResult, make_platform, scale

# ---------------------------------------------------------------------------
# Fig 10a — OLAP
# ---------------------------------------------------------------------------

def run_fig10a(scale_name: str = "small") -> ExperimentResult:
    preset = scale(scale_name)
    result = ExperimentResult(
        "fig10a", "OLAP Evaluate speedups over host CPU baseline"
    )
    speedups = {"cpu_ndp": [], "m2ndp": [], "ideal": []}
    for query in ("q14", "q6", "q1_1", "q1_2", "q1_3"):
        data = olap.generate(query, preset.rows)
        platform = make_platform(backend=EXPERIMENT_BACKEND)
        ndp = olap.run_ndp_evaluate(platform, data)
        base = olap.baseline_evaluate_ns(data)
        cpu_ndp = olap.cpu_ndp_evaluate_ns(data)
        ideal = olap.ideal_ndp_evaluate_ns(data)
        row = {
            "query": query,
            "cpu_ndp": base / cpu_ndp,
            "m2ndp": base / ndp.runtime_ns,
            "ideal": base / ideal,
            "correct": ndp.correct,
            "bw_gbps": ndp.dram_bandwidth,
        }
        phases = olap.full_query_phases_ns(data, ndp.runtime_ns, base)
        row["norm_runtime"] = phases["total"] / phases["baseline_total"]
        result.add(**row)
        for key in speedups:
            speedups[key].append(row[key])
    result.notes = (
        "GMEAN evaluate speedups: "
        + ", ".join(f"{k}={geometric_mean(v):.1f}x" for k, v in speedups.items())
        + " (paper: cpu_ndp=55x, m2ndp=73.4x, ideal=81x)"
    )
    return result


# ---------------------------------------------------------------------------
# Fig 10b — KVStore P95 latency by offload mechanism
# ---------------------------------------------------------------------------

def run_fig10b(scale_name: str = "small",
               interarrival_ns: float = 2_000.0) -> ExperimentResult:
    preset = scale(scale_name)
    result = ExperimentResult(
        "fig10b", "KVStore P95 latency improvement over host baseline"
    )
    for maker, mix in ((kvstore.kvs_a, "KVS_A"), (kvstore.kvs_b, "KVS_B")):
        data = maker(preset.kv_items, preset.kv_requests,
                     interarrival_ns=interarrival_ns)
        base_platform = make_platform(backend=EXPERIMENT_BACKEND)
        base = kvstore.run_baseline(base_platform, data)
        row = {"mix": mix, "baseline_p95_ns": base.p95_ns}
        for mech in ("cxl_io_dr", "cxl_io_rb", "m2func"):
            platform = make_platform(backend=EXPERIMENT_BACKEND)
            run = kvstore.run_ndp(platform, data, make_offload_path(mech))
            row[f"{mech}_improvement"] = base.p95_ns / run.p95_ns
            if mech == "m2func":
                row["correct"] = run.correct
        result.add(**row)
    result.notes = (
        "paper: M2func improves P95 by 1.38x avg; CXL.io paths degrade it "
        "(0.29x-0.59x)"
    )
    return result


# ---------------------------------------------------------------------------
# Fig 10c — GPU workloads across seven configurations
# ---------------------------------------------------------------------------

@dataclass
class GPUWorkloadCase:
    """One Fig 10c workload: its NDP run and its GPU kernel description."""

    name: str
    run_ndp: Callable[[], NDPRunResult]
    gpu_specs: Callable[[], list[GPUKernelSpec]]
    launches: int = 1


def _run_gpu(device_factory: Callable[[Simulator], GPUDevice],
             specs: list[GPUKernelSpec]) -> float:
    """Run kernels back to back on a fresh GPU; returns total ns."""
    sim = Simulator()
    gpu = device_factory(sim)
    at = 0.0
    for spec in specs:
        result = gpu.launch(spec, at_ns=at)
        sim.run()
        at = result.complete_ns
    return at


def _gpu_configs(system) -> dict[str, Callable[[Simulator], GPUDevice]]:
    return {
        "gpu_baseline": lambda sim: make_gpu_baseline(sim, system),
        "gpu_ndp_iso_flops": lambda sim: make_gpu_ndp(
            sim, system, GPU_NDP_ISO_FLOPS_SMS),
        "gpu_ndp_4x": lambda sim: make_gpu_ndp(sim, system, GPU_NDP_4X_FLOPS_SMS),
        "gpu_ndp_16x": lambda sim: make_gpu_ndp(sim, system, GPU_NDP_16X_FLOPS_SMS),
        "gpu_ndp_iso_area": lambda sim: make_gpu_ndp(
            sim, system, GPU_NDP_ISO_AREA_SMS),
    }


def build_cases(scale_name: str = "small") -> list[GPUWorkloadCase]:
    preset = scale(scale_name)
    cases: list[GPUWorkloadCase] = []

    for nbins in (256, 4096):
        data = histogram.generate(preset.elements, nbins)
        cases.append(GPUWorkloadCase(
            name=f"HISTO{nbins}",
            run_ndp=(lambda d=data: histogram.run_ndp(make_platform(backend=EXPERIMENT_BACKEND), d)),
            gpu_specs=(lambda d=data: [histogram.gpu_spec(d)]),
        ))

    spmv_data = spmv.generate(preset.nodes, preset.avg_degree)
    cases.append(GPUWorkloadCase(
        name="SPMV",
        run_ndp=(lambda d=spmv_data: spmv.run_ndp(make_platform(backend=EXPERIMENT_BACKEND), d)),
        gpu_specs=(lambda d=spmv_data: [spmv.gpu_spec(d)]),
    ))

    graph_data = graph.generate(preset.nodes, preset.avg_degree)
    cases.append(GPUWorkloadCase(
        name="PGRANK",
        run_ndp=(lambda d=graph_data: graph.run_ndp_pagerank(
            make_platform(backend=EXPERIMENT_BACKEND), d, iterations=1)),
        gpu_specs=(lambda d=graph_data: [graph.gpu_spec_pagerank(d)]),
    ))
    # SSSP converges over many sweeps; a smaller graph keeps total work
    # comparable to the single-pass workloads (the paper similarly uses a
    # smaller input for SSSP than PGRANK, Table V).
    sssp_data = graph.generate(max(preset.nodes // 4, 128), preset.avg_degree)
    cases.append(GPUWorkloadCase(
        name="SSSP",
        run_ndp=(lambda d=sssp_data: graph.run_ndp_sssp(make_platform(backend=EXPERIMENT_BACKEND), d)),
        gpu_specs=(lambda d=sssp_data: [graph.gpu_spec_sssp(d)]),
    ))

    for batch in (4, preset.dlrm_batch_cap):
        data = dlrm.generate(preset.dlrm_rows, batch=batch, dim=128,
                             lookups=40)
        cases.append(GPUWorkloadCase(
            name=f"DLRM-B{batch}",
            run_ndp=(lambda d=data: dlrm.run_ndp(make_platform(backend=EXPERIMENT_BACKEND), d)),
            gpu_specs=(lambda d=data: [dlrm.gpu_spec(d)]),
        ))

    for model, hidden in ((llm.OPT_2_7B, preset.llm_hidden),
                          (llm.OPT_30B, int(preset.llm_hidden * 1.25))):
        data = llm.generate(model, sim_hidden=hidden,
                            sim_layers=preset.llm_layers)
        cases.append(GPUWorkloadCase(
            name=model.name,
            run_ndp=(lambda d=data: llm.run_ndp(make_platform(backend=EXPERIMENT_BACKEND), d)),
            gpu_specs=(lambda d=data: [llm.gpu_spec(d)]),
        ))

    return cases


def run_fig10c(scale_name: str = "small",
               configs: tuple[str, ...] | None = None) -> ExperimentResult:
    system = default_system()
    gpu_configs = _gpu_configs(system)
    if configs is not None:
        gpu_configs = {k: v for k, v in gpu_configs.items() if k in configs}
    nsu = NSUModel()

    table = SpeedupTable("fig10c")
    result = ExperimentResult(
        "fig10c", "GPU workload speedups over host GPU baseline"
    )
    correctness = True
    for case in build_cases(scale_name):
        ndp = case.run_ndp()
        correctness = correctness and ndp.correct
        specs = case.gpu_specs()
        sweeps = ndp.instance_count
        per_config: dict[str, float] = {}
        for cfg_name, factory in gpu_configs.items():
            per_config[cfg_name] = _run_gpu(factory, specs * sweeps)
        baseline_ns = per_config.pop("gpu_baseline")
        per_config["m2ndp"] = ndp.runtime_ns
        accesses = max(
            int(ndp.extras.get("global_accesses", ndp.dram_bytes // 32)), 1
        )
        per_config["nsu"] = nsu.runtime_ns(NSUWorkload(
            ndp_accesses=accesses,
            read_bytes=int(ndp.dram_bytes),
            result_bytes=1024,
        ))
        table.add(SpeedupRow(workload=case.name, baseline_ns=baseline_ns,
                             config_ns=per_config))

    for row in table.rows:
        cells = {"workload": row.workload}
        cells.update(row.speedups())
        result.add(**cells)
    gmeans = {cfg: table.gmean(cfg) for cfg in table.configs()}
    result.add(workload="GMEAN", **gmeans)
    result.notes = (
        "paper GMEANs: iso_flops=3.25, 4x=5.12, 16x=5.11, iso_area=4.49, "
        f"m2ndp=6.35, nsu=0.97; all NDP runs correct: {correctness}"
    )
    return result
