"""Fig 12: ablation study and multi-device scaling.

(a) Ablations: M2func → CXL.io ring buffer; fine-grained µthread spawning →
coarse (all 16 slots of a sub-core at once, GPU-threadblock-like); scalar
address optimization → SIMT-style index arithmetic (extra per-µthread
instructions).

(b) Scaling to 1-8 CXL-M2NDP devices with SW-partitioned data (§III-I):
per-device kernels shrink linearly; OPT adds an all-reduce over the switch.
"""

from __future__ import annotations

import re

from repro.cxl.switch import CXLSwitch
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.host.offload import CXL_IO_ONE_WAY_NS
from repro.workloads import dlrm, graph, histogram, llm
from repro.workloads.base import make_platform, scale

#: Extra per-µthread instructions when the memory-mapped x1/x2 ABI is
#: replaced by threadblock-style index arithmetic (§III-D A1: the paper
#: measures 3.28-17.6 % static instruction increase).
ADDR_CALC_EXTRA_INSTRS = 4


def _inflate_addressing(source: str) -> str:
    """Insert SIMT-style index-arithmetic instructions at each body start.

    ``add x0, x0, x0`` retires without architectural effect (x0 is
    hardwired) but charges dispatch and ALU slots exactly like the mul/add
    chains a threadblock-indexed kernel would execute.
    """
    filler = "\n".join(["    add x0, x0, x0"] * ADDR_CALC_EXTRA_INSTRS)
    return re.sub(r"(?m)^\.body\s*$", ".body\n" + filler, source)


def run_fig12a(scale_name: str = "small") -> ExperimentResult:
    preset = scale(scale_name)
    result = ExperimentResult(
        "fig12a", "Ablation: runtime normalized to full M2NDP"
    )

    cases = {
        "HISTO4096": lambda p, inflate: _histo_run(p, preset, inflate),
        "DLRM-B32": lambda p, inflate: _dlrm_run(p, preset, inflate),
        "PGRANK": lambda p, inflate: _pgrank_run(p, preset, inflate),
    }
    # Unpinned since the SIMT engine: its chunked-wave latency floor
    # models spawn granularity (a coarse group's slots free only when the
    # slowest lane finishes) and the addressing ablation inflates the
    # traced instruction stream, so both effects survive on the
    # experiment default backend.
    for name, run_fn in cases.items():
        base = run_fn(make_platform(backend=EXPERIMENT_BACKEND), False)
        coarse = run_fn(
            make_platform(spawn_granularity=16,
                          backend=EXPERIMENT_BACKEND), False)
        no_addr = run_fn(make_platform(backend=EXPERIMENT_BACKEND), True)
        # w/o M2func: same kernel, launched through the ring buffer — adds
        # the Fig 5b pre/post overheads to every launch.
        rb_overhead = 8 * CXL_IO_ONE_WAY_NS
        result.add(
            workload=name,
            wo_m2func=(base.runtime_ns + rb_overhead * base.instance_count)
            / base.runtime_ns,
            wo_finegrained=coarse.runtime_ns / base.runtime_ns,
            wo_addr_opt=no_addr.runtime_ns / base.runtime_ns,
            correct=base.correct and coarse.correct and no_addr.correct,
        )
    result.notes = (
        "paper: w/o M2func up to 2.41x (GMEAN 1.09), w/o fine-grained up to "
        "1.51x (1.08), w/o addr opt up to 1.20x (1.02); the analytic "
        "backend's deterministic per-lane latencies compress the "
        "fine-grained ablation toward 1.0 — run with "
        "REPRO_EXPERIMENT_BACKEND=interpreter for the event-driven spread"
    )
    return result


def _histo_run(platform, preset, inflate: bool):
    from repro.kernels.histogram import HISTOGRAM
    data = histogram.generate(preset.elements // 2, 4096)
    if not inflate:
        return histogram.run_ndp(platform, data)
    # re-run with the inflated kernel source
    import repro.workloads.histogram as hmod
    import repro.kernels.histogram as kmod
    original = kmod.HISTOGRAM
    kmod.HISTOGRAM = _inflate_addressing(original)
    hmod.HISTOGRAM = kmod.HISTOGRAM
    try:
        return hmod.run_ndp(platform, data)
    finally:
        kmod.HISTOGRAM = original
        hmod.HISTOGRAM = original


def _dlrm_run(platform, preset, inflate: bool):
    import repro.workloads.dlrm as dmod
    import repro.kernels.dlrm as kmod
    data = dlrm.generate(preset.dlrm_rows, batch=32, dim=128, lookups=24)
    if not inflate:
        return dmod.run_ndp(platform, data)
    original = kmod.DLRM_SLS
    kmod.DLRM_SLS = _inflate_addressing(original)
    dmod.DLRM_SLS = kmod.DLRM_SLS
    try:
        return dmod.run_ndp(platform, data)
    finally:
        kmod.DLRM_SLS = original
        dmod.DLRM_SLS = original


def _pgrank_run(platform, preset, inflate: bool):
    import repro.workloads.graph as gmod
    import repro.kernels.graph as kmod
    data = graph.generate(preset.nodes // 2, preset.avg_degree)
    if not inflate:
        return gmod.run_ndp_pagerank(platform, data, iterations=1)
    original = kmod.PAGERANK_ITER
    kmod.PAGERANK_ITER = _inflate_addressing(original)
    gmod.PAGERANK_ITER = kmod.PAGERANK_ITER
    try:
        return gmod.run_ndp_pagerank(platform, data, iterations=1)
    finally:
        kmod.PAGERANK_ITER = original
        gmod.PAGERANK_ITER = original


def static_instruction_savings() -> ExperimentResult:
    """§III-D claim: memory-mapped µthreads cut static instruction count by
    3.28-17.6 % vs threadblock-index address calculation."""
    from repro.isa.assembler import assemble_kernel
    from repro.kernels import KERNEL_LIBRARY

    result = ExperimentResult(
        "instr_savings", "Static instruction reduction from memory mapping"
    )
    for name in ("eval_range_i32", "histogram", "spmv_csr", "pagerank_iter",
                 "sssp_relax", "dlrm_sls", "gemv_f32", "kvs_get"):
        base = assemble_kernel(KERNEL_LIBRARY[name], name=name)
        inflated = assemble_kernel(
            _inflate_addressing(KERNEL_LIBRARY[name]), name=name
        )
        saved = 1.0 - base.static_instruction_count / inflated.static_instruction_count
        result.add(kernel=name,
                   mapped_instrs=base.static_instruction_count,
                   indexed_instrs=inflated.static_instruction_count,
                   reduction=saved)
    result.notes = "paper: 3.28-17.6% static instruction reduction"
    return result


# ---------------------------------------------------------------------------
# Fig 12b — multi-device scaling
# ---------------------------------------------------------------------------

def run_fig12b(scale_name: str = "small",
               device_counts: tuple[int, ...] = (1, 2, 4, 8),
               ) -> ExperimentResult:
    preset = scale(scale_name)
    result = ExperimentResult(
        "fig12b", "Scaling with multiple CXL-M2NDP devices (model parallel)"
    )

    workloads = {
        "DLRM-B256": ("dlrm", dlrm.generate(preset.dlrm_rows,
                                            batch=preset.dlrm_batch_cap * 4,
                                            dim=128, lookups=24)),
        "OPT-2.7B": ("llm", llm.generate(llm.OPT_2_7B,
                                         sim_hidden=preset.llm_hidden,
                                         sim_layers=preset.llm_layers)),
        "OPT-30B": ("llm", llm.generate(llm.OPT_30B,
                                        sim_hidden=int(preset.llm_hidden * 1.25),
                                        sim_layers=preset.llm_layers)),
    }
    for name, (kind, data) in workloads.items():
        single = _partitioned_run(kind, data, fraction=1.0)
        row = {"workload": name}
        for n in device_counts:
            per_device = _partitioned_run(kind, data, fraction=1.0 / n)
            total = per_device + _allreduce_ns(kind, data, n)
            row[f"x{n}"] = single / total
        result.add(**row)
    result.notes = (
        "paper: 7.84x (DLRM) / 7.69x (OPT-30B) / 6.45x (OPT-2.7B) at 8 devices"
    )
    return result


def _partitioned_run(kind: str, data, fraction: float) -> float:
    """Run one device's share of the partitioned workload."""
    platform = make_platform(backend=EXPERIMENT_BACKEND)
    if kind == "dlrm":
        batch = max(1, int(data.batch * fraction))
        part = dlrm.generate(data.table.shape[0], batch=batch,
                             dim=data.dim, lookups=data.lookups)
        return dlrm.run_ndp(platform, part).runtime_ns
    rows = data.weights.shape[0]
    part_rows = max(32, int(rows * fraction) // 8 * 8)
    sub = llm.GEMVData(
        weights=data.weights[:part_rows],
        x=data.x,
        reference=data.reference[:part_rows],
        model=data.model,
        sim_bytes=data.weights[:part_rows].nbytes,
    )
    return llm.run_ndp(platform, sub).runtime_ns


def _allreduce_ns(kind: str, data, num_devices: int) -> float:
    """All-reduce of partial activations over the CXL switch (P2P)."""
    if kind != "llm" or num_devices <= 1:
        return 0.0
    switch = CXLSwitch(num_downstream=num_devices)
    # scaled to the simulated model slice, not the full model
    sim_hidden = data.weights.shape[1]
    sim_layers = max(1, data.weights.shape[0] // (12 * sim_hidden))
    bytes_per_hop = 2 * sim_layers * sim_hidden * 4
    done = 0.0
    for step in range(num_devices - 1):
        done = switch.peer_to_peer(done, step % num_devices,
                                   (step + 1) % num_devices, bytes_per_hop)
    return done
