"""Fig 5: NDP offloading timelines — M2func vs CXL.io ring buffer vs
direct MMIO, with the paper's example latencies (x=75 ns, y=500 ns,
z=6.4 µs DLRM(SLS)-B32 kernel)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.host.offload import timeline


def run_fig5(kernel_ns: float = 6_400.0, x_ns: float = 75.0,
             y_ns: float = 500.0) -> ExperimentResult:
    result = ExperimentResult(
        "fig5", "Offloading scheme timelines (z + overhead decomposition)"
    )
    lines = {name: timeline(name, kernel_ns, x_ns, y_ns)
             for name in ("m2func", "cxl_io_rb", "cxl_io_dr")}
    for name, tl in lines.items():
        result.add(
            mechanism=name,
            pre_kernel_ns=tl.pre_kernel_ns,
            post_kernel_ns=tl.post_kernel_ns,
            overhead_ns=tl.overhead_ns,
            total_ns=tl.total_ns,
        )
    m2 = lines["m2func"]
    # The paper's 33-75% communication reduction counts round trips at
    # equal per-hop latency (2 one-ways vs 3 and 8); the 17-37% end-to-end
    # figures use the real x/y latencies.
    equal = {name: timeline(name, 0.0, y_ns, y_ns)
             for name in ("m2func", "cxl_io_rb", "cxl_io_dr")}
    comm_red = {
        name: 1.0 - equal["m2func"].overhead_ns / tl.overhead_ns
        for name, tl in equal.items() if name != "m2func"
    }
    e2e_red = {
        name: 1.0 - m2.total_ns / tl.total_ns
        for name, tl in lines.items() if name != "m2func"
    }
    result.notes = (
        f"communication overhead reduced by "
        f"{min(comm_red.values()):.0%}-{max(comm_red.values()):.0%} "
        f"(paper: 33-75%), end-to-end by "
        f"{min(e2e_red.values()):.0%}-{max(e2e_red.values()):.0%} "
        f"(paper: 17-37%)"
    )
    return result
