"""Fig 13: sensitivity studies.

(a) NDP-unit frequency (1/2/3 GHz) and CXL load-to-use latency (1x/2x/4x):
lower frequency barely hurts (memory-bound); higher LtU *helps* M2NDP's
relative speedup because only the baseline host crosses the link during
kernels.

(b) Dirty host cachelines (20/40/80 % of kernel data): back-invalidation
round trips overlap with other µthreads, so the paper sees only a
3.1-26.5 % slowdown even at 80 % dirty.
"""

from __future__ import annotations

from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.workloads import dlrm, histogram
from repro.config import default_system
from repro.workloads.base import make_platform, scale


def run_fig13a_frequency(scale_name: str = "small") -> ExperimentResult:
    """NDP frequency sweep on a representative bandwidth-bound workload."""
    preset = scale(scale_name)
    data = histogram.generate(preset.elements // 2, 4096)
    result = ExperimentResult(
        "fig13a-freq", "M2NDP runtime vs NDP unit frequency (HISTO4096)"
    )
    runtimes: dict[float, float] = {}
    for freq in (1.0, 2.0, 3.0):
        platform = make_platform(default_system().with_ndp_freq(freq),
                                 backend=EXPERIMENT_BACKEND)
        run = histogram.run_ndp(platform, data)
        runtimes[freq] = run.runtime_ns
    for freq, ns in runtimes.items():
        result.add(freq_ghz=freq, runtime_ns=ns,
                   speedup_vs_default=runtimes[2.0] / ns)
    result.notes = (
        "paper: 1 GHz costs ~10% overall, 3 GHz gains only ~2.5% "
        "(memory bandwidth bound)"
    )
    return result


def run_fig13a_ltu(scale_name: str = "small") -> ExperimentResult:
    """LtU sweep: M2NDP kernel time is latency-invariant; the baseline CPU/
    GPU degrade, so relative speedups grow (paper: 6.35 → 13.1 → 19.4)."""
    from repro.workloads import olap

    preset = scale(scale_name)
    data = olap.generate("q6", preset.rows // 2)
    result = ExperimentResult(
        "fig13a-ltu", "Speedup vs CXL load-to-use latency (OLAP Q6 Evaluate)"
    )
    ndp_runtime = None
    for factor, ltu in ((1, 150.0), (2, 300.0), (4, 600.0)):
        system = default_system().with_ltu(ltu)
        platform = make_platform(system, backend=EXPERIMENT_BACKEND)
        run = olap.run_ndp_evaluate(platform, data)
        if ndp_runtime is None:
            ndp_runtime = run.runtime_ns
        baseline = olap.baseline_evaluate_ns(data, ltu_ns=ltu)
        result.add(ltu_factor=f"{factor}x", ltu_ns=ltu,
                   ndp_runtime_ns=run.runtime_ns,
                   speedup=baseline / run.runtime_ns,
                   correct=run.correct)
    result.notes = (
        "paper: average speedup rises from 6.35x to 13.1x (2xLtU) and "
        "19.4x (4xLtU) because kernels never cross the link"
    )
    return result


def run_fig13b(scale_name: str = "small",
               dirty_fractions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.8),
               ) -> ExperimentResult:
    """Dirty-host-cacheline limit study (HDM-DB back-invalidation)."""
    preset = scale(scale_name)
    data = dlrm.generate(preset.dlrm_rows, batch=16, dim=128, lookups=24)
    result = ExperimentResult(
        "fig13b", "M2NDP runtime vs dirty host cacheline ratio (DLRM SLS)"
    )
    baseline_ns = None
    for fraction in dirty_fractions:
        platform = make_platform(dirty_fraction=fraction, backend=EXPERIMENT_BACKEND)
        run = dlrm.run_ndp(platform, data)
        if baseline_ns is None:
            baseline_ns = run.runtime_ns
        result.add(
            dirty_pct=int(fraction * 100),
            runtime_ns=run.runtime_ns,
            normalized=run.runtime_ns / baseline_ns,
            back_invalidations=platform.stats.get("hdm.back_invalidations"),
            correct=run.correct,
        )
    result.notes = "paper: only 3.1% / 12.8% / 26.5% slower at 20/40/80% dirty"
    return result
