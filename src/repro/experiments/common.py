"""Shared experiment plumbing: result containers and paper reference data.

Every experiment returns an :class:`ExperimentResult` whose rows are plain
dicts; benchmarks print them, EXPERIMENTS.md records them against the
paper's numbers (kept here in ``PAPER_REFERENCE`` so comparisons live in
one place).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

#: Execution backend used by the figure reproductions (see repro.exec).
#: Experiments default to the batched trace-replay fast path — launches it
#: cannot replay (atomics, gathers, multi-phase kernels) automatically fall
#: back to the interpreter per launch, so results stay correct everywhere.
#: The microarchitectural studies (Fig 6 context occupancy, Fig 12a spawn
#: granularity) pin the interpreter explicitly and ignore this default.
#: Override with the REPRO_EXPERIMENT_BACKEND env var.
EXPERIMENT_BACKEND = os.environ.get("REPRO_EXPERIMENT_BACKEND", "batched")


@dataclass
class ExperimentResult:
    """Output of one figure/table reproduction."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add(self, **row) -> None:
        self.rows.append(row)

    def column(self, key: str) -> list:
        return [row[key] for row in self.rows if key in row]

    def render(self) -> str:
        if not self.rows:
            return f"[{self.experiment_id}] {self.title}: (no rows)"
        keys: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        header = " | ".join(f"{k:>14}" for k in keys)
        lines = [f"[{self.experiment_id}] {self.title}", header,
                 "-" * len(header)]
        for row in self.rows:
            cells = []
            for k in keys:
                v = row.get(k, "")
                if isinstance(v, float):
                    cells.append(f"{v:>14.3f}")
                else:
                    cells.append(f"{str(v):>14}")
            lines.append(" | ".join(cells))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


#: Headline numbers from the paper, for EXPERIMENTS.md comparisons.
PAPER_REFERENCE = {
    "fig1a": {"max_slowdown": 9.9, "avg_slowdown": 6.3},
    "fig1b": {"p95_ratio_150": 2.2, "p95_ratio_600": 7.4},
    "fig5": {"m2func_reduction_vs_rb_min": 0.17, "m2func_reduction_vs_rb_max": 0.37},
    "fig6a": {"active_ratio_gain_min": 0.159, "active_ratio_gain_max": 0.509},
    "fig6b": {"global_traffic_ratio": 0.90, "spad_traffic_ratio": 0.44},
    "fig10a": {
        "evaluate_speedup_gmean": 73.4,
        "evaluate_speedup_max": 128.0,
        "cpu_ndp_gap": 1.342,          # M2NDP over CPU-NDP
        "ideal_gap": 1.103,            # Ideal over M2NDP (within 10.3 %)
        "dram_bw_utilization": 0.907,
    },
    "fig10b": {"p95_improvement": 1.382, "vs_cxl_io_rb": 4.79},
    "fig10c": {
        "m2ndp_gmean": 6.35,
        "m2ndp_max": 9.71,
        "gpu_ndp_iso_flops_gmean": 3.25,
        "gpu_ndp_4x_gmean": 5.12,
        "gpu_ndp_16x_gmean": 5.11,
        "gpu_ndp_iso_area_gmean": 4.49,
        "nsu_gmean": 0.97,
    },
    "fig11b": {"latency_gain_max": 1.63, "kvs_throughput_gain": 47.3},
    "fig12a": {
        "wo_m2func_max": 2.41, "wo_finegrained_max": 1.506,
        "wo_addr_opt_max": 1.202,
        "static_instr_reduction": (0.0328, 0.176),
    },
    "fig12b": {"speedup_8dev_dlrm": 7.84, "speedup_8dev_opt30b": 7.69,
               "speedup_8dev_opt27b": 6.45},
    "fig13a": {"slowdown_1ghz": 0.90, "speedup_3ghz": 1.025,
               "gmean_2xltu": 13.1, "gmean_4xltu": 19.4},
    "fig13b": {"impact_range": (0.031, 0.265)},
    "fig14a": {"dsa_gap_avg": 0.065},
    "fig14b": {"speedup_8mem_range": (6.39, 7.38)},
    "fig15": {"energy_reduction_olap": 0.839, "energy_reduction_gpu": 0.782,
              "perf_per_energy_max": 106.0, "perf_per_energy_avg": 32.0},
    "area": {"ndp_unit_mm2": 0.83, "total_mm2": 26.4,
             "rf_reduction": 0.81, "alu_reduction": 0.69},
}
