"""Serving experiment: tenant-mix x scheduler x batching sweeps.

The datacenter-serving counterpart of the scaling experiment: a mixed
tenant population (interactive KVStore point lookups with a tight SLO,
interactive OLAP scans, batch-class vector jobs) is replayed through the
:class:`~repro.serve.engine.ServingEngine` under every combination of
dispatch scheduler (``fifo`` / ``wfq``) and dynamic batching (off /
max-batch 8), reporting per-tenant p50/p99, SLO attainment, goodput and
shed counts plus the cluster's trace-cache hit rate.

Expected shape of the results (asserted loosely by the serve tests, not
here): WFQ keeps the interactive tenants' p99 and SLO attainment stable
when the batch tenant floods the cluster, while FIFO lets the flood push
interactive latencies out; enabling batching raises aggregate throughput
and the trace-cache hit rate at a small p50 cost for the batched tenant.
"""

from __future__ import annotations

from repro import obs
from repro.cluster import make_cluster_platform
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.obs.report import build_report, parse_events, render
from repro.serve import (
    ArrivalSpec,
    AutoscalePolicy,
    BatchPolicy,
    ServingEngine,
    TenantSpec,
)

#: The default mixed-tenant population (sizes are test-scale; the offered
#: rates saturate a 2-device cluster so queueing discipline matters).
def default_tenants(requests: int = 48) -> list[TenantSpec]:
    return [
        TenantSpec(
            "kv-web", "kvstore",
            arrivals=ArrivalSpec("poisson", rate_rps=4e6, requests=requests),
            qos_class="interactive", weight=2.0, slo_ns=40_000.0, size=512,
        ),
        TenantSpec(
            "dash", "olap",
            arrivals=ArrivalSpec("bursty", rate_rps=1e6, burst_rate_rps=8e6,
                                 dwell_ns=20_000.0,
                                 requests=max(8, requests // 2)),
            qos_class="interactive", weight=1.0, slo_ns=120_000.0,
            size=1 << 12, slices=4,
        ),
        TenantSpec(
            "etl", "vecadd",
            arrivals=ArrivalSpec("poisson", rate_rps=4e6,
                                 requests=requests),
            qos_class="batch", weight=1.0, size=1 << 10, slices=8,
        ),
    ]


def run_serving(requests: int = 48,
                num_devices: int = 2,
                backend: str = EXPERIMENT_BACKEND) -> ExperimentResult:
    """Scheduler x batching sweep over the default tenant mix."""
    result = ExperimentResult(
        "serving",
        f"SLO-aware serving on {num_devices} devices "
        f"(scheduler x batching, {backend} backend)",
    )
    for scheduler in ("fifo", "wfq"):
        for max_batch in (1, 8):
            platform = make_cluster_platform(num_devices=num_devices,
                                             backend=backend)
            engine = ServingEngine(
                platform, default_tenants(requests),
                scheduler=scheduler,
                batch=BatchPolicy(max_batch=max_batch, max_wait_ns=2_000.0),
            )
            report = engine.run()
            for tenant in report.tenants:
                result.add(
                    scheduler=scheduler,
                    max_batch=max_batch,
                    tenant=tenant.name,
                    qos=tenant.qos_class,
                    served=tenant.served,
                    shed=tenant.shed,
                    p50_ns=tenant.p50_ns if tenant.served else 0.0,
                    p99_ns=tenant.p99_ns if tenant.served else 0.0,
                    slo_att=tenant.slo_attainment,
                    goodput_rps=tenant.goodput_rps,
                    mean_batch=tenant.mean_batch,
                    correct=tenant.correct,
                )
            result.add(
                scheduler=scheduler,
                max_batch=max_batch,
                tenant="(aggregate)",
                qos="-",
                served=report.served,
                shed=report.offered - report.served,
                p50_ns=report.p50_ns,
                p99_ns=report.p99_ns,
                slo_att=report.slo_attainment,
                goodput_rps=report.goodput_rps,
                mean_batch=report.mean_batch,
                correct=report.correct,
            )
            result.rows[-1]["cache_hit_rate"] = report.trace_cache_hit_rate
    result.notes = (
        "wfq + batching is the production point: fair shares under "
        "overload, amortized launches, trace-cache hits on repeat shapes"
    )
    return result


def run_serving_autoscale(requests: int = 96,
                          num_devices: int = 4,
                          backend: str = EXPERIMENT_BACKEND) -> ExperimentResult:
    """Autoscaler reaction to a bursty tenant: active devices over time."""
    result = ExperimentResult(
        "serving_autoscale",
        f"Autoscaler on {num_devices} devices under bursty load",
    )
    platform = make_cluster_platform(num_devices=num_devices, backend=backend)
    engine = ServingEngine(
        platform,
        [
            TenantSpec(
                "burst", "vecadd",
                arrivals=ArrivalSpec("bursty", rate_rps=2e5,
                                     burst_rate_rps=2e7, dwell_ns=100_000.0,
                                     requests=requests),
                size=1 << 14, slices=8,
            ),
        ],
        # unbatched: every request is its own launch, so the burst pins the
        # in-flight cap and the utilization signal actually moves
        batch=BatchPolicy(max_batch=1),
        autoscale=AutoscalePolicy(enabled=True, min_devices=1,
                                  interval_ns=10_000.0),
        inflight_per_device=2,
    )
    report = engine.run()
    for when, active in report.active_device_series:
        result.add(t_ns=when, active_devices=active)
    result.notes = (
        f"{report.scale_ups} scale-ups / {report.scale_downs} scale-downs; "
        f"p99 {report.p99_ns:,.0f} ns over {report.served} served"
    )
    return result


def run_serving_traced(prefix: str = "serving",
                       requests: int = 48,
                       num_devices: int = 2,
                       backend: str = EXPERIMENT_BACKEND) -> tuple[str, str]:
    """One traced wfq+batching serving run; exports trace + manifest.

    Enables tracing for the duration of the run, writes
    ``<prefix>.trace.json`` (Chrome trace-event / Perfetto) and
    ``<prefix>.manifest.json`` next to the working directory's BENCH
    files, prints the bottleneck report, and returns both paths.
    """
    was_enabled = obs.enabled()
    obs.set_enabled(True)
    try:
        platform = make_cluster_platform(num_devices=num_devices,
                                         backend=backend)
        engine = ServingEngine(
            platform, default_tenants(requests), scheduler="wfq",
            batch=BatchPolicy(max_batch=8, max_wait_ns=2_000.0),
        )
        report = engine.run()
        tracer = obs.tracer_of(platform.sim)
        trace_path = f"{prefix}.trace.json"
        manifest_path = f"{prefix}.manifest.json"
        obs.write_trace(tracer, trace_path,
                        counters=engine._util.counter_samples())
        obs.write_manifest(
            manifest_path, tracer=tracer, stats=platform.stats,
            config=platform.system,
            seed=platform.runtime.cluster_config.seed,
            extra={
                "experiment": "serving_traced",
                "num_devices": num_devices,
                "backend": backend,
                "served": report.served,
                "span_ns": report.span_ns,
                "utilization": engine._util.summary(),
            },
        )
    finally:
        obs.set_enabled(was_enabled)
    print(report.render())
    print()
    with open(trace_path) as fh:
        import json
        events = json.load(fh)["traceEvents"]
    print(render(build_report(parse_events(events))))
    print()
    print(f"trace written to {trace_path} (load in https://ui.perfetto.dev)")
    print(f"manifest written to {manifest_path}")
    return trace_path, manifest_path


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Serving experiment sweeps (add --trace for a traced "
                    "run exporting Perfetto trace + run manifest)")
    parser.add_argument(
        "--trace", nargs="?", const="serving", default=None, metavar="PREFIX",
        help="run one traced serving pass and write <PREFIX>.trace.json "
             "and <PREFIX>.manifest.json (default prefix: serving)")
    cli = parser.parse_args()
    if cli.trace is not None:
        run_serving_traced(cli.trace)
    else:
        print(run_serving().render())
        print()
        print(run_serving_autoscale().render())
