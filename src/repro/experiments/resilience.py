"""Resilience experiment: fault rate x placement x retry policy.

A serving tenant of OLAP scans (launches long enough that a mid-traffic
device kill strands real in-flight work) is replayed through the
:class:`~repro.serve.engine.ServingEngine` on a 4-device cluster under a
grid of chaos levels (healthy / one kill / kill+stall+flap), shard
placements (``replicated`` fail-over vs ``blocked`` re-copy) and retry
policies (none vs budgeted deadline-aware retries), reporting SLO
attainment, failed/retried counts, goodput and the recovery counters.

Expected shape (asserted by ``tests/faults``): with faults injected,
deadline-aware retries strictly dominate the no-retry baseline on
served count and SLO attainment; replicated placement recovers with
zero re-copy bytes while blocked placement pays the switch-charged
re-materialization; the healthy row is byte-identical to a run with no
fault injector armed at all.
"""

from __future__ import annotations

from repro.cluster import make_cluster_platform
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.faults import FaultEvent, FaultPlan
from repro.obs.incidents import grade_against_plan
from repro.serve import ArrivalSpec, RetryPolicy, ServingEngine, TenantSpec

#: Chaos levels: label -> FaultPlan factory (taking the traffic horizon).
def _chaos_plans(horizon_ns: float) -> dict[str, FaultPlan]:
    mid = horizon_ns * 0.25
    return {
        "healthy": FaultPlan.none(),
        "kill": FaultPlan(events=(
            FaultEvent("device_fail", at_ns=mid, device=1),
        )),
        "chaos": FaultPlan(events=(
            FaultEvent("device_fail", at_ns=mid, device=1),
            FaultEvent("device_stall", at_ns=mid * 0.5, device=2,
                       duration_ns=horizon_ns * 4),
            FaultEvent("link_flap", at_ns=mid * 1.5, device=3,
                       duration_ns=horizon_ns * 4),
        )),
    }


#: Retry policies under test: label -> RetryPolicy.
RETRY_POLICIES = {
    "no-retry": RetryPolicy(max_retries=0),
    "retry3": RetryPolicy(max_retries=3, backoff_ns=500.0,
                          backoff_factor=2.0, jitter_ns=200.0,
                          deadline_aware=True),
}


def _tenant(placement: str, retry: RetryPolicy,
            requests: int) -> TenantSpec:
    return TenantSpec(
        "scan", "olap",
        arrivals=ArrivalSpec("poisson", rate_rps=2e6, requests=requests),
        qos_class="interactive", slo_ns=5_000_000.0,
        size=1 << 20, slices=4,
        placement=placement, retry=retry,
    )


def run_resilience(requests: int = 24,
                   num_devices: int = 4,
                   backend: str = EXPERIMENT_BACKEND) -> ExperimentResult:
    """Chaos level x placement x retry sweep on one OLAP tenant."""
    result = ExperimentResult(
        "resilience",
        f"Fault injection on {num_devices} devices "
        f"(chaos x placement x retry, {backend} backend)",
    )
    horizon_ns = requests / 2e6 * 1e9       # expected traffic span
    for chaos, plan in _chaos_plans(horizon_ns).items():
        for placement in ("replicated", "blocked"):
            for policy_name, policy in RETRY_POLICIES.items():
                platform = make_cluster_platform(num_devices=num_devices,
                                                 backend=backend)
                platform.runtime.arm_faults(plan)
                engine = ServingEngine(
                    platform,
                    [_tenant(placement, policy, requests)],
                )
                report = engine.run()
                tenant = report.tenant("scan")
                stats = platform.stats
                result.add(
                    chaos=chaos,
                    placement=placement,
                    retry=policy_name,
                    served=tenant.served,
                    failed=tenant.failed,
                    retried=tenant.retried,
                    slo_att=tenant.slo_attainment,
                    goodput_rps=tenant.goodput_rps,
                    p99_ns=tenant.p99_ns if tenant.served else 0.0,
                    kills=int(stats.get("fault.device_kills")),
                    lost=int(stats.get("fault.lost_completions")),
                    failovers=int(stats.get("recovery.failovers")),
                    recopy_bytes=int(stats.get("recovery.recopy_bytes")),
                    accounted=tenant.accounting_ok,
                    correct=tenant.correct,
                )
    result.notes = (
        "replicated + deadline-aware retries is the resilient point: "
        "fail-over without re-copy, stranded launches replayed in budget"
    )
    return result


def run_resilience_monitoring(requests: int = 24,
                              num_devices: int = 4,
                              backend: str = EXPERIMENT_BACKEND
                              ) -> ExperimentResult:
    """Chaos sweep with the monitoring stack grading itself.

    Same tenant and chaos levels as :func:`run_resilience` (replicated
    placement, deadline-aware retries) but run with the always-on
    monitor attached, reporting the *operational* metrics against the
    known fault schedule: alert recall and precision
    (:func:`~repro.obs.incidents.grade_against_plan`), mean MTTD
    (injection to first matching alert), max MTTA (detection to alert —
    bounded by one monitor beat) and mean MTTR from the incident
    bundles' fault correlation.
    """
    result = ExperimentResult(
        "resilience_monitoring",
        f"Alert quality vs the armed fault schedule on {num_devices} "
        f"devices ({backend} backend)",
    )
    horizon_ns = requests / 2e6 * 1e9
    for chaos, plan in _chaos_plans(horizon_ns).items():
        platform = make_cluster_platform(num_devices=num_devices,
                                         backend=backend)
        injector = platform.runtime.arm_faults(plan)
        engine = ServingEngine(
            platform,
            [_tenant("replicated", RETRY_POLICIES["retry3"], requests)],
            monitoring=True,
        )
        report = engine.run()
        tenant = report.tenant("scan")
        grade = grade_against_plan(injector, engine.monitor.alerts)
        mttr = [row["mttr_ns"]
                for bundle in engine.reporter.bundles
                for row in bundle.get("correlation", ())
                if row["mttr_ns"] is not None]
        result.add(
            chaos=chaos,
            served=tenant.served,
            slo_att=tenant.slo_attainment,
            alerts=grade["alerts"],
            incidents=len(engine.reporter.bundles),
            recall=grade["recall"],
            precision=grade["precision"],
            mean_mttd_ns=grade["mean_mttd_ns"],
            max_mtta_ns=grade["max_mtta_ns"],
            mean_mttr_ns=sum(mttr) / len(mttr) if mttr else 0.0,
        )
    result.notes = (
        "recall 1.0 = every injected fault alerted; MTTA is bounded by "
        "one monitor beat past heartbeat detection; healthy rows must "
        "show zero alerts (precision stays 1.0 vacuously)"
    )
    return result


def run_resilience_hedged(requests: int = 40,
                          num_devices: int = 4,
                          backend: str = EXPERIMENT_BACKEND
                          ) -> ExperimentResult:
    """Hedged replicated point lookups against stalled devices."""
    result = ExperimentResult(
        "resilience_hedged",
        f"Hedged kvstore lookups on {num_devices} devices under stalls",
    )
    stall = FaultPlan(events=(
        FaultEvent("device_stall", at_ns=500.0, device=0,
                   duration_ns=50_000.0),
        FaultEvent("device_stall", at_ns=500.0, device=1,
                   duration_ns=50_000.0),
    ))
    for hedge_delay in (0.0, 1_000.0, 4_000.0):
        platform = make_cluster_platform(num_devices=num_devices,
                                         backend=backend)
        platform.runtime.arm_faults(stall)
        spec = TenantSpec(
            "kv", "kvstore",
            arrivals=ArrivalSpec("poisson", rate_rps=1e6,
                                 requests=requests),
            qos_class="interactive", slo_ns=200_000.0, size=512,
            placement="replicated",
            retry=RetryPolicy(max_retries=2, backoff_ns=500.0),
            hedge_delay_ns=hedge_delay,
        )
        report = ServingEngine(platform, [spec]).run()
        tenant = report.tenant("kv")
        result.add(
            hedge_delay_ns=hedge_delay,
            served=tenant.served,
            hedged=tenant.hedged,
            hedged_won=tenant.hedged_won,
            p99_ns=tenant.p99_ns if tenant.served else 0.0,
            slo_att=tenant.slo_attainment,
            correct=tenant.correct,
        )
    result.notes = (
        "hedge_delay 0 disables hedging; a tight delay trades duplicate "
        "launches for tail latency while stalled devices drag primaries"
    )
    return result


if __name__ == "__main__":
    print(run_resilience().render())
    print()
    print(run_resilience_hedged().render())
    print()
    print(run_resilience_monitoring().render())
