"""Fig 15: energy and performance-per-energy, normalized to the baselines.

OLAP queries compare M2NDP against the host CPU; GPU workloads against the
host GPU and GPU-NDP(Iso-Area).  Dynamic energy comes from simulator event
counts, static energy from runtime (§IV-A energy methodology)."""

from __future__ import annotations

from repro.config import GPU_NDP_ISO_AREA_SMS
from repro.energy.model import EnergyModel
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.experiments.fig10 import _gpu_configs, _run_gpu, build_cases
from repro.workloads import olap
from repro.config import default_system
from repro.workloads.base import make_platform, scale


def run_fig15_olap(scale_name: str = "small") -> ExperimentResult:
    """Energy for TPC-H Q6 and SSB Q1.3 Evaluate (the paper's T6 / S1_3)."""
    preset = scale(scale_name)
    model = EnergyModel()
    result = ExperimentResult(
        "fig15-olap", "OLAP Evaluate energy: host CPU vs M2NDP"
    )
    for query in ("q6", "q1_3"):
        data = olap.generate(query, preset.rows)
        platform = make_platform(backend=EXPERIMENT_BACKEND)
        ndp = olap.run_ndp_evaluate(platform, data)
        base_ns = olap.baseline_evaluate_ns(data)
        bytes_moved = data.rows * data.query.bytes_per_row

        base_energy = model.host_cpu_run(
            bytes_moved=bytes_moved,
            instructions=data.rows * 4 * len(data.query.predicates),
            runtime_ns=base_ns,
        )
        ndp_energy = model.ndp_run(platform.stats, ndp.runtime_ns)
        result.add(
            query=query,
            baseline_j=base_energy.total_j,
            m2ndp_j=ndp_energy.total_j,
            energy_reduction=1.0 - ndp_energy.total_j / base_energy.total_j,
            perf_per_energy_gain=(
                ndp_energy.perf_per_energy(ndp.runtime_ns)
                / base_energy.perf_per_energy(base_ns)
            ),
        )
    result.notes = "paper: up to 87.9% (avg 83.9%) energy reduction for OLAP"
    return result


def run_fig15_gpu(scale_name: str = "small",
                  workloads: tuple[str, ...] = ("SPMV", "PGRANK", "DLRM-B4"),
                  ) -> ExperimentResult:
    """Energy for a subset of GPU workloads across three configurations."""
    model = EnergyModel()
    system = default_system()
    configs = _gpu_configs(system)
    result = ExperimentResult(
        "fig15-gpu", "GPU workload energy: baseline vs GPU-NDP(IsoArea) vs M2NDP"
    )
    for case in build_cases(scale_name):
        if case.name not in workloads:
            continue
        ndp = case.run_ndp()
        specs = case.gpu_specs()
        sweeps = ndp.instance_count
        base_ns = _run_gpu(configs["gpu_baseline"], specs * sweeps)
        iso_ns = _run_gpu(configs["gpu_ndp_iso_area"], specs * sweeps)

        instructions = sum(
            spec.warp_profile(0).instructions * spec.total_warps
            for spec in specs
        ) * sweeps
        bytes_moved = max(ndp.dram_bytes, 1.0)

        base_energy = model.host_gpu_run(bytes_moved, instructions, base_ns)
        iso_energy = model.gpu_ndp_run(bytes_moved, instructions, iso_ns,
                                       GPU_NDP_ISO_AREA_SMS)
        # fresh platform stats were consumed by run_ndp; rebuild an
        # equivalent NDP energy from the result's counters
        ndp_stats_proxy = _NDPStatsProxy(ndp)
        ndp_energy = model.ndp_run(ndp_stats_proxy, ndp.runtime_ns)

        result.add(
            workload=case.name,
            baseline_j=base_energy.total_j,
            gpu_ndp_iso_area_j=iso_energy.total_j,
            m2ndp_j=ndp_energy.total_j,
            reduction_vs_baseline=1.0 - ndp_energy.total_j / base_energy.total_j,
            reduction_vs_iso_area=1.0 - ndp_energy.total_j / iso_energy.total_j,
        )
    result.notes = (
        "paper: 78.2% avg reduction vs GPU baseline, 31.4% avg vs "
        "GPU-NDP(Iso-Area); perf/energy up to 106x (avg 32x)"
    )
    return result


class _NDPStatsProxy:
    """Adapter: exposes an NDPRunResult's counters with the StatsRegistry
    interface the energy model expects."""

    def __init__(self, run) -> None:
        self._map = {
            "ndp.instructions": float(run.instructions),
            "cxl_dram.bytes": float(run.dram_bytes),
            "ndp.spad_traffic_bytes": float(run.extras.get("spad_bytes", 0.0)),
            "cxl.down_bytes": 0.0,
            "cxl.up_bytes": 0.0,
        }

    def get(self, name: str, default: float = 0.0) -> float:
        return self._map.get(name, default)
