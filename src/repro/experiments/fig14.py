"""Fig 14: (a) comparison against domain-specific NDP PEs and
(b) M2NDP-in-switch scaling over passive CXL memories."""

from __future__ import annotations

from repro.config import CXLConfig
from repro.cxl.switch import CXLSwitch
from repro.experiments.common import EXPERIMENT_BACKEND, ExperimentResult
from repro.host.dsa import ALL_PES
from repro.workloads import dlrm, llm, olap
from repro.workloads.base import make_platform, scale

INTERNAL_BW = 409.6


def run_fig14a(scale_name: str = "small") -> ExperimentResult:
    """Each PE runs its own domain's workload; M2NDP runs all of them."""
    preset = scale(scale_name)
    result = ExperimentResult(
        "fig14a", "Domain-specific PEs vs M2NDP (performance normalized to M2NDP)"
    )

    # M2NDP measured runs + bytes, per domain.  Inputs are sized so the
    # kernels reach their bandwidth-bound steady state — the regime the
    # paper compares in ("sufficient PEs to saturate the memory BW").
    domains = {}

    olap_data = olap.generate("q6", preset.rows * 2)
    platform = make_platform(backend=EXPERIMENT_BACKEND)
    ndp = olap.run_ndp_evaluate(platform, olap_data)
    domains["olap"] = (ndp.runtime_ns, ndp.dram_bytes)

    dlrm_data = dlrm.generate(preset.dlrm_rows, batch=256, dim=128,
                              lookups=40)
    platform = make_platform(backend=EXPERIMENT_BACKEND)
    ndp = dlrm.run_ndp(platform, dlrm_data)
    domains["dlrm"] = (ndp.runtime_ns, ndp.dram_bytes)

    llm_data = llm.generate(llm.OPT_2_7B, sim_hidden=preset.llm_hidden,
                            sim_layers=preset.llm_layers)
    platform = make_platform(backend=EXPERIMENT_BACKEND)
    ndp = llm.run_ndp(platform, llm_data)
    domains["opt"] = (ndp.runtime_ns, ndp.dram_bytes)

    # ANN/KNN-style search: model as a scan of candidate vectors — reuse
    # the OLAP traffic profile (CMS evaluates KNN as a filtering scan).
    domains["knn"] = domains["olap"]
    domains["ann"] = domains["olap"]

    gaps = []
    for pe in ALL_PES:
        workload = next(w for w in pe.workloads if w in domains)
        ndp_ns, bytes_touched = domains[workload]
        pe_ns = pe.runtime_ns(int(bytes_touched), INTERNAL_BW)
        normalized = ndp_ns / pe_ns     # PE performance relative to M2NDP
        gaps.append(normalized)
        result.add(pe=pe.name, workload=workload,
                   pe_runtime_ns=pe_ns, m2ndp_runtime_ns=ndp_ns,
                   pe_perf_normalized=normalized)
    mean_gap = sum(gaps) / len(gaps) - 1.0
    result.notes = (
        f"mean PE advantage {mean_gap:+.1%} (paper: M2NDP within 6.5% of "
        "domain-specific PEs on average)"
    )
    return result


def run_fig14b(memory_counts: tuple[int, ...] = (1, 2, 4, 8),
               workload_bytes: int = 64 << 20) -> ExperimentResult:
    """M2NDP block inside a CXL switch pulling from N passive memories.

    Throughput is bounded by the aggregate downstream port bandwidth
    (64 GB/s per port), scaling with the number of memories but paying the
    switch hop; the paper reports 6.39-7.38x at 8 memories.
    """
    result = ExperimentResult(
        "fig14b", "M2NDP-in-switch speedup vs number of passive CXL memories"
    )
    cxl = CXLConfig()
    base_ns = None
    for n in memory_counts:
        switch = CXLSwitch(num_downstream=8)
        bw = switch.in_switch_ndp_bandwidth(n)
        # per-port transfers interleave; the last flit pays the hop latency
        runtime = workload_bytes / bw + 2 * (cxl.one_way_ns + 70.0)
        if base_ns is None:
            base_ns = runtime
        result.add(memories=n, agg_bw_gbps=bw, runtime_us=runtime / 1e3,
                   speedup=base_ns / runtime)
    result.notes = "paper: 6.39-7.38x speedup with 8 passive memories"
    return result
