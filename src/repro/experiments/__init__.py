"""Experiment drivers: one module per paper figure/table.

``EXPERIMENTS`` maps experiment ids to zero-argument callables returning
:class:`~repro.experiments.common.ExperimentResult`; benchmarks and the
``examples/reproduce_figure.py`` script both dispatch through it.
"""

from repro.experiments.common import PAPER_REFERENCE, ExperimentResult
from repro.experiments.fig01 import run_fig1a, run_fig1b
from repro.experiments.fig05 import run_fig5
from repro.experiments.fig06 import run_fig6a, run_fig6b
from repro.experiments.fig10 import run_fig10a, run_fig10b, run_fig10c
from repro.experiments.fig11 import run_fig11a, run_fig11b
from repro.experiments.fig12 import (
    run_fig12a,
    run_fig12b,
    static_instruction_savings,
)
from repro.experiments.fig13 import (
    run_fig13a_frequency,
    run_fig13a_ltu,
    run_fig13b,
)
from repro.experiments.fig14 import run_fig14a, run_fig14b
from repro.experiments.fig15 import run_fig15_gpu, run_fig15_olap
from repro.experiments.partitioning import (
    run_partitioning,
    run_partitioning_containment,
)
from repro.experiments.resilience import (
    run_resilience,
    run_resilience_hedged,
    run_resilience_monitoring,
)
from repro.experiments.scaling import run_policy_matrix, run_scaling
from repro.experiments.serving import run_serving, run_serving_autoscale

EXPERIMENTS = {
    "fig1a": run_fig1a,
    "fig1b": run_fig1b,
    "fig5": run_fig5,
    "fig6a": run_fig6a,
    "fig6b": run_fig6b,
    "fig10a": run_fig10a,
    "fig10b": run_fig10b,
    "fig10c": run_fig10c,
    "fig11a": run_fig11a,
    "fig11b": run_fig11b,
    "fig12a": run_fig12a,
    "fig12b": run_fig12b,
    "fig13a-freq": run_fig13a_frequency,
    "fig13a-ltu": run_fig13a_ltu,
    "fig13b": run_fig13b,
    "fig14a": run_fig14a,
    "fig14b": run_fig14b,
    "fig15-olap": run_fig15_olap,
    "fig15-gpu": run_fig15_gpu,
    "instr-savings": static_instruction_savings,
    "partitioning": run_partitioning,
    "partitioning-containment": run_partitioning_containment,
    "resilience": run_resilience,
    "resilience-hedged": run_resilience_hedged,
    "resilience-monitoring": run_resilience_monitoring,
    "scaling": run_scaling,
    "scaling-policies": run_policy_matrix,
    "serving": run_serving,
    "serving-autoscale": run_serving_autoscale,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_REFERENCE",
]
