"""Virtual memory for NDP kernels: page tables, on-chip TLBs, DRAM-TLB.

The host issues physical addresses over CXL.mem, but NDP kernels use
virtual addresses (§III-H).  Each NDP unit has small I/D TLBs; misses go to
the **DRAM-TLB** — a hashed table in device DRAM whose entry location is
computed from (ASID, VPN), so every NDP unit shares it and a miss costs one
DRAM access instead of a µs-scale ATS round trip to the host.  Entries are
16 B, i.e. 0.4 % overhead for 4 KB pages.

The :class:`PageTable` holds the actual translations (maintained by the
host driver in a real system); the DRAM-TLB caches them with a deterministic
hashed-placement model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import TranslationFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
DRAM_TLB_ENTRY_BYTES = 16
ATS_LATENCY_NS = 1_000.0  # host page-walk via PCIe ATS (§II-B)


@dataclass(frozen=True)
class Translation:
    vpn: int
    ppn: int
    writable: bool = True


class PageTable:
    """Per-ASID forward page table (vpn -> ppn).

    ``on_change`` (if given) fires whenever an *existing* translation is
    replaced or removed — the events that can invalidate addresses someone
    already translated.  Adding a fresh vpn is not a change in that sense,
    so allocations never fire it; the device uses the callback to version
    its translations for the execution trace cache.
    """

    def __init__(self, asid: int, on_change=None) -> None:
        self.asid = asid
        self._map: dict[int, Translation] = {}
        self._on_change = on_change

    def map_page(self, vpn: int, ppn: int, writable: bool = True) -> None:
        previous = self._map.get(vpn)
        self._map[vpn] = Translation(vpn=vpn, ppn=ppn, writable=writable)
        if (previous is not None
                and (previous.ppn != ppn or previous.writable != writable)
                and self._on_change is not None):
            self._on_change()

    def map_range(self, vaddr: int, paddr: int, size: int,
                  writable: bool = True) -> None:
        """Map a contiguous range (both addresses must be page aligned)."""
        if vaddr % PAGE_SIZE or paddr % PAGE_SIZE:
            raise TranslationFault(self.asid, vaddr)
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        for i in range(pages):
            self.map_page((vaddr >> PAGE_SHIFT) + i, (paddr >> PAGE_SHIFT) + i,
                          writable)

    def map_identity(self, vaddr: int, size: int) -> None:
        self.map_range(vaddr & ~(PAGE_SIZE - 1), vaddr & ~(PAGE_SIZE - 1),
                       size + (vaddr % PAGE_SIZE))

    def lookup(self, vpn: int) -> Translation:
        entry = self._map.get(vpn)
        if entry is None:
            raise TranslationFault(self.asid, vpn << PAGE_SHIFT)
        return entry

    def unmap(self, vpn: int) -> bool:
        removed = self._map.pop(vpn, None) is not None
        if removed and self._on_change is not None:
            self._on_change()
        return removed

    def __len__(self) -> int:
        return len(self._map)


class TLB:
    """Fully-associative LRU TLB keyed by (asid, vpn)."""

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._entries: OrderedDict[tuple[int, int], Translation] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, asid: int, vpn: int) -> Translation | None:
        key = (asid, vpn)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def insert(self, asid: int, translation: Translation) -> None:
        key = (asid, translation.vpn)
        self._entries[key] = translation
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def shootdown(self, asid: int, vpn: int) -> bool:
        """Invalidate one mapping (ndpShootdownTlbEntry, Table II)."""
        return self._entries.pop((asid, vpn), None) is not None

    def flush_asid(self, asid: int) -> int:
        victims = [k for k in self._entries if k[0] == asid]
        for key in victims:
            del self._entries[key]
        return len(victims)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DRAMTLB:
    """Hashed in-DRAM TLB shared by all NDP units of one device.

    ``lookup`` returns (translation, extra_dram_accesses): 1 access when the
    hashed entry holds the translation (the common, warmed-up case), or the
    entry is filled after an ATS walk (cold miss).  The caller charges the
    DRAM access / ATS latency.
    """

    def __init__(self, region_entries: int = 1 << 20) -> None:
        self.region_entries = region_entries
        self._entries: dict[int, tuple[int, int, Translation]] = {}
        self.hits = 0
        self.cold_misses = 0
        self.conflict_misses = 0

    def _slot(self, asid: int, vpn: int) -> int:
        h = (vpn * 0x9E3779B97F4A7C15 + asid * 0x2545F4914F6CDD1D)
        return (h ^ (h >> 23)) % self.region_entries

    @property
    def region_bytes(self) -> int:
        return self.region_entries * DRAM_TLB_ENTRY_BYTES

    def lookup(self, asid: int, vpn: int, page_table: PageTable) -> tuple[Translation, bool]:
        """Return (translation, was_cold_miss); fill the entry if needed."""
        slot = self._slot(asid, vpn)
        entry = self._entries.get(slot)
        if entry is not None and entry[0] == asid and entry[1] == vpn:
            self.hits += 1
            return entry[2], False
        translation = page_table.lookup(vpn)
        if entry is None:
            self.cold_misses += 1
        else:
            self.conflict_misses += 1
        self._entries[slot] = (asid, vpn, translation)
        return translation, True

    def shootdown(self, asid: int, vpn: int) -> bool:
        slot = self._slot(asid, vpn)
        entry = self._entries.get(slot)
        if entry is not None and entry[0] == asid and entry[1] == vpn:
            del self._entries[slot]
            return True
        return False

    def warm_range(self, asid: int, vaddr: int, size: int,
                   page_table: PageTable) -> int:
        """Pre-fill entries for a range (the paper assumes a warmed DRAM-TLB
        for CXL-resident data, §IV-A).  Returns entries written."""
        first = vaddr >> PAGE_SHIFT
        last = (vaddr + max(size, 1) - 1) >> PAGE_SHIFT
        count = 0
        for vpn in range(first, last + 1):
            translation = page_table.lookup(vpn)
            self._entries[self._slot(asid, vpn)] = (asid, vpn, translation)
            count += 1
        return count
