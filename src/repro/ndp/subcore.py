"""Sub-core FGMT timing model (Fig 7).

A sub-core dispatches up to 4 instructions per cycle from *different* ready
µthreads (fine-grained multithreading, no forwarding between instructions
of one thread) into its functional units: two scalar ALUs, one scalar
SFU/LSU and one 256-bit vector ALU/SFU/LSU.

Each resource is a virtual-time :class:`~repro.sim.engine.IssueServer`;
an instruction's start time is the max of the thread's readiness, a
dispatch slot and its FU's next free slot.  This gives cycle-accurate
*throughput* behaviour (the quantity FGMT cares about) without per-cycle
event overhead.
"""

from __future__ import annotations

from repro.config import NDPConfig
from repro.isa.encoding import FUnit, Instruction
from repro.sim.engine import IssueServer


class SubCore:
    """Issue timing for one NDP sub-core."""

    def __init__(self, config: NDPConfig) -> None:
        period = config.clock.period_ns
        self.period_ns = period
        self.dispatch = IssueServer(width=config.issue_width, period_ns=period)
        self.units: dict[FUnit, IssueServer] = {
            FUnit.SALU: IssueServer(config.scalar_alus_per_subcore, period),
            FUnit.SSFU: IssueServer(1, period),
            FUnit.SLSU: IssueServer(1, period),
            FUnit.VALU: IssueServer(config.vector_alus_per_subcore, period),
            FUnit.VSFU: IssueServer(1, period),
            FUnit.VLSU: IssueServer(1, period),
        }
        self.instructions_issued = 0

    def issue(self, inst: Instruction, ready_ns: float) -> tuple[float, float]:
        """Issue one instruction from a thread ready at ``ready_ns``.

        Returns ``(start_ns, exec_done_ns)``: the thread's next instruction
        may issue at ``exec_done_ns`` (in-order, no intra-thread overlap);
        for memory ops the caller adds the memory-system latency on top.

        Implemented with direct virtual-time arithmetic on the servers
        (hot path: once per simulated instruction).
        """
        dispatch = self.dispatch
        fu = self.units[inst.unit]
        start = ready_ns
        if dispatch._virtual_time > start:
            start = dispatch._virtual_time
        if fu._virtual_time > start:
            start = fu._virtual_time
        dispatch._virtual_time = start + dispatch._cost
        dispatch.ops_issued += 1
        fu._virtual_time = start + fu._cost
        fu.ops_issued += 1
        self.instructions_issued += 1
        return start, start + inst.latency_cycles * self.period_ns

    def utilization_ns(self) -> float:
        """Busy time proxy: dispatch server occupancy end."""
        return self.dispatch.busy_until
