"""µthread slot and register-file allocation.

The two physical resources that bound concurrency on a sub-core are its 16
µthread slots and its share of the unit's 48 KB register file.  Because a
µthread only claims the registers its kernel declared (§III-D), memory-bound
kernels with few registers can keep all 16 slots busy, while register-hungry
kernels are limited by RF bytes — both limits are enforced here.

``spawn_granularity`` implements the Fig 12a "w/o fine-grained" ablation:
the default (1) releases and refills slots per-µthread; a granularity of 16
mimics GPU threadblock-style allocation where a sub-core's slots are only
refilled once *all* of them drain (inter-warp divergence waste, §III-D A2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LaunchError
from repro.sim.stats import IntervalSampler


@dataclass
class SlotAllocation:
    subcore_index: int
    slot_index: int
    rf_bytes: int


class SubcoreOccupancy:
    """Slot + register file accounting for one sub-core."""

    def __init__(self, num_slots: int, rf_capacity_bytes: int,
                 spawn_granularity: int = 1) -> None:
        if spawn_granularity < 1 or spawn_granularity > num_slots:
            raise LaunchError(
                f"spawn granularity {spawn_granularity} outside [1, {num_slots}]"
            )
        self.num_slots = num_slots
        self.rf_capacity_bytes = rf_capacity_bytes
        self.spawn_granularity = spawn_granularity
        self._free_slots = list(range(num_slots))[::-1]
        self._rf_used = 0
        self._active = 0
        # coarse mode: slots freed by finished µthreads are quarantined until
        # the whole group drains
        self._quarantined: list[int] = []

    @property
    def active(self) -> int:
        return self._active

    @property
    def rf_free_bytes(self) -> int:
        return self.rf_capacity_bytes - self._rf_used

    def can_allocate(self, rf_bytes: int) -> bool:
        return bool(self._free_slots) and self._rf_used + rf_bytes <= self.rf_capacity_bytes

    def allocate(self, rf_bytes: int) -> int:
        """Claim one slot; returns its index."""
        if not self.can_allocate(rf_bytes):
            raise LaunchError("sub-core has no free slot / register space")
        slot = self._free_slots.pop()
        self._rf_used += rf_bytes
        self._active += 1
        return slot

    def release(self, slot: int, rf_bytes: int) -> None:
        self._rf_used -= rf_bytes
        self._active -= 1
        if self._rf_used < 0 or self._active < 0:
            raise LaunchError("occupancy release underflow")
        if self.spawn_granularity == 1:
            self._free_slots.append(slot)
            return
        # coarse-grained: hold the slot until the whole group finishes
        self._quarantined.append(slot)
        if self._active == 0:
            self._free_slots.extend(self._quarantined)
            self._quarantined.clear()


class UnitOccupancy:
    """Occupancy across the sub-cores of one NDP unit, with Fig 6a sampling."""

    def __init__(self, num_subcores: int, slots_per_subcore: int,
                 rf_bytes_per_subcore: int, spawn_granularity: int = 1) -> None:
        self.subcores = [
            SubcoreOccupancy(slots_per_subcore, rf_bytes_per_subcore,
                             spawn_granularity)
            for _ in range(num_subcores)
        ]
        self.total_slots = num_subcores * slots_per_subcore
        self.sampler = IntervalSampler()
        self._rr_cursor = 0

    @property
    def active(self) -> int:
        return sum(sc.active for sc in self.subcores)

    def active_ratio(self) -> float:
        return self.active / self.total_slots

    def sample(self, now_ns: float) -> None:
        self.sampler.record(now_ns, self.active_ratio())

    def try_allocate(self, rf_bytes: int) -> SlotAllocation | None:
        """Round-robin a free slot across sub-cores; None when full."""
        n = len(self.subcores)
        for step in range(n):
            idx = (self._rr_cursor + step) % n
            subcore = self.subcores[idx]
            if subcore.can_allocate(rf_bytes):
                slot = subcore.allocate(rf_bytes)
                self._rr_cursor = (idx + 1) % n
                return SlotAllocation(subcore_index=idx, slot_index=slot,
                                      rf_bytes=rf_bytes)
        return None

    def release(self, allocation: SlotAllocation) -> None:
        self.subcores[allocation.subcore_index].release(
            allocation.slot_index, allocation.rf_bytes
        )
