"""M2NDP device: NDP units, µthreads, controller, virtual memory."""

from repro.ndp.controller import (
    CONTROLLER_LATENCY_NS,
    ERR_BAD_ARGS,
    ERR_GENERIC,
    ERR_QUEUE_FULL,
    ERR_UNKNOWN_KERNEL,
    NDPController,
)
from repro.ndp.device import M2NDPDevice
from repro.ndp.generator import ARG_SLOT_BYTES, KernelExecution
from repro.ndp.kernel import (
    DEFAULT_UTHREAD_STRIDE,
    KernelDescriptor,
    KernelInstance,
    KernelStatus,
)
from repro.ndp.occupancy import SlotAllocation, SubcoreOccupancy, UnitOccupancy
from repro.ndp.subcore import SubCore
from repro.ndp.tlb import DRAMTLB, PAGE_SIZE, PageTable, TLB, Translation
from repro.ndp.unit import NDPUnit, UnitMemory
from repro.ndp.uthread import Phase, UThread

__all__ = [
    "ARG_SLOT_BYTES",
    "CONTROLLER_LATENCY_NS",
    "DEFAULT_UTHREAD_STRIDE",
    "DRAMTLB",
    "ERR_BAD_ARGS",
    "ERR_GENERIC",
    "ERR_QUEUE_FULL",
    "ERR_UNKNOWN_KERNEL",
    "KernelDescriptor",
    "KernelExecution",
    "KernelInstance",
    "KernelStatus",
    "M2NDPDevice",
    "NDPController",
    "NDPUnit",
    "PAGE_SIZE",
    "PageTable",
    "Phase",
    "SlotAllocation",
    "SubCore",
    "SubcoreOccupancy",
    "TLB",
    "Translation",
    "UThread",
    "UnitMemory",
    "UnitOccupancy",
]
