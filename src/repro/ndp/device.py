"""CXL-M2NDP device: the memory expander with NDP capability (Fig 3).

Owns the physical memory (HDM), the banked LPDDR5 DRAM model, the
memory-side L2, the CXL link + packet filter, the NDP controller and the 32
NDP units.  Kernel launches are *executed* by a pluggable backend from
:mod:`repro.exec` (selected via ``NDPConfig.backend`` or the ``backend``
constructor argument): the per-instruction interpreter or the batched
trace-replay fast path.  The device itself only provides the shared
memory-system services and the host-facing CXL.mem entry points.
"""

from __future__ import annotations

import struct
from dataclasses import replace as _dc_replace
from functools import partial

import numpy as np

from repro.config import SystemConfig
from repro.cxl.hdm import HDMCoherence
from repro.cxl.link import CXLLink
from repro.cxl.packet_filter import PacketFilter
from repro.cxl.protocol import CXLPacket, PacketType
from repro.errors import LaunchError, ProtocolError
from repro.exec.base import make_backend
from repro.isa.assembler import KernelProgram
from repro.mem.dram import DRAMModel
from repro.mem.cache import SectorCache
from repro.mem.physical import PhysicalMemory
from repro.mem.scratchpad import _apply_amo
from repro.ndp.controller import NDPController, ReadResponse
from repro.ndp.generator import KernelExecution
from repro.ndp.tlb import DRAM_TLB_ENTRY_BYTES, DRAMTLB, PageTable
from repro.ndp.unit import NDPUnit
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

#: Device-internal fixed overhead on the CXL request path (port + filter).
DEVICE_PORT_NS = 10.0

_AMO_INT = {4: struct.Struct("<i"), 8: struct.Struct("<q")}
_AMO_FLT = {4: struct.Struct("<f"), 8: struct.Struct("<d")}


class DevicePartition:
    """One hardware partition's private timing models on one device.

    Each partition owns its *own* memory-side L2 (sized to its set share)
    and its *own* banked DRAM model (its channel share), so a launch bound
    to one partition cannot evict another partition's cache lines or queue
    behind its DRAM accesses — timing isolation by construction rather
    than by masking inside shared structures.  The functional byte store
    stays device-wide: partitions are a bandwidth/capacity carve-up, not
    an address-space split.
    """

    def __init__(self, share, dram: DRAMModel, l2: SectorCache) -> None:
        self.share = share
        self.dram = dram
        self.l2 = l2
        self.name = share.name
        self.index = share.index
        self.unit_base = share.unit_base
        self.num_units = share.num_units


class M2NDPDevice:
    """A CXL memory expander with M2NDP (controller + NDP units)."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig | None = None,
        stats: StatsRegistry | None = None,
        spawn_granularity: int = 1,
        dirty_fraction: float = 0.0,
        queue_capacity: int = 4096,
        backend: str | None = None,
        physical: PhysicalMemory | None = None,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else SystemConfig()
        self.stats = stats if stats is not None else StatsRegistry()

        # ``physical`` may be shared between devices: a multi-expander
        # cluster keeps one functional byte store for the whole logical
        # address space while every device retains its own *timing* models
        # (DRAM banks, L2, link) — see repro.cluster.runtime.
        self.physical = (physical if physical is not None
                         else PhysicalMemory(self.config.cxl_dram.capacity_bytes))
        self.dram = DRAMModel(self.config.cxl_dram, self.stats, "cxl_dram")
        self.l2 = SectorCache(self.config.l2, self.stats, "l2",
                              write_allocate=True, write_back=True)
        self.link = CXLLink(self.config.cxl, self.stats, "cxl")
        self.packet_filter = PacketFilter()
        self.coherence = HDMCoherence(self.link, dirty_fraction, self.stats)
        self.dram_tlb = DRAMTLB()
        self._page_tables: dict[int, PageTable] = {}
        #: bumped whenever any page table replaces or removes a live
        #: translation; the execution trace cache keys validity on it
        self.translation_version = 0
        self.code_registry: dict[int, KernelProgram] = {}
        #: Chrome-trace process id; single-device platforms default to 1
        #: (pid 0 is the host), ClusterRuntime renumbers to 1 + index.
        self.trace_pid = 1
        self.controller = NDPController(self, queue_capacity=queue_capacity)
        self.units = [
            NDPUnit(i, self.config.ndp, self, self.stats, spawn_granularity)
            for i in range(self.config.ndp.num_units)
        ]
        self.backend = make_backend(
            backend if backend is not None else self.config.ndp.backend, self
        )
        #: Hardware partitions (repro.cluster.partitions).  ``None`` — the
        #: default — leaves the device monolithic and byte-identical to
        #: pre-partitioning behavior.
        self.partitions: list[DevicePartition] | None = None
        self.partition_map = None
        # DRAM-TLB region lives at the top of device memory.
        self._dram_tlb_base = (
            self.config.cxl_dram.capacity_bytes - self.dram_tlb.region_bytes
        )

    # ------------------------------------------------------------------
    # hardware partitioning
    # ------------------------------------------------------------------

    def configure_partitions(self, pmap) -> None:
        """Carve the device into the partitions of a resolved
        :class:`~repro.cluster.partitions.PartitionMap`.

        Must be called before traffic: each partition gets private L2 and
        DRAM timing models sized to its share, and the partition's NDP
        units are tagged so their whole memory path charges those models.
        """
        if pmap is None:
            return
        parts: list[DevicePartition] = []
        l2_cfg, dram_cfg = self.config.l2, self.config.cxl_dram
        for share in pmap:
            part = DevicePartition(
                share,
                DRAMModel(
                    _dc_replace(dram_cfg, channels=share.channels),
                    self.stats, f"cxl_dram.{share.name}",
                ),
                SectorCache(
                    _dc_replace(
                        l2_cfg,
                        size_bytes=share.l2_sets * l2_cfg.ways
                        * l2_cfg.line_bytes,
                    ),
                    self.stats, f"l2.{share.name}",
                    write_allocate=True, write_back=True,
                ),
            )
            parts.append(part)
            for u in share.units:
                self.units[u].partition = part
        self.partitions = parts
        self.partition_map = pmap

    def partition_by_index(self, index: int) -> DevicePartition | None:
        if self.partitions is None or not 0 <= index < len(self.partitions):
            return None
        return self.partitions[index]

    # ------------------------------------------------------------------
    # memory-system services shared by the units
    # ------------------------------------------------------------------

    def page_table(self, asid: int) -> PageTable:
        table = self._page_tables.get(asid)
        if table is None:
            table = self._page_tables[asid] = PageTable(
                asid, on_change=self._bump_translation_version
            )
        return table

    def _bump_translation_version(self) -> None:
        self.translation_version += 1

    def install_code(self, code_loc: int, program: KernelProgram) -> None:
        """Place kernel code in HDM (we keep the decoded form alongside)."""
        self.code_registry[code_loc] = program

    def global_amo(self, op: str, paddr: int, operand, size: int,
                   is_float: bool):
        """Functional atomic read-modify-write on HDM (done at the L2)."""
        packer = (_AMO_FLT if is_float else _AMO_INT)[size]
        old = packer.unpack(self.physical.read_bytes(paddr, size))[0]
        new = _apply_amo(op, old, operand)
        if not is_float:
            bits = 8 * size
            new &= (1 << bits) - 1
            new -= (1 << bits) if new >= (1 << (bits - 1)) else 0
        self.physical.write_bytes(paddr, packer.pack(new))
        self.stats.add("ndp.global_atomics")
        return old

    def l2_dram_access(self, paddr: int, size: int, now_ns: float,
                       is_write: bool, allocate: bool = True,
                       partition: DevicePartition | None = None) -> float:
        """Timed access through the memory-side L2 into DRAM.

        Reads of lines the host may hold dirty first pay an HDM-DB
        back-invalidation round trip (Fig 13b); the BI blocks only the
        requesting µthread, so FGMT hides most of it.  ``partition``
        routes the access through that partition's private L2/DRAM slice
        instead of the device-wide models (host packet traffic and
        unpartitioned devices stay on the shared path).
        """
        l2 = self.l2 if partition is None else partition.l2
        dram = self.dram if partition is None else partition.dram
        if not is_write and self.coherence.dirty_fraction > 0.0:
            now_ns = self.coherence.access(paddr, size, now_ns)
        result = l2.access(paddr, size, is_write)
        done = now_ns + self.config.l2.hit_latency_ns
        for wb_addr, wb_size in result.writebacks:
            dram.access(wb_addr, wb_size, done, is_write=True)
        completion = done
        for sector_addr, sector_size in result.missing_sectors:
            completion = max(
                completion,
                dram.access(sector_addr, sector_size, done, is_write),
            )
        return completion

    def l2_dram_access_batch(self, sector_addrs, arrivals_ns, is_write,
                             partition: DevicePartition | None = None
                             ) -> float:
        """Bulk counterpart of :meth:`l2_dram_access` for a sector stream.

        One vectorized pass charges HDM back-invalidation (reads of
        host-dirty lines), the memory-side L2 and the banked DRAM for a
        whole launch's sector-unique address stream — O(stream) numpy work
        instead of one Python round trip per sector.  Returns the latest
        completion among hits and fills (evicted-line writebacks are
        charged but, as in the scalar path, never block the launch).
        """
        l2 = self.l2 if partition is None else partition.l2
        dram = self.dram if partition is None else partition.dram
        sector_bytes = self.config.l2.sector_bytes
        arrivals = np.asarray(arrivals_ns, dtype=np.float64)
        if not sector_addrs.size:
            return self.sim.now
        if self.coherence.dirty_fraction > 0.0:
            reads = ~np.asarray(is_write, dtype=bool)
            if reads.any():
                arrivals = arrivals.copy()
                arrivals[reads] = self.coherence.access_batch(
                    sector_addrs[reads], sector_bytes, arrivals[reads]
                )
        result = l2.access_batch(sector_addrs, is_write)
        done = arrivals + self.config.l2.hit_latency_ns
        completion = float(done.max())
        n_wb = result.wb_idx.size
        if result.fill_idx.size or n_wb:
            # interleave eviction writebacks just before the fill of the
            # access that evicted them, as the scalar loop does
            keys = np.concatenate([result.wb_idx * 2,
                                   result.fill_idx * 2 + 1])
            addrs = np.concatenate([result.wb_addrs,
                                    sector_addrs[result.fill_idx]])
            times = np.concatenate([done[result.wb_idx],
                                    done[result.fill_idx]])
            writes = np.concatenate([
                np.ones(n_wb, dtype=bool),
                np.asarray(is_write, dtype=bool)[result.fill_idx],
            ])
            order = np.argsort(keys, kind="stable")
            finishes = dram.access_batch(
                addrs[order], sector_bytes, times[order], writes[order]
            )
            fills = (keys[order] & 1) == 1
            if fills.any():
                completion = max(completion, float(finishes[fills].max()))
        return completion

    def dram_tlb_timed_fetch(self, asid: int, vpn: int, now_ns: float) -> float:
        """One 16 B DRAM access at the hashed DRAM-TLB slot (§III-H)."""
        slot = self.dram_tlb._slot(asid, vpn)
        addr = self._dram_tlb_base + slot * DRAM_TLB_ENTRY_BYTES
        return self.dram.access(addr, DRAM_TLB_ENTRY_BYTES, now_ns,
                                is_write=False)

    # ------------------------------------------------------------------
    # host-facing CXL.mem entry points
    # ------------------------------------------------------------------

    def host_write(self, now_ns: float, addr: int, data: bytes) -> float:
        """A host CXL.mem write arrives; returns the host-visible ack time."""
        packet = CXLPacket(PacketType.MEM_WR, addr, len(data), data=data)
        arrival = self.link.send_to_device(now_ns, packet)
        entry = self.packet_filter.match(addr)
        if entry is not None:
            self.controller.handle_write(entry, addr, data,
                                         arrival + DEVICE_PORT_NS)
        else:
            self.physical.write_bytes(addr, data)
            self.l2_dram_access(addr, len(data), arrival + DEVICE_PORT_NS,
                                is_write=True)
        ack = CXLPacket(PacketType.MEM_WR_ACK, addr, 0)
        return self.link.send_to_host(arrival + DEVICE_PORT_NS, ack)

    def host_read(self, now_ns: float, addr: int, size: int,
                  callback) -> None:
        """A host CXL.mem read; ``callback(data, host_time)`` fires when the
        response reaches the host (possibly deferred for sync launches)."""
        packet = CXLPacket(PacketType.MEM_RD, addr, size)
        arrival = self.link.send_to_device(now_ns, packet)
        entry = self.packet_filter.match(addr)
        if entry is not None:
            response = self.controller.handle_read(entry, addr, size,
                                                   arrival + DEVICE_PORT_NS)
            if response.ready_ns is None:
                self._defer_read(response, addr, size, callback)
            else:
                self._respond(response.data, response.ready_ns, addr, callback)
            return
        data = self.physical.read_bytes(addr, size)
        ready = self.l2_dram_access(addr, size, arrival + DEVICE_PORT_NS,
                                    is_write=False)
        self._respond(data, ready, addr, callback)

    def _defer_read(self, response: ReadResponse, addr: int, size: int,
                    callback) -> None:
        def on_complete(when_ns: float) -> None:
            data = self.physical.read_bytes(addr, size)
            self._respond(data, when_ns + DEVICE_PORT_NS, addr, callback)

        if response.waiting_instance is None:
            raise ProtocolError(
                "deferred read response carries no waiting instance"
            )
        self.controller.add_completion_waiter(response.waiting_instance,
                                              on_complete)

    def _respond(self, data: bytes, ready_ns: float, addr: int,
                 callback) -> None:
        packet = CXLPacket(PacketType.MEM_RD_RESP, addr, len(data), data=data)
        at_host = self.link.send_to_host(max(ready_ns, self.sim.now), packet)
        self.sim.schedule_at(at_host, partial(callback, data, at_host))

    # ------------------------------------------------------------------
    # µthread execution (delegated to the pluggable backend)
    # ------------------------------------------------------------------

    @property
    def active_executions(self) -> list[KernelExecution]:
        return self.backend.active_executions

    def register_execution(self, execution: KernelExecution,
                           now_ns: float) -> None:
        self.backend.register_execution(execution, now_ns)

    def unregister_execution(self, execution: KernelExecution) -> None:
        self.backend.unregister_execution(execution)

    # ------------------------------------------------------------------
    # introspection helpers for experiments
    # ------------------------------------------------------------------

    def dram_utilization(self, elapsed_ns: float) -> float:
        return self.dram.utilization(elapsed_ns)

    def total_active_ratio_series(self, start_ns: float, end_ns: float,
                                  steps: int = 50) -> list[tuple[float, float]]:
        """Device-wide Fig 6a series: mean of per-unit active ratios."""
        per_unit = [
            unit.occupancy.sampler.series(start_ns, end_ns, steps)
            for unit in self.units
        ]
        out: list[tuple[float, float]] = []
        for i in range(steps):
            t = per_unit[0][i][0]
            out.append((t, sum(series[i][1] for series in per_unit) / len(per_unit)))
        return out
