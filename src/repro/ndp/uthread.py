"""The µthread: a lightweight hardware-managed thread (§III-D).

Besides registers and a PC, a µthread knows its kernel instance, which
sub-core slot it occupies, and its spawn-time identity: ``x1`` = the pool
address it is mapped to, ``x2`` = the offset from the pool base (or a plain
ID for initializer/finalizer threads).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.assembler import Program
from repro.isa.registers import UThreadRegisters
from repro.ndp.kernel import KernelInstance
from repro.ndp.occupancy import SlotAllocation


class Phase(enum.Enum):
    """Which kernel section a µthread executes (§III-G)."""

    INITIALIZER = "initializer"
    BODY = "body"
    FINALIZER = "finalizer"


@dataclass
class UThread:
    """One executing µthread."""

    instance: KernelInstance
    program: Program
    phase: Phase
    unit_index: int
    allocation: SlotAllocation
    mapped_addr: int
    offset: int
    args_vaddr: int = 0
    regs: UThreadRegisters = field(default_factory=UThreadRegisters)
    pc: int = 0
    ready_ns: float = 0.0
    instructions_executed: int = 0
    body_index: int = 0

    def __post_init__(self) -> None:
        # Spawn-time ABI (§III-E): mapped address in x1, offset in x2, and
        # the instance's scratchpad argument block in x3 (§III-G).
        self.regs.write_x(1, self.mapped_addr)
        self.regs.write_x(2, self.offset)
        self.regs.write_x(3, self.args_vaddr)

    @property
    def finished(self) -> bool:
        return self.pc >= len(self.program.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<µthread k{self.instance.instance_id} {self.phase.value} "
            f"u{self.unit_index} sc{self.allocation.subcore_index}"
            f"s{self.allocation.slot_index} pc={self.pc}>"
        )
