"""The NDP controller: M2func decoding and kernel lifecycle management.

Implemented "similarly to the microcontrollers in GPUs" (§III-B), the
controller receives CXL.mem writes that the packet filter matched against a
process's M2func region, decodes the function from the address offset
(Table II), executes it, and stores the return value at the call address so
a subsequent CXL.mem *read* of the same address retrieves it.

Synchronous launches defer that read's response until the kernel instance
completes; asynchronous launches respond immediately and are later polled
with ``ndpPollKernelStatus``.

Call encodings (all fields little-endian u64 in the write payload):

====================  ======================================================
offset 0              ndpRegisterKernel(codeLoc, spadBytes, nInt, nFloat, nVec)
offset 1<<5           ndpUnregisterKernel(kernelID)
offset 2<<5           ndpLaunchKernel(sync, kernelID, poolBase, poolBound,
                      stride, argBytes, args...)
offset 3<<5           ndpPollKernelStatus(instanceID)
offset 4<<5           ndpShootdownTlbEntry(asid, vpn)   [privileged]
====================  ======================================================
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.cxl.packet_filter import FilterEntry
from repro.errors import ProtocolError
from repro.ndp.generator import KernelExecution
from repro.ndp.kernel import KernelDescriptor, KernelInstance, KernelStatus

#: Function offsets (Table II), strided by 32 B.
FUNC_STRIDE_SHIFT = 5
FUNC_REGISTER = 0
FUNC_UNREGISTER = 1
FUNC_LAUNCH = 2
FUNC_POLL = 3
FUNC_SHOOTDOWN = 4

#: Launch doorbell slots: offsets [8, 8+64) alias ndpLaunchKernel.  The
#: M2func return value is stored *at the call address*, so a process with
#: many launches in flight (open-loop serving, cluster fan-out) must issue
#: them at distinct addresses or concurrent calls clobber each other's
#: return values before the paired read arrives.  A 64-entry doorbell
#: array inside the 64 KB region gives every in-flight launch its own
#: address; register/poll/etc. stay blocking and keep their Table II slots.
FUNC_LAUNCH_SLOT_BASE = 8
FUNC_LAUNCH_SLOTS = 64


def decode_func(offset: int) -> int:
    """Map an M2func region offset to its logical function."""
    func = offset >> FUNC_STRIDE_SHIFT
    if FUNC_LAUNCH_SLOT_BASE <= func < FUNC_LAUNCH_SLOT_BASE + FUNC_LAUNCH_SLOTS:
        return FUNC_LAUNCH
    return func

#: ndpLaunchKernel first-word flags.  The paper's API carries only ``sync``;
#: the offset-bias bit is this repo's multi-expander extension (§III-I
#: software partitioning turned into a protocol field, see repro.cluster)
#: and the partition bit binds the launch to one hardware partition (one
#: extra u64 — the partition index — follows the offset bias when both
#: flags are set; see repro.cluster.partitions).
LAUNCH_FLAG_SYNC = 1 << 0
LAUNCH_FLAG_OFFSET_BIAS = 1 << 1
LAUNCH_FLAG_PARTITION = 1 << 2

#: Error codes (Table II: ERR is a negative value).
ERR_GENERIC = -1
ERR_UNKNOWN_KERNEL = -2
ERR_QUEUE_FULL = -3
ERR_BAD_ARGS = -4

#: Controller processing latency per M2func call (GPU-microcontroller-like).
CONTROLLER_LATENCY_NS = 10.0

_U64 = struct.Struct("<q")


def _pack_i64(value: int) -> bytes:
    return _U64.pack(value)


def _read_u64s(data: bytes, count: int) -> list[int]:
    if len(data) < count * 8:
        raise ProtocolError(
            f"M2func payload too short: need {count * 8} bytes, got {len(data)}"
        )
    return [struct.unpack_from("<Q", data, i * 8)[0] for i in range(count)]


@dataclass
class ReadResponse:
    """Outcome of an M2func-region read."""

    data: bytes
    ready_ns: float | None      # None => deferred until the kernel finishes
    waiting_instance: int | None = None


@dataclass
class _ProcessState:
    """Per-ASID M2func bookkeeping."""

    last_launched: int | None = None    # latest instance id per Table II note


class NDPController:
    """Decodes M2func calls and manages kernels on one M2NDP device."""

    def __init__(self, device, queue_capacity: int = 4096) -> None:
        self.device = device
        self.queue_capacity = queue_capacity
        self.kernels: dict[int, KernelDescriptor] = {}
        self.instances: dict[int, KernelInstance] = {}
        self.active: dict[int, KernelExecution] = {}
        self.queue: deque[KernelInstance] = deque()
        # Per-partition concurrency: on a partitioned device every
        # partition runs its own launch queue with its own
        # max_concurrent_kernels budget, so a saturated (or killed)
        # partition can never head-of-line-block another's launches.
        self._part_active: dict[int, int] = {}
        self._part_queues: dict[int, deque[KernelInstance]] = {}
        self._next_kernel_id = 1
        self._next_instance_id = 1
        self._process_state: dict[int, _ProcessState] = {}
        self._completion_waiters: dict[int, list[Callable[[float], None]]] = {}

    # ------------------------------------------------------------------
    # M2func entry points (called by the device's packet path)
    # ------------------------------------------------------------------

    def handle_write(self, entry: FilterEntry, addr: int, data: bytes,
                     now_ns: float) -> float:
        """Process an M2func call; returns the controller-done timestamp."""
        done = now_ns + CONTROLLER_LATENCY_NS
        func = decode_func(addr - entry.base)
        if func == FUNC_REGISTER:
            result = self._register(data)
        elif func == FUNC_UNREGISTER:
            result = self._unregister(data)
        elif func == FUNC_LAUNCH:
            result = self._launch(entry.asid, data, done)
        elif func == FUNC_POLL:
            result = self._poll(data)
        elif func == FUNC_SHOOTDOWN:
            result = self._shootdown(data)
        else:
            result = ERR_GENERIC
        # Store the return value at the call address: a subsequent normal
        # read of that address observes it (§III-B).
        self.device.physical.write_bytes(addr, _pack_i64(result))
        self.device.stats.add("m2func.calls")
        return done

    def handle_read(self, entry: FilterEntry, addr: int, size: int,
                    now_ns: float) -> ReadResponse:
        """Serve a read in the M2func region (fetch a return value)."""
        func = decode_func(addr - entry.base)
        data = self.device.physical.read_bytes(addr, size)
        if func == FUNC_LAUNCH and len(data) >= 8:
            # The bytes at the call address hold the launched instance's ID
            # (stored by handle_write); a *synchronous* launch defers this
            # read's response until that instance finishes (§III-B).
            (instance_id,) = struct.unpack_from("<q", data)
            instance = self.instances.get(instance_id)
            if (instance is not None and instance.synchronous
                    and instance.status is not KernelStatus.FINISHED):
                return ReadResponse(data=data, ready_ns=None,
                                    waiting_instance=instance.instance_id)
        return ReadResponse(data=data, ready_ns=now_ns + CONTROLLER_LATENCY_NS)

    def add_completion_waiter(self, instance_id: int,
                              callback: Callable[[float], None]) -> None:
        instance = self.instances.get(instance_id)
        if instance is not None and instance.status is KernelStatus.FINISHED:
            callback(instance.complete_ns or 0.0)
            return
        self._completion_waiters.setdefault(instance_id, []).append(callback)

    # ------------------------------------------------------------------
    # Table II functions
    # ------------------------------------------------------------------

    def _register(self, data: bytes) -> int:
        try:
            code_loc, spad_bytes, n_int, n_float, n_vec = _read_u64s(data, 5)
        except ProtocolError:
            return ERR_BAD_ARGS
        program = self.device.code_registry.get(code_loc)
        if program is None:
            return ERR_BAD_ARGS
        usage = program.usage
        if (n_int < usage.int_regs or n_float < usage.float_regs
                or n_vec < usage.vector_regs):
            return ERR_BAD_ARGS
        kernel_id = self._next_kernel_id
        self._next_kernel_id += 1
        self.kernels[kernel_id] = KernelDescriptor(
            kernel_id=kernel_id,
            program=program,
            scratchpad_bytes=spad_bytes,
            usage=usage,
            name=program.name,
        )
        return kernel_id

    def _unregister(self, data: bytes) -> int:
        try:
            (kernel_id,) = _read_u64s(data, 1)
        except ProtocolError:
            return ERR_BAD_ARGS
        if kernel_id not in self.kernels:
            return ERR_UNKNOWN_KERNEL
        del self.kernels[kernel_id]
        # Instruction caches are flushed on unregister to avoid stale code
        # (§III-F); we track the event for the record.
        self.device.stats.add("ndp.icache_flushes")
        return 0

    def _launch(self, asid: int, data: bytes, now_ns: float) -> int:
        try:
            flags, kernel_id, base, bound, stride, arg_bytes = _read_u64s(data, 6)
        except ProtocolError:
            return ERR_BAD_ARGS
        # Bit 0 of the first word is the Table II ``sync`` flag.  Bit 1 is
        # the cluster sub-launch extension: one extra u64 (the µthread
        # offset bias) follows the 6-word header before the argument bytes.
        # Bit 2 appends one more u64: the hardware partition index.
        offset_bias = 0
        args_at = 48
        if flags & LAUNCH_FLAG_OFFSET_BIAS:
            try:
                (offset_bias,) = _read_u64s(data[48:], 1)
            except ProtocolError:
                return ERR_BAD_ARGS
            args_at = 56
        partition: int | None = None
        if flags & LAUNCH_FLAG_PARTITION:
            try:
                (partition,) = _read_u64s(data[args_at:], 1)
            except ProtocolError:
                return ERR_BAD_ARGS
            args_at += 8
        partitions = self.device.partitions
        if partitions is not None:
            # Every launch on a partitioned device belongs to exactly one
            # partition; untagged launches land in the default (first).
            if partition is None:
                partition = 0
            elif not 0 <= partition < len(partitions):
                return ERR_BAD_ARGS
        elif partition is not None:
            return ERR_BAD_ARGS     # partition tag on a monolithic device
        kernel = self.kernels.get(kernel_id)
        if kernel is None:
            return ERR_UNKNOWN_KERNEL
        args = data[args_at:args_at + arg_bytes]
        if len(args) < arg_bytes:
            return ERR_BAD_ARGS
        queue = (self.queue if partition is None
                 else self._part_queues.setdefault(partition, deque()))
        if len(queue) >= self.queue_capacity:
            return ERR_QUEUE_FULL
        instance = KernelInstance(
            instance_id=self._next_instance_id,
            kernel=kernel,
            pool_base=base,
            pool_bound=bound,
            args=args,
            synchronous=bool(flags & LAUNCH_FLAG_SYNC),
            asid=asid,
            uthread_stride=stride or 32,
            offset_bias=offset_bias,
            partition=partition,
            launch_ns=now_ns,
        )
        self._next_instance_id += 1
        self.instances[instance.instance_id] = instance
        state = self._process_state.setdefault(asid, _ProcessState())
        state.last_launched = instance.instance_id
        max_active = self.device.config.ndp.max_concurrent_kernels
        running = (len(self.active) if partition is None
                   else self._part_active.get(partition, 0))
        if running < max_active:
            self._start_instance(instance, now_ns)
        else:
            queue.append(instance)
        return instance.instance_id

    def _poll(self, data: bytes) -> int:
        try:
            (instance_id,) = _read_u64s(data, 1)
        except ProtocolError:
            return ERR_BAD_ARGS
        instance = self.instances.get(instance_id)
        if instance is None:
            return ERR_GENERIC
        return instance.status.value

    def _shootdown(self, data: bytes) -> int:
        try:
            asid, vpn = _read_u64s(data, 2)
        except ProtocolError:
            return ERR_BAD_ARGS
        hit = self.device.dram_tlb.shootdown(asid, vpn)
        for unit in self.device.units:
            hit = unit.dtlb.shootdown(asid, vpn) or hit
            hit = unit.itlb.shootdown(asid, vpn) or hit
        return 0 if hit else 0  # idempotent success either way

    # ------------------------------------------------------------------
    # kernel lifecycle
    # ------------------------------------------------------------------

    def _start_instance(self, instance: KernelInstance, now_ns: float) -> None:
        ndp = self.device.config.ndp
        part = (None if instance.partition is None
                else self.device.partitions[instance.partition])
        execution = KernelExecution(
            instance=instance,
            num_units=ndp.num_units if part is None else part.num_units,
            slots_per_unit=ndp.subcores_per_unit * ndp.uthread_slots_per_subcore,
            vector_bytes=ndp.vector_bytes,
            scratchpad_bytes=ndp.scratchpad_bytes,
            max_concurrent_kernels=ndp.max_concurrent_kernels,
            on_complete=self._on_kernel_complete,
            unit_base=0 if part is None else part.unit_base,
            partition=part,
        )
        self.active[instance.instance_id] = execution
        if instance.partition is not None:
            self._part_active[instance.partition] = (
                self._part_active.get(instance.partition, 0) + 1
            )
        # Kernel arguments are placed in each unit's scratchpad (§III-G);
        # a partition-bound launch only touches *its* units' scratchpads.
        if instance.args:
            units = (self.device.units if part is None else
                     self.device.units[part.unit_base:
                                       part.unit_base + part.num_units])
            for unit in units:
                unit.scratchpad.write(execution.args_vaddr, instance.args)
        execution.start(now_ns)
        self.device.register_execution(execution, now_ns)

    def _on_kernel_complete(self, execution: KernelExecution,
                            now_ns: float) -> None:
        instance = execution.instance
        self.active.pop(instance.instance_id, None)
        self.device.unregister_execution(execution)
        self.device.stats.add("ndp.kernels_completed")
        if instance.partition is not None:
            part = self.device.partitions[instance.partition]
            self._part_active[instance.partition] -= 1
            self.device.stats.add(f"partition.{part.name}.kernels_completed")
        for callback in self._completion_waiters.pop(instance.instance_id, []):
            callback(now_ns)
        max_active = self.device.config.ndp.max_concurrent_kernels
        if instance.partition is None:
            if self.queue and len(self.active) < max_active:
                self._start_instance(self.queue.popleft(), now_ns)
            return
        queue = self._part_queues.get(instance.partition)
        if queue and self._part_active.get(instance.partition, 0) < max_active:
            self._start_instance(queue.popleft(), now_ns)
