"""NDP kernel descriptors and launch instances (Table II state).

A *registered kernel* (:class:`KernelDescriptor`) is code plus resource
requirements: scratchpad bytes and per-µthread register counts, exactly the
arguments of ``ndpRegisterKernel``.  A *kernel instance*
(:class:`KernelInstance`) is one launch: a µthread pool region, argument
bytes, synchronicity, and a lifecycle status that ``ndpPollKernelStatus``
reports (0 finished / 1 running / 2 pending).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LaunchError
from repro.isa.assembler import KernelProgram
from repro.isa.registers import RegisterUsage

#: µthreads are mapped to pool-region slices of the DRAM access granularity
#: (32 B for LPDDR5), §III-D advantage A4.
DEFAULT_UTHREAD_STRIDE = 32

#: Kernel arguments are copied into each NDP unit's scratchpad at this
#: offset when the kernel launches (§III-G).
ARGS_SPAD_OFFSET = 0


class KernelStatus(enum.Enum):
    """Return values of ndpPollKernelStatus (Table II)."""

    FINISHED = 0
    RUNNING = 1
    PENDING = 2


@dataclass
class KernelDescriptor:
    """A kernel registered with the NDP controller."""

    kernel_id: int
    program: KernelProgram
    scratchpad_bytes: int
    usage: RegisterUsage
    name: str = ""

    @classmethod
    def from_program(
        cls,
        kernel_id: int,
        program: KernelProgram,
        scratchpad_bytes: int = 0,
        usage: RegisterUsage | None = None,
    ) -> "KernelDescriptor":
        """Build a descriptor, deriving register usage from the code when the
        caller (compiler) does not specify it."""
        derived = program.usage
        if usage is not None:
            if (usage.int_regs < derived.int_regs
                    or usage.float_regs < derived.float_regs
                    or usage.vector_regs < derived.vector_regs):
                raise LaunchError(
                    f"declared registers {usage} below code requirements {derived}"
                )
            derived = usage
        return cls(
            kernel_id=kernel_id,
            program=program,
            scratchpad_bytes=scratchpad_bytes,
            usage=derived,
            name=program.name,
        )

    def rf_bytes_per_uthread(self, vector_bytes: int) -> int:
        return self.usage.bytes_required(vector_bytes)


@dataclass
class KernelInstance:
    """One launched kernel: pool region, args, and lifecycle."""

    instance_id: int
    kernel: KernelDescriptor
    pool_base: int
    pool_bound: int
    args: bytes = b""
    synchronous: bool = False
    asid: int = 0
    uthread_stride: int = DEFAULT_UTHREAD_STRIDE
    #: Added to every body µthread's ``x2`` offset.  A plain launch leaves
    #: this at 0 (x2 is the offset from ``pool_base``); a cluster sub-launch
    #: covering [pool_base, pool_bound) of a larger logical pool passes the
    #: sub-range's offset within that pool so kernels indexing companion
    #: arrays with x2 (e.g. VectorAdd's B/C) stay correct when split.
    offset_bias: int = 0
    #: Hardware partition index this launch is bound to (``None`` on an
    #: unpartitioned device).  Set from the ``LAUNCH_FLAG_PARTITION``
    #: extension word; on a partitioned device untagged launches land in
    #: the default (first) partition.
    partition: int | None = None
    status: KernelStatus = KernelStatus.PENDING
    launch_ns: float = 0.0
    start_ns: float | None = None
    complete_ns: float | None = None
    # progress accounting filled by the µthread generator
    uthreads_total: int = 0
    uthreads_done: int = 0
    instructions: int = 0

    def __post_init__(self) -> None:
        if self.pool_bound < self.pool_base:
            raise LaunchError(
                f"pool region bound {self.pool_bound:#x} below base "
                f"{self.pool_base:#x}"
            )
        if self.uthread_stride <= 0:
            raise LaunchError(f"bad µthread stride {self.uthread_stride}")

    @property
    def num_body_uthreads(self) -> int:
        """µthreads per kernel body: one per stride-sized pool slice."""
        span = self.pool_bound - self.pool_base
        return (span + self.uthread_stride - 1) // self.uthread_stride

    @property
    def runtime_ns(self) -> float:
        if self.start_ns is None or self.complete_ns is None:
            raise LaunchError(f"kernel instance {self.instance_id} not finished")
        return self.complete_ns - self.start_ns

    @property
    def total_latency_ns(self) -> float:
        """Launch-to-completion, including queueing delay."""
        if self.complete_ns is None:
            raise LaunchError(f"kernel instance {self.instance_id} not finished")
        return self.complete_ns - self.launch_ns
