"""µthread generation: phases, pool-region mapping, unit interleaving.

A :class:`KernelExecution` drives one kernel instance through its phases
(§III-G): the *initializer* spawns one µthread per µthread slot (x1 = NDP
unit index, x2 = slot-local ID), each *body* spawns one µthread per
stride-sized slice of the pool region (x1 = mapped address, x2 = offset,
§III-E), with a barrier between bodies, and the *finalizer* mirrors the
initializer.  Body µthreads are interleaved across NDP units at the memory
access granularity to load-balance fine-grained kernels (§III-E).

Kernel arguments are copied into every unit's scratchpad when the instance
starts; µthreads receive the argument block's scratchpad address in ``x3``
(the hardware analogue: the µthread generator initializes a third register
with the kernel's scratchpad argument base).

Cursors are arithmetic, not materialized lists, so launching a kernel with
hundreds of thousands of µthreads costs O(units) memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ExecutionError
from repro.isa.assembler import Program
from repro.mem.scratchpad import SCRATCHPAD_VBASE
from repro.ndp.kernel import KernelInstance, KernelStatus
from repro.ndp.uthread import Phase

#: Scratchpad bytes reserved per concurrent kernel instance for arguments.
ARG_SLOT_BYTES = 64

#: µthread creation cost ("can be done quickly as in GPUs", §III-D).
SPAWN_LATENCY_NS = 1.0


@dataclass
class ThreadDescriptor:
    """What the generator needs to spawn one µthread."""

    program: Program
    phase: Phase
    unit_index: int
    mapped_addr: int
    offset: int
    body_index: int = 0


class _PhasePlan:
    """Arithmetic per-unit cursors over the µthreads of one phase."""

    def __init__(self, phase: Phase, program: Program, body_index: int,
                 num_units: int, slots_per_unit: int,
                 instance: KernelInstance) -> None:
        self.phase = phase
        self.program = program
        self.body_index = body_index
        self._instance = instance
        self._num_units = num_units
        self._slots_per_unit = slots_per_unit
        if phase is Phase.BODY:
            self.total = instance.num_body_uthreads
        else:
            self.total = num_units * slots_per_unit
        # next thread ordinal to spawn, per unit
        self._next_ordinal = [0] * num_units

    def _unit_thread_count(self, unit: int) -> int:
        """Total µthreads this phase assigns to ``unit``."""
        if self.phase is Phase.BODY:
            # global indices unit, unit + U, unit + 2U, ...
            if unit >= self.total:
                full = 0
            else:
                full = (self.total - unit - 1) // self._num_units + 1
            return full
        return self._slots_per_unit if self.total else 0

    def has_pending(self, unit: int) -> bool:
        return self._next_ordinal[unit] < self._unit_thread_count(unit)

    def pending_any(self) -> bool:
        return any(
            self.has_pending(u) for u in range(self._num_units)
        )

    def take(self, unit: int) -> ThreadDescriptor:
        ordinal = self._next_ordinal[unit]
        self._next_ordinal[unit] += 1
        if self.phase is Phase.BODY:
            global_index = ordinal * self._num_units + unit
            stride = self._instance.uthread_stride
            mapped = self._instance.pool_base + global_index * stride
            offset = self._instance.offset_bias + global_index * stride
        else:
            mapped = unit               # x1 = NDP unit index
            offset = ordinal            # x2 = slot-local unique ID
        return ThreadDescriptor(
            program=self.program,
            phase=self.phase,
            unit_index=unit,
            mapped_addr=mapped,
            offset=offset,
            body_index=self.body_index,
        )


class KernelExecution:
    """Orchestrates one kernel instance across the device's NDP units."""

    def __init__(
        self,
        instance: KernelInstance,
        num_units: int,
        slots_per_unit: int,
        vector_bytes: int,
        scratchpad_bytes: int,
        max_concurrent_kernels: int,
        on_complete: Callable[["KernelExecution", float], None],
        unit_base: int = 0,
        partition=None,
    ) -> None:
        self.instance = instance
        self.num_units = num_units
        self.slots_per_unit = slots_per_unit
        #: First *device* unit this execution may run on.  A launch bound
        #: to a hardware partition sees a contiguous window of
        #: ``num_units`` units starting here and behaves exactly like a
        #: launch on a smaller device: plan-local unit indices (what x1
        #: and the interleave math use) run 0..num_units-1 while the
        #: spawn/fill machinery addresses physical units by global index.
        self.unit_base = unit_base
        #: The resolved DevicePartition (or None), for backends that
        #: charge the memory system directly.
        self.partition = partition
        self.on_complete = on_complete
        self.rf_bytes = instance.kernel.rf_bytes_per_uthread(vector_bytes)
        self.outstanding = 0
        self._completed = False

        arg_slot = instance.instance_id % max_concurrent_kernels
        #: scratchpad vaddr of this instance's argument block (goes to x3)
        self.args_vaddr = (
            SCRATCHPAD_VBASE + scratchpad_bytes - (arg_slot + 1) * ARG_SLOT_BYTES
        )

        program = instance.kernel.program
        self._phases: list[tuple[Phase, Program, int]] = []
        if program.initializer is not None:
            self._phases.append((Phase.INITIALIZER, program.initializer, 0))
        for body_index, body in enumerate(program.bodies):
            self._phases.append((Phase.BODY, body, body_index))
        if program.finalizer is not None:
            self._phases.append((Phase.FINALIZER, program.finalizer, 0))
        self._phase_idx = -1
        self._plan: _PhasePlan | None = None

    # ------------------------------------------------------------------

    def start(self, now_ns: float) -> None:
        self.instance.status = KernelStatus.RUNNING
        self.instance.start_ns = now_ns
        self._advance_phase()
        total = sum(
            _PhasePlan(p, prog, bi, self.num_units, self.slots_per_unit,
                       self.instance).total
            for p, prog, bi in self._phases
        )
        self.instance.uthreads_total = total

    def _advance_phase(self) -> bool:
        """Move to the next phase; returns False when the kernel is done."""
        self._phase_idx += 1
        if self._phase_idx >= len(self._phases):
            self._plan = None
            return False
        phase, program, body_index = self._phases[self._phase_idx]
        self._plan = _PhasePlan(
            phase, program, body_index, self.num_units, self.slots_per_unit,
            self.instance,
        )
        return True

    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._completed

    def has_pending_for_unit(self, unit: int) -> bool:
        """``unit`` is a *global* device unit index."""
        local = unit - self.unit_base
        if not 0 <= local < self.num_units:
            return False
        return self._plan is not None and self._plan.has_pending(local)

    def take_for_unit(self, unit: int) -> ThreadDescriptor:
        if self._plan is None:
            raise ExecutionError(
                f"unit {unit} asked for a uthread before the launch "
                "plan was built"
            )
        descriptor = self._plan.take(unit - self.unit_base)
        # The plan thinks in partition-local units (x1 / interleave math);
        # the descriptor must name the physical unit that runs the thread.
        descriptor.unit_index = unit
        return descriptor

    def consume_plan(self) -> None:
        """Drop every pending µthread without completing the execution.

        Called by backends that execute the whole launch out of band (the
        batched fast path): once ownership is taken, the per-µthread fill
        machinery must see nothing pending, or a concurrent interpreter
        refill would execute the launch a second time.
        """
        self._phase_idx = len(self._phases)
        self._plan = None

    def finish_now(self, now_ns: float) -> None:
        """Mark the whole execution complete in one step.

        Used by analytic backends (``repro.exec.batched``) that execute the
        launch outside the per-µthread spawn/drain machinery; mirrors the
        final transition of :meth:`on_thread_done`.
        """
        self.consume_plan()
        self.outstanding = 0
        if not self._completed:
            self._completed = True
            self.instance.status = KernelStatus.FINISHED
            self.instance.complete_ns = now_ns
            self.on_complete(self, now_ns)

    def on_thread_done(self, now_ns: float) -> bool:
        """Account a finished µthread.  Returns True when a *phase barrier*
        was crossed (caller must refill all units) and kernel completion is
        signalled through ``on_complete``."""
        self.outstanding -= 1
        self.instance.uthreads_done += 1
        if self.outstanding > 0:
            return False
        if self._plan is not None and self._plan.pending_any():
            return False
        # phase drained
        if self._advance_phase():
            return True
        if not self._completed:
            self._completed = True
            self.instance.status = KernelStatus.FINISHED
            self.instance.complete_ns = now_ns
            self.on_complete(self, now_ns)
        return False
