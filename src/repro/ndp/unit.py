"""The NDP unit: sub-cores, scratchpad, L1D, TLBs and its memory path.

An NDP unit (Fig 7) owns four sub-cores, a 128 KB scratchpad/L1D, and
I/D TLBs.  It provides two views of memory:

* :class:`UnitMemory` — the *functional* interface handed to the ISA
  executor: routes scratchpad-window addresses to the unit's scratchpad and
  everything else through the page table to the device's physical memory.

* :meth:`NDPUnit.timed_access` — the *timing* path: scratchpad latency, TLB
  / DRAM-TLB translation cost, write-through L1, the memory-side L2 and the
  banked DRAM model, plus HDM back-invalidation when the host holds a dirty
  copy.  Stores are posted (non-blocking past L1) but still charge L2/DRAM
  bandwidth; loads block their µthread until data returns — other µthreads
  keep issuing, which is how FGMT hides the latency.
"""

from __future__ import annotations

from repro.config import NDPConfig
from repro.errors import MemoryError_
from repro.isa.executor import MemAccess
from repro.mem.cache import SectorCache
from repro.mem.scratchpad import Scratchpad
from repro.ndp.occupancy import UnitOccupancy
from repro.ndp.subcore import SubCore
from repro.ndp.tlb import ATS_LATENCY_NS, PAGE_SHIFT, TLB
from repro.sim.stats import StatsRegistry

#: On-chip crossbar hop between an NDP unit and the memory-side L2 (§III-E).
CROSSBAR_NS = 2.0

#: Extra cycle for the L2's atomic ALU on global atomics.
ATOMIC_OP_NS = 0.5


class UnitMemory:
    """Functional memory view for µthreads of one kernel on one unit."""

    def __init__(self, unit: "NDPUnit", asid: int) -> None:
        self.unit = unit
        self.asid = asid
        device = unit.device
        self._physical = device.physical
        self._page_table = device.page_table(asid)
        self._spad = unit.scratchpad

    def _translate(self, vaddr: int) -> int:
        translation = self._page_table.lookup(vaddr >> PAGE_SHIFT)
        return (translation.ppn << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1))

    def load(self, vaddr: int, size: int) -> bytes:
        if self._spad.contains(vaddr):
            return self._spad.read(vaddr, size)
        return self._physical.read_bytes(self._translate(vaddr), size)

    def store(self, vaddr: int, data: bytes) -> None:
        if self._spad.contains(vaddr):
            self._spad.write(vaddr, data)
        else:
            self._physical.write_bytes(self._translate(vaddr), data)

    def amo(self, op: str, vaddr: int, operand, size: int, is_float: bool):
        if self._spad.contains(vaddr):
            return self._spad.amo(op, vaddr, operand, size, is_float)
        return self.unit.device.global_amo(
            op, self._translate(vaddr), operand, size, is_float
        )


class NDPUnit:
    """One of the device's 32 NDP units."""

    def __init__(
        self,
        index: int,
        config: NDPConfig,
        device,
        stats: StatsRegistry,
        spawn_granularity: int = 1,
    ) -> None:
        self.index = index
        self.config = config
        self.device = device
        self.stats = stats
        self.subcores = [SubCore(config) for _ in range(config.subcores_per_unit)]
        self.occupancy = UnitOccupancy(
            num_subcores=config.subcores_per_unit,
            slots_per_subcore=config.uthread_slots_per_subcore,
            rf_bytes_per_subcore=config.regfile_bytes_per_subcore,
            spawn_granularity=spawn_granularity,
        )
        self.scratchpad = Scratchpad(
            config.scratchpad_bytes,
            latency_ns=config.l1d.hit_latency_ns,
            stats=stats,
            stats_prefix=f"unit{index}.spad",
        )
        self.l1d = SectorCache(
            config.l1d,
            stats=stats,
            stats_prefix=f"unit{index}.l1d",
            write_allocate=False,   # GPU-style write-through L1 (§III-F)
            write_back=False,
        )
        self.dtlb = TLB(config.dtlb_entries)
        self.itlb = TLB(config.itlb_entries)
        #: The hardware partition this unit belongs to (``None`` on an
        #: unpartitioned device); set by ``device.configure_partitions``.
        #: Routes every global access through the partition's private
        #: L2/DRAM slice.
        self.partition = None
        self._memories: dict[int, UnitMemory] = {}
        # hot-path constants (avoid property/object churn per access)
        self._period_ns = config.clock.period_ns
        self._l1_hit_ns = config.l1d.hit_latency_ns
        self._spad_base = self.scratchpad.base_vaddr
        self._spad_end = self.scratchpad.base_vaddr + config.scratchpad_bytes
        self._spad_latency = self.scratchpad.latency_ns

    # ------------------------------------------------------------------

    def memory_for(self, asid: int) -> UnitMemory:
        memory = self._memories.get(asid)
        if memory is None:
            memory = self._memories[asid] = UnitMemory(self, asid)
        return memory

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------

    def _translate_timed(self, vaddr: int, asid: int, now_ns: float) -> tuple[int, float]:
        """Translate with TLB/DRAM-TLB timing; returns (paddr, ready_ns)."""
        vpn = vaddr >> PAGE_SHIFT
        entry = self.dtlb.lookup(asid, vpn)
        ready = now_ns
        if entry is None:
            device = self.device
            translation, dram_access = device.dram_tlb.lookup(
                asid, vpn, device.page_table(asid)
            )
            if dram_access:
                ready = device.dram_tlb_timed_fetch(asid, vpn, ready)
            self.dtlb.insert(asid, translation)
            entry = translation
            self.stats.add("ndp.tlb_fill")
        paddr = (entry.ppn << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1))
        return paddr, ready

    def timed_access(self, access: MemAccess, issue_ns: float, asid: int) -> float:
        """Charge the full memory-system latency of one access."""
        if self._spad_base <= access.vaddr < self._spad_end:
            self.stats.add("ndp.spad_traffic_bytes", access.size)
            return issue_ns + self._spad_latency

        paddr, ready = self._translate_timed(access.vaddr, asid, issue_ns)
        self.stats.add("ndp.global_traffic_bytes", access.size)
        self.stats.add("ndp.global_accesses")

        if access.is_amo:
            # Global atomics execute at the memory-side L2 (§III-E/F).
            return self.device.l2_dram_access(
                paddr, access.size, ready + CROSSBAR_NS, is_write=True,
                allocate=True, partition=self.partition,
            ) + ATOMIC_OP_NS

        l1_result = self.l1d.access(paddr, access.size, access.is_write)
        l1_done = ready + self._l1_hit_ns
        if access.is_write:
            # Write-through, posted: charge L2/DRAM bandwidth in the
            # background, let the µthread continue after L1 accepts it.
            for sector_addr, sector_size in l1_result.missing_sectors:
                self.device.l2_dram_access(
                    sector_addr, sector_size, l1_done + CROSSBAR_NS,
                    is_write=True, allocate=True, partition=self.partition,
                )
            return l1_done

        if l1_result.full_hit:
            return l1_done
        completion = l1_done
        for sector_addr, sector_size in l1_result.missing_sectors:
            done = self.device.l2_dram_access(
                sector_addr, sector_size, l1_done + CROSSBAR_NS,
                is_write=False, allocate=True, partition=self.partition,
            )
            completion = max(completion, done + CROSSBAR_NS)
        return completion

    def timed_accesses(self, accesses: tuple[MemAccess, ...], issue_ns: float,
                       asid: int) -> float:
        """A µthread's memory instruction completes when all its element
        accesses complete (vector gathers issue one per element)."""
        if len(accesses) == 1:
            return self.timed_access(accesses[0], issue_ns, asid)
        completion = issue_ns
        element_issue = issue_ns
        for access in accesses:
            # the VLSU issues element accesses back to back
            done = self.timed_access(access, element_issue, asid)
            if done > completion:
                completion = done
            element_issue += self._period_ns
        return completion

    # ------------------------------------------------------------------

    def reset_caches(self) -> None:
        self.l1d.invalidate_all()
