"""System configuration presets mirroring Table IV of the paper.

Every experiment builds a :class:`SystemConfig` (or one of its named
variants) and hands it to the models.  All sizes are bytes, all times are
nanoseconds, all frequencies GHz, all bandwidths bytes/ns (== GB/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


# ---------------------------------------------------------------------------
# DRAM
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DRAMTiming:
    """DRAM timing parameters, in device clocks (converted via ``tck_ns``)."""

    tck_ns: float
    t_rc: int
    t_rcd: int
    t_cl: int
    t_rp: int

    def __post_init__(self) -> None:
        if self.tck_ns <= 0:
            raise ConfigError("tCK must be positive")
        if min(self.t_rc, self.t_rcd, self.t_cl, self.t_rp) <= 0:
            raise ConfigError("DRAM timing parameters must be positive")
        if self.t_rc < self.t_rcd + self.t_rp:
            raise ConfigError("tRC must cover tRCD + tRP")

    @property
    def row_hit_ns(self) -> float:
        """CAS-to-data latency for an open-row access."""
        return self.t_cl * self.tck_ns

    @property
    def row_miss_ns(self) -> float:
        """Activate + CAS latency for a closed bank."""
        return (self.t_rcd + self.t_cl) * self.tck_ns

    @property
    def row_conflict_extra_ns(self) -> float:
        """Additional precharge latency when the wrong row is open."""
        return self.t_rp * self.tck_ns

    @property
    def t_rc_ns(self) -> float:
        return self.t_rc * self.tck_ns


@dataclass(frozen=True)
class DRAMConfig:
    """One DRAM subsystem (a set of channels behind memory controllers)."""

    name: str
    channels: int
    banks_per_channel: int
    timing: DRAMTiming
    access_granularity: int       # bytes moved by one column access
    channel_bw_bytes_per_ns: float
    capacity_bytes: int
    row_bytes: int = 2 * KIB      # row-buffer coverage per channel

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigError("channel/bank counts must be positive")
        if self.access_granularity <= 0 or self.row_bytes < self.access_granularity:
            raise ConfigError("bad access granularity / row size")

    @property
    def total_bw_bytes_per_ns(self) -> float:
        return self.channels * self.channel_bw_bytes_per_ns


def lpddr5_cxl_dram() -> DRAMConfig:
    """32-channel LPDDR5, 409.6 GB/s, 256 GB (CXL expander internals)."""
    return DRAMConfig(
        name="LPDDR5-CXL",
        channels=32,
        banks_per_channel=16,
        timing=DRAMTiming(tck_ns=0.625, t_rc=48, t_rcd=15, t_cl=20, t_rp=15),
        access_granularity=32,
        channel_bw_bytes_per_ns=12.8,
        capacity_bytes=256 * GIB,
    )


def ddr5_host_dram() -> DRAMConfig:
    """8-channel DDR5-6400, 409.6 GB/s (host CPU local memory)."""
    return DRAMConfig(
        name="DDR5-host",
        channels=8,
        banks_per_channel=32,
        timing=DRAMTiming(tck_ns=0.3125, t_rc=149, t_rcd=46, t_cl=46, t_rp=46),
        access_granularity=64,
        channel_bw_bytes_per_ns=51.2,
        capacity_bytes=512 * GIB,
    )


def hbm2_gpu_dram() -> DRAMConfig:
    """32-channel HBM2, ~1 TB/s (host GPU local memory)."""
    return DRAMConfig(
        name="HBM2-GPU",
        channels=32,
        banks_per_channel=16,
        timing=DRAMTiming(tck_ns=1.0, t_rc=48, t_rcd=14, t_cl=14, t_rp=15),
        access_granularity=32,
        channel_bw_bytes_per_ns=32.0,
        capacity_bytes=24 * GIB,
    )


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheConfig:
    name: str
    size_bytes: int
    ways: int
    line_bytes: int
    sector_bytes: int
    hit_latency_ns: float

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(f"{self.name}: size not divisible by ways*line")
        if self.line_bytes % self.sector_bytes != 0:
            raise ConfigError(f"{self.name}: line must be a multiple of sector")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


def memory_side_l2_config() -> CacheConfig:
    """4 MB memory-side L2 (128 KB per LPDDR5 channel), Table IV."""
    return CacheConfig(
        name="cxl-l2",
        size_bytes=4 * MIB,
        ways=16,
        line_bytes=128,
        sector_bytes=32,
        hit_latency_ns=3.5,       # 7 cycles @ 2 GHz
    )


def ndp_l1d_config() -> CacheConfig:
    """128 KB configurable scratchpad / L1D per NDP unit."""
    return CacheConfig(
        name="ndp-l1d",
        size_bytes=128 * KIB,
        ways=16,
        line_bytes=128,
        sector_bytes=32,
        hit_latency_ns=2.0,       # 4 cycles @ 2 GHz
    )


# ---------------------------------------------------------------------------
# CXL link
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CXLConfig:
    """CXL 3.0 x8 link with configurable load-to-use latency profile."""

    bw_per_dir_bytes_per_ns: float = 64.0
    flit_bytes: int = 256
    load_to_use_ns: float = 150.0
    # Fixed component of LtU that is *not* the link round trip: host cache
    # miss path + device-side controller + DRAM access.  Derived so that the
    # default profile decomposes as  LtU = fixed + 2 * one_way.
    port_to_port_round_trip_ns: float = 70.0

    def __post_init__(self) -> None:
        if self.load_to_use_ns <= self.port_to_port_round_trip_ns:
            raise ConfigError("LtU must exceed the port-to-port round trip")

    @property
    def one_way_ns(self) -> float:
        """One direction through TL/LL/PHY and wires (≈35 ns, Fig 2)."""
        return self.port_to_port_round_trip_ns / 2.0

    @property
    def fixed_overhead_ns(self) -> float:
        """Host + device processing outside the link itself."""
        return self.load_to_use_ns - self.port_to_port_round_trip_ns

    def with_load_to_use(self, ltu_ns: float) -> "CXLConfig":
        """Scale the link portion so total LtU becomes ``ltu_ns`` (Fig 13a).

        The paper's 2xLtU/4xLtU points stretch the interconnect path; the
        fixed DRAM/host portion stays constant, the round trip absorbs the
        difference.
        """
        round_trip = ltu_ns - self.fixed_overhead_ns
        if round_trip <= 0:
            raise ConfigError(f"LtU {ltu_ns} below fixed overhead")
        return replace(
            self, load_to_use_ns=ltu_ns, port_to_port_round_trip_ns=round_trip
        )


# Offload mechanism latencies (one-shot overheads, §IV-A).
CXLIO_DIRECT_MMIO_OVERHEAD_NS = 1_500.0
CXLIO_RING_BUFFER_OVERHEAD_NS = 4_000.0


# ---------------------------------------------------------------------------
# NDP (M2NDP device)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NDPConfig:
    """M2NDP configuration (Table IV, bottom block)."""

    num_units: int = 32
    subcores_per_unit: int = 4
    uthread_slots_per_subcore: int = 16
    issue_width: int = 4
    freq_ghz: float = 2.0
    regfile_bytes_per_unit: int = 48 * KIB
    scratchpad_bytes: int = 128 * KIB
    max_concurrent_kernels: int = 48
    vector_bits: int = 256
    scalar_alus_per_subcore: int = 2
    vector_alus_per_subcore: int = 1
    itlb_entries: int = 256
    dtlb_entries: int = 256
    l1d: CacheConfig = field(default_factory=ndp_l1d_config)
    #: µthread execution backend: "interpreter" (bit-exact per-instruction
    #: reference path) or "batched" (trace-once/replay-many fast path with
    #: automatic per-launch fallback; see repro.exec).
    backend: str = "interpreter"

    def __post_init__(self) -> None:
        if self.num_units <= 0 or self.subcores_per_unit <= 0:
            raise ConfigError("NDP unit/sub-core counts must be positive")
        if self.vector_bits % 64 != 0:
            raise ConfigError("vector width must be a multiple of 64 bits")
        from repro.exec.base import backend_names  # lazy: avoids a cycle

        if self.backend not in backend_names():
            raise ConfigError(
                f"unknown execution backend {self.backend!r}; "
                f"choose from {backend_names()}"
            )

    @property
    def vector_bytes(self) -> int:
        return self.vector_bits // 8

    @property
    def regfile_bytes_per_subcore(self) -> int:
        return self.regfile_bytes_per_unit // self.subcores_per_unit

    @property
    def total_uthread_slots(self) -> int:
        return (
            self.num_units
            * self.subcores_per_unit
            * self.uthread_slots_per_subcore
        )

    @property
    def clock(self):
        from repro.sim.clock import Clock

        return Clock.from_ghz(self.freq_ghz)


# ---------------------------------------------------------------------------
# Multi-expander cluster (§III-I / Fig 12b, see repro.cluster)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClusterConfig:
    """N CXL-M2NDP expanders behind one switch, software-partitioned.

    ``placement`` is the default data placement for cluster allocations
    (per-allocation overrides allowed); ``shard_bytes`` the interleave /
    block granularity (0 = auto-sized per allocation); ``scheduler`` the
    fan-out policy splitting logical launches into per-device sub-launches.
    """

    num_devices: int = 2
    placement: str = "interleaved"
    shard_bytes: int = 0
    scheduler: str = "locality"
    #: Hardware partition spec applied to every device ("rt:1,batch:3"),
    #: or None for monolithic devices; see repro.cluster.partitions.
    partitions: str | None = None
    #: Root seed for every per-stream random generator (traffic arrivals,
    #: tenant data) so cluster traffic and serving runs are reproducible
    #: bit-for-bit across processes; see repro.serve.arrivals.stream_rng.
    seed: int = 0xC0FFEE

    def __post_init__(self) -> None:
        # Lazy imports: placement/scheduler live above config in the
        # package graph only at runtime (they import repro.errors alone).
        from repro.cluster.placement import PLACEMENTS
        from repro.cluster.scheduler import validate_scheduler_name

        if self.num_devices <= 0:
            raise ConfigError("cluster needs at least one device")
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {self.placement!r}; "
                f"choose from {list(PLACEMENTS)}"
            )
        validate_scheduler_name(self.scheduler,
                                source="ClusterConfig.scheduler")
        if self.partitions is not None:
            from repro.cluster.partitions import parse_partition_spec
            parse_partition_spec(self.partitions,
                                 source="ClusterConfig.partitions")
        if self.shard_bytes < 0:
            raise ConfigError("shard_bytes must be >= 0 (0 = auto)")
        if self.seed < 0:
            raise ConfigError("cluster seed must be >= 0")


# ---------------------------------------------------------------------------
# Host GPU
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GPUConfig:
    """Host GPU (≈ RTX 3090) or GPU-NDP (SMs inside the CXL device)."""

    num_sms: int = 82
    freq_ghz: float = 1.695
    warp_size: int = 32
    max_threads_per_sm: int = 1536
    max_threadblocks_per_sm: int = 32
    regfile_bytes_per_sm: int = 256 * KIB
    shared_mem_bytes_per_sm: int = 128 * KIB
    issue_width: int = 4
    l2_bytes: int = 6 * MIB

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def clock(self):
        from repro.sim.clock import Clock

        return Clock.from_ghz(self.freq_ghz)


def gpu_ndp_config(num_sms: float, freq_ghz: float = 2.0) -> GPUConfig:
    """GPU-NDP variants (§IV-A): SMs placed inside the CXL device.

    Fractional SM counts (the paper's 16.2-SM Iso-Area point) are realized by
    rounding down and scaling frequency to preserve aggregate throughput.
    """
    whole = int(num_sms)
    if whole <= 0:
        raise ConfigError("need at least one SM")
    eff_freq = freq_ghz * (num_sms / whole)
    return GPUConfig(num_sms=whole, freq_ghz=eff_freq)


# GPU-NDP named variants: SM counts per §IV-A.
GPU_NDP_ISO_FLOPS_SMS = 8
GPU_NDP_4X_FLOPS_SMS = 32
GPU_NDP_16X_FLOPS_SMS = 128
GPU_NDP_ISO_AREA_SMS = 16.2


# ---------------------------------------------------------------------------
# Host CPU
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CPUConfig:
    """Host CPU (64 OoO cores @ 3.2 GHz) or CPU-NDP (32 cores in-device)."""

    num_cores: int = 64
    freq_ghz: float = 3.2
    mlp_per_core: int = 10          # outstanding misses an OoO core sustains
    l1_bytes: int = 64 * KIB
    l2_bytes: int = 1 * MIB
    l3_bytes: int = 96 * MIB
    l1_latency_ns: float = 1.25     # 4 cycles
    l2_latency_ns: float = 3.75     # 12 cycles
    l3_latency_ns: float = 23.1     # 74 cycles
    issue_width: int = 4

    @property
    def clock(self):
        from repro.sim.clock import Clock

        return Clock.from_ghz(self.freq_ghz)


def cpu_ndp_config() -> CPUConfig:
    """CPU-NDP: 32 high-end cores placed inside the CXL memory (§IV-A)."""
    return CPUConfig(num_cores=32, freq_ghz=2.3, mlp_per_core=10)


# ---------------------------------------------------------------------------
# Whole-system bundle
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SystemConfig:
    """Everything an experiment needs: host, link, device."""

    cxl: CXLConfig = field(default_factory=CXLConfig)
    ndp: NDPConfig = field(default_factory=NDPConfig)
    gpu: GPUConfig = field(default_factory=GPUConfig)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    cxl_dram: DRAMConfig = field(default_factory=lpddr5_cxl_dram)
    host_dram: DRAMConfig = field(default_factory=ddr5_host_dram)
    gpu_dram: DRAMConfig = field(default_factory=hbm2_gpu_dram)
    l2: CacheConfig = field(default_factory=memory_side_l2_config)

    def with_ltu(self, ltu_ns: float) -> "SystemConfig":
        return replace(self, cxl=self.cxl.with_load_to_use(ltu_ns))

    def with_ndp_freq(self, freq_ghz: float) -> "SystemConfig":
        return replace(self, ndp=replace(self.ndp, freq_ghz=freq_ghz))


def default_system() -> SystemConfig:
    """The paper's default configuration (boldface column of Table IV)."""
    return SystemConfig()
