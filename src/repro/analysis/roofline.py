"""Roofline analysis (Fig 1a): local memory vs CXL memory.

Performance of a kernel with operational intensity I (ops/byte) on a
machine with peak compute P (ops/s) and memory bandwidth B (bytes/s) is
``min(P, I * B)``.  Fig 1a plots the evaluated workloads against the local
(1024 GB/s) and CXL (128 GB/s over two x8 links) rooflines, showing up to
9.9x (avg 6.3x) loss from CXL placement for memory-bound points.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fig 1a bandwidths, bytes/ns.
LOCAL_BW = 1024.0
CXL_BW = 128.0

#: Host GPU peak throughput (ops/s ~ FP32 FLOPS of the RTX-3090-class part).
PEAK_OPS_PER_NS = 35_600.0   # 35.6 TFLOPs


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position on the roofline.

    ``local_eff`` / ``cxl_eff`` are the fractions of peak bandwidth the
    kernel actually sustains on each memory (irregular kernels are partly
    latency-bound locally; streaming kernels saturate the narrow CXL link
    fully).  These efficiencies are what spread the paper's slowdowns
    across 3.5x-9.9x instead of a uniform bandwidth ratio.
    """

    name: str
    ops_per_byte: float
    local_eff: float = 1.0
    cxl_eff: float = 1.0

    def performance(self, bw_bytes_per_ns: float, efficiency: float = 1.0,
                    peak_ops_per_ns: float = PEAK_OPS_PER_NS) -> float:
        return min(peak_ops_per_ns,
                   self.ops_per_byte * bw_bytes_per_ns * efficiency)

    def slowdown_on_cxl(self, local_bw: float = LOCAL_BW,
                        cxl_bw: float = CXL_BW) -> float:
        """How much slower the workload runs with data in CXL memory."""
        return (self.performance(local_bw, self.local_eff)
                / self.performance(cxl_bw, self.cxl_eff))


#: The six Fig 1a workloads: operational intensity (ops per byte of
#: traffic) plus measured bandwidth efficiencies on each memory.
FIG1A_WORKLOADS: tuple[RooflinePoint, ...] = (
    RooflinePoint("HISTO4096", 0.5, local_eff=0.95, cxl_eff=0.97),
    RooflinePoint("SPMV", 0.25, local_eff=0.90, cxl_eff=0.73),
    RooflinePoint("PGRANK", 0.3, local_eff=0.72, cxl_eff=0.80),
    RooflinePoint("SSSP", 0.35, local_eff=0.65, cxl_eff=0.95),
    RooflinePoint("DLRM(B32)", 0.25, local_eff=0.55, cxl_eff=1.00),
    RooflinePoint("OPT-30B", 0.5, local_eff=0.93, cxl_eff=0.98),
)


def fig1a_table() -> list[dict]:
    """Rows of Fig 1a: per-workload performance on both rooflines."""
    rows = []
    for point in FIG1A_WORKLOADS:
        rows.append({
            "workload": point.name,
            "ops_per_byte": point.ops_per_byte,
            "local_ops_per_ns": point.performance(LOCAL_BW),
            "cxl_ops_per_ns": point.performance(CXL_BW),
            "slowdown": point.slowdown_on_cxl(),
        })
    return rows


def max_slowdown() -> float:
    return max(p.slowdown_on_cxl() for p in FIG1A_WORKLOADS)


def mean_slowdown() -> float:
    values = [p.slowdown_on_cxl() for p in FIG1A_WORKLOADS]
    return sum(values) / len(values)
