"""Result-table helpers shared by experiments and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.stats import geometric_mean


@dataclass
class SpeedupRow:
    """One workload's speedups across configurations."""

    workload: str
    baseline_ns: float
    config_ns: dict[str, float] = field(default_factory=dict)

    def speedup(self, config: str) -> float:
        return self.baseline_ns / self.config_ns[config]

    def speedups(self) -> dict[str, float]:
        return {name: self.speedup(name) for name in self.config_ns}


@dataclass
class SpeedupTable:
    """A figure's worth of speedup rows with GMEAN summary."""

    title: str
    rows: list[SpeedupRow] = field(default_factory=list)

    def add(self, row: SpeedupRow) -> None:
        self.rows.append(row)

    def configs(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for name in row.config_ns:
                if name not in names:
                    names.append(name)
        return names

    def gmean(self, config: str) -> float:
        values = [row.speedup(config) for row in self.rows
                  if config in row.config_ns]
        return geometric_mean(values)

    def render(self) -> str:
        """Plain-text table in the paper's layout (rows x configs)."""
        configs = self.configs()
        header = f"{'workload':<16}" + "".join(f"{c:>16}" for c in configs)
        lines = [self.title, header, "-" * len(header)]
        for row in self.rows:
            cells = "".join(
                f"{row.speedup(c):>16.2f}" if c in row.config_ns else f"{'-':>16}"
                for c in configs
            )
            lines.append(f"{row.workload:<16}" + cells)
        gmeans = "".join(f"{self.gmean(c):>16.2f}" for c in configs)
        lines.append(f"{'GMEAN':<16}" + gmeans)
        return "\n".join(lines)
