"""Analysis helpers: roofline (Fig 1a), speedup tables, latency stats."""

from repro.analysis.roofline import (
    FIG1A_WORKLOADS,
    RooflinePoint,
    fig1a_table,
    max_slowdown,
    mean_slowdown,
)
from repro.analysis.speedup import SpeedupRow, SpeedupTable

__all__ = [
    "FIG1A_WORKLOADS",
    "RooflinePoint",
    "SpeedupRow",
    "SpeedupTable",
    "fig1a_table",
    "max_slowdown",
    "mean_slowdown",
]
