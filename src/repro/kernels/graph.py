"""Graph-analytics kernels (§IV-B, Pannotia-style): PageRank and SSSP.

Both use the CSR row-pointer array as the µthread pool region (4 nodes per
µthread) and pointer-chase edges — the irregular access pattern where
M2NDP's fine-grained spawning and scalar units beat SIMT warps (§III-D).

PGRANK is one PageRank iteration as a two-body kernel (the multi-body
barrier of §III-G): body 1 computes per-node contributions rank/deg, body 2
gathers contributions over incoming edges and applies the damping update.

SSSP is one Bellman-Ford relaxation sweep: relax every edge of active
nodes with a global atomic min; a flag in HDM reports whether any distance
improved so the host knows when to stop iterating.

PGRANK arguments: [0] col_idx, [8] rank_in, [16] contrib, [24] out_deg
(i32), [32] rank_out, [40] n_nodes, [48] teleport_bits (f64 bit pattern of
(1-d)/N), [56] damping_bits (f64 bit pattern of d).
SSSP arguments: [0] col_idx, [8] weights (i32), [16] dist (i32),
[24] n_nodes, [32] changed-flag address.
"""

PAGERANK_ITER = """
.body
    // body 1: contrib[v] = rank_in[v] / out_deg[v]   (4 nodes per µthread)
    ld   x4, 8(x3)        // rank_in (f64)
    ld   x5, 16(x3)       // contrib (f64)
    ld   x6, 24(x3)       // out_deg (i32)
    ld   x8, 40(x3)       // n_nodes
    srli x9, x2, 3        // first node
    li   x10, 4
contrib_loop:
    bgeu x9, x8, contrib_done
    blez x10, contrib_done
    slli x11, x9, 3
    add  x12, x4, x11
    fld  f1, 0(x12)       // rank
    slli x13, x9, 2
    add  x12, x6, x13
    lw   x14, 0(x12)      // degree
    beqz x14, dangling
    fcvt.d.l f2, x14
    fdiv.d f1, f1, f2
    j    store_contrib
dangling:
    fmv.d.x f1, x0        // contribution 0 for dangling nodes
store_contrib:
    add  x12, x5, x11
    fsd  f1, 0(x12)
    addi x9, x9, 1
    addi x10, x10, -1
    j    contrib_loop
contrib_done:
    ret
.body
    // body 2: rank_out[v] = teleport + d * sum(contrib[u]) over in-edges
    ld   x4, 0(x3)        // col_idx (i32) of incoming neighbors
    ld   x5, 16(x3)       // contrib (f64)
    ld   x7, 32(x3)       // rank_out (f64)
    ld   x8, 40(x3)       // n_nodes
    fld  f4, 48(x3)       // teleport term
    fld  f5, 56(x3)       // damping d
    srli x9, x2, 3        // first node
    li   x10, 4
    mv   x11, x1          // row-pointer cursor
node_loop:
    bgeu x9, x8, done
    blez x10, done
    ld   x12, 0(x11)      // edges start
    ld   x13, 8(x11)      // edges end
    fmv.d.x f1, x0        // sum = 0
edge_loop:
    bgeu x12, x13, apply
    slli x14, x12, 2
    add  x15, x4, x14
    lw   x16, 0(x15)      // neighbor u
    slli x16, x16, 3
    add  x15, x5, x16
    fld  f2, 0(x15)       // contrib[u]
    fadd.d f1, f1, f2
    addi x12, x12, 1
    j    edge_loop
apply:
    fmadd.d f1, f1, f5, f4   // teleport + d * sum
    slli x14, x9, 3
    add  x15, x7, x14
    fsd  f1, 0(x15)
    addi x9, x9, 1
    addi x11, x11, 8
    addi x10, x10, -1
    j    node_loop
done:
    ret
"""

SSSP_RELAX = """
.body
    ld   x4, 0(x3)        // col_idx (i32)
    ld   x5, 8(x3)        // weights (i32)
    ld   x6, 16(x3)       // dist (i32)
    ld   x8, 24(x3)       // n_nodes
    ld   x17, 32(x3)      // changed-flag address
    srli x9, x2, 3        // first node = offset / 8
    li   x10, 4
    mv   x11, x1          // row-pointer cursor
node_loop:
    bgeu x9, x8, done
    blez x10, done
    slli x12, x9, 2
    add  x13, x6, x12
    lw   x14, 0(x13)      // dist[u]
    li   x15, 0x3FFFFFFF
    bge  x14, x15, skip   // unreachable so far
    ld   x12, 0(x11)      // edges start
    ld   x13, 8(x11)      // edges end
edge_loop:
    bgeu x12, x13, skip
    slli x15, x12, 2
    add  x16, x4, x15
    lw   x18, 0(x16)      // v
    add  x16, x5, x15
    lw   x19, 0(x16)      // w(u,v)
    add  x19, x19, x14    // candidate = dist[u] + w
    slli x18, x18, 2
    add  x16, x6, x18
    amomin.w x20, x19, (x16)  // old = atomic min(dist[v], candidate)
    bge  x19, x20, no_improve
    li   x21, 1
    sw   x21, 0(x17)      // mark progress
no_improve:
    addi x12, x12, 1
    j    edge_loop
skip:
    addi x9, x9, 1
    addi x11, x11, 8
    addi x10, x10, -1
    j    node_loop
done:
    ret
"""
