"""GEMV kernel for LLM token generation (§IV-B, OPT models).

During the generation phase every token multiplies activation vectors
against the model's weight matrices (QKV projections, attention output,
two FFN layers); with batch size 1 each is a GEMV that streams the whole
weight matrix once — the memory-bound core of OPT inference.

The pool region is the output vector with a 4 B µthread stride: each
µthread owns *one* output element — one weight-row dot product — so even a
scaled-down matrix spawns thousands of µthreads and keeps every slot busy.
The activation vector stays resident in the NDP unit's L1 across rows.

Arguments: [0] W base (f32, row-major), [8] x base (f32), [16] dim_in.
Launch with ``stride=4``.
"""

GEMV_F32 = """
.body
    ld   x4, 0(x3)        // W base
    ld   x5, 8(x3)        // x base
    ld   x6, 16(x3)       // dim_in
    slli x15, x6, 2       // row bytes
    srli x7, x2, 2        // output row index = offset / 4
    li   x9, 8
    vsetvli x0, x9, e32
    mul  x10, x7, x15
    add  x10, x4, x10     // row pointer
    mv   x11, x5          // x pointer
    li   x12, 0
    vmv.v.i v1, 0         // accumulator
dot_loop:
    bgeu x12, x6, dot_done
    vle32.v v2, (x10)
    vle32.v v3, (x11)
    vfmacc.vv v1, v2, v3
    addi x10, x10, 32
    addi x11, x11, 32
    addi x12, x12, 8
    j    dot_loop
dot_done:
    vmv.v.i v4, 0
    vfredusum.vs v5, v1, v4
    vfmv.f.s f1, v5
    fsw  f1, 0(x1)        // pool-mapped output element
    ret
"""
