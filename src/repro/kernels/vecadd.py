"""VectorAdd NDP kernel (the paper's Fig 4 running example).

C = A + B with the pool region over A: each µthread receives the address
of its 32 B slice of A in ``x1`` and the offset in ``x2``; B and C bases
arrive as kernel arguments in the scratchpad (pointer in ``x3``).
"""

VECADD = """
.body
    ld      x4, 0(x3)        // base of B
    ld      x5, 8(x3)        // base of C
    vle64.v v1, (x1)         // A slice (4 x i64)
    add     x4, x4, x2
    vle64.v v2, (x4)         // B slice
    vadd.vv v3, v1, v2
    add     x5, x5, x2
    vse64.v v3, (x5)
    ret
"""

VECADD_F32 = """
.body
    ld      x4, 0(x3)        // base of B
    ld      x5, 8(x3)        // base of C
    li      x6, 8
    vsetvli x0, x6, e32
    vle32.v v1, (x1)         // A slice (8 x f32)
    add     x4, x4, x2
    vle32.v v2, (x4)
    vfadd.vv v3, v1, v2
    add     x5, x5, x2
    vse32.v v3, (x5)
    ret
"""
