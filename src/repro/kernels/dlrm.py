"""DLRM SparseLengthsSum (SLS) kernel (§IV-B).

The embedding table lives in CXL memory; each request gathers L embedding
rows and element-wise sums them.  The µthread pool region is the *output*
array (the paper: "using the output vector of SLS as µthread pool
region"): a µthread owns 8 f32 lanes of one request's output vector and
walks that request's L indices, loading only its own 32 B lane slice of
each embedding row — perfectly coalesced, no inter-thread communication.

Arguments: [0] indices base (i64, L per request), [8] embedding base (f32
rows), [16] lookups per request L, [24] row bytes (embedding_dim * 4).
"""

DLRM_SLS = """
.body
    ld   x4, 0(x3)        // indices base
    ld   x5, 8(x3)        // embedding base
    ld   x6, 16(x3)       // lookups per request (L)
    ld   x7, 24(x3)       // row bytes
    divu x8, x2, x7       // request id
    remu x9, x2, x7       // lane byte offset within the row
    mul  x10, x8, x6
    slli x10, x10, 3
    add  x10, x4, x10     // &indices[request * L]
    li   x11, 8
    vsetvli x0, x11, e32
    vmv.v.i v1, 0         // accumulator (8 x f32 zero bits)
    li   x12, 0
lookup_loop:
    bgeu x12, x6, store_out
    ld   x13, 0(x10)      // embedding row index
    mul  x14, x13, x7
    add  x14, x5, x14
    add  x14, x14, x9     // &table[idx][lane]
    vle32.v v2, (x14)
    vfadd.vv v1, v1, v2
    addi x10, x10, 8
    addi x12, x12, 1
    j    lookup_loop
store_out:
    vse32.v v1, (x1)      // pool-mapped output slice
    ret
"""
