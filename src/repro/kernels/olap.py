"""OLAP filter-Evaluate kernels (§IV-B, TPC-H / SSB queries).

The Evaluate phase sweeps a column and produces a boolean mask (one byte
per row) in CXL memory; one kernel is launched per column predicate and a
mask-combine kernel ANDs partial masks (the paper: "To filter multiple
columns, multiple NDP kernels are launched").

The µthread pool region is the column itself, so each µthread's ``x1``
points straight at its 8 int32 (or 4 int64/f64) elements — the
memory-mapped address-calculation saving of §III-D (A1).

Argument blocks (u64 words at ``x3``):
  range_i32 / lt_i32: [mask_base, lo, hi]  (lo <= v < hi; lt uses hi only)
  range_f64:          [mask_base, lo_bits, hi_bits]  (f64 bit patterns)
  mask_and:           [mask_b_base, mask_out_base]
"""

EVAL_RANGE_I32 = """
.body
    ld       x4, 0(x3)       // mask output base
    ld       x5, 8(x3)       // lower bound (inclusive)
    ld       x6, 16(x3)      // upper bound (exclusive)
    li       x7, 8
    vsetvli  x0, x7, e32
    vle32.v  v1, (x1)        // 8 column values
    vmsge.vx v2, v1, x5
    vmslt.vx v3, v1, x6
    vmand.mm v2, v2, v3
    srli     x7, x2, 2       // mask offset: one byte per 4-byte element
    add      x4, x4, x7
    vse8.v   v2, (x4)
    ret
"""

EVAL_LT_I32 = """
.body
    ld       x4, 0(x3)       // mask output base
    ld       x6, 16(x3)      // bound (exclusive); slot 8 unused
    li       x7, 8
    vsetvli  x0, x7, e32
    vle32.v  v1, (x1)
    vmslt.vx v2, v1, x6
    srli     x7, x2, 2
    add      x4, x4, x7
    vse8.v   v2, (x4)
    ret
"""

EVAL_RANGE_F64 = """
.body
    ld       x4, 0(x3)       // mask output base
    fld      f1, 8(x3)       // lower bound (inclusive)
    fld      f2, 16(x3)      // upper bound (inclusive)
    li       x7, 4
    vsetvli  x0, x7, e64
    vle64.v  v1, (x1)        // 4 column values (f64)
    vmfge.vf v2, v1, f1
    vmfle.vf v3, v1, f2
    vmand.mm v2, v2, v3
    srli     x7, x2, 3       // one mask byte per 8-byte element
    add      x4, x4, x7
    li       x8, 4
    vsetvli  x0, x8, e8
    vse8.v   v2, (x4)
    ret
"""

MASK_AND = """
.body
    ld       x4, 0(x3)       // mask B base
    ld       x5, 8(x3)       // mask out base
    li       x6, 32
    vsetvli  x0, x6, e8
    vle8.v   v1, (x1)        // 32 mask-A bytes (pool region = mask A)
    add      x4, x4, x2
    vle8.v   v2, (x4)
    vmand.mm v3, v1, v2
    add      x5, x5, x2
    vse8.v   v3, (x5)
    ret
"""
