"""KVStore GET/SET kernels (§IV-B, simplified Redis).

The host computes the compute-intensive key hash, then offloads the
memory-bound part — hash-table bucket walk, key comparison, value copy —
as a *fine-grained* NDP kernel (one µthread).  This is the workload class
where M2func's sub-µs launch dominates end-to-end latency (Fig 10b/11a).

Hash-table node layout (128 B aligned):
  +0   key word 0..2  (24 B key)
  +24  pad
  +32  value          (64 B)
  +96  next-node pointer (i64; 0 terminates the chain)

GET: pool region = the request's 32 B result slot; the kernel writes the
64 B value at ``x1`` and a found/not-found status at ``x1+64``.
Arguments: [0] bucket head-pointer address, [8..24] key words.

GET (scatter-batched): the serving tier fuses up to ``max_batch``
independent GETs into ONE launch over a staging ring — pool region = N
64 B staging entries, one µthread each.  Every lane reads its *own*
request descriptor from its entry at ``x1`` (bucket head-pointer
address, key words, result-slot pointer) and then runs the identical
chain walk, writing the value/status through the loaded slot pointer.
The argument block is empty: all per-request values arrive via memory,
so the trace cache sees one structural launch shape regardless of keys
or batch composition.

SET: overwrite-in-place when the key exists; otherwise link a
host-preallocated node at the chain head with an atomic swap.
Arguments: [0] bucket head-pointer address, [8..24] key words,
[32] preallocated node address (with key+value already written by host).

SET (scatter-batched): the write-path twin of the scatter GET — up to
``max_batch`` independent SETs fuse into ONE launch over the same 64 B
staging ring, one µthread per entry.  Each lane's descriptor carries the
bucket head-pointer address, key words, preallocated node address and
the request's status-slot pointer; the lane then runs the identical
update/insert walk and reports through the loaded slot pointer.  Lanes
never share a node or a slot, and an overwrite of the same key always
stores that key's canonical value, so the fused launch is byte-identical
to dispatching the SETs one by one in any order.
"""

KVS_GET = """
.body
    ld   x4, 0(x3)        // bucket head-pointer address
    ld   x5, 8(x3)        // key word 0
    ld   x6, 16(x3)       // key word 1
    ld   x7, 24(x3)       // key word 2
    ld   x9, 0(x4)        // first node
walk:
    beqz x9, notfound
    ld   x10, 0(x9)
    bne  x10, x5, next
    ld   x10, 8(x9)
    bne  x10, x6, next
    ld   x10, 16(x9)
    bne  x10, x7, next
    // found: copy the 64 B value into the result slot at x1
    addi x11, x9, 32
    li   x13, 32
    vsetvli x0, x13, e8
    vle8.v v1, (x11)
    vse8.v v1, (x1)
    addi x11, x11, 32
    addi x12, x1, 32
    vle8.v v1, (x11)
    vse8.v v1, (x12)
    li   x14, 1
    sd   x14, 64(x1)      // status: found
    ret
next:
    ld   x9, 96(x9)       // chain next
    j    walk
notfound:
    sd   x0, 64(x1)       // status: not found
    ret
"""

KVS_GET_SCATTER = """
.body
    ld   x4, 0(x1)        // bucket head-pointer address
    ld   x5, 8(x1)        // key word 0
    ld   x6, 16(x1)       // key word 1
    ld   x7, 24(x1)       // key word 2
    ld   x8, 32(x1)       // result-slot pointer
    ld   x9, 0(x4)        // first node
walk:
    beqz x9, notfound
    ld   x10, 0(x9)
    bne  x10, x5, next
    ld   x10, 8(x9)
    bne  x10, x6, next
    ld   x10, 16(x9)
    bne  x10, x7, next
    // found: copy the 64 B value into the request's result slot
    addi x11, x9, 32
    li   x13, 32
    vsetvli x0, x13, e8
    vle8.v v1, (x11)
    vse8.v v1, (x8)
    addi x11, x11, 32
    addi x12, x8, 32
    vle8.v v1, (x11)
    vse8.v v1, (x12)
    li   x14, 1
    sd   x14, 64(x8)      // status: found
    ret
next:
    ld   x9, 96(x9)       // chain next
    j    walk
notfound:
    sd   x0, 64(x8)       // status: not found
    ret
"""

KVS_SET = """
.body
    ld   x4, 0(x3)        // bucket head-pointer address
    ld   x5, 8(x3)        // key word 0
    ld   x6, 16(x3)       // key word 1
    ld   x7, 24(x3)       // key word 2
    ld   x8, 32(x3)       // preallocated node (key+value prewritten)
    ld   x9, 0(x4)        // first node
walk:
    beqz x9, insert
    ld   x10, 0(x9)
    bne  x10, x5, next
    ld   x10, 8(x9)
    bne  x10, x6, next
    ld   x10, 16(x9)
    bne  x10, x7, next
    // key exists: overwrite the 64 B value from the new node
    addi x11, x8, 32      // source value
    addi x12, x9, 32      // destination value
    li   x13, 32
    vsetvli x0, x13, e8
    vle8.v v1, (x11)
    vse8.v v1, (x12)
    addi x11, x11, 32
    addi x12, x12, 32
    vle8.v v1, (x11)
    vse8.v v1, (x12)
    li   x14, 1
    sd   x14, 64(x1)      // status: updated
    ret
next:
    ld   x9, 96(x9)
    j    walk
insert:
    // link the new node at the chain head: old_head = swap(head, node)
    amoswap.d x10, x8, (x4)
    sd   x10, 96(x8)      // node.next = old head
    li   x14, 2
    sd   x14, 64(x1)      // status: inserted
    ret
"""

KVS_SET_SCATTER = """
.body
    ld   x4, 0(x1)        // bucket head-pointer address
    ld   x5, 8(x1)        // key word 0
    ld   x6, 16(x1)       // key word 1
    ld   x7, 24(x1)       // key word 2
    ld   x8, 32(x1)       // preallocated node (key+value prewritten)
    ld   x15, 40(x1)      // status-slot pointer
    ld   x9, 0(x4)        // first node
walk:
    beqz x9, insert
    ld   x10, 0(x9)
    bne  x10, x5, next
    ld   x10, 8(x9)
    bne  x10, x6, next
    ld   x10, 16(x9)
    bne  x10, x7, next
    // key exists: overwrite the 64 B value from the new node
    addi x11, x8, 32      // source value
    addi x12, x9, 32      // destination value
    li   x13, 32
    vsetvli x0, x13, e8
    vle8.v v1, (x11)
    vse8.v v1, (x12)
    addi x11, x11, 32
    addi x12, x12, 32
    vle8.v v1, (x11)
    vse8.v v1, (x12)
    li   x14, 1
    sd   x14, 64(x15)     // status: updated
    ret
next:
    ld   x9, 96(x9)
    j    walk
insert:
    // link the new node at the chain head: old_head = swap(head, node)
    amoswap.d x10, x8, (x4)
    sd   x10, 96(x8)      // node.next = old head
    li   x14, 2
    sd   x14, 64(x15)     // status: inserted
    ret
"""
