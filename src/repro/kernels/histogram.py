"""HISTO kernel (§IV-B, from CUDA samples): 256 or 4096 bins.

Shows off the scratchpad's NDP-unit-wide scope (§III-D, A3): *one* copy of
the bins per NDP unit, shared by all µthreads on it, against CUDA where
every threadblock needs a private copy that must be merged through global
memory (Fig 6b).

Phases:
  init  — the unit's slot-threads cooperatively zero the unit-local bins
          (vectorized stores, 8 bins per iteration);
  body  — each µthread takes 8 int32 inputs, computes bin indices
          (value & (nbins-1)) and bumps scratchpad bins with the vector
          AMO extension;
  final — slot-threads flush the unit-local bins into the global bins with
          vector global atomics (executed at the memory-side L2).

Arguments: [0] nbins, [8] global bins base.
Scratchpad: bins at offset 0x100.  nbins must be a power of two.
"""

HISTOGRAM = """
.init
    ld   x4, 0(x3)         // nbins
    li   x5, 64
    divu x6, x4, x5        // bins zeroed per slot-thread
    bnez x6, init_go
    // fewer bins than slots: low-numbered threads take one bin each
    bgeu x2, x4, init_done
    slli x7, x2, 2
    li   x8, 0x10000100
    add  x7, x8, x7
    sw   x0, 0(x7)
    j    init_done
init_go:
    mul  x7, x6, x2        // first bin for this thread
    slli x7, x7, 2
    li   x8, 0x10000100
    add  x7, x8, x7        // scratchpad cursor
    vsetvli x9, x6, e32    // vl = min(bins per thread, 8)
    slli x10, x9, 2        // byte step
    vmv.v.i v1, 0
    li   x11, 0
init_loop:
    bgeu x11, x6, init_done
    vse32.v v1, (x7)
    add  x7, x7, x10
    add  x11, x11, x9
    j    init_loop
init_done:
    ret
.body
    ld       x4, 0(x3)       // nbins
    addi     x5, x4, -1      // index mask (nbins is a power of two)
    li       x6, 8
    vsetvli  x0, x6, e32
    vle32.v  v1, (x1)        // 8 input values
    vand.vx  v2, v1, x5      // bin indices
    vsll.vi  v2, v2, 2       // byte offsets
    li       x7, 0x10000100
    vmv.v.i  v3, 1
    vamoadde32.v v3, (x7), v2  // scratchpad bins[idx] += 1
    ret
.final
    ld   x4, 0(x3)          // nbins
    ld   x5, 8(x3)          // global bins base
    li   x6, 64
    divu x7, x4, x6         // bins flushed per slot-thread
    bnez x7, fin_go
    bgeu x2, x4, fin_done   // fewer bins than slots: one bin each
    slli x8, x2, 2
    li   x10, 0x10000100
    add  x10, x10, x8       // scratchpad address of this thread's bin
    add  x5, x5, x8
    lw   x12, 0(x10)
    amoadd.w x12, x12, (x5)
    j    fin_done
fin_go:
    mul  x8, x7, x2         // first bin
    slli x9, x8, 2
    li   x10, 0x10000100
    add  x10, x10, x9       // scratchpad cursor
    add  x5, x5, x9         // global cursor
    vsetvli x11, x7, e32    // vl = min(bins per thread, 8)
    slli x12, x11, 2        // byte step
    vid.v   v2
    vsll.vi v2, v2, 2       // element byte offsets [0,4,8,...]
    li   x13, 0
fin_loop:
    bgeu x13, x7, fin_done
    vle32.v v1, (x10)            // unit-local partial bins
    vamoadde32.v v1, (x5), v2    // global bins[base+off] += partial
    add  x10, x10, x12
    add  x5, x5, x12
    add  x13, x13, x11
    j    fin_loop
fin_done:
    ret
"""
