"""Hand-written NDP kernels for every evaluated workload (§IV-B).

The paper notes no RVV compiler targets M2NDP yet, so kernels were
"implemented with assembly"; this package is that kernel library.
``KERNEL_LIBRARY`` maps names to assembly sources for tooling and tests.
"""

from repro.kernels.dlrm import DLRM_SLS
from repro.kernels.gemv import GEMV_F32
from repro.kernels.graph import PAGERANK_ITER, SSSP_RELAX
from repro.kernels.histogram import HISTOGRAM
from repro.kernels.kvstore import KVS_GET, KVS_SET
from repro.kernels.olap import EVAL_LT_I32, EVAL_RANGE_F64, EVAL_RANGE_I32, MASK_AND
from repro.kernels.reduction import REDUCE_SUM_I64
from repro.kernels.spmv import SPMV_CSR
from repro.kernels.vecadd import VECADD, VECADD_F32

KERNEL_LIBRARY: dict[str, str] = {
    "vecadd": VECADD,
    "vecadd_f32": VECADD_F32,
    "reduce_sum_i64": REDUCE_SUM_I64,
    "eval_range_i32": EVAL_RANGE_I32,
    "eval_lt_i32": EVAL_LT_I32,
    "eval_range_f64": EVAL_RANGE_F64,
    "mask_and": MASK_AND,
    "histogram": HISTOGRAM,
    "spmv_csr": SPMV_CSR,
    "pagerank_iter": PAGERANK_ITER,
    "sssp_relax": SSSP_RELAX,
    "dlrm_sls": DLRM_SLS,
    "gemv_f32": GEMV_F32,
    "kvs_get": KVS_GET,
    "kvs_set": KVS_SET,
}

__all__ = [
    "DLRM_SLS",
    "EVAL_LT_I32",
    "EVAL_RANGE_F64",
    "EVAL_RANGE_I32",
    "GEMV_F32",
    "HISTOGRAM",
    "KERNEL_LIBRARY",
    "KVS_GET",
    "KVS_SET",
    "MASK_AND",
    "PAGERANK_ITER",
    "REDUCE_SUM_I64",
    "SPMV_CSR",
    "SSSP_RELAX",
    "VECADD",
    "VECADD_F32",
]
