"""SpMV kernel (§IV-B): y = A·x with A in CSR form.

The µthread pool region is the CSR row-pointer array (the paper: "we use
the address range of the row pointers"), so each µthread owns the 4 rows
whose i64 row pointers fall in its 32 B slice.  The inner loop pointer-
chases column indices and gathers x — the dense vector enjoys L1 reuse
while matrix data streams from DRAM.

Arguments: [0] col_idx base (i32), [8] values base (f32), [16] x base
(f32), [24] y base (f32), [32] n_rows.
"""

SPMV_CSR = """
.body
    ld   x4, 0(x3)       // col_idx base
    ld   x5, 8(x3)       // values base
    ld   x6, 16(x3)      // x base
    ld   x7, 24(x3)      // y base
    ld   x8, 32(x3)      // n_rows
    srli x9, x2, 3       // first row = offset / 8
    li   x10, 4          // rows per µthread
    mv   x11, x1         // row-pointer cursor
row_loop:
    bgeu x9, x8, done
    blez x10, done
    ld   x12, 0(x11)     // row start
    ld   x13, 8(x11)     // row end
    fmv.d.x f1, x0       // accumulator = 0.0
nnz_loop:
    bgeu x12, x13, store_row
    slli x14, x12, 2
    add  x15, x4, x14
    lw   x16, 0(x15)     // column index
    add  x15, x5, x14
    flw  f2, 0(x15)      // A value
    slli x16, x16, 2
    add  x15, x6, x16
    flw  f3, 0(x15)      // x[col]
    fmadd.d f1, f2, f3, f1
    addi x12, x12, 1
    j    nnz_loop
store_row:
    slli x14, x9, 2
    add  x15, x7, x14
    fsw  f1, 0(x15)      // y[row]
    addi x9, x9, 1
    addi x11, x11, 8
    addi x10, x10, -1
    j    row_loop
done:
    ret
"""
