"""Global-sum reduction kernel — the paper's Fig 8 example, verbatim in
structure: initializer zeroes a per-unit partial in scratchpad, each body
µthread vector-reduces its 32 B slice and atomically accumulates into the
unit-local scratchpad sum, and the finalizer's slot-0 µthread folds the
unit's partial into the global result with a global atomic.

Arguments: [0] result address (i64 accumulator in HDM).
Scratchpad layout: unit-local partial sum at offset 0x100.
"""

REDUCE_SUM_I64 = """
.init
    // one µthread per slot; only slot 0 of each unit zeroes the partial
    bnez x2, init_done
    li   x4, 0x10000100
    sd   x0, 0(x4)
init_done:
    ret
.body
    vle64.v    v2, (x1)        // 4 x i64 slice
    vmv.v.i    v1, 0
    vredsum.vs v3, v2, v1      // scalar sum into v3[0]
    vmv.x.s    x4, v3
    li         x5, 0x10000100
    amoadd.d   x4, x4, (x5)    // unit-local scratchpad accumulation
    ret
.final
    bnez x2, final_done        // slot 0 only
    li   x4, 0x10000100
    ld   x5, 0(x4)             // unit-local partial
    ld   x6, 0(x3)             // result address (kernel argument)
    amoadd.d x5, x5, (x6)      // global atomic accumulate
final_done:
    ret
"""
