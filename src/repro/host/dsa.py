"""Domain-specific NDP baselines (Fig 14a).

The paper compares M2NDP against processing elements from four prior
domain-specific CXL/near-memory designs, assuming enough PEs to saturate
memory bandwidth (§IV-D):

* **CXL-ANNS** [74] — approximate nearest neighbor search,
* **CMS** [122]     — computational CXL-memory (KNN/filter kernels),
* **RecNMP** [77]   — recommendation-model SLS near-DIMM processing,
* **CXL-PNM** [109] — LPDDR-based processing-near-memory for LLMs.

Because these PEs are fixed-function datapaths fed by simple address
generators, they stream with slightly better DRAM row locality than a
general-purpose unit running the same kernel; the paper measures M2NDP
within 6.5 % of them on average.  We model each PE as a bandwidth-saturating
engine with a per-design streaming efficiency (fraction of peak internal
DRAM bandwidth sustained), which is the one microarchitectural quantity
that separated them in the paper's study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DomainSpecificPE:
    """A fixed-function NDP design and the workloads it supports."""

    name: str
    streaming_efficiency: float      # fraction of internal DRAM bw sustained
    workloads: tuple[str, ...]

    def runtime_ns(self, bytes_touched: int,
                   internal_bw_bytes_per_ns: float) -> float:
        if bytes_touched <= 0:
            raise ConfigError("bytes_touched must be positive")
        return bytes_touched / (internal_bw_bytes_per_ns
                                * self.streaming_efficiency)

    def supports(self, workload: str) -> bool:
        return workload in self.workloads


#: PE catalog.  Efficiencies reflect the paper's observation that
#: domain-specific PEs "sometimes exhibited higher row buffer locality and
#: utilized memory BW slightly better" than M2NDP's measured ~81.6-90 %.
CXL_ANNS = DomainSpecificPE("CXL-ANNS", 0.92, ("ann", "knn"))
CMS = DomainSpecificPE("CMS", 0.90, ("knn", "filter", "olap"))
RECNMP = DomainSpecificPE("RecNMP", 0.93, ("dlrm", "sls"))
CXL_PNM = DomainSpecificPE("CXL-PNM", 0.91, ("opt", "llm", "gemv"))

ALL_PES = (CXL_ANNS, CMS, RECNMP, CXL_PNM)


def pe_for_workload(workload: str) -> list[DomainSpecificPE]:
    """All catalog PEs that can run ``workload``."""
    return [pe for pe in ALL_PES if pe.supports(workload)]
