"""Host CPU baseline and CPU-NDP models.

The paper's CPU numbers are shaped by three quantities this model makes
explicit (substituting for ZSim, see DESIGN.md):

* per-core memory-level parallelism (MLP): an OoO core sustains ~10
  outstanding line misses, so its streaming bandwidth against a memory with
  load-to-use latency L is ``mlp * line / L``;
* the CXL link bandwidth ceiling (64 GB/s per direction) shared by all
  cores when data lives in passive CXL memory;
* serialized *dependent* accesses (pointer chasing — KVStore hash buckets)
  that pay full load-to-use latency each.

Two interfaces:

* analytic :meth:`scan_bandwidth` / :meth:`scan_time_ns` for streaming
  scans (OLAP Evaluate), including the single-thread case that dominates
  the paper's baseline Evaluate phase;
* :class:`CoreRequestPool`, a discrete-event pool of cores serving
  latency-bound requests (KVStore), from which P95 latencies emerge.

``CPU-NDP`` is the same model with cores placed inside the CXL device:
internal DRAM latency, no link in the path (§IV-A).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.config import CPUConfig, CXLConfig
from repro.sim.engine import Simulator
from repro.sim.stats import Distribution

CACHELINE = 64


@dataclass(frozen=True)
class MemoryTarget:
    """Where the data lives, from the cores' point of view."""

    name: str
    load_to_use_ns: float
    bandwidth_bytes_per_ns: float     # ceiling (link or DRAM)

    @classmethod
    def local_dram(cls, bandwidth: float = 409.6,
                   latency_ns: float = 75.0) -> "MemoryTarget":
        return cls("local", latency_ns, bandwidth)

    @classmethod
    def cxl(cls, config: CXLConfig | None = None) -> "MemoryTarget":
        cfg = config if config is not None else CXLConfig()
        return cls("cxl", cfg.load_to_use_ns, cfg.bw_per_dir_bytes_per_ns)

    @classmethod
    def device_internal(cls, bandwidth: float = 409.6,
                        latency_ns: float = 60.0) -> "MemoryTarget":
        """Seen by CPU-NDP cores inside the CXL memory expander."""
        return cls("internal", latency_ns, bandwidth)


class HostCPUModel:
    """Analytic multicore streaming model."""

    def __init__(self, config: CPUConfig | None = None) -> None:
        self.config = config if config is not None else CPUConfig()

    def core_stream_bandwidth(self, memory: MemoryTarget) -> float:
        """One core's streaming bandwidth (bytes/ns), MLP-limited."""
        return self.config.mlp_per_core * CACHELINE / memory.load_to_use_ns

    def scan_bandwidth(self, memory: MemoryTarget,
                       threads: int | None = None) -> float:
        """Aggregate streaming bandwidth with ``threads`` cores (default all)."""
        n = self.config.num_cores if threads is None else threads
        n = min(n, self.config.num_cores)
        return min(n * self.core_stream_bandwidth(memory),
                   memory.bandwidth_bytes_per_ns)

    def scan_time_ns(self, total_bytes: int, memory: MemoryTarget,
                     threads: int | None = None,
                     compute_ns_per_byte: float = 0.0) -> float:
        """Time to stream ``total_bytes`` applying light per-byte compute."""
        bw = self.scan_bandwidth(memory, threads)
        n = min(threads or self.config.num_cores, self.config.num_cores)
        compute = total_bytes * compute_ns_per_byte / max(n, 1)
        return max(total_bytes / bw, compute)

    def pointer_chase_ns(self, depth: int, memory: MemoryTarget,
                         compute_ns: float = 0.0) -> float:
        """Serialized dependent accesses (hash-bucket walks)."""
        return depth * memory.load_to_use_ns + compute_ns


@dataclass(order=True)
class _PoolJob:
    start_ns: float
    seq: int
    service_ns: float = field(compare=False)
    callback: Callable[[float], None] = field(compare=False)


class CoreRequestPool:
    """Discrete-event pool of cores serving fixed-service-time requests.

    Requests queue FCFS for the first free core; P95 latency under load
    emerges from queueing.  Used for the KVStore host baseline and the
    host-side hash stage in the NDP configurations.
    """

    def __init__(self, sim: Simulator, num_cores: int) -> None:
        self.sim = sim
        self.num_cores = num_cores
        self._core_free_ns = [0.0] * num_cores
        self._heap = list(self._core_free_ns)
        heapq.heapify(self._heap)
        self.latencies = Distribution()

    def submit(self, arrival_ns: float, service_ns: float,
               callback: Callable[[float], None] | None = None) -> float:
        """Serve a request; returns (and optionally schedules) completion."""
        free = heapq.heappop(self._heap)
        start = max(arrival_ns, free)
        done = start + service_ns
        heapq.heappush(self._heap, done)
        self.latencies.add(done - arrival_ns)
        if callback is not None:
            self.sim.schedule_at(done, lambda: callback(done))
        return done
