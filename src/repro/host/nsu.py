"""NSU baseline: GPU-like NDP with host-generated addresses.

Models prior work [81] ("Toward standardized near-data processing with
unrestricted data placement for GPUs") in which the *host* translates and
generates every memory address for the NDP units and streams the resulting
command packets over the interconnect.  Fig 10c shows this performing worse
than the baseline on average (GMEAN 0.97x): the CXL link becomes the
bottleneck because all addresses cross it.

Runtime model::

    t = max(internal work, command traffic over the link, host issue rate)

where command traffic = one descriptor (address + opcode, ~16 B) per NDP
memory access plus returned results for loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CXLConfig

#: Link bytes per offloaded access descriptor: a 16 B address/opcode/tag
#: descriptor plus its 16 B flit-slot overhead — roughly the data size of
#: the 32 B access it requests, which is why the link saturates.
COMMAND_BYTES = 32


@dataclass
class NSUWorkload:
    """Traffic summary of one kernel from the NSU's perspective."""

    ndp_accesses: int            # memory operations the NDP units perform
    read_bytes: int              # data the kernel loads (results stay local)
    result_bytes: int            # data returned to the host (usually small)


class NSUModel:
    """Analytic runtime for the host-address-generation NDP baseline."""

    def __init__(self, config: CXLConfig | None = None,
                 internal_bw_bytes_per_ns: float = 409.6,
                 host_issue_rate_per_ns: float = 4.0) -> None:
        self.config = config if config is not None else CXLConfig()
        self.internal_bw = internal_bw_bytes_per_ns
        self.host_issue_rate = host_issue_rate_per_ns

    def runtime_ns(self, workload: NSUWorkload) -> float:
        link_bw = self.config.bw_per_dir_bytes_per_ns
        command_ns = workload.ndp_accesses * COMMAND_BYTES / link_bw
        result_ns = workload.result_bytes / link_bw
        internal_ns = workload.read_bytes / self.internal_bw
        host_ns = workload.ndp_accesses / self.host_issue_rate
        return max(command_ns + result_ns, internal_ns, host_ns) + (
            self.config.load_to_use_ns  # pipeline fill
        )
