"""User-level host API for M2NDP (Table II).

The runtime exposes the five NDP management functions as high-level calls —
``ndpRegisterKernel`` … ``ndpShootdownTlbEntry`` — hiding the M2func
mechanics: each call is a CXL.mem *write* carrying the arguments to the
function's offset in the process's M2func region, a fence, then a CXL.mem
*read* of the same address to fetch the return value (§III-B/C).

Two calling styles:

* **blocking** (`register_kernel`, `launch_kernel(sync=True)`, ...) — steps
  the shared simulator until the response arrives; natural for linear
  scripts and examples.
* **non-blocking** (`call_async`, `launch_async`) — issues the packets and
  invokes callbacks from simulator events; used by open-loop experiments
  (KVStore latency/throughput sweeps) that have many requests in flight.

The runtime also plays the role of the host driver and allocator: it
registers the process's M2func region in the packet filter (the one-time
CXL.io step), allocates HDM with identity virtual mappings, and pre-warms
the DRAM-TLB as the paper's methodology assumes.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import LaunchError, ProtocolError, SimulationError
from repro.isa.assembler import KernelProgram, assemble_kernel
from repro.ndp.controller import (
    FUNC_LAUNCH,
    FUNC_LAUNCH_SLOT_BASE,
    FUNC_LAUNCH_SLOTS,
    FUNC_POLL,
    FUNC_REGISTER,
    FUNC_SHOOTDOWN,
    FUNC_STRIDE_SHIFT,
    FUNC_UNREGISTER,
    LAUNCH_FLAG_OFFSET_BIAS,
    LAUNCH_FLAG_PARTITION,
    LAUNCH_FLAG_SYNC,
)
from repro.ndp.device import M2NDPDevice
from repro.ndp.kernel import KernelStatus

#: Host-side latency of an uncached store/load reaching the CXL port
#: (no cache-miss machinery for the uncacheable M2func region).
HOST_UNCACHED_PATH_NS = 5.0

#: Default M2func region: 64 KB per process, paper's example base.
M2FUNC_REGION_BYTES = 0x10000
M2FUNC_DEFAULT_BASE = 0x00FF0000

#: Data allocations start above the scratchpad window and M2func regions.
HDM_HEAP_BASE = 0x2000_0000


@dataclass
class M2Call:
    """Future for one M2func call (write + fence + read)."""

    func: int
    issued_ns: float
    ack_ns: float | None = None
    value: int | None = None
    done_ns: float | None = None
    _callbacks: list[Callable[["M2Call"], None]] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.done_ns is not None

    def on_done(self, callback: Callable[["M2Call"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _complete(self, value: int, when_ns: float) -> None:
        self.value = value
        self.done_ns = when_ns
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()


@dataclass
class LaunchHandle:
    """Tracks one kernel launch end to end."""

    call: M2Call
    instance_id: int | None = None
    complete_ns: float | None = None  # host-observed completion

    @property
    def finished(self) -> bool:
        return self.complete_ns is not None


class HDMAllocator:
    """Bump allocator over the device's HDM with identity virtual mapping."""

    def __init__(self, device: M2NDPDevice, asid: int,
                 base: int = HDM_HEAP_BASE) -> None:
        self.device = device
        self.asid = asid
        self._cursor = base

    def alloc(self, size: int, align: int = 4096) -> int:
        """Reserve ``size`` bytes; maps pages identity and warms the DRAM-TLB."""
        if size <= 0:
            raise LaunchError(f"allocation size must be positive, got {size}")
        addr = (self._cursor + align - 1) // align * align
        self._cursor = addr + size
        table = self.device.page_table(self.asid)
        table.map_identity(addr, size)
        self.device.dram_tlb.warm_range(self.asid, addr, size, table)
        return addr

    @property
    def bytes_allocated(self) -> int:
        return self._cursor - HDM_HEAP_BASE


def pack_args(*values: int) -> bytes:
    """Pack kernel arguments as little-endian u64 words."""
    return b"".join(struct.pack("<Q", v & 0xFFFFFFFFFFFFFFFF) for v in values)


class M2NDPRuntime:
    """Per-process handle to one CXL-M2NDP device."""

    def __init__(self, device: M2NDPDevice, asid: int = 0x7,
                 m2func_base: int | None = None) -> None:
        self.device = device
        self.sim = device.sim
        self.asid = asid
        base = m2func_base if m2func_base is not None else (
            M2FUNC_DEFAULT_BASE + asid * M2FUNC_REGION_BYTES
        )
        # One-time driver step over CXL.io: insert the region into the
        # packet filter.  After this, CXL.io is never used again (§III-B).
        self.filter_entry = device.packet_filter.insert(
            asid, base, base + M2FUNC_REGION_BYTES
        )
        self.allocator = HDMAllocator(device, asid)
        self.now = 0.0
        self._next_code_loc = 0x0100_0000 + asid * 0x0010_0000
        # Launch doorbell slots: each in-flight launch call needs its own
        # M2func address or concurrent calls clobber each other's return
        # values (see FUNC_LAUNCH_SLOT_BASE in repro.ndp.controller).
        self._free_launch_slots = deque(range(FUNC_LAUNCH_SLOTS))

    # ------------------------------------------------------------------
    # memory helpers (functional setup of workload data in HDM)
    # ------------------------------------------------------------------

    def alloc(self, size: int, align: int = 4096) -> int:
        return self.allocator.alloc(size, align)

    def alloc_array(self, array: np.ndarray, align: int = 4096) -> int:
        addr = self.alloc(array.nbytes, align)
        self.device.physical.store_array(addr, array)
        return addr

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        return self.device.physical.load_array(addr, dtype, count)

    # ------------------------------------------------------------------
    # low-level M2func machinery
    # ------------------------------------------------------------------

    def func_addr(self, func: int) -> int:
        """Host-visible address of one M2func function in this process's
        region (Table II: functions are strided 32 B from the base).

        Offload mechanisms and tests use this to target M2func calls
        directly; it is part of the runtime's public surface.
        """
        return self.filter_entry.base + (func << FUNC_STRIDE_SHIFT)

    def call_async(self, func: int, payload: bytes,
                   at_ns: float | None = None,
                   func_index: int | None = None) -> M2Call:
        """Issue write → fence → read; the returned future resolves with the
        function's return value at host-observed time.

        ``func_index`` overrides the region offset the call targets while
        ``func`` stays the logical function — used by the launch doorbell
        slots, which alias ndpLaunchKernel at distinct addresses.
        """
        start = self.now if at_ns is None else at_ns
        addr = self.func_addr(func if func_index is None else func_index)
        call = M2Call(func=func, issued_ns=start)

        ack_time = self.device.host_write(
            start + HOST_UNCACHED_PATH_NS, addr, payload
        )
        call.ack_ns = ack_time

        def issue_read() -> None:
            def on_response(data: bytes, when_ns: float) -> None:
                value = struct.unpack("<q", data[:8])[0]
                call._complete(value, when_ns + HOST_UNCACHED_PATH_NS)

            self.device.host_read(
                self.sim.now + HOST_UNCACHED_PATH_NS, addr, 8, on_response
            )

        # The fence orders the read after the write's ack.
        self.sim.schedule_at(ack_time, issue_read)
        return call

    def _await(self, call: M2Call) -> int:
        """Step the simulator until the call resolves (blocking style)."""
        while not call.done:
            if not self.sim.step():
                raise SimulationError(
                    f"M2func call {call.func} never completed (deadlock?)"
                )
        self.now = max(self.now, call.done_ns or 0.0)
        if call.value is None:
            raise ProtocolError(
                f"M2func call {call.func} resolved without a response"
            )
        return call.value

    # ------------------------------------------------------------------
    # Table II API — blocking style
    # ------------------------------------------------------------------

    def register_kernel(self, kernel: KernelProgram | str,
                        scratchpad_bytes: int = 0,
                        name: str = "kernel") -> int:
        """ndpRegisterKernel: returns the kernel ID (or raises on ERR)."""
        if isinstance(kernel, str):
            kernel = assemble_kernel(kernel, name=name)
        code_loc = self._next_code_loc
        self._next_code_loc += 0x1000
        self.device.install_code(code_loc, kernel)
        usage = kernel.usage
        payload = pack_args(code_loc, scratchpad_bytes, usage.int_regs,
                            usage.float_regs, usage.vector_regs)
        value = self._await(self.call_async(FUNC_REGISTER, payload))
        if value < 0:
            raise LaunchError(f"ndpRegisterKernel failed with {value}", value)
        return value

    def unregister_kernel(self, kernel_id: int) -> None:
        value = self._await(
            self.call_async(FUNC_UNREGISTER, pack_args(kernel_id))
        )
        if value < 0:
            raise LaunchError(f"ndpUnregisterKernel failed with {value}", value)

    def launch_kernel(self, kernel_id: int, pool_base: int, pool_bound: int,
                      args: bytes = b"", sync: bool = True,
                      stride: int = 32) -> LaunchHandle:
        """ndpLaunchKernel (blocking).

        With ``sync=True`` the return-value read responds only after the
        kernel finishes, so this returns with the kernel done and
        ``handle.complete_ns`` set.  With ``sync=False`` it returns as soon
        as the instance ID is known.
        """
        handle = self.launch_async(kernel_id, pool_base, pool_bound, args,
                                   sync=sync, stride=stride)
        self._await(handle.call)
        if handle.call.value is not None and handle.call.value < 0:
            raise LaunchError(
                f"ndpLaunchKernel failed with {handle.call.value}",
                handle.call.value,
            )
        handle.instance_id = handle.call.value
        if sync:
            handle.complete_ns = handle.call.done_ns
        return handle

    def launch_async(self, kernel_id: int, pool_base: int, pool_bound: int,
                     args: bytes = b"", sync: bool = False, stride: int = 32,
                     at_ns: float | None = None,
                     on_complete: Callable[[LaunchHandle], None] | None = None,
                     offset_bias: int = 0,
                     partition: int | None = None) -> LaunchHandle:
        """ndpLaunchKernel (non-blocking): callbacks fire from sim events.

        ``offset_bias`` (cluster extension, see :mod:`repro.cluster`) shifts
        every body µthread's ``x2`` so a sub-launch over a slice of a larger
        logical pool computes the same offsets a whole-pool launch would.
        ``partition`` (hardware-partitioning extension, see
        :mod:`repro.cluster.partitions`) binds the launch to one partition
        of a partitioned device.  With both left at their defaults the
        payload is byte-identical to the plain Table II call.
        """
        flags = LAUNCH_FLAG_SYNC if sync else 0
        header = [flags, kernel_id, pool_base, pool_bound, stride, len(args)]
        if offset_bias:
            header[0] |= LAUNCH_FLAG_OFFSET_BIAS
            header.append(offset_bias)
        if partition is not None:
            header[0] |= LAUNCH_FLAG_PARTITION
            header.append(partition)
        payload = pack_args(*header) + args
        if not self._free_launch_slots:
            raise SimulationError(
                f"all {FUNC_LAUNCH_SLOTS} launch doorbell slots in flight; "
                "throttle concurrent launch_async calls"
            )
        slot = self._free_launch_slots.popleft()
        call = self.call_async(FUNC_LAUNCH, payload, at_ns=at_ns,
                               func_index=FUNC_LAUNCH_SLOT_BASE + slot)
        call.on_done(lambda _c: self._free_launch_slots.append(slot))
        handle = LaunchHandle(call=call)

        def on_value(resolved: M2Call) -> None:
            if resolved.value is None or resolved.value < 0:
                return
            handle.instance_id = resolved.value
            if sync:
                handle.complete_ns = resolved.done_ns
                if on_complete is not None:
                    on_complete(handle)
            else:
                def kernel_done(when_ns: float) -> None:
                    handle.complete_ns = when_ns
                    if on_complete is not None:
                        on_complete(handle)

                self.device.controller.add_completion_waiter(
                    handle.instance_id, kernel_done
                )

        call.on_done(on_value)
        return handle

    def poll_kernel_status(self, instance_id: int) -> KernelStatus:
        value = self._await(self.call_async(FUNC_POLL, pack_args(instance_id)))
        if value < 0:
            raise LaunchError(f"ndpPollKernelStatus failed with {value}", value)
        return KernelStatus(value)

    def shootdown_tlb(self, asid: int, vpn: int) -> None:
        value = self._await(
            self.call_async(FUNC_SHOOTDOWN, pack_args(asid, vpn))
        )
        if value < 0:
            raise LaunchError(f"ndpShootdownTlbEntry failed with {value}", value)

    # ------------------------------------------------------------------

    def wait_all(self) -> float:
        """Drain the simulator (finish all outstanding work); returns time."""
        self.sim.run()
        self.now = max(self.now, self.sim.now)
        return self.now

    def run_kernel(self, source: str | KernelProgram, pool_base: int,
                   pool_bound: int, args: bytes = b"",
                   scratchpad_bytes: int = 0, stride: int = 32,
                   name: str = "kernel"):
        """Register + launch synchronously; returns the finished instance."""
        kid = self.register_kernel(source, scratchpad_bytes, name=name)
        handle = self.launch_kernel(kid, pool_base, pool_bound, args,
                                    sync=True, stride=stride)
        if handle.instance_id is None:
            raise LaunchError(
                f"synchronous launch of kernel {kid} finished without "
                "an instance id"
            )
        return self.device.controller.instances[handle.instance_id]
