"""GPU model: host baseline (passive CXL memory) and GPU-NDP variants.

Substituting for Accel-Sim (DESIGN.md), this models the effects the paper's
GPU results hinge on:

* **warp-granularity FGMT** on each SM: 4 warp schedulers issue one
  instruction per warp per cycle; a warp's instructions serialize;
* **threadblock-granularity resource allocation**: an SM's warp slots,
  registers and shared memory are claimed per TB and released only when
  the *whole* TB finishes — the inter-warp-divergence waste of §III-D (A2)
  and Fig 6a;
* **memory divergence**: each warp memory instruction touches a
  workload-derived number of 32 B sectors (intra-warp divergence, A4);
* **shared-memory scope**: per-TB private scratch requires per-TB flushes
  to global memory (Fig 6b's traffic amplification for HISTO);
* the **CXL link bottleneck** when data lives in passive CXL memory, vs.
  internal DRAM bandwidth for GPU-NDP.

Workload modules provide a :class:`GPUKernelSpec` whose ``warp_profile``
callback is computed from the *actual generated data* (e.g. CSR row lengths
drive per-warp work skew for PGRANK), so divergence effects are not
hand-tuned constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro.config import GPUConfig, SystemConfig
from repro.mem.dram import DRAMModel
from repro.cxl.link import CXLLink
from repro.cxl.protocol import CXLPacket, PacketType
from repro.sim.engine import IssueServer, Simulator
from repro.sim.stats import IntervalSampler, StatsRegistry

SECTOR = 32

#: Default kernel-launch overhead for GPU-NDP configurations (CXL.io direct
#: MMIO, §IV-A).  The host-local baseline GPU pays a small local launch cost.
CXLIO_DR_LAUNCH_NS = 1_500.0
LOCAL_LAUNCH_NS = 300.0


@dataclass
class WarpProfile:
    """Synthetic instruction stream of one warp.

    ``mlp`` is the warp's memory-level parallelism: how many of its memory
    instructions can be in flight at once (independent streaming loads
    pipeline through the scoreboard; address-dependent chains cannot).
    """

    instructions: int
    mem_ops: list[tuple[int, bool]]   # (sectors touched, is_write)
    active_lane_ratio: float = 1.0
    mlp: int = 1


@dataclass
class GPUKernelSpec:
    """What a workload tells the GPU model to run."""

    name: str
    total_warps: int
    warps_per_tb: int
    warp_profile: Callable[[int], WarpProfile]
    regs_per_thread: int = 32
    shared_mem_per_tb: int = 0
    #: extra global traffic when a TB retires (e.g. merging its private
    #: shared-memory histogram into global bins), in bytes
    tb_flush_bytes: int = 0

    @property
    def total_tbs(self) -> int:
        return (self.total_warps + self.warps_per_tb - 1) // self.warps_per_tb


class GPUMemorySystem:
    """Memory path for GPU warps: optional CXL link + a DRAM model."""

    def __init__(self, dram: DRAMModel, link: CXLLink | None = None,
                 ltu_extra_ns: float = 0.0) -> None:
        self.dram = dram
        self.link = link
        self.ltu_extra_ns = ltu_extra_ns
        self._cursor = 0

    def access(self, now_ns: float, sectors: int, is_write: bool) -> float:
        """One warp memory instruction touching ``sectors`` 32 B sectors."""
        size = sectors * SECTOR
        if size <= 0:
            return now_ns
        if self.link is None:
            return self.dram.access(self._next_addr(size), size, now_ns,
                                    is_write)
        # Passive CXL memory: request over the link, DRAM on the device,
        # data back over the link.
        if is_write:
            packet = CXLPacket(PacketType.MEM_WR, 0, size, data=b"")
            arrival = self.link.send_to_device(now_ns, packet)
            self.dram.access(self._next_addr(size), size, arrival, True)
            return now_ns + 1.0      # posted write
        request = CXLPacket(PacketType.MEM_RD, 0, 16)
        arrival = self.link.send_to_device(now_ns, request)
        data_ready = self.dram.access(
            self._next_addr(size), size, arrival + self.ltu_extra_ns, False
        )
        response = CXLPacket(PacketType.MEM_RD_RESP, 0, size, data=b"")
        # approximate wire occupancy without materializing payloads
        finish = self.link.send_to_host(data_ready, response)
        return finish + self.ltu_extra_ns

    def _next_addr(self, size: int) -> int:
        """Streaming address generator: walks the space so the banked DRAM
        model sees realistic row locality."""
        addr = self._cursor
        self._cursor = (addr + size) % (1 << 34)
        return addr


@dataclass
class _Warp:
    profile: WarpProfile
    tb_id: int
    ready_ns: float
    mem_index: int = 0
    instr_remaining: int = 0
    outstanding: list = None  # completion times of in-flight loads

    def __post_init__(self) -> None:
        self.instr_remaining = self.profile.instructions
        self.outstanding = []


class _TBState:
    def __init__(self, tb_id: int, warps: int) -> None:
        self.tb_id = tb_id
        self.warps_outstanding = warps


class StreamingMultiprocessor:
    """One SM running warps with TB-granularity slot allocation."""

    def __init__(self, index: int, config: GPUConfig, sim: Simulator,
                 memsys: GPUMemorySystem, stats: StatsRegistry) -> None:
        self.index = index
        self.config = config
        self.sim = sim
        self.memsys = memsys
        self.stats = stats
        period = config.clock.period_ns
        self.period_ns = period
        self.scheduler = IssueServer(width=config.issue_width, period_ns=period)
        self.warps_active = 0
        self.tbs_active = 0
        self.shared_mem_used = 0
        self.regs_used = 0
        self.sampler = IntervalSampler()

    # -- resource accounting -------------------------------------------------

    def can_host_tb(self, spec: GPUKernelSpec) -> bool:
        regs_needed = (spec.regs_per_thread * 4
                       * spec.warps_per_tb * self.config.warp_size)
        return (
            self.warps_active + spec.warps_per_tb <= self.config.max_warps_per_sm
            and self.tbs_active + 1 <= self.config.max_threadblocks_per_sm
            and self.shared_mem_used + spec.shared_mem_per_tb
            <= self.config.shared_mem_bytes_per_sm
            and self.regs_used + regs_needed <= self.config.regfile_bytes_per_sm
        )

    def admit_tb(self, spec: GPUKernelSpec, warps: int, now_ns: float) -> None:
        self.warps_active += warps
        self.tbs_active += 1
        self.shared_mem_used += spec.shared_mem_per_tb
        self.regs_used += (spec.regs_per_thread * 4 * warps
                           * self.config.warp_size)
        self.sample(now_ns)

    def retire_tb(self, spec: GPUKernelSpec, warps: int, now_ns: float) -> None:
        self.warps_active -= warps
        self.tbs_active -= 1
        self.shared_mem_used -= spec.shared_mem_per_tb
        self.regs_used -= (spec.regs_per_thread * 4 * warps
                           * self.config.warp_size)
        self.sample(now_ns)

    def sample(self, now_ns: float) -> None:
        self.sampler.record(now_ns,
                            self.warps_active / self.config.max_warps_per_sm)

    # -- warp execution ------------------------------------------------------

    def issue_chunk(self, ready_ns: float, instructions: int) -> float:
        """Issue ``instructions`` serial instructions of one warp."""
        if instructions <= 0:
            return ready_ns
        start = max(ready_ns, self.scheduler.next_free(ready_ns))
        for _ in range(instructions):
            self.scheduler.issue(start)
        self.stats.add("gpu.instructions", instructions)
        return start + instructions * self.period_ns


@dataclass
class GPUKernelResult:
    spec: GPUKernelSpec
    launch_overhead_ns: float
    start_ns: float = 0.0
    complete_ns: float = 0.0

    @property
    def kernel_ns(self) -> float:
        return self.complete_ns - self.start_ns

    @property
    def total_ns(self) -> float:
        return self.kernel_ns + self.launch_overhead_ns


class GPUDevice:
    """A GPU (or GPU-NDP block): SMs + memory system + TB dispatcher."""

    def __init__(self, sim: Simulator, config: GPUConfig,
                 memsys: GPUMemorySystem,
                 stats: StatsRegistry | None = None,
                 launch_overhead_ns: float = LOCAL_LAUNCH_NS) -> None:
        self.sim = sim
        self.config = config
        self.memsys = memsys
        self.stats = stats if stats is not None else StatsRegistry()
        self.launch_overhead_ns = launch_overhead_ns
        self.sms = [
            StreamingMultiprocessor(i, config, sim, memsys, self.stats)
            for i in range(config.num_sms)
        ]

    # ------------------------------------------------------------------

    def launch(self, spec: GPUKernelSpec, at_ns: float = 0.0,
               on_complete: Callable[[GPUKernelResult], None] | None = None,
               ) -> GPUKernelResult:
        """Dispatch all TBs of a kernel; completion via the simulator."""
        result = GPUKernelResult(spec=spec,
                                 launch_overhead_ns=self.launch_overhead_ns)
        start = at_ns + self.launch_overhead_ns
        result.start_ns = start
        state = _KernelRun(self, spec, result, on_complete)
        self.sim.schedule_at(start, partial(state.fill_all, start))
        return result


class _KernelRun:
    """Dispatch bookkeeping for one GPU kernel."""

    def __init__(self, device: GPUDevice, spec: GPUKernelSpec,
                 result: GPUKernelResult,
                 on_complete: Callable[[GPUKernelResult], None] | None) -> None:
        self.device = device
        self.spec = spec
        self.result = result
        self.on_complete = on_complete
        self.next_tb = 0
        self.warps_outstanding = 0
        self.tbs_outstanding = 0
        self.complete_ns = 0.0

    # -- TB dispatch -------------------------------------------------------

    def fill_all(self, now_ns: float) -> None:
        for sm in self.device.sms:
            self.fill_sm(sm, now_ns)

    def fill_sm(self, sm: StreamingMultiprocessor, now_ns: float) -> None:
        spec = self.spec
        while self.next_tb < spec.total_tbs and sm.can_host_tb(spec):
            tb_id = self.next_tb
            self.next_tb += 1
            first_warp = tb_id * spec.warps_per_tb
            warps = min(spec.warps_per_tb, spec.total_warps - first_warp)
            sm.admit_tb(spec, warps, now_ns)
            tb = _TBState(tb_id, warps)
            self.tbs_outstanding += 1
            for w in range(warps):
                profile = spec.warp_profile(first_warp + w)
                warp = _Warp(profile=profile, tb_id=tb_id, ready_ns=now_ns)
                self.warps_outstanding += 1
                self.device.sim.schedule_at(
                    now_ns, partial(self.run_warp, warp, sm, tb)
                )

    # -- warp advance ---------------------------------------------------------

    def run_warp(self, warp: _Warp, sm: StreamingMultiprocessor,
                 tb: _TBState) -> None:
        profile = warp.profile
        mem_ops = profile.mem_ops
        remaining_mem = len(mem_ops) - warp.mem_index
        if remaining_mem > 0:
            chunk = warp.instr_remaining // (remaining_mem + 1)
        else:
            chunk = warp.instr_remaining
        t = sm.issue_chunk(warp.ready_ns, chunk)
        warp.instr_remaining -= chunk

        if remaining_mem > 0:
            sectors, is_write = mem_ops[warp.mem_index]
            warp.mem_index += 1
            done = sm.memsys.access(t, sectors, is_write)
            sm.stats.add("gpu.mem_bytes", sectors * SECTOR)
            if is_write:
                # posted write: continue immediately
                warp.ready_ns = t + sm.period_ns
            else:
                warp.outstanding.append(done)
                if len(warp.outstanding) >= max(profile.mlp, 1):
                    # scoreboard full: stall until the oldest load returns
                    warp.ready_ns = warp.outstanding.pop(0)
                else:
                    warp.ready_ns = t + sm.period_ns
            warp.ready_ns = max(warp.ready_ns, self.device.sim.now)
            self.device.sim.schedule_at(
                warp.ready_ns, partial(self.run_warp, warp, sm, tb)
            )
            return

        # drain outstanding loads and tail instructions, retire the warp
        if warp.outstanding:
            t = max(t, max(warp.outstanding))
            warp.outstanding.clear()
        t = sm.issue_chunk(t, warp.instr_remaining)
        warp.instr_remaining = 0
        self.finish_warp(sm, tb, t)

    def finish_warp(self, sm: StreamingMultiprocessor, tb: _TBState,
                    now_ns: float) -> None:
        self.warps_outstanding -= 1
        tb.warps_outstanding -= 1
        now = max(now_ns, self.device.sim.now)
        if tb.warps_outstanding == 0:
            if self.spec.tb_flush_bytes:
                sm.memsys.access(now, self.spec.tb_flush_bytes // SECTOR, True)
                sm.stats.add("gpu.tb_flush_bytes", self.spec.tb_flush_bytes)
            warps = min(self.spec.warps_per_tb,
                        self.spec.total_warps - tb.tb_id * self.spec.warps_per_tb)
            sm.retire_tb(self.spec, warps, now)
            self.tbs_outstanding -= 1
            self.fill_sm(sm, now)
        self.complete_ns = max(self.complete_ns, now_ns)
        if self.warps_outstanding == 0 and self.next_tb >= self.spec.total_tbs:
            self.result.complete_ns = self.complete_ns
            if self.on_complete is not None:
                self.on_complete(self.result)


# ---------------------------------------------------------------------------
# factory helpers for the named configurations of §IV-A
# ---------------------------------------------------------------------------

def make_gpu_baseline(sim: Simulator, system: SystemConfig,
                      stats: StatsRegistry | None = None) -> GPUDevice:
    """Host GPU with workload data in passive CXL memory."""
    stats = stats if stats is not None else StatsRegistry()
    dram = DRAMModel(system.cxl_dram, stats, "gpubase_dram")
    link = CXLLink(system.cxl, stats, "gpubase_cxl")
    extra = max(0.0, (system.cxl.load_to_use_ns - 150.0) / 2.0)
    memsys = GPUMemorySystem(dram, link, ltu_extra_ns=extra)
    return GPUDevice(sim, system.gpu, memsys, stats,
                     launch_overhead_ns=LOCAL_LAUNCH_NS)


def make_gpu_ndp(sim: Simulator, system: SystemConfig, num_sms: float,
                 stats: StatsRegistry | None = None,
                 freq_ghz: float = 2.0) -> GPUDevice:
    """GPU-NDP: SMs inside the CXL device on internal LPDDR5 (§IV-A)."""
    from repro.config import gpu_ndp_config

    stats = stats if stats is not None else StatsRegistry()
    config = gpu_ndp_config(num_sms, freq_ghz)
    dram = DRAMModel(system.cxl_dram, stats, "gpundp_dram")
    memsys = GPUMemorySystem(dram, link=None)
    return GPUDevice(sim, config, memsys, stats,
                     launch_overhead_ns=CXLIO_DR_LAUNCH_NS)
