"""NDP offloading mechanisms: M2func vs CXL.io ring buffer vs direct MMIO.

Fig 5 of the paper compares three ways to launch an NDP kernel and observe
its completion, with one-way latencies x (CXL.mem), y (CXL.io) and kernel
time z:

* **M2func** (Fig 5a): write + ack (CXL.mem), kernel, read + response.
  The fence/barrier overlaps with the kernel; total ≈ z + 2x.
* **CXL.io ring buffer** (Fig 5b): doorbell write, command-pointer DMA,
  command DMA, repeated for launch and error check → ≈ 5y before the
  kernel and 3y after: total ≈ z + 8y.  Concurrent kernels allowed.
* **CXL.io direct MMIO registers** (Fig 5c): one register write before,
  poll after → ≈ z + 3y, but the register pair is a single physical
  resource: only one kernel may be in flight at a time (§II-C).

The mechanism objects wrap a live device and reproduce end-to-end launch
timing in simulation; :func:`timeline` is the closed-form Fig 5 model used
by the fig5 bench.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from repro.host.api import LaunchHandle, M2Call, M2NDPRuntime, pack_args
from repro.ndp.controller import FUNC_LAUNCH

#: One-way latency defaults (§IV-A / Fig 5): x = 75 ns CXL.mem,
#: y = 500 ns CXL.io (from ~1 µs DMA).
CXL_MEM_ONE_WAY_NS = 75.0
CXL_IO_ONE_WAY_NS = 500.0


@dataclass(frozen=True)
class OffloadTimeline:
    """Closed-form Fig 5 decomposition."""

    pre_kernel_ns: float
    post_kernel_ns: float
    kernel_ns: float

    @property
    def total_ns(self) -> float:
        return self.pre_kernel_ns + self.kernel_ns + self.post_kernel_ns

    @property
    def overhead_ns(self) -> float:
        return self.pre_kernel_ns + self.post_kernel_ns


def timeline(mechanism: str, kernel_ns: float,
             x_ns: float = CXL_MEM_ONE_WAY_NS,
             y_ns: float = CXL_IO_ONE_WAY_NS) -> OffloadTimeline:
    """Fig 5's analytic timelines: total = z+2x / z+8y / z+3y."""
    if mechanism == "m2func":
        return OffloadTimeline(pre_kernel_ns=x_ns, post_kernel_ns=x_ns,
                               kernel_ns=kernel_ns)
    if mechanism == "cxl_io_rb":
        return OffloadTimeline(pre_kernel_ns=5 * y_ns, post_kernel_ns=3 * y_ns,
                               kernel_ns=kernel_ns)
    if mechanism == "cxl_io_dr":
        return OffloadTimeline(pre_kernel_ns=y_ns, post_kernel_ns=2 * y_ns,
                               kernel_ns=kernel_ns)
    raise ValueError(f"unknown offload mechanism {mechanism!r}")


class OffloadPath:
    """Launches kernels on a device through a particular mechanism."""

    name = "abstract"
    supports_concurrency = True

    def launch(self, runtime: M2NDPRuntime, kernel_id: int, pool_base: int,
               pool_bound: int, args: bytes = b"", stride: int = 32,
               at_ns: float = 0.0,
               on_complete: Callable[[LaunchHandle], None] | None = None,
               ) -> LaunchHandle:
        raise NotImplementedError


class M2FuncOffload(OffloadPath):
    """The paper's mechanism: full CXL.mem M2func simulation."""

    name = "m2func"

    def launch(self, runtime, kernel_id, pool_base, pool_bound, args=b"",
               stride=32, at_ns=0.0, on_complete=None) -> LaunchHandle:
        return runtime.launch_async(
            kernel_id, pool_base, pool_bound, args, sync=False,
            stride=stride, at_ns=at_ns, on_complete=on_complete,
        )


class _CXLioPath(OffloadPath):
    """Shared logic for the CXL.io paths: fixed pre/post overheads around a
    direct controller launch (these paths bypass the packet filter)."""

    pre_ns = 0.0
    post_ns = 0.0

    def _gate(self, at_ns: float, start_fn: Callable[[float], None]) -> None:
        """Admission control; default is no restriction."""
        start_fn(at_ns)

    def _release(self, handle: LaunchHandle, observed_ns: float) -> None:
        pass

    def launch(self, runtime, kernel_id, pool_base, pool_bound, args=b"",
               stride=32, at_ns=0.0, on_complete=None) -> LaunchHandle:
        device = runtime.device
        call = M2Call(func=-1, issued_ns=at_ns)
        handle = LaunchHandle(call=call)

        def do_launch() -> None:
            payload = pack_args(0, kernel_id, pool_base, pool_bound, stride,
                                len(args)) + args
            launch_addr = runtime.func_addr(FUNC_LAUNCH)
            device.controller.handle_write(
                runtime.filter_entry, launch_addr, payload, device.sim.now
            )
            raw = device.physical.read_bytes(launch_addr, 8)
            instance_id = struct.unpack("<q", raw)[0]
            call._complete(instance_id, device.sim.now)
            handle.instance_id = instance_id
            if instance_id < 0:
                self._release(handle, device.sim.now)
                return

            def kernel_done(when_ns: float) -> None:
                observed = when_ns + self.post_ns
                handle.complete_ns = observed
                self._release(handle, observed)
                if on_complete is not None:
                    device.sim.schedule_at(observed,
                                           lambda: on_complete(handle))

            device.controller.add_completion_waiter(instance_id, kernel_done)

        def start(when_ns: float) -> None:
            device.sim.schedule_at(max(when_ns, device.sim.now) + self.pre_ns,
                                   do_launch)

        self._gate(at_ns, start)
        return handle


class CXLioRingBufferOffload(_CXLioPath):
    """Ring-buffer scheme (Fig 5b): ~2.5 µs before, ~1.5 µs after."""

    name = "cxl_io_rb"
    supports_concurrency = True
    pre_ns = 5 * CXL_IO_ONE_WAY_NS
    post_ns = 3 * CXL_IO_ONE_WAY_NS


class CXLioDirectOffload(_CXLioPath):
    """Direct MMIO registers (Fig 5c): ~0.5 µs before, ~1 µs after, and the
    single register pair serializes launches: the next kernel may only be
    written once the previous one's completion has been observed."""

    name = "cxl_io_dr"
    supports_concurrency = False
    pre_ns = CXL_IO_ONE_WAY_NS
    post_ns = 2 * CXL_IO_ONE_WAY_NS

    def __init__(self) -> None:
        self._register_free = True
        self._waiting: list[tuple[float, Callable[[float], None]]] = []

    def _gate(self, at_ns: float, start_fn: Callable[[float], None]) -> None:
        if self._register_free:
            self._register_free = False
            start_fn(at_ns)
        else:
            self._waiting.append((at_ns, start_fn))

    def _release(self, handle: LaunchHandle, observed_ns: float) -> None:
        if self._waiting:
            requested_ns, start_fn = self._waiting.pop(0)
            start_fn(max(requested_ns, observed_ns))
        else:
            self._register_free = True


def make_offload_path(name: str) -> OffloadPath:
    """Factory keyed by the names used across experiments and benches."""
    paths = {
        "m2func": M2FuncOffload,
        "cxl_io_rb": CXLioRingBufferOffload,
        "cxl_io_dr": CXLioDirectOffload,
    }
    if name not in paths:
        raise ValueError(f"unknown offload mechanism {name!r}")
    return paths[name]()
