"""Host-side models: runtime API, offload paths, CPU/GPU/NSU/DSA baselines."""

from repro.host.api import (
    HDMAllocator,
    LaunchHandle,
    M2Call,
    M2NDPRuntime,
    pack_args,
)
from repro.host.cpu import CoreRequestPool, HostCPUModel, MemoryTarget
from repro.host.dsa import ALL_PES, DomainSpecificPE, pe_for_workload
from repro.host.gpu import (
    GPUDevice,
    GPUKernelResult,
    GPUKernelSpec,
    GPUMemorySystem,
    StreamingMultiprocessor,
    WarpProfile,
    make_gpu_baseline,
    make_gpu_ndp,
)
from repro.host.nsu import NSUModel, NSUWorkload
from repro.host.offload import (
    CXLioDirectOffload,
    CXLioRingBufferOffload,
    M2FuncOffload,
    OffloadPath,
    OffloadTimeline,
    make_offload_path,
    timeline,
)

__all__ = [
    "ALL_PES",
    "CXLioDirectOffload",
    "CXLioRingBufferOffload",
    "CoreRequestPool",
    "DomainSpecificPE",
    "GPUDevice",
    "GPUKernelResult",
    "GPUKernelSpec",
    "GPUMemorySystem",
    "HDMAllocator",
    "HostCPUModel",
    "LaunchHandle",
    "M2Call",
    "M2FuncOffload",
    "M2NDPRuntime",
    "MemoryTarget",
    "NSUModel",
    "NSUWorkload",
    "OffloadPath",
    "OffloadTimeline",
    "StreamingMultiprocessor",
    "WarpProfile",
    "make_gpu_baseline",
    "make_gpu_ndp",
    "make_offload_path",
    "pack_args",
    "pe_for_workload",
    "timeline",
]
