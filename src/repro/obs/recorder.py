"""Flight recorder: a bounded ring buffer of lightweight event records.

Full span tracing (``REPRO_TRACE=1``) is too heavy to leave on in
production; the flight recorder is the always-on complement.  It keeps
the *last N* noteworthy events — serving launches, retries and
failures, per-device scheduler issue decisions, fault injections,
detections and recovery actions — in a fixed-size
:class:`collections.deque`, so memory stays bounded no matter how long
the run and the hot path costs one attribute check when monitoring is
off (``runtime.recorder is None``) and one ``deque.append`` when it is
on.  No wall clock is ever read: records carry simulated timestamps
and a monotone sequence number, so the ring's contents are
byte-identical across identical runs.

When an incident fires, :class:`~repro.obs.incidents.IncidentReporter`
snapshots the ring into the bundle — the "what happened just before"
context a final report cannot reconstruct.

``REPRO_RECORDER_CAPACITY`` (int >= 1, default 256) sizes the ring;
the explicit constructor argument wins, matching every other
``REPRO_*`` knob.
"""

from __future__ import annotations

import os
from collections import deque

from repro.errors import ConfigError

#: Default ring capacity: enough to hold the full fault->detect->recover
#: neighborhood of an incident on a small cluster without growing the
#: per-record cost of a long healthy run.
DEFAULT_RECORDER_CAPACITY = 256


def resolve_recorder_capacity(explicit: int | None) -> int:
    """Explicit argument > REPRO_RECORDER_CAPACITY env > default (256)."""
    def check(value: int, source: str) -> int:
        if value < 1:
            raise ConfigError(
                f"recorder capacity must be >= 1 (from {source}), "
                f"got {value}"
            )
        return value

    if explicit is not None:
        return check(int(explicit), "recorder_capacity argument")
    env = os.environ.get("REPRO_RECORDER_CAPACITY")
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            raise ConfigError(
                f"REPRO_RECORDER_CAPACITY must be an integer, got {env!r}"
            ) from None
        return check(value, "REPRO_RECORDER_CAPACITY environment variable")
    return DEFAULT_RECORDER_CAPACITY


class EventRecord:
    """One ring entry.  Slotted: the recorder holds thousands of these."""

    __slots__ = ("seq", "t_ns", "kind", "device", "tenant", "detail")

    def __init__(self, seq: int, t_ns: float, kind: str,
                 device: int | None, tenant: str | None,
                 detail: dict) -> None:
        self.seq = seq
        self.t_ns = t_ns
        self.kind = kind
        self.device = device
        self.tenant = tenant
        self.detail = detail

    def to_dict(self) -> dict:
        row = {"seq": self.seq, "t_ns": self.t_ns, "kind": self.kind}
        if self.device is not None:
            row["device"] = self.device
        if self.tenant is not None:
            row["tenant"] = self.tenant
        if self.detail:
            row["detail"] = dict(self.detail)
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventRecord(seq={self.seq}, t_ns={self.t_ns}, "
                f"kind={self.kind!r}, device={self.device}, "
                f"tenant={self.tenant!r})")


class FlightRecorder:
    """Bounded ring of :class:`EventRecord` (oldest evicted first)."""

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = resolve_recorder_capacity(capacity)
        self._ring: deque[EventRecord] = deque(maxlen=self.capacity)
        self._seq = 0
        #: Records evicted to make room (ring was full when they aged out).
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`record` call will get."""
        return self._seq

    def record(self, kind: str, t_ns: float, device: int | None = None,
               tenant: str | None = None, **detail) -> None:
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append(EventRecord(self._seq, float(t_ns), kind, device,
                                tenant, detail))
        self._seq += 1

    def events(self, kinds: tuple[str, ...] | None = None,
               since_seq: int = 0) -> list[EventRecord]:
        """Ring contents in arrival order, optionally filtered."""
        return [record for record in self._ring
                if record.seq >= since_seq
                and (kinds is None or record.kind in kinds)]

    def snapshot(self) -> list[dict]:
        """JSON-ready copy of the ring, oldest first (deterministic)."""
        return [record.to_dict() for record in self._ring]
