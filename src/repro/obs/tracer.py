"""Sim-time hierarchical span tracing for the whole stack.

One :class:`Tracer` per :class:`~repro.sim.engine.Simulator` (all devices
behind one switch share a simulator, so one trace stitches a serving
request across the cluster).  Spans carry *simulated* nanosecond
timestamps — the tracer never reads the wall clock — and form a tree:

* ``serve.request`` (root, one per admitted request) owns the
  ``serve.queue`` / ``serve.batch_wait`` / ``serve.inflight`` stages;
* ``serve.launch`` -> ``cluster.launch`` -> per-device
  ``cluster.sub_launch`` (with ``cxl.p2p`` / ``cxl.fanout`` charge
  spans) descend from the first request of the batch;
* the execution backends record ``exec.batched`` / ``exec.simt`` /
  ``exec.point`` / ``exec.interpreter`` launch spans (with
  ``mem.charge`` children for the bulk L2/DRAM window and trace-cache
  hit/miss instants).

Because completion happens in scheduled callbacks — not on a call stack —
the API is explicit begin/end with span ids rather than a context
manager: :meth:`Tracer.begin` returns an id, :meth:`Tracer.end` closes
it, and :meth:`Tracer.record` logs an already-bounded span.  The
synchronous form :meth:`Tracer.span` (a context manager) exists for
straight-line sections.

Cross-device stitching: a cluster sub-launch only learns its device-side
kernel instance id when the M2func read resolves, *after* the backend
may have recorded the execution's span.  Both sides therefore meet on a
``(pid, instance_id)`` key — the cluster registers the link with
:meth:`Tracer.link_instance`, backends tag their spans with
``instance=...``, and :meth:`Tracer.finalize` resolves parents and
swim-lanes in one pass at export time.

Overhead discipline: tracing is **off by default** (``REPRO_TRACE=0``).
Instrumented hot paths guard every span with ``if tracer_mod.ENABLED:``
— a module-attribute load and branch, nothing else.  ``REPRO_TRACE``
accepts only ``0`` or ``1``; anything else raises
:class:`~repro.errors.ConfigError` at import, matching the other
``REPRO_*`` knobs.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import ConfigError

#: pid of the serving/cluster host process in exported traces; devices
#: are pid ``1 + device_index`` (``M2NDPDevice.trace_pid``).
HOST_PID = 0


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_TRACE", "0")
    if raw not in ("0", "1"):
        raise ConfigError(
            f"REPRO_TRACE must be '0' or '1', got {raw!r} "
            f"(from REPRO_TRACE environment variable)"
        )
    return raw == "1"


#: Module-level enabled flag.  Hot paths read this attribute directly;
#: :func:`set_enabled` flips it at runtime (the ``--trace`` flag, tests,
#: the smoke benchmark's on/off passes).
ENABLED: bool = _env_enabled()


def enabled() -> bool:
    return ENABLED


def set_enabled(on: bool) -> bool:
    """Flip tracing globally; returns the new state."""
    global ENABLED
    ENABLED = bool(on)
    return ENABLED


class Span:
    """One traced interval.  ``tid=None`` means "inherit the parent's
    swim-lane" (resolved by :meth:`Tracer.finalize`)."""

    __slots__ = ("span_id", "name", "start_ns", "end_ns", "parent_id",
                 "pid", "tid", "args", "instance_key")

    def __init__(self, span_id: int, name: str, start_ns: float,
                 parent_id: int | None, pid: int, tid: int | None,
                 args: dict, instance_key: tuple[int, int] | None) -> None:
        self.span_id = span_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns: float | None = None
        self.parent_id = parent_id
        self.pid = pid
        self.tid = tid
        self.args = args
        self.instance_key = instance_key

    @property
    def duration_ns(self) -> float:
        return (self.end_ns - self.start_ns) if self.end_ns is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.span_id}, {self.name!r}, "
                f"[{self.start_ns}, {self.end_ns}], parent={self.parent_id})")


class Tracer:
    """Span sink for one simulator (see module docstring for the model)."""

    def __init__(self) -> None:
        self.spans: dict[int, Span] = {}
        self._next_id = 1
        self._next_tid: dict[int, int] = {}
        #: (pid, instance_id) -> (parent span id, tid) registered by the
        #: cluster runtime once a sub-launch's instance id resolves.
        self._instance_links: dict[tuple[int, int], tuple[int, int]] = {}
        self._ctx_stack: list[int] = []
        self._finalized = False

    # -- recording ------------------------------------------------------

    def begin(self, name: str, start_ns: float, parent: int | None = None,
              pid: int = HOST_PID, tid: int | None = None,
              instance: int | None = None, **args) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        if parent is None and self._ctx_stack:
            parent = self._ctx_stack[-1]
        span_id = self._next_id
        self._next_id += 1
        key = (pid, instance) if instance is not None else None
        self.spans[span_id] = Span(span_id, name, float(start_ns), parent,
                                   pid, tid, args, key)
        self._finalized = False
        return span_id

    def end(self, span_id: int | None, end_ns: float, **args) -> None:
        """Close an open span (no-op for ``None`` — unadmitted stages)."""
        if span_id is None:
            return
        span = self.spans[span_id]
        span.end_ns = float(end_ns)
        if args:
            span.args.update(args)

    def record(self, name: str, start_ns: float, end_ns: float,
               parent: int | None = None, pid: int = HOST_PID,
               tid: int | None = None, instance: int | None = None,
               **args) -> int:
        """Log an already-bounded span in one call."""
        span_id = self.begin(name, start_ns, parent, pid, tid,
                             instance=instance, **args)
        self.end(span_id, end_ns)
        return span_id

    def instant(self, name: str, at_ns: float, parent: int | None = None,
                pid: int = HOST_PID, tid: int | None = None, **args) -> int:
        """Zero-duration marker (cache hits, admission verdicts)."""
        return self.record(name, at_ns, at_ns, parent, pid, tid, **args)

    @contextmanager
    def span(self, name: str, start_ns: float, end_ns_fn=None,
             parent: int | None = None, pid: int = HOST_PID,
             tid: int | None = None, **args):
        """Synchronous form: spans begun inside nest under this one.

        ``end_ns_fn`` (e.g. ``lambda: sim.now``) supplies the close time;
        it defaults to the start time (duration comes from the children).
        """
        span_id = self.begin(name, start_ns, parent, pid, tid, **args)
        self._ctx_stack.append(span_id)
        try:
            yield span_id
        finally:
            self._ctx_stack.pop()
            self.end(span_id,
                     end_ns_fn() if end_ns_fn is not None else start_ns)

    # -- swim-lanes and cross-device stitching --------------------------

    def alloc_tid(self, pid: int) -> int:
        """Next free swim-lane (Chrome ``tid``) for a process."""
        tid = self._next_tid.get(pid, 0)
        self._next_tid[pid] = tid + 1
        return tid

    def link_instance(self, pid: int, instance_id: int,
                      parent_span: int, tid: int) -> None:
        """Adopt device-side spans tagged ``instance=instance_id`` under
        ``parent_span`` on swim-lane ``tid`` (resolved at finalize)."""
        self._instance_links[(pid, instance_id)] = (parent_span, tid)

    # -- finalize --------------------------------------------------------

    def finalize(self) -> list[Span]:
        """Resolve instance-keyed parents and inherit swim-lanes.

        Idempotent; returns spans in creation order.  Open spans (a shed
        run cut short) are closed at their own start time so exporters
        never see ``end_ns=None``.
        """
        ordered = [self.spans[i] for i in sorted(self.spans)]
        if self._finalized:
            return ordered
        for span in ordered:
            if span.end_ns is None:
                span.end_ns = span.start_ns
            if span.parent_id is None and span.instance_key is not None:
                link = self._instance_links.get(span.instance_key)
                if link is not None:
                    span.parent_id, span.tid = link
        # lane inheritance walks parents (creation order guarantees a
        # parent is visited before its children for locally-parented
        # spans; instance-linked parents are already resolved above)
        for span in ordered:
            if span.tid is not None:
                continue
            parent = self.spans.get(span.parent_id) \
                if span.parent_id is not None else None
            if parent is not None and parent.pid == span.pid \
                    and parent.tid is not None:
                span.tid = parent.tid
            else:
                span.tid = self.alloc_tid(span.pid)
        self._finalized = True
        return ordered

    # -- views -----------------------------------------------------------

    def roots(self) -> list[Span]:
        self.finalize()
        return [s for s in self.spans.values() if s.parent_id is None]

    def children_of(self, span_id: int) -> list[Span]:
        self.finalize()
        return sorted((s for s in self.spans.values()
                       if s.parent_id == span_id),
                      key=lambda s: (s.start_ns, s.span_id))

    def aggregates(self) -> dict[str, dict[str, float]]:
        """Per-name count / total / self-time rollup (for manifests)."""
        spans = self.finalize()
        child_total: dict[int, float] = {}
        for span in spans:
            if span.parent_id is not None:
                child_total[span.parent_id] = (
                    child_total.get(span.parent_id, 0.0) + span.duration_ns
                )
        out: dict[str, dict[str, float]] = {}
        for span in spans:
            agg = out.setdefault(
                span.name, {"count": 0, "total_ns": 0.0, "self_ns": 0.0})
            agg["count"] += 1
            agg["total_ns"] += span.duration_ns
            agg["self_ns"] += max(
                span.duration_ns - child_total.get(span.span_id, 0.0), 0.0)
        return {name: out[name] for name in sorted(out)}


class _NullTracer:
    """Inert stand-in so call sites can be unconditional in cold paths."""

    def begin(self, *a, **k) -> None:
        return None

    def end(self, *a, **k) -> None:
        return None

    def record(self, *a, **k) -> None:
        return None

    def instant(self, *a, **k) -> None:
        return None

    def alloc_tid(self, pid: int) -> int:
        return 0

    def link_instance(self, *a, **k) -> None:
        return None


NULL_TRACER = _NullTracer()


def tracer_of(sim) -> Tracer:
    """The simulator's tracer, created on first use.

    Returns :data:`NULL_TRACER` while tracing is disabled so callers can
    hold one reference; hot paths should still branch on ``ENABLED``
    before touching the tracer at all.
    """
    if not ENABLED:
        return NULL_TRACER
    tracer = getattr(sim, "_obs_tracer", None)
    if tracer is None:
        tracer = sim._obs_tracer = Tracer()
    return tracer
