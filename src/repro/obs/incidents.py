"""Incident reporting: ring-buffer snapshots that explain themselves.

When something goes wrong — a monitor :class:`~repro.obs.monitor.Alert`
fires, a launch fails terminally, or the fault injector detects a dead
device — the :class:`IncidentReporter` freezes the moment: it snapshots
the :class:`~repro.obs.recorder.FlightRecorder` ring and the cluster's
counter registry into a JSON *incident bundle* (``incident-<seq>.json``)
holding the trigger, the fault -> detect -> recover timeline
reconstructed from the ring, the per-tenant blast radius, and — when a
:class:`~repro.faults.plan.FaultPlan` is armed — a correlation table
grading each planned fault with its detection latency (MTTD) and
recovery time (MTTR).  Chaos experiments therefore self-grade: the
bundle says which injected faults were caught, how fast, and what they
cost each tenant.

Bundles contain only simulated timestamps and deterministic counters —
no wall clock, no hostnames — so identical runs produce byte-identical
bundles.  A per-trigger-key cooldown (default one heartbeat) collapses
the alert storm of a single fault into one bundle.

Render a bundle with ``python -m repro.obs.incidents <bundle.json>``
(exit 2 on malformed input); grade an alert stream in-process with
:func:`grade_against_plan`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Bundle schema tag (bump on breaking layout changes).
INCIDENT_SCHEMA = "repro-incident-v1"

#: Default per-trigger-key refractory period: one fault-detection
#: heartbeat, so cascading symptoms of one fault share one bundle.
DEFAULT_COOLDOWN_NS = 5_000.0

#: Ring-event kinds that make up the incident timeline.
_TIMELINE_KINDS = (
    "fault.kill", "fault.stall", "fault.link_flap", "fault.poison",
    "fault.detect", "fault.timeout",
    "fault.partition_kill", "fault.partition_stall",
    "fault.partition_detect",
    "recovery.failover", "recovery.remap", "recovery.device_up",
    "recovery.partition_remap", "recovery.partition_up",
    "serve.retry", "serve.failed", "alert",
)

#: Plan-event kind -> ring kind marking the host's *detection* of it.
_DETECT_KINDS = {
    "device_fail": "fault.detect",
    "device_stall": "fault.stall",
    "link_flap": "fault.link_flap",
    "poison": "fault.poison",
}

#: Plan-event kind -> alert kinds that count as catching it.
_ALERT_KINDS = {
    "device_fail": ("device_down",),
    "device_stall": ("device_degraded",),
    "link_flap": ("device_degraded",),
    "poison": ("poison",),
}

#: Partition-scoped variants: the blast radius (and thus the alert) is
#: one partition, not the device.
_PARTITION_DETECT_KINDS = {
    "device_fail": "fault.partition_detect",
    "device_stall": "fault.partition_stall",
    "poison": "fault.poison",
}

_PARTITION_ALERT_KINDS = {
    "device_fail": ("partition_down",),
    "device_stall": ("partition_degraded",),
    "poison": ("poison",),
}


def _event_detect_kind(event) -> str:
    if getattr(event, "partition", None) is not None:
        return _PARTITION_DETECT_KINDS[event.kind]
    return _DETECT_KINDS[event.kind]


def _event_alert_kinds(event) -> tuple[str, ...]:
    if getattr(event, "partition", None) is not None:
        return _PARTITION_ALERT_KINDS[event.kind]
    return _ALERT_KINDS[event.kind]

#: Symptom alerts: attributable to *any* recent fault, not one kind.
_SYMPTOM_ALERTS = ("burn_rate", "p99")


class IncidentReporter:
    """Builds (and optionally writes) incident bundles on triggers."""

    def __init__(self, runtime, recorder, monitor=None,
                 out_dir: str | None = None,
                 cooldown_ns: float = DEFAULT_COOLDOWN_NS) -> None:
        self.runtime = runtime
        self.recorder = recorder
        self.monitor = monitor
        self.out_dir = out_dir
        self.cooldown_ns = cooldown_ns
        self.bundles: list[dict] = []
        self.paths: list[str] = []
        self._seq = 0
        self._last_fire: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------

    def on_alert(self, alert, now_ns: float) -> dict | None:
        key = ("alert", alert.kind, alert.tenant or "",
               -1 if alert.device is None else alert.device)
        return self._fire(key, {"source": "alert", **alert.to_dict()},
                          now_ns)

    def on_launch_failed(self, failure: Exception, now_ns: float,
                         tenant: str | None = None,
                         requests: int = 0) -> dict | None:
        key = ("launch_failed", type(failure).__name__, tenant or "")
        trigger = {"source": "launch_failed", "at_ns": now_ns,
                   "error": type(failure).__name__,
                   "message": str(failure)}
        if tenant is not None:
            trigger["tenant"] = tenant
        if requests:
            trigger["requests"] = requests
        return self._fire(key, trigger, now_ns)

    def on_fault_detected(self, device: int, now_ns: float,
                          partition: str | None = None) -> dict | None:
        key = ("fault_detected", device, partition or "")
        trigger = {"source": "fault_detected", "at_ns": now_ns,
                   "device": device}
        if partition is not None:
            trigger["partition"] = partition
        return self._fire(key, trigger, now_ns)

    def _fire(self, key: tuple, trigger: dict,
              now_ns: float) -> dict | None:
        last = self._last_fire.get(key)
        if last is not None and now_ns - last < self.cooldown_ns:
            return None
        self._last_fire[key] = now_ns
        bundle = self._build(trigger, now_ns)
        self.bundles.append(bundle)
        if self.out_dir is not None:
            path = os.path.join(self.out_dir,
                                f"incident-{bundle['seq']:04d}.json")
            with open(path, "w") as fh:
                json.dump(bundle, fh, indent=2, sort_keys=True)
                fh.write("\n")
            self.paths.append(path)
        return bundle

    # ------------------------------------------------------------------
    # bundle assembly
    # ------------------------------------------------------------------

    def _build(self, trigger: dict, now_ns: float) -> dict:
        ring = self.recorder.snapshot()
        timeline = [row for row in ring if row["kind"] in _TIMELINE_KINDS]
        bundle = {
            "schema": INCIDENT_SCHEMA,
            "seq": self._seq,
            "at_ns": now_ns,
            "trigger": trigger,
            "timeline": timeline,
            "blast_radius": _blast_radius(ring),
            "ring": ring,
            "ring_dropped": self.recorder.dropped,
            "counters": self.runtime.stats.snapshot(),
        }
        part_radius = _partition_blast_radius(ring)
        if part_radius:
            # absent (not empty) on unpartitioned runs: pre-partitioning
            # bundles stay byte-identical
            bundle["partition_blast_radius"] = part_radius
        if self.monitor is not None:
            bundle["alerts"] = [a.to_dict() for a in self.monitor.alerts]
        if self.runtime.faults is not None:
            alerts = self.monitor.alerts if self.monitor is not None else []
            bundle["correlation"] = correlate(self.runtime.faults, ring,
                                              alerts)
        self._seq += 1
        return bundle


def _blast_radius(ring: list[dict]) -> dict:
    """Per-tenant counts of tenant-attributed ring events by kind."""
    radius: dict[str, dict[str, int]] = {}
    for row in ring:
        tenant = row.get("tenant")
        if tenant is None:
            continue
        per = radius.setdefault(tenant, {})
        per[row["kind"]] = per.get(row["kind"], 0) + 1
    return {tenant: dict(sorted(per.items()))
            for tenant, per in sorted(radius.items())}


def _partition_blast_radius(ring: list[dict]) -> dict:
    """Per-partition counts of partition-attributed events by kind:
    ``"dev<d>.<partition>" -> {kind: count}`` — the containment story of
    a partition-scoped fault at a glance."""
    radius: dict[str, dict[str, int]] = {}
    for row in ring:
        partition = row.get("detail", {}).get("partition")
        if partition is None:
            continue
        device = row.get("device")
        key = f"dev{device}.{partition}" if device is not None else partition
        per = radius.setdefault(key, {})
        per[row["kind"]] = per.get(row["kind"], 0) + 1
    return {key: dict(sorted(per.items()))
            for key, per in sorted(radius.items())}


# ---------------------------------------------------------------------------
# plan correlation / self-grading
# ---------------------------------------------------------------------------

def correlate(injector, ring: list[dict], alerts) -> list[dict]:
    """Per planned fault: when it was detected, alerted and recovered.

    ``mttd_ns`` is host detection latency (ring detection record minus
    injection — heartbeat-quantized for kills, 0 for faults the injector
    manifests synchronously); ``mtta_ns`` is the extra beat until the
    monitor alerted; ``mttr_ns`` spans detection to the last recovery
    action (re-copy completion for sharded placements, 0 for pure
    fail-over, stall/flap window end for degradations).
    """
    rows = []
    for event in injector.plan.events:
        injected = injector.epoch_ns + event.at_ns
        detect_kind = _event_detect_kind(event)
        scoped = getattr(event, "partition", None)

        def matches_scope(row, _scoped=scoped):
            return (_scoped is None
                    or row.get("detail", {}).get("partition") == _scoped)

        detected = None
        for row in ring:
            if (row["kind"] == detect_kind
                    and row.get("device") == event.device
                    and matches_scope(row)
                    and row["t_ns"] >= injected):
                detected = row["t_ns"]
                break
        recovered = None
        if detected is not None:
            if event.kind == "device_fail" and scoped is not None:
                for row in ring:
                    if (row["kind"] == "recovery.partition_remap"
                            and row.get("device") == event.device
                            and matches_scope(row)
                            and row["t_ns"] >= detected):
                        recovered = max(recovered or detected, row["t_ns"])
            elif event.kind == "device_fail":
                for row in ring:
                    if (row["kind"] in ("recovery.failover",
                                        "recovery.remap")
                            and row.get("device") == event.device
                            and row["t_ns"] >= detected):
                        done = row.get("detail", {}).get("done_ns",
                                                         row["t_ns"])
                        recovered = max(recovered or detected, done)
            elif event.kind == "device_stall" and scoped is not None:
                for row in ring:
                    if (row["kind"] == "recovery.partition_up"
                            and row.get("device") == event.device
                            and matches_scope(row)
                            and row["t_ns"] >= detected):
                        recovered = row["t_ns"]
                        break
            elif event.kind in ("device_stall", "link_flap"):
                for row in ring:
                    if (row["kind"] == "recovery.device_up"
                            and row.get("device") == event.device
                            and row["t_ns"] >= detected):
                        recovered = row["t_ns"]
                        break
        alerted = None
        for alert in alerts:
            kind = alert.kind if hasattr(alert, "kind") else alert["kind"]
            at = alert.at_ns if hasattr(alert, "at_ns") else alert["at_ns"]
            device = (alert.device if hasattr(alert, "device")
                      else alert.get("device"))
            if (kind in _event_alert_kinds(event)
                    and device == event.device and at >= injected):
                alerted = at
                break
        rows.append({
            "kind": event.kind,
            "device": event.device,
            **({"partition": scoped} if scoped is not None else {}),
            "injected_ns": injected,
            "detected_ns": detected,
            "mttd_ns": (detected - injected if detected is not None
                        else None),
            "alerted_ns": alerted,
            "mtta_ns": (alerted - detected
                        if alerted is not None and detected is not None
                        else None),
            "recovered_ns": recovered,
            "mttr_ns": (recovered - detected if recovered is not None
                        else None),
        })
    return rows


def grade_against_plan(injector, alerts, *,
                       correlation_window_ns: float = 50_000.0) -> dict:
    """Alert precision/recall + MTTD against the armed fault schedule.

    Recall: fraction of planned faults caught by at least one typed
    alert of the matching kind and device.  Precision: fraction of all
    alerts attributable to a planned fault — typed alerts must match
    kind+device, symptom alerts (burn rate, p99) count as attributed
    when they land within ``correlation_window_ns`` after any fault.
    Both are 1.0 vacuously when there is nothing to miss or no alerts
    to misfire.
    """
    events = list(injector.plan.events)
    epoch = injector.epoch_ns
    caught = 0
    mttd: list[float] = []
    mtta: list[float] = []
    for event in events:
        injected = epoch + event.at_ns
        first = None
        for alert in alerts:
            if (alert.kind in _event_alert_kinds(event)
                    and alert.device == event.device
                    and alert.at_ns >= injected):
                first = alert
                break
        if first is not None:
            caught += 1
            mttd.append(first.at_ns - injected)
            # Alert.value carries the detection record's timestamp for
            # fault-typed alerts; the alert lands one monitor beat later.
            if first.value:
                mtta.append(first.at_ns - first.value)
    matched = 0
    for alert in alerts:
        if alert.kind in _SYMPTOM_ALERTS:
            ok = any(
                epoch + e.at_ns <= alert.at_ns
                <= epoch + e.at_ns + max(e.duration_ns,
                                         0.0) + correlation_window_ns
                for e in events
            )
        else:
            ok = any(
                alert.kind in _event_alert_kinds(e)
                and alert.device == e.device
                and alert.at_ns >= epoch + e.at_ns
                for e in events
            )
        if ok:
            matched += 1
    return {
        "events": len(events),
        "caught": caught,
        "recall": caught / len(events) if events else 1.0,
        "alerts": len(alerts),
        "matched_alerts": matched,
        "precision": matched / len(alerts) if alerts else 1.0,
        "mean_mttd_ns": sum(mttd) / len(mttd) if mttd else 0.0,
        "max_mttd_ns": max(mttd) if mttd else 0.0,
        "max_mtta_ns": max(mtta) if mtta else 0.0,
    }


# ---------------------------------------------------------------------------
# rendering / CLI
# ---------------------------------------------------------------------------

def render_bundle(bundle: dict) -> str:
    """Human-readable incident summary (the on-call first look)."""
    trigger = bundle["trigger"]
    lines = [
        f"incident #{bundle['seq']} at {bundle['at_ns']:,.0f} ns "
        f"(schema {bundle['schema']})",
        f"trigger: {trigger['source']} "
        + " ".join(f"{k}={v}" for k, v in sorted(trigger.items())
                   if k != "source"),
    ]
    if bundle.get("timeline"):
        lines.append("")
        lines.append("timeline:")
        for row in bundle["timeline"]:
            where = []
            if "device" in row:
                where.append(f"device={row['device']}")
            if "tenant" in row:
                where.append(f"tenant={row['tenant']}")
            suffix = (" " + " ".join(where)) if where else ""
            lines.append(f"  {row['t_ns']:>12,.0f} ns  "
                         f"{row['kind']:<20}{suffix}")
    if bundle.get("correlation"):
        lines.append("")
        lines.append("fault correlation (vs armed plan):")
        for row in bundle["correlation"]:
            mttd = (f"{row['mttd_ns']:,.0f}" if row["mttd_ns"] is not None
                    else "undetected")
            mttr = (f"{row['mttr_ns']:,.0f}" if row["mttr_ns"] is not None
                    else "-")
            scope = (f" partition={row['partition']}"
                     if row.get("partition") else "")
            lines.append(
                f"  {row['kind']:<13} device={row['device']}{scope} "
                f"injected={row['injected_ns']:,.0f} ns "
                f"MTTD={mttd} ns MTTR={mttr} ns"
            )
    if bundle.get("blast_radius"):
        lines.append("")
        lines.append("blast radius:")
        for tenant, per in bundle["blast_radius"].items():
            detail = " ".join(f"{k}={v}" for k, v in per.items())
            lines.append(f"  {tenant}: {detail}")
    if bundle.get("partition_blast_radius"):
        lines.append("")
        lines.append("partition blast radius:")
        for part, per in bundle["partition_blast_radius"].items():
            detail = " ".join(f"{k}={v}" for k, v in per.items())
            lines.append(f"  {part}: {detail}")
    interesting = {k: v for k, v in bundle["counters"].items()
                   if k.startswith(("fault.", "recovery."))}
    if interesting:
        lines.append("")
        lines.append("fault/recovery counters:")
        for key, value in interesting.items():
            lines.append(f"  {key} = {value:,.0f}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.incidents",
        description="Render an incident bundle written by the "
                    "IncidentReporter.",
    )
    parser.add_argument("bundle", help="incident-<seq>.json file")
    args = parser.parse_args(argv)
    try:
        with open(args.bundle) as fh:
            bundle = json.load(fh)
        if not isinstance(bundle, dict) \
                or bundle.get("schema") != INCIDENT_SCHEMA:
            raise ValueError(
                f"not an incident bundle (expected schema "
                f"{INCIDENT_SCHEMA!r})"
            )
        rendered = render_bundle(bundle)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(rendered)
    except BrokenPipeError:
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
