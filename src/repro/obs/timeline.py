"""Utilization timelines: windowed resource sampling for traced runs.

Builds on the existing :class:`~repro.sim.stats.Timeline` machinery (one
counter-delta snapshot per window) plus the per-unit occupancy samplers
the backends already feed from the bulk charge paths — recording a
window costs one dict snapshot per device, paid only while tracing.

Per device and window the sampler derives:

* ``subcore.occupancy`` — time-weighted mean of the units' µthread-slot
  occupancy (the backends record it at launch start/finish);
* ``l2.hit_rate`` — read+write hits over accesses, from the ``l2.*``
  counter deltas;
* ``dram.busy`` — fraction of peak internal-DRAM bandwidth moved
  (``cxl_dram.bytes`` delta against the device's peak bytes/ns);
* ``link.gbps`` — CXL link traffic (``cxl.up_bytes + cxl.down_bytes``)
  as an absolute rate.

``counter_samples()`` renders the series as Chrome ``C`` counter events
(one per window end) for :func:`repro.obs.export.to_chrome_trace`;
``summary()`` produces the per-device means embedded in run manifests.
"""

from __future__ import annotations

from repro.sim.stats import Timeline


class UtilizationSampler:
    """Windowed device-resource series for one platform.

    ``devices`` is any iterable of :class:`~repro.ndp.device.M2NDPDevice`
    (a single-device platform passes ``[platform.device]``).  Call
    :meth:`mark` at window boundaries — the serving engine drives it from
    its periodic tick — then :meth:`counter_samples` / :meth:`summary`.
    """

    def __init__(self, devices, start_ns: float = 0.0) -> None:
        self.devices = list(devices)
        self._timelines: list[Timeline] = [
            device.stats.timeline("", start_ns=start_ns)
            for device in self.devices
        ]
        self._last_ns = [start_ns] * len(self.devices)
        #: (name, pid, t_ns, value) rows, in mark order.
        self.samples: list[tuple[str, int, float, float]] = []

    def mark(self, now_ns: float) -> None:
        """Close one window on every device and append its samples."""
        for i, (device, timeline) in enumerate(
                zip(self.devices, self._timelines)):
            if now_ns <= self._last_ns[i]:
                # zero-length (or rewound) window: nothing accumulated,
                # and the ratio math below would divide by a zero span —
                # skip rather than raise, re-marking the same instant is
                # a legitimate caller pattern (final tick == finish)
                continue
            window = timeline.mark(now_ns)
            span = window.span_ns
            pid = getattr(device, "trace_pid", 1)
            deltas = window.deltas

            hits = deltas.get("l2.read_hits", 0.0) \
                + deltas.get("l2.write_hits", 0.0)
            accesses = hits + deltas.get("l2.read_misses", 0.0) \
                + deltas.get("l2.write_misses", 0.0)
            dram_bytes = deltas.get("cxl_dram.bytes", 0.0)
            link_bytes = deltas.get("cxl.up_bytes", 0.0) \
                + deltas.get("cxl.down_bytes", 0.0)
            occupancy = 0.0
            for unit in device.units:
                points = unit.occupancy.sampler.points
                if points:
                    occupancy += unit.occupancy.sampler.time_weighted_mean(
                        self._last_ns[i], now_ns)
            occupancy /= max(len(device.units), 1)

            peak = span * device.dram.peak_bw_bytes_per_ns
            rows = (
                ("subcore.occupancy", occupancy),
                ("l2.hit_rate", hits / accesses if accesses else 0.0),
                ("dram.busy", min(dram_bytes / peak, 1.0) if peak > 0
                 else 0.0),
                ("link.gbps", link_bytes / span if span > 0 else 0.0),
            )
            for name, value in rows:
                self.samples.append((name, pid, now_ns, value))
            self._last_ns[i] = now_ns

    def counter_samples(self) -> list[tuple[str, int, float, float]]:
        """Rows for :func:`repro.obs.export.to_chrome_trace`'s counters."""
        return list(self.samples)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-device mean of every series (for the run manifest)."""
        sums: dict[tuple[int, str], tuple[float, int]] = {}
        for name, pid, _t, value in self.samples:
            total, count = sums.get((pid, name), (0.0, 0))
            sums[(pid, name)] = (total + value, count + 1)
        out: dict[str, dict[str, float]] = {}
        for (pid, name), (total, count) in sorted(sums.items()):
            out.setdefault(f"device{pid - 1}", {})[f"{name}.mean"] = (
                total / count if count else 0.0)
        return out
