"""Trace exporters: Chrome trace-event JSON + structured run manifest.

``to_chrome_trace`` renders a :class:`~repro.obs.tracer.Tracer` into the
Chrome trace-event format (the JSON Perfetto / ``chrome://tracing``
load): one **pid per device** (pid 0 is the serving/cluster host, pid
``1+i`` is device ``i``), one **tid per stage lane** (a request's
lifecycle chain, a device's sub-launch slot), duration events as matched
``B``/``E`` pairs with non-decreasing ``ts``, and ``C`` counter events
for the utilization timelines.  Timestamps are *simulated* nanoseconds
scaled to the format's microseconds.

``run_manifest`` builds the reproducibility sidecar written next to
``BENCH_*.json``: config + seed, git revision, the ``REPRO_*``
environment, a deterministically sorted counter snapshot
(:meth:`~repro.sim.stats.StatsRegistry.snapshot`) and per-name span
aggregates.  ``write_trace`` / ``write_manifest`` put both on disk.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

from repro.obs.tracer import HOST_PID, Span, Tracer

#: Manifest schema tag (bump on incompatible layout changes).
MANIFEST_SCHEMA = "repro-run-manifest-v1"


def _process_names(spans: list[Span]) -> dict[int, str]:
    names = {}
    for span in spans:
        if span.pid not in names:
            names[span.pid] = ("serving-host" if span.pid == HOST_PID
                               else f"device{span.pid - 1}")
    return names


def _event_tree(spans: list[Span]) -> list[tuple]:
    """DFS-ordered (ts, lane, seq, event) rows.

    Emitting each lane's events in depth-first order (B parent, children,
    E parent) guarantees the stack discipline Chrome requires even when a
    child shares its parent's boundary timestamp; the global sort is then
    by ``ts`` with the per-lane sequence as the tiebreaker, which cannot
    reorder a lane (per-lane DFS order is ts-monotone by construction).
    """
    by_id = {s.span_id: s for s in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s.start_ns, s.span_id))

    rows: list[tuple] = []
    seq = 0

    def visit(span: Span) -> None:
        nonlocal seq
        lane = (span.pid, span.tid)
        args = {k: v for k, v in span.args.items() if v is not None}
        if span.end_ns == span.start_ns and span.span_id not in children:
            rows.append((span.start_ns, lane, seq, {
                "ph": "i", "name": span.name, "pid": span.pid,
                "tid": span.tid, "ts": span.start_ns / 1e3, "s": "t",
                "args": args,
            }))
            seq += 1
            return
        rows.append((span.start_ns, lane, seq, {
            "ph": "B", "name": span.name, "pid": span.pid, "tid": span.tid,
            "ts": span.start_ns / 1e3, "args": args,
        }))
        seq += 1
        for child in children.get(span.span_id, ()):
            visit(child)
        rows.append((span.end_ns, lane, seq, {
            "ph": "E", "name": span.name, "pid": span.pid, "tid": span.tid,
            "ts": span.end_ns / 1e3,
        }))
        seq += 1

    for root in children.get(None, ()):
        visit(root)
    return rows


def to_chrome_trace(tracer: Tracer, counters=None) -> dict:
    """Chrome trace-event JSON object (``{"traceEvents": [...]}``).

    ``counters`` is an optional iterable of ``(name, pid, t_ns, value)``
    samples (the utilization timelines) rendered as ``C`` events.
    """
    spans = tracer.finalize()
    rows = _event_tree(spans)
    if counters:
        for name, pid, t_ns, value in counters:
            rows.append((float(t_ns), (pid, 0), -1, {
                "ph": "C", "name": name, "pid": pid, "tid": 0,
                "ts": float(t_ns) / 1e3, "args": {"value": value},
            }))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    events = []
    for pid, pname in sorted(_process_names(spans).items()):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "ts": 0,
                       "args": {"name": pname}})
    events.extend(row[3] for row in rows)
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_trace(tracer: Tracer, path: str, counters=None) -> str:
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracer, counters), fh)
    return path


# ---------------------------------------------------------------------------
# run manifest
# ---------------------------------------------------------------------------


def git_revision(repo_dir: str | None = None) -> str | None:
    """Current git commit hash, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def _config_dict(config) -> dict | None:
    if config is None:
        return None
    if dataclasses.is_dataclass(config):
        return json.loads(json.dumps(dataclasses.asdict(config),
                                     default=repr))
    return {"repr": repr(config)}


def run_manifest(tracer: Tracer | None = None, stats=None, config=None,
                 seed: int | None = None, extra: dict | None = None,
                 partitions=None) -> dict:
    """Structured, stably ordered description of one run.

    ``stats`` accepts anything with a ``snapshot()`` (a
    :class:`~repro.sim.stats.StatsRegistry` or the cluster's aggregate
    view); keys are deterministically sorted so manifests diff cleanly.
    ``partitions`` takes the cluster's
    :class:`~repro.cluster.partitions.PartitionMap` (or an
    already-described dict); unpartitioned runs pass None and the key is
    absent, keeping their manifests byte-identical.
    """
    env = {key: value for key, value in sorted(os.environ.items())
           if key.startswith("REPRO_")}
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "python": sys.version.split()[0],
        "git_rev": git_revision(),
        "seed": seed,
        "env": env,
        "config": _config_dict(config),
        "counters": stats.snapshot() if stats is not None else {},
        "span_aggregates": tracer.aggregates() if tracer is not None else {},
    }
    if partitions is not None:
        manifest["partitions"] = (partitions.describe()
                                  if hasattr(partitions, "describe")
                                  else partitions)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str, **kwargs) -> str:
    with open(path, "w") as fh:
        json.dump(run_manifest(**kwargs), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
