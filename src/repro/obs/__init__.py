"""Observability: span tracing, trace export, utilization timelines.

The telemetry seam for the whole stack (see ``repro.obs.tracer`` for the
model).  Off by default — set ``REPRO_TRACE=1`` (or call
:func:`set_enabled`) before building a platform, run, then export::

    from repro import obs

    obs.set_enabled(True)
    report = engine.run()
    obs.write_trace(obs.tracer_of(platform.sim), "run.trace.json")
    obs.write_manifest("run.manifest.json",
                       tracer=obs.tracer_of(platform.sim),
                       stats=platform.stats)

Then ``python -m repro.obs.report run.trace.json`` for the bottleneck
breakdown, or load the trace in https://ui.perfetto.dev.

Always-on monitoring lives beside tracing: ``repro.obs.monitor`` (SLO
burn-rate alerting), ``repro.obs.recorder`` (flight-recorder ring) and
``repro.obs.incidents`` (incident bundles; also the
``python -m repro.obs.incidents`` renderer — imported directly, not
re-exported here, so running it as a module stays warning-free).
"""

from repro.obs.export import (
    run_manifest,
    to_chrome_trace,
    write_manifest,
    write_trace,
)
from repro.obs.monitor import (
    Alert,
    SLOMonitor,
    SLObjective,
    default_objectives,
    resolve_monitoring,
)
from repro.obs.recorder import (
    EventRecord,
    FlightRecorder,
    resolve_recorder_capacity,
)
from repro.obs.timeline import UtilizationSampler
from repro.obs.tracer import (
    HOST_PID,
    NULL_TRACER,
    Span,
    Tracer,
    enabled,
    set_enabled,
    tracer_of,
)

__all__ = [
    "Alert",
    "EventRecord",
    "FlightRecorder",
    "HOST_PID",
    "NULL_TRACER",
    "SLOMonitor",
    "SLObjective",
    "Span",
    "Tracer",
    "UtilizationSampler",
    "default_objectives",
    "enabled",
    "resolve_monitoring",
    "resolve_recorder_capacity",
    "run_manifest",
    "set_enabled",
    "to_chrome_trace",
    "tracer_of",
    "write_manifest",
    "write_trace",
]
