"""Bottleneck-attribution report over an exported trace.

``python -m repro.obs.report <trace.json> [--top K]`` reads a Chrome
trace-event file (from :func:`repro.obs.export.write_trace`), rebuilds
the span forest from its matched B/E pairs, and prints:

* **self-time by stage** — per span name: count, total, self time (total
  minus children) and each stage's share of the root spans' critical
  path, answering "where did the nanoseconds actually go";
* **per-tenant breakdown** — root ``serve.request`` spans grouped by
  their ``tenant`` arg with count / mean / max wall;
* **top-K slowest requests** — the worst request roots with their
  per-stage chains, the breakdown you'd otherwise chase with prints.

The module is import-safe for tests: :func:`parse_events` /
:func:`build_report` return plain data, ``main`` only formats.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field


@dataclass
class ReportSpan:
    """A span reassembled from its B/E pair."""

    name: str
    pid: int
    tid: int
    start_us: float
    end_us: float
    args: dict = field(default_factory=dict)
    children: list["ReportSpan"] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def self_us(self) -> float:
        overlap = sum(c.duration_us for c in self.children)
        return max(self.duration_us - overlap, 0.0)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def parse_events(events: list[dict]) -> list[ReportSpan]:
    """Rebuild the span forest from B/E (and instant ``i``) events.

    Raises ``ValueError`` on unmatched pairs — the exporter guarantees
    stack discipline per (pid, tid), so a mismatch means a broken file.
    """
    stacks: dict[tuple[int, int], list[ReportSpan]] = {}
    roots: list[ReportSpan] = []

    def attach(lane, span):
        stack = stacks.setdefault(lane, [])
        if stack:
            stack[-1].children.append(span)
        else:
            roots.append(span)

    for event in events:
        phase = event.get("ph")
        if phase not in ("B", "E", "i", "I"):
            continue
        lane = (event.get("pid", 0), event.get("tid", 0))
        if phase == "B":
            span = ReportSpan(event["name"], lane[0], lane[1],
                              event["ts"], event["ts"],
                              dict(event.get("args") or {}))
            attach(lane, span)
            stacks.setdefault(lane, []).append(span)
        elif phase == "E":
            stack = stacks.get(lane)
            if not stack:
                raise ValueError(
                    f"E event with empty stack on pid/tid {lane}")
            span = stack.pop()
            span.end_us = event["ts"]
        else:
            attach(lane, ReportSpan(event["name"], lane[0], lane[1],
                                    event["ts"], event["ts"],
                                    dict(event.get("args") or {})))
    leftovers = {lane: [s.name for s in stack]
                 for lane, stack in stacks.items() if stack}
    if leftovers:
        raise ValueError(f"unclosed B events: {leftovers}")
    return roots


def build_report(roots: list[ReportSpan], top: int = 5) -> dict:
    """Aggregate the forest into the three report tables."""
    stages: dict[str, dict[str, float]] = {}
    for root in roots:
        for span in root.walk():
            agg = stages.setdefault(
                span.name, {"count": 0, "total_us": 0.0, "self_us": 0.0})
            agg["count"] += 1
            agg["total_us"] += span.duration_us
            agg["self_us"] += span.self_us
    critical_us = sum(r.duration_us for r in roots)

    tenants: dict[str, dict[str, float]] = {}
    requests = [r for r in roots if r.name == "serve.request"]
    for root in requests:
        tenant = str(root.args.get("tenant", "?"))
        agg = tenants.setdefault(
            tenant, {"count": 0, "total_us": 0.0, "max_us": 0.0})
        agg["count"] += 1
        agg["total_us"] += root.duration_us
        agg["max_us"] = max(agg["max_us"], root.duration_us)

    slowest = sorted(requests, key=lambda r: -r.duration_us)[:top]
    return {
        "stages": {name: stages[name] for name in sorted(stages)},
        "critical_us": critical_us,
        "tenants": {name: tenants[name] for name in sorted(tenants)},
        "slowest": slowest,
    }


def report_to_json(report: dict) -> dict:
    """The report as plain JSON-ready data (``--format json``).

    ``slowest`` holds :class:`ReportSpan` trees; they serialize as the
    root's identity plus a flattened per-stage chain, which is what CI
    consumers diff and threshold on.
    """
    slowest = []
    for root in report["slowest"]:
        chain = [
            {"name": span.name, "duration_us": span.duration_us,
             "self_us": span.self_us}
            for span in root.walk() if span is not root
        ]
        slowest.append({
            "tenant": str(root.args.get("tenant", "?")),
            "index": root.args.get("index"),
            "duration_us": root.duration_us,
            "chain": chain,
        })
    return {
        "stages": report["stages"],
        "critical_us": report["critical_us"],
        "tenants": report["tenants"],
        "slowest": slowest,
    }


def render(report: dict) -> str:
    lines = ["self-time by stage:"]
    lines.append(f"  {'stage':<24} {'count':>6} {'total us':>12} "
                 f"{'self us':>12} {'crit %':>7}")
    critical = report["critical_us"] or 1.0
    for name, agg in sorted(report["stages"].items(),
                            key=lambda kv: -kv[1]["self_us"]):
        lines.append(
            f"  {name:<24} {agg['count']:>6.0f} {agg['total_us']:>12.3f} "
            f"{agg['self_us']:>12.3f} {100 * agg['self_us'] / critical:>6.1f}%"
        )
    if report["tenants"]:
        lines.append("")
        lines.append("per-tenant requests:")
        lines.append(f"  {'tenant':<12} {'count':>6} {'mean us':>10} "
                     f"{'max us':>10}")
        for name, agg in report["tenants"].items():
            mean = agg["total_us"] / agg["count"] if agg["count"] else 0.0
            lines.append(f"  {name:<12} {agg['count']:>6.0f} {mean:>10.3f} "
                         f"{agg['max_us']:>10.3f}")
    if report["slowest"]:
        lines.append("")
        lines.append(f"top {len(report['slowest'])} slowest requests:")
        for root in report["slowest"]:
            tenant = root.args.get("tenant", "?")
            index = root.args.get("index", "?")
            lines.append(f"  {tenant}#{index}: {root.duration_us:.3f} us")
            for span in root.walk():
                if span is root:
                    continue
                depth = _depth_of(root, span)
                lines.append(f"    {'  ' * depth}{span.name}: "
                             f"{span.duration_us:.3f} us "
                             f"(self {span.self_us:.3f})")
    return "\n".join(lines)


def _depth_of(root: ReportSpan, target: ReportSpan, depth: int = 0) -> int:
    for child in root.children:
        if child is target:
            return depth
        found = _depth_of(child, target, depth + 1)
        if found >= 0:
            return found
    return -1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Per-stage / per-tenant bottleneck breakdown of a "
                    "trace produced by REPRO_TRACE=1 or --trace.",
    )
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--top", type=int, default=5,
                        help="slowest requests to expand (default 5)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (json for CI consumers)")
    args = parser.parse_args(argv)
    try:
        with open(args.trace) as fh:
            payload = json.load(fh)
        events = (payload["traceEvents"] if isinstance(payload, dict)
                  else payload)
        if not isinstance(events, list):
            raise ValueError("traceEvents is not a list")
        roots = parse_events(events)
        report = build_report(roots, top=args.top)
        rendered = (json.dumps(report_to_json(report), indent=2,
                               sort_keys=True)
                    if args.format == "json" else render(report))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        # malformed trace input: nonzero exit so CI notices, one clean
        # line on stderr instead of a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(rendered)
    except BrokenPipeError:  # e.g. piped into head
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
