"""SLO monitor: multi-window burn-rate alerting over sim-time windows.

The Google-SRE alerting pattern, scaled to simulated time: each tenant
has an :class:`SLObjective` (attainment floor + p99 ceiling), the floor
implies an *error budget* (``1 - floor``), and the monitor watches the
rate at which the budget is being spent over two sliding windows — a
fast one that makes alerts prompt and a slow one that makes them
stick — firing only when **both** exceed the burn threshold.  A short
blip inside an otherwise healthy hour spends little budget and stays
quiet; a sustained failure trips both windows within one heartbeat of
the fast window filling.

Everything is driven from :meth:`~repro.sim.stats.StatsRegistry.
timeline` counter deltas and the per-tenant latency distributions the
serving tier already streams — the monitor only *reads*, so enabling it
cannot change workload results, and it never touches the wall clock, so
the alert stream is byte-identical across identical runs.

The production 5-minute/1-hour windows of the SRE book map to
5 µs / 60 µs here (``DEFAULT_FAST_WINDOW_NS`` / ``_SLOW_WINDOW_NS``,
the same 1:12 ratio) because the serving runs themselves span tens of
microseconds of simulated time; both are constructor arguments.

Availability alerting rides the :class:`~repro.obs.recorder.
FlightRecorder`: fault *detections* and degradations recorded by the
injector surface as typed ``device_down`` / ``device_degraded`` /
``poison`` alerts on the next monitor beat, so a kill alerts even when
retries keep the burn rate under threshold.

Knobs: ``REPRO_MONITOR`` (0/1, default 1 — always-on) gates the whole
monitoring stack at the serving engine; ``REPRO_MONITOR_BURN`` (float
> 0, default 2.0) sets the default burn threshold baked into
:func:`default_objectives`.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.stats import StatsRegistry, percentile

#: Sliding-window spans (simulated ns).  The SRE fast/slow pair at the
#: simulator's microsecond scale; ratio 1:12 like 5 min : 1 h.
DEFAULT_FAST_WINDOW_NS = 5_000.0
DEFAULT_SLOW_WINDOW_NS = 60_000.0

#: Default burn threshold: budget spent at >= 2x the sustainable rate.
DEFAULT_BURN_THRESHOLD = 2.0

#: Default monitor evaluation cadence (matches the fault injector's
#: heartbeat, so an alert lands at most one beat after a detection).
DEFAULT_MONITOR_INTERVAL_NS = 5_000.0

#: Recorder event kind -> (alert kind, severity) for availability alerts.
_FAULT_ALERTS = {
    "fault.detect": ("device_down", "page"),
    "fault.stall": ("device_degraded", "ticket"),
    "fault.link_flap": ("device_degraded", "ticket"),
    "fault.poison": ("poison", "page"),
    "fault.partition_detect": ("partition_down", "page"),
    "fault.partition_stall": ("partition_degraded", "ticket"),
}


def resolve_monitoring(explicit: bool | None) -> bool:
    """Explicit argument > REPRO_MONITOR env > default (on)."""
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get("REPRO_MONITOR", "1")
    if raw not in ("0", "1"):
        raise ConfigError(
            f"REPRO_MONITOR must be '0' or '1', got {raw!r} "
            f"(from REPRO_MONITOR environment variable)"
        )
    return raw == "1"


def resolve_burn_threshold(explicit: float | None) -> float:
    """Explicit argument > REPRO_MONITOR_BURN env > default (2.0)."""
    def check(value: float, source: str) -> float:
        if not math.isfinite(value) or value <= 0:
            raise ConfigError(
                f"burn threshold must be finite and > 0 (from {source}), "
                f"got {value}"
            )
        return value

    if explicit is not None:
        return check(float(explicit), "burn_threshold argument")
    env = os.environ.get("REPRO_MONITOR_BURN")
    if env is not None:
        try:
            value = float(env)
        except ValueError:
            raise ConfigError(
                f"REPRO_MONITOR_BURN must be a number, got {env!r}"
            ) from None
        return check(value, "REPRO_MONITOR_BURN environment variable")
    return DEFAULT_BURN_THRESHOLD


@dataclass(frozen=True)
class SLObjective:
    """Per-tenant service-level objective.

    ``attainment_floor`` is the promised fraction of requests served
    within SLO; its complement is the error budget the burn rate is
    measured against.  ``p99_ceiling_ns`` adds a latency objective
    (infinite by default: attainment-only).
    """

    attainment_floor: float = 0.9
    p99_ceiling_ns: float = math.inf
    burn_threshold: float = DEFAULT_BURN_THRESHOLD

    def __post_init__(self) -> None:
        if not 0.0 <= self.attainment_floor < 1.0:
            raise ConfigError(
                f"attainment_floor must be in [0, 1), got "
                f"{self.attainment_floor} (a floor of 1.0 leaves no "
                f"error budget to burn)"
            )
        if self.p99_ceiling_ns <= 0:
            raise ConfigError(
                f"p99_ceiling_ns must be positive, got {self.p99_ceiling_ns}"
            )
        if not math.isfinite(self.burn_threshold) or self.burn_threshold <= 0:
            raise ConfigError(
                f"burn_threshold must be finite and > 0, got "
                f"{self.burn_threshold}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.attainment_floor


@dataclass(frozen=True)
class Alert:
    """One typed alert event, timestamped in simulated ns."""

    kind: str                     # burn_rate | p99 | device_down | ...
    at_ns: float
    severity: str                 # page | ticket
    tenant: str | None = None
    device: int | None = None
    fast_burn: float = 0.0
    slow_burn: float = 0.0
    value: float = 0.0
    detail: str = ""

    def to_dict(self) -> dict:
        row = {"kind": self.kind, "at_ns": self.at_ns,
               "severity": self.severity}
        if self.tenant is not None:
            row["tenant"] = self.tenant
        if self.device is not None:
            row["device"] = self.device
        if self.kind == "burn_rate":
            row["fast_burn"] = self.fast_burn
            row["slow_burn"] = self.slow_burn
        if self.value:
            row["value"] = self.value
        if self.detail:
            row["detail"] = self.detail
        return row


class _Window:
    """One closed evaluation window: counter deltas + new latency samples."""

    __slots__ = ("start_ns", "end_ns", "deltas", "samples")

    def __init__(self, start_ns: float, end_ns: float, deltas: dict,
                 samples: dict) -> None:
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.deltas = deltas
        self.samples = samples


class SLOMonitor:
    """Evaluates per-tenant objectives on a sim-time heartbeat.

    Call :meth:`evaluate` at each beat; it closes a timeline window,
    slides the fast/slow horizons over the retained windows and returns
    the alerts that *newly fired* this beat (state transitions, not
    levels — an incident pages once, not every heartbeat it persists).
    The full history stays on :attr:`alerts` / :attr:`clears`.
    """

    def __init__(self, registry: StatsRegistry,
                 objectives: dict[str, SLObjective], *,
                 fast_window_ns: float = DEFAULT_FAST_WINDOW_NS,
                 slow_window_ns: float = DEFAULT_SLOW_WINDOW_NS,
                 recorder=None, start_ns: float = 0.0) -> None:
        if fast_window_ns <= 0 or slow_window_ns <= 0:
            raise ConfigError("monitor windows must be positive")
        if fast_window_ns > slow_window_ns:
            raise ConfigError(
                f"fast window ({fast_window_ns} ns) must not exceed the "
                f"slow window ({slow_window_ns} ns)"
            )
        self.registry = registry
        self.objectives = dict(objectives)
        self.fast_window_ns = float(fast_window_ns)
        self.slow_window_ns = float(slow_window_ns)
        self.recorder = recorder
        self._timeline = registry.timeline("serve.", start_ns=start_ns)
        self._windows: list[_Window] = []
        #: Per-tenant watermark into the latency distribution's samples.
        self._lat_seen: dict[str, int] = {t: 0 for t in objectives}
        #: Recorder sequence watermark (fault events already alerted).
        self._rec_seen = 0
        #: (kind, tenant) -> active, for transition-edge alerting.
        self._active: dict[tuple[str, str], bool] = {}
        self._state: dict[str, tuple[float, float, bool]] = {}
        self.alerts: list[Alert] = []
        self.clears: list[tuple[str, str, float]] = []

    # ------------------------------------------------------------------

    def burn_state(self, tenant: str) -> tuple[float, float, bool]:
        """(fast_burn, slow_burn, active) as of the last evaluate."""
        return self._state.get(tenant, (0.0, 0.0, False))

    def _horizon_deltas(self, tenant: str, horizon_ns: float,
                        now_ns: float) -> dict[str, float]:
        """Summed counter deltas for one tenant over the trailing horizon.

        The horizon slides at window granularity: a window overlapping
        the horizon start counts whole, so the effective span is at most
        one beat longer than nominal — the standard rollup compromise.
        """
        lo = now_ns - horizon_ns
        prefix = f"serve.{tenant}."
        total: dict[str, float] = {}
        for window in self._windows:
            if window.end_ns <= lo:
                continue
            for key, value in window.deltas.items():
                if key.startswith(prefix):
                    short = key[len(prefix):]
                    total[short] = total.get(short, 0.0) + value
        return total

    @staticmethod
    def _burn_of(deltas: dict[str, float], budget: float) -> float:
        """Budget-spend rate from terminal-outcome deltas.

        ``bad / total`` is the fraction of terminal outcomes that broke
        the SLO promise (violations, failures, expiries and sheds all
        count — they are all broken promises); dividing by the error
        budget normalizes so 1.0 means "spending exactly the sustainable
        rate".
        """
        served = deltas.get("served", 0.0)
        bad = (deltas.get("slo_violations", 0.0)
               + deltas.get("failed", 0.0)
               + deltas.get("expired", 0.0)
               + deltas.get("shed_rate_limit", 0.0)
               + deltas.get("shed_queue_full", 0.0))
        total = served + bad - deltas.get("slo_violations", 0.0)
        if total <= 0:
            return 0.0
        fraction = bad / total
        if budget <= 0:
            return math.inf if fraction > 0 else 0.0
        return fraction / budget

    def _horizon_samples(self, tenant: str, horizon_ns: float,
                         now_ns: float) -> list[float]:
        lo = now_ns - horizon_ns
        samples: list[float] = []
        for window in self._windows:
            if window.end_ns <= lo:
                continue
            samples.extend(window.samples.get(tenant, ()))
        return samples

    def _transition(self, kind: str, tenant: str, active: bool,
                    now_ns: float, fired: list[Alert],
                    make: "callable") -> None:
        key = (kind, tenant)
        was = self._active.get(key, False)
        if active and not was:
            alert = make()
            self.alerts.append(alert)
            fired.append(alert)
        elif was and not active:
            self.clears.append((kind, tenant, now_ns))
        self._active[key] = active

    # ------------------------------------------------------------------

    def evaluate(self, now_ns: float) -> list[Alert]:
        """Close a window at ``now_ns`` and return newly-fired alerts."""
        window = self._timeline.mark(now_ns)
        samples: dict[str, list[float]] = {}
        for tenant in self.objectives:
            name = f"serve.{tenant}.latency_ns"
            try:
                dist = self.registry.distribution(name)
            except KeyError:
                continue
            seen = self._lat_seen[tenant]
            if dist.count > seen:
                samples[tenant] = dist.samples[seen:]
                self._lat_seen[tenant] = dist.count
        self._windows.append(_Window(window.start_ns, window.end_ns,
                                     window.deltas, samples))
        horizon_lo = now_ns - self.slow_window_ns
        while self._windows and self._windows[0].end_ns <= horizon_lo:
            self._windows.pop(0)

        fired: list[Alert] = []
        for tenant, objective in self.objectives.items():
            fast = self._burn_of(
                self._horizon_deltas(tenant, self.fast_window_ns, now_ns),
                objective.error_budget)
            slow = self._burn_of(
                self._horizon_deltas(tenant, self.slow_window_ns, now_ns),
                objective.error_budget)
            threshold = objective.burn_threshold
            active = fast >= threshold and slow >= threshold
            self._state[tenant] = (fast, slow, active)
            self._transition(
                "burn_rate", tenant, active, now_ns, fired,
                lambda t=tenant, f=fast, s=slow: Alert(
                    "burn_rate", now_ns, "page", tenant=t,
                    fast_burn=f, slow_burn=s,
                    detail=f"error budget burning at {f:.2f}x (fast) / "
                           f"{s:.2f}x (slow)"))
            if math.isfinite(objective.p99_ceiling_ns):
                window_samples = self._horizon_samples(
                    tenant, self.fast_window_ns, now_ns)
                p99 = (percentile(window_samples, 99.0)
                       if window_samples else 0.0)
                self._transition(
                    "p99", tenant, p99 > objective.p99_ceiling_ns,
                    now_ns, fired,
                    lambda t=tenant, v=p99: Alert(
                        "p99", now_ns, "ticket", tenant=t, value=v,
                        detail=f"windowed p99 {v:.0f} ns over ceiling "
                               f"{objective.p99_ceiling_ns:.0f} ns"))

        if self.recorder is not None:
            for record in self.recorder.events(
                    kinds=tuple(_FAULT_ALERTS), since_seq=self._rec_seen):
                kind, severity = _FAULT_ALERTS[record.kind]
                where = record.detail.get("partition")
                suffix = f" partition={where}" if where else ""
                alert = Alert(kind, now_ns, severity, device=record.device,
                              value=record.t_ns,
                              detail=f"{record.kind} at "
                                     f"{record.t_ns:.0f} ns{suffix}")
                self.alerts.append(alert)
                fired.append(alert)
            self._rec_seen = self.recorder.next_seq
        return fired


def default_objectives(tenant_names, *,
                       burn_threshold: float | None = None
                       ) -> dict[str, SLObjective]:
    """One default objective per tenant (attainment-only, env threshold)."""
    threshold = resolve_burn_threshold(burn_threshold)
    return {name: SLObjective(burn_threshold=threshold)
            for name in tenant_names}
