"""ClusterRuntime: N CXL-M2NDP expanders behind one switch, one API.

Mirrors the single-device :class:`~repro.host.api.M2NDPRuntime` surface
(``alloc`` / ``alloc_array`` / ``register_kernel`` / ``launch_kernel`` /
``launch_async`` / ``run_kernel`` / ``wait_all``) so existing workloads run
unmodified on 1..N devices.  The moving parts:

* Every device shares **one functional byte store** (the cluster's logical
  address space — allocations are made in lockstep on all devices, so an
  address means the same thing everywhere) while keeping its **own timing
  models**: DRAM banks, memory-side L2, CXL link, NDP units and execution
  backend.  Sharding is therefore a *timing* concern, which is exactly what
  the paper's §III-I software partitioning is.
* A :class:`~repro.cluster.placement.ClusterAllocator` records each
  allocation's :class:`~repro.cluster.placement.ShardMap`.
* A :class:`~repro.cluster.scheduler.LaunchScheduler` splits each logical
  launch into per-device sub-launches (using the launch ABI's offset-bias
  extension so µthread ``x2`` offsets stay pool-relative), and the runtime
  charges :meth:`CXLSwitch.peer_to_peer` for bytes a sub-launch must pull
  from a remote shard plus :meth:`CXLSwitch.host_to_device` for the M2func
  fan-out itself.
* Completion is aggregated: a :class:`ClusterLaunchHandle` finishes when
  the slowest sub-launch does.

Selection precedence for the execution backend and scheduler policy
mirrors ``make_platform``: explicit argument > environment variable
(``REPRO_EXEC_BACKEND`` / ``REPRO_CLUSTER_SCHEDULER``, validated at
construction) > config default.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.partitions import PartitionMap, resolve_partitions
from repro.cluster.placement import ClusterAllocator, ShardMap
from repro.cluster.scheduler import (
    LaunchScheduler,
    SubLaunch,
    validate_scheduler_name,
)
from repro.config import ClusterConfig, SystemConfig, default_system
from repro.cxl.switch import CXLSwitch
from repro.errors import (
    ConfigError,
    LaunchError,
    LaunchFailed,
    PoisonError,
    SimulationError,
)
from repro.exec.base import validate_backend_name
from repro.host.api import LaunchHandle, M2NDPRuntime
from repro.isa.assembler import KernelProgram, assemble_kernel
from repro.obs import tracer as obs_tracer
from repro.mem.physical import PhysicalMemory
from repro.ndp.device import M2NDPDevice
from repro.ndp.kernel import KernelInstance
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

#: Cluster runtimes use ASIDs from this base, one per device, so each
#: device's M2func region (base + asid * 64 KB) is distinct in the shared
#: functional store — concurrent sub-launch return values cannot collide.
CLUSTER_BASE_ASID = 0x10

#: M2func launch payload: 6-word header + bias word + argument bytes; used
#: to charge the fan-out write through the switch's host path.
LAUNCH_WIRE_BYTES = 56


def resolve_launch_timeout(explicit: float | None) -> float:
    """Explicit argument > REPRO_LAUNCH_TIMEOUT_NS env > 0 (disabled).

    A positive value arms a per-launch watchdog: a launch still pending
    that many simulated ns after issue fails with a typed
    :class:`~repro.errors.LaunchFailed` (reason ``timeout``) instead of
    deadlocking the event loop on a stuck device.
    """
    def check(value: float, source: str) -> float:
        if not math.isfinite(value) or value < 0:
            raise ConfigError(
                f"launch timeout must be finite and >= 0 "
                f"(from {source}), got {value}"
            )
        return value

    if explicit is not None:
        return check(float(explicit), "launch_timeout_ns argument")
    env = os.environ.get("REPRO_LAUNCH_TIMEOUT_NS")
    if env is not None:
        try:
            value = float(env)
        except ValueError:
            raise ConfigError(
                f"REPRO_LAUNCH_TIMEOUT_NS must be a number, got {env!r}"
            ) from None
        return check(value, "REPRO_LAUNCH_TIMEOUT_NS environment variable")
    return 0.0


def resolve_scheduler_policy(explicit: str | None,
                             config_default: str) -> str:
    """Explicit argument > REPRO_CLUSTER_SCHEDULER env > config default."""
    if explicit is not None:
        return validate_scheduler_name(explicit, source="scheduler argument")
    env = os.environ.get("REPRO_CLUSTER_SCHEDULER")
    if env is not None:
        return validate_scheduler_name(
            env, source="REPRO_CLUSTER_SCHEDULER environment variable"
        )
    return config_default


def resolve_partition_source(explicit: str | None,
                             config_default: str | None,
                             ) -> tuple[str | None, str]:
    """Explicit argument > REPRO_PARTITIONS env > config default.

    Returns ``(spec, source)`` so validation errors can name where the
    offending spec came from.  An empty string means "unpartitioned",
    same as unset — so ``REPRO_PARTITIONS=""`` switches partitioning off.
    """
    if explicit is not None:
        return explicit or None, "partitions argument"
    env = os.environ.get("REPRO_PARTITIONS")
    if env is not None:
        return env or None, "REPRO_PARTITIONS environment variable"
    return config_default, "ClusterConfig.partitions"


@dataclass
class ClusterLaunchHandle:
    """Aggregated completion of one logical launch's sub-launches."""

    plan: list[SubLaunch]
    subs: list[LaunchHandle] = field(default_factory=list)
    complete_ns: float | None = None
    issued_ns: float = 0.0
    error: int | None = None
    #: Typed fault (LaunchFailed / PoisonError / ...) when the launch was
    #: accepted but lost; None for a clean completion.
    failure: Exception | None = None
    _pending: int = 0
    _callbacks: list[Callable[["ClusterLaunchHandle"], None]] = field(
        default_factory=list)

    @property
    def finished(self) -> bool:
        return self.complete_ns is not None

    @property
    def num_sublaunches(self) -> int:
        return len(self.plan)

    def on_complete(self, callback) -> None:
        if self.finished:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fail(self, when_ns: float, exc: Exception) -> None:
        """Complete the handle exceptionally (fault, watchdog, poison)."""
        if self.finished:
            return
        self.failure = exc
        self.complete_ns = when_ns
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()

    def _sub_finished(self, when_ns: float) -> None:
        if self.finished:
            return      # already failed; straggler completions are no-ops
        self._pending -= 1
        if self._pending == 0:
            self.complete_ns = max(
                (h.complete_ns or when_ns) for h in self.subs
                if h is not None
            )
            for callback in self._callbacks:
                callback(self)
            self._callbacks.clear()


@dataclass
class ClusterInstance:
    """Aggregate of one logical launch's per-device kernel instances.

    Presents the :class:`~repro.ndp.kernel.KernelInstance` accessors the
    workloads read (``runtime_ns`` as the cluster-wide makespan), so
    ``run_kernel`` callers work unchanged.
    """

    handle: ClusterLaunchHandle
    instances: list[KernelInstance]

    @property
    def start_ns(self) -> float:
        return min(i.start_ns for i in self.instances
                   if i.start_ns is not None)

    @property
    def complete_ns(self) -> float:
        return max(i.complete_ns for i in self.instances
                   if i.complete_ns is not None)

    @property
    def runtime_ns(self) -> float:
        """Makespan: first sub-launch start to last sub-launch completion."""
        return self.complete_ns - self.start_ns

    @property
    def instructions(self) -> int:
        return sum(i.instructions for i in self.instances)

    @property
    def uthreads_total(self) -> int:
        return sum(i.uthreads_total for i in self.instances)


class _AggregateStats:
    """Read-only summing view over the cluster's stats registries."""

    def __init__(self, registries: list[StatsRegistry]) -> None:
        self._registries = registries

    def get(self, name: str, default: float = 0.0) -> float:
        found = False
        total = 0.0
        for reg in self._registries:
            if name in reg._counters:
                found = True
                total += reg._counters[name]
        return total if found else default

    def counters(self, prefix: str = "") -> dict[str, float]:
        merged: dict[str, float] = {}
        for reg in self._registries:
            for key, value in reg.counters(prefix).items():
                merged[key] = merged.get(key, 0.0) + value
        return merged

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """Deterministically sorted merged counters (manifest-stable)."""
        merged = self.counters(prefix)
        return {key: merged[key] for key in sorted(merged)}


class ClusterRuntime:
    """Per-process handle to a multi-expander M2NDP cluster."""

    def __init__(
        self,
        sim: Simulator | None = None,
        system: SystemConfig | None = None,
        cluster: ClusterConfig | None = None,
        backend: str | None = None,
        scheduler: str | None = None,
        base_asid: int = CLUSTER_BASE_ASID,
        launch_timeout_ns: float | None = None,
        partitions: str | None = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.system = system if system is not None else default_system()
        self.cluster_config = cluster if cluster is not None else ClusterConfig()
        if backend is None:
            backend = os.environ.get("REPRO_EXEC_BACKEND")
            if backend is not None:
                validate_backend_name(
                    backend, source="REPRO_EXEC_BACKEND environment variable"
                )
        policy = resolve_scheduler_policy(
            scheduler, self.cluster_config.scheduler
        )
        spec, spec_source = resolve_partition_source(
            partitions, self.cluster_config.partitions
        )
        #: Resolved :class:`PartitionMap` applied uniformly to every
        #: device, or None — the unpartitioned default, in which all
        #: partition branches below are dead code.
        self.partitions: PartitionMap | None = resolve_partitions(
            spec, self.system, source=spec_source
        )
        n = self.cluster_config.num_devices

        self.stats = StatsRegistry()      # switch + cluster-level counters
        self.switch = CXLSwitch(num_downstream=n, config=self.system.cxl,
                                stats=self.stats)
        self.physical = PhysicalMemory(self.system.cxl_dram.capacity_bytes)
        self.devices = [
            M2NDPDevice(self.sim, self.system, backend=backend,
                        physical=self.physical)
            for _ in range(n)
        ]
        # trace process ids: pid 0 is the host, pid 1+i is device i
        for i, device in enumerate(self.devices):
            device.trace_pid = 1 + i
            device.configure_partitions(self.partitions)
        self.runtimes = [
            M2NDPRuntime(device, asid=base_asid + i)
            for i, device in enumerate(self.devices)
        ]
        self.allocator = ClusterAllocator(
            device_allocators=[rt.allocator for rt in self.runtimes],
            num_devices=n,
            default_placement=self.cluster_config.placement,
            default_shard_bytes=self.cluster_config.shard_bytes,
        )
        self.scheduler = LaunchScheduler(policy, n)
        self.launch_timeout_ns = resolve_launch_timeout(launch_timeout_ns)
        #: Armed FaultInjector, or None — the healthy-cluster default, in
        #: which every fault hook below short-circuits.
        self.faults = None
        #: Always-on monitoring attachments (see ``repro.obs``): a
        #: FlightRecorder and an IncidentReporter, or None when
        #: monitoring is off.  Hot paths guard with one attribute check,
        #: the same discipline as ``self.faults``.
        self.recorder = None
        self.incidents = None
        self._kernels: dict[int, list[int]] = {}
        self._serialize_per_device: dict[int, bool] = {}
        #: source -> assembled program: serving loops re-register the same
        #: kernel text per logical launch, and reusing one program object
        #: keeps assembly out of the launch path and lets every device's
        #: execution trace cache share one memoized code hash
        self._assembled: dict[tuple[str, str], KernelProgram] = {}
        self.now = 0.0

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def device(self) -> M2NDPDevice:
        """Primary device — setup helpers written against a single-device
        runtime (``runtime.device.physical``) keep working because the
        functional store is shared cluster-wide."""
        return self.devices[0]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def arm_faults(self, plan, heartbeat_ns: float | None = None):
        """Bind a :class:`~repro.faults.plan.FaultPlan` to this cluster.

        Returns the armed :class:`~repro.faults.injector.FaultInjector`
        (lazy import: ``faults`` depends on ``cluster``, not vice versa).
        Arming a zero-fault plan is a strict behavioral no-op.
        """
        from repro.faults.injector import DEFAULT_HEARTBEAT_NS, FaultInjector
        if self.faults is not None:
            raise ConfigError("cluster already has a fault plan armed")
        injector = FaultInjector(
            self, plan,
            heartbeat_ns=(heartbeat_ns if heartbeat_ns is not None
                          else DEFAULT_HEARTBEAT_NS),
        )
        injector.arm()
        self.faults = injector
        return injector

    # ------------------------------------------------------------------
    # memory (lockstep allocation + shared functional store)
    # ------------------------------------------------------------------

    def alloc(self, size: int, align: int = 4096,
              placement: str | None = None,
              shard_bytes: int | None = None,
              partition: str | None = None) -> int:
        if partition is not None:
            if self.partitions is None:
                raise ConfigError(
                    f"cannot pin allocation to partition {partition!r}: "
                    f"cluster is unpartitioned (set REPRO_PARTITIONS or "
                    f"make_cluster_platform(partitions=...))"
                )
            self.partitions.share(partition)      # validates the name
        return self.allocator.alloc(size, align, placement, shard_bytes,
                                    partition=partition).base

    def alloc_array(self, array: np.ndarray, align: int = 4096,
                    placement: str | None = None,
                    shard_bytes: int | None = None,
                    partition: str | None = None) -> int:
        addr = self.alloc(array.nbytes, align, placement, shard_bytes,
                          partition=partition)
        self.physical.store_array(addr, array)
        return addr

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        return self.physical.load_array(addr, dtype, count)

    def shard_map(self, addr: int) -> ShardMap | None:
        return self.allocator.map_for(addr)

    # ------------------------------------------------------------------
    # kernel lifecycle (fanned out to every device)
    # ------------------------------------------------------------------

    def register_kernel(self, kernel: KernelProgram | str,
                        scratchpad_bytes: int = 0,
                        name: str = "kernel") -> int:
        if isinstance(kernel, str):
            memo_key = (kernel, name)
            program = self._assembled.get(memo_key)
            if program is None:
                program = self._assembled[memo_key] = assemble_kernel(
                    kernel, name=name)
            kernel = program
        kids = []
        for rt in self.runtimes:
            # Blocking M2func calls on earlier devices stepped the shared
            # simulator; later devices issue from the advanced clock.
            rt.now = max(rt.now, self.sim.now)
            kids.append(rt.register_kernel(kernel, scratchpad_bytes, name=name))
        self._kernels[kids[0]] = kids
        # Kernels with initializer/finalizer phases (or multiple bodies)
        # keep state in the per-unit scratchpad across the launch; two
        # instances of them must not overlap on one device, so their
        # sub-launches are chained per device.  Body-only kernels read only
        # the argument block and run concurrently.
        self._serialize_per_device[kids[0]] = (
            kernel.initializer is not None
            or kernel.finalizer is not None
            or len(kernel.bodies) > 1
        )
        self._sync_now()
        return kids[0]

    def unregister_kernel(self, kernel_id: int) -> None:
        for rt, kid in zip(self.runtimes, self._device_kids(kernel_id)):
            rt.now = max(rt.now, self.sim.now)
            rt.unregister_kernel(kid)
        del self._kernels[kernel_id]
        self._sync_now()

    def _device_kids(self, kernel_id: int) -> list[int]:
        kids = self._kernels.get(kernel_id)
        if kids is None:
            raise LaunchError(f"unknown cluster kernel id {kernel_id}")
        return kids

    # ------------------------------------------------------------------
    # launching (scheduler fan-out + P2P charging)
    # ------------------------------------------------------------------

    def launch_async(self, kernel_id: int, pool_base: int, pool_bound: int,
                     args: bytes = b"", sync: bool = False, stride: int = 32,
                     at_ns: float | None = None,
                     on_complete: Callable[[ClusterLaunchHandle], None] | None = None,
                     trace_parent: int | None = None,
                     ) -> ClusterLaunchHandle:
        """Split one logical launch across the cluster (non-blocking).

        ``sync`` is accepted for API parity but sub-launches always use the
        asynchronous M2func form; completion is aggregated host-side.
        ``trace_parent`` threads the caller's span (e.g. the serving
        engine's ``serve.launch``) into the launch's trace subtree.
        """
        kids = self._device_kids(kernel_id)
        shard = self.allocator.map_for(pool_base)
        plan = self.scheduler.plan(shard, pool_base, pool_bound, stride)
        start = at_ns if at_ns is not None else max(self.now, self.sim.now)
        handle = ClusterLaunchHandle(plan=plan, issued_ns=start,
                                     _pending=len(plan))
        launch_span = None
        if obs_tracer.ENABLED:
            tracer = obs_tracer.tracer_of(self.sim)
            launch_span = tracer.begin(
                "cluster.launch", start, parent=trace_parent,
                sub_launches=len(plan),
            )
            handle.on_complete(
                lambda h: tracer.end(launch_span, h.complete_ns,
                                     error=h.error))
        if on_complete is not None:
            handle.on_complete(on_complete)
        if self.faults is not None:
            # untagged launches physically run in the default partition,
            # so partition-scoped faults must see them there
            part_name = shard.active_partition if shard is not None else None
            if part_name is None and self.partitions is not None:
                part_name = self.partitions.default.name
            hit = self.faults.poison_hit(pool_base, pool_bound,
                                         partition=part_name)
            if hit is not None:
                # CXL data poison: µthreads sweeping the range would fault;
                # the launch completes exceptionally without issuing subs
                self.stats.add("fault.poisoned_launches")
                exc = PoisonError(hit[0], hit[1],
                                  addr=max(hit[0], pool_base))
                self.sim.schedule_at(
                    start, (lambda: handle._fail(start, exc))
                )
                return handle
        # Sub-launches of *stateful* kernels (initializer/finalizer
        # scratchpad phases, e.g. accumulating reductions) are chained per
        # device: they are not safe to run concurrently with themselves on
        # one device, and the scheduler must not create that concurrency
        # behind the app's back.  Stateless body-only kernels issue all
        # their sub-launches at once; different devices always run in
        # parallel.
        handle.subs = [None] * len(plan)
        order = {id(sub): i for i, sub in enumerate(plan)}
        if self._serialize_per_device.get(kernel_id, True):
            queues: dict[int, list[SubLaunch]] = {}
            for sub in plan:
                queues.setdefault(sub.device, []).append(sub)
            for device_queue in queues.values():
                self._issue_sub(handle, kids, device_queue, 0, args, stride,
                                start, order, launch_span)
        else:
            for sub in plan:
                self._issue_sub(handle, kids, [sub], 0, args, stride,
                                start, order, launch_span)
        if self.launch_timeout_ns > 0:
            deadline = start + self.launch_timeout_ns

            def watchdog() -> None:
                if handle.finished:
                    return
                self.stats.add("fault.launch_timeouts")
                if self.recorder is not None:
                    self.recorder.record("fault.timeout", deadline)
                handle._fail(deadline, LaunchFailed(
                    f"cluster launch still pending "
                    f"{self.launch_timeout_ns:g} ns after issue",
                    reason="timeout",
                ))

            self.sim.schedule_at(deadline, watchdog)
        return handle

    def _issue_sub(self, handle: ClusterLaunchHandle, kids: list[int],
                   queue: list[SubLaunch], index: int, args: bytes,
                   stride: int, at_ns: float, order: dict[int, int],
                   trace_parent: int | None = None) -> None:
        sub = queue[index]
        # effective partition: an untagged launch on a partitioned device
        # runs in the default partition (partition-scoped faults included)
        eff_part = sub.partition
        if eff_part is None and self.partitions is not None:
            eff_part = self.partitions.default.name
        if self.faults is not None:
            # a stall window holds issue to the device until it clears
            at_ns = self.faults.delay_issue(sub.device, at_ns,
                                            partition=eff_part)
        tracer = obs_tracer.tracer_of(self.sim) if obs_tracer.ENABLED \
            else None
        sub_lane = None
        if tracer is not None:
            # switch-charge spans live on the sub-launch's device lane so
            # concurrent subs never overlap within one swim-lane
            sub_lane = tracer.alloc_tid(1 + sub.device)
        ready = at_ns
        for owner, nbytes in sorted(sub.remote.items()):
            done = self.switch.peer_to_peer(at_ns, owner, sub.device, nbytes)
            ready = max(ready, done)
            self.stats.add("cluster.p2p_prefetch_bytes", nbytes)
            if tracer is not None:
                tracer.record("cxl.p2p", at_ns, done, parent=trace_parent,
                              pid=1 + sub.device, tid=sub_lane,
                              owner=owner, bytes=nbytes)
        # the M2func fan-out write itself crosses the switch (a
        # partition-tagged launch carries one extra header word)
        part_index = (None if sub.partition is None
                      else self.partitions.index_of(sub.partition))
        wire_bytes = LAUNCH_WIRE_BYTES + (0 if part_index is None else 8)
        pre_fanout = ready
        ready = self.switch.host_to_device(
            ready, sub.device, wire_bytes + len(args)
        )
        self.scheduler.note_issued(sub.device)
        self.stats.add("cluster.sub_launches")
        if self.recorder is not None:
            self.recorder.record("sched.issue", ready, device=sub.device,
                                 base=sub.base, bound=sub.bound)
        sub_span = None
        if tracer is not None:
            tracer.record("cxl.fanout", pre_fanout, ready,
                          parent=trace_parent, pid=1 + sub.device,
                          tid=sub_lane, bytes=wire_bytes + len(args))
            sub_span = tracer.begin(
                "cluster.sub_launch", ready, parent=trace_parent,
                pid=1 + sub.device, tid=sub_lane,
                base=sub.base, bound=sub.bound)
        sub_handle = self.runtimes[sub.device].launch_async(
            kids[sub.device], sub.base, sub.bound, args=args,
            sync=False, stride=stride, at_ns=ready,
            offset_bias=sub.offset_bias, partition=part_index,
            on_complete=self._make_sub_done(handle, kids, queue, index, args,
                                            stride, order, trace_parent,
                                            sub_span),
        )
        if self.faults is not None:
            self.faults.note_sub_issued(sub.device, handle, sub_handle,
                                        partition=eff_part)
        sub_handle.call.on_done(self._make_error_check(handle, sub))
        if tracer is not None:
            # the M2func read resolves the device-side instance id after
            # the backend may already have recorded its exec span; adopt
            # those spans under this sub-launch once the id is known
            def link(call, _pid=1 + sub.device, _span=sub_span,
                     _lane=sub_lane, _tracer=tracer):
                if call.value is not None and call.value >= 0:
                    _tracer.link_instance(_pid, call.value, _span, _lane)
            sub_handle.call.on_done(link)
        handle.subs[order[id(sub)]] = sub_handle

    def _make_sub_done(self, handle: ClusterLaunchHandle, kids: list[int],
                       queue: list[SubLaunch], index: int, args: bytes,
                       stride: int, order: dict[int, int],
                       trace_parent: int | None = None,
                       sub_span: int | None = None):
        def sub_done(sub_handle: LaunchHandle) -> None:
            sub = queue[index]
            if self.faults is not None and self.faults.note_sub_completion(
                    sub.device, sub_handle):
                # completion lost: the device died first; the injector
                # fails the handle (typed) at heartbeat detection
                return
            self.scheduler.note_complete(sub.device)
            when = sub_handle.complete_ns or self.sim.now
            if sub_span is not None and obs_tracer.ENABLED:
                obs_tracer.tracer_of(self.sim).end(sub_span, when)
            if index + 1 < len(queue) and not handle.finished:
                self._issue_sub(handle, kids, queue, index + 1, args,
                                stride, when, order, trace_parent)
            handle._sub_finished(when)
        return sub_done

    def _make_error_check(self, handle: ClusterLaunchHandle, sub: SubLaunch):
        def check(call) -> None:
            if call.value is not None and call.value < 0:
                handle.error = call.value
                self.scheduler.note_complete(sub.device)
                handle._sub_finished(call.done_ns or self.sim.now)
        return check

    def launch_kernel(self, kernel_id: int, pool_base: int, pool_bound: int,
                      args: bytes = b"", sync: bool = True,
                      stride: int = 32) -> ClusterLaunchHandle:
        """Blocking form: steps the shared simulator until every sub-launch
        completes (``sync=False`` returns once all instance IDs resolve)."""
        handle = self.launch_async(kernel_id, pool_base, pool_bound, args,
                                   stride=stride)
        failed = lambda: (handle.error is not None      # noqa: E731
                          or handle.failure is not None)
        if sync:
            self._step_until(lambda: handle.finished or failed(),
                             "cluster launch never completed")
        else:
            self._step_until(
                lambda: failed() or all(
                    h.call.done for h in handle.subs if h is not None
                ),
                "cluster launch was never acknowledged",
            )
        if handle.failure is not None:
            raise handle.failure
        if handle.error is not None:
            raise LaunchError(
                f"cluster sub-launch failed with {handle.error}", handle.error
            )
        return handle

    def run_kernel(self, source: str | KernelProgram, pool_base: int,
                   pool_bound: int, args: bytes = b"",
                   scratchpad_bytes: int = 0, stride: int = 32,
                   name: str = "kernel") -> ClusterInstance:
        """Register + launch synchronously; returns the aggregate instance."""
        kid = self.register_kernel(source, scratchpad_bytes, name=name)
        handle = self.launch_kernel(kid, pool_base, pool_bound, args,
                                    sync=True, stride=stride)
        return self.instances_of(handle)

    def instances_of(self, handle: ClusterLaunchHandle) -> ClusterInstance:
        """Resolve a finished handle's per-device kernel instances."""
        instances = []
        for sub, sub_handle in zip(handle.plan, handle.subs):
            if (sub_handle is None or sub_handle.instance_id is None
                    or sub_handle.instance_id < 0):
                continue
            controller = self.devices[sub.device].controller
            instances.append(controller.instances[sub_handle.instance_id])
        if not instances:
            raise LaunchError("cluster launch produced no kernel instances")
        return ClusterInstance(handle=handle, instances=instances)

    # ------------------------------------------------------------------

    def wait_all(self) -> float:
        """Drain the shared simulator (finish all outstanding work)."""
        self.sim.run()
        self._sync_now()
        return self.now

    def aggregate_stats(self) -> _AggregateStats:
        """Summing view over all device registries plus the cluster's own
        (switch bytes, sub-launch and P2P counters)."""
        return _AggregateStats(
            [device.stats for device in self.devices] + [self.stats]
        )

    def _sync_now(self) -> None:
        self.now = max([self.sim.now] + [rt.now for rt in self.runtimes])

    def _step_until(self, done: Callable[[], bool], what: str) -> None:
        while not done():
            if not self.sim.step():
                raise SimulationError(f"{what} (deadlock?)")
        self._sync_now()


# ---------------------------------------------------------------------------
# platform bundle mirroring repro.workloads.base.make_platform
# ---------------------------------------------------------------------------

@dataclass
class ClusterPlatform:
    """Drop-in for :class:`~repro.workloads.base.Platform` over a cluster:
    workloads taking ``platform.runtime`` / ``platform.stats`` run as-is."""

    sim: Simulator
    runtime: ClusterRuntime
    system: SystemConfig

    @property
    def device(self) -> M2NDPDevice:
        return self.runtime.device

    @property
    def devices(self) -> list[M2NDPDevice]:
        return self.runtime.devices

    @property
    def switch(self) -> CXLSwitch:
        return self.runtime.switch

    @property
    def stats(self) -> _AggregateStats:
        return self.runtime.aggregate_stats()


def make_cluster_platform(num_devices: int = 2,
                          system: SystemConfig | None = None,
                          cluster: ClusterConfig | None = None,
                          placement: str | None = None,
                          scheduler: str | None = None,
                          shard_bytes: int | None = None,
                          backend: str | None = None,
                          partitions: str | None = None) -> ClusterPlatform:
    """Build a fresh simulator + N-expander cluster bundle.

    Keyword conveniences (``placement`` / ``scheduler`` / ``shard_bytes``)
    override the corresponding :class:`ClusterConfig` fields; a full
    ``cluster`` config wins over ``num_devices``.  ``partitions`` is a
    hardware partition spec (``"rt:1,batch:3"``) applied to every device;
    selection precedence matches the other knobs (argument >
    ``REPRO_PARTITIONS`` > config default, validated at construction).
    """
    if cluster is None:
        cluster = ClusterConfig(
            num_devices=num_devices,
            placement=placement if placement is not None else "interleaved",
            shard_bytes=shard_bytes if shard_bytes is not None else 0,
        )
    elif placement is not None or shard_bytes is not None:
        raise ConfigError(
            "pass either a full ClusterConfig or per-field overrides, not both"
        )
    runtime = ClusterRuntime(system=system, cluster=cluster,
                             backend=backend, scheduler=scheduler,
                             partitions=partitions)
    return ClusterPlatform(sim=runtime.sim, runtime=runtime,
                           system=runtime.system)
