"""Fan-out launch scheduling: one logical launch → per-device sub-launches.

The paper's multi-expander mode (§III-I) launches "one kernel per device"
over software-partitioned data.  :class:`LaunchScheduler` automates that
split: given a launch's pool region and the pool allocation's
:class:`~repro.cluster.placement.ShardMap`, it cuts the region into
stride-aligned work chunks along ownership boundaries and assigns each
chunk to a device under one of three policies:

``locality``
    Follow the shard — each chunk runs on the device that owns its bytes
    (round-robin for replicated data, which is local everywhere).  Zero
    P2P traffic by construction.
``round_robin``
    Chunk *k* goes to device ``k % N`` regardless of ownership.  Matches
    locality on interleaved pools; on blocked pools it trades switch
    traffic for issue simplicity.
``least_outstanding``
    Each chunk goes to the device with the fewest outstanding sub-launches
    (live queue depth plus chunks already planned this call) — the classic
    load-balancer policy for heterogeneous streams.

Chunks a device does not own are charged as P2P reads through
``CXLSwitch.peer_to_peer`` by the cluster runtime before the sub-launch
starts; the plan records the required bytes per remote owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.placement import ShardMap
from repro.errors import ConfigError, DeviceUnavailable

#: Valid scheduler policy names (ClusterConfig / env validation).
SCHEDULERS = ("round_robin", "locality", "least_outstanding")


def validate_scheduler_name(name: str, source: str = "scheduler") -> str:
    """Check ``name`` against the policy list, naming the offending source."""
    if name not in SCHEDULERS:
        raise ConfigError(
            f"unknown cluster scheduler {name!r} (from {source}); "
            f"choose from {list(SCHEDULERS)}"
        )
    return name

#: A plan never exceeds this many sub-launches: finer shard maps are
#: re-chunked into even contiguous spans (the controller's concurrent-kernel
#: slots and M2func call overheads make million-chunk plans pointless).
MAX_SUBLAUNCHES = 64


@dataclass
class SubLaunch:
    """One device's share of a logical launch."""

    device: int
    base: int
    bound: int
    offset_bias: int                      # (base - logical pool base)
    remote: dict[int, int] = field(default_factory=dict)   # owner -> bytes
    #: Hardware partition the sub-launch binds to on its device (copied
    #: from the pool shard's active partition at plan time; None =
    #: unpartitioned).
    partition: str | None = None

    @property
    def size(self) -> int:
        return self.bound - self.base

    @property
    def remote_bytes(self) -> int:
        return sum(self.remote.values())


class LaunchScheduler:
    """Splits launches across ``num_devices`` under a fan-out policy."""

    def __init__(self, policy: str, num_devices: int,
                 max_sublaunches: int = MAX_SUBLAUNCHES) -> None:
        validate_scheduler_name(policy)
        if num_devices <= 0:
            raise ConfigError("scheduler needs at least one device")
        self.policy = policy
        self.num_devices = num_devices
        self.max_sublaunches = max_sublaunches
        #: Live sub-launches per device, maintained by the cluster runtime.
        self.outstanding = [0] * num_devices
        #: Routability mask: False for DOWN or draining devices.  All-True
        #: for a healthy cluster, in which case assignment is identical to
        #: the fault-free scheduler.
        self.routable = [True] * num_devices
        self.num_routable = num_devices
        # Round-robin position persists *across* plan() calls: a stream of
        # single-chunk launches (KVStore GETs) must still spread over the
        # cluster instead of all landing on device 0.
        self._cursor = 0

    # ------------------------------------------------------------------
    # bookkeeping hooks (called by ClusterRuntime)
    # ------------------------------------------------------------------

    def note_issued(self, device: int) -> None:
        self.outstanding[device] += 1

    def note_complete(self, device: int) -> None:
        self.outstanding[device] -= 1

    def set_routable(self, device: int, ok: bool) -> bool:
        """Mark ``device`` (un)routable (DOWN device, planned drain);
        returns True when the mask actually changed."""
        if not 0 <= device < self.num_devices:
            raise ConfigError(f"no device {device} to (un)route")
        if self.routable[device] == ok:
            return False
        self.routable[device] = ok
        self.num_routable += 1 if ok else -1
        return True

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(self, shard: ShardMap | None, pool_base: int, pool_bound: int,
             stride: int) -> list[SubLaunch]:
        """Cut [pool_base, pool_bound) into assigned sub-launches.

        ``shard`` is the pool allocation's map (None for pools outside any
        cluster allocation — treated as replicated).  Chunk edges are
        stride-aligned relative to ``pool_base`` so every µthread slice
        lands in exactly one sub-launch.
        """
        if pool_bound <= pool_base:
            raise ConfigError(
                f"empty pool region [{pool_base:#x}, {pool_bound:#x})"
            )
        if self.num_routable == 0:
            raise DeviceUnavailable(
                "no routable device for launch (all DOWN or draining)",
                devices=tuple(range(self.num_devices)),
            )
        # Every sub-launch of a partition-pinned pool binds to the shard's
        # active partition — placement can never produce a cross-partition
        # launch because the partition is decided once, at the pool level.
        partition = shard.active_partition if shard is not None else None
        if self.num_devices == 1:
            return [SubLaunch(device=0, base=pool_base, bound=pool_bound,
                              offset_bias=0, partition=partition)]
        chunks = self._chunks(shard, pool_base, pool_bound, stride)
        planned = [0] * self.num_devices
        subs: list[SubLaunch] = []
        for owner, lo, hi in chunks:
            device = self._assign(owner, planned)
            planned[device] += 1
            remote = (shard.remote_bytes(lo, hi, device)
                      if shard is not None else {})
            if subs and subs[-1].device == device and subs[-1].bound == lo:
                last = subs[-1]
                last.bound = hi
                for own, nbytes in remote.items():
                    last.remote[own] = last.remote.get(own, 0) + nbytes
            else:
                subs.append(SubLaunch(device=device, base=lo, bound=hi,
                                      offset_bias=lo - pool_base,
                                      remote=remote, partition=partition))
        return subs

    # ------------------------------------------------------------------

    def _assign(self, owner: int, planned: list[int]) -> int:
        if self.policy == "locality" and owner >= 0 and self.routable[owner]:
            return owner
        if self.policy == "least_outstanding":
            return min(
                (d for d in range(self.num_devices) if self.routable[d]),
                key=lambda d: (self.outstanding[d] + planned[d], d),
            )
        # round_robin, locality over replicated/unmapped chunks, and the
        # fallback when a chunk's owner is not routable
        while True:
            device = self._cursor % self.num_devices
            self._cursor += 1
            if self.routable[device]:
                return device

    def _chunks(self, shard: ShardMap | None, lo: int, hi: int,
                stride: int) -> list[tuple[int, int, int]]:
        """(owner, lo, hi) work chunks with stride-aligned edges."""
        segments = (shard.owner_segments(lo, hi)
                    if shard is not None else [(-1, lo, hi)])
        # Ownership runs that are local everywhere (replicated) are split
        # into one even span per device so all expanders contribute.
        expanded: list[tuple[int, int, int]] = []
        for owner, seg_lo, seg_hi in segments:
            if owner >= 0:
                expanded.append((owner, seg_lo, seg_hi))
                continue
            expanded.extend(self._even_spans(seg_lo, seg_hi, stride))
        chunks = self._realign(expanded, lo, hi, stride)
        if len(chunks) > self.max_sublaunches:
            # Too fine a shard map: fall back to one even span per device
            # (correctness is unaffected; remote bytes are still charged).
            chunks = self._realign(
                list(self._even_spans(lo, hi, stride)), lo, hi, stride
            )
        return chunks

    def _even_spans(self, lo: int, hi: int, stride: int):
        threads = -(-(hi - lo) // stride)
        per_dev = -(-threads // self.num_devices) * stride
        cursor = lo
        for _ in range(self.num_devices):
            if cursor >= hi:
                break
            end = min(cursor + per_dev, hi)
            yield (-1, cursor, end)
            cursor = end

    @staticmethod
    def _realign(chunks: list[tuple[int, int, int]], lo: int, hi: int,
                 stride: int) -> list[tuple[int, int, int]]:
        """Snap interior chunk edges down to stride multiples from ``lo``."""
        out: list[tuple[int, int, int]] = []
        cursor = lo
        for owner, _c_lo, c_hi in chunks:
            edge = hi if c_hi >= hi else lo + (c_hi - lo) // stride * stride
            if edge <= cursor:
                continue
            out.append((owner, cursor, edge))
            cursor = edge
        if cursor < hi:
            if out:
                owner, last_lo, _ = out[-1]
                out[-1] = (owner, last_lo, hi)
            else:
                out.append((-1, lo, hi))
        return out
