"""Multi-expander cluster subsystem (§III-I / Fig 12b made executable).

Wires N :class:`~repro.ndp.device.M2NDPDevice` expanders behind one
:class:`~repro.cxl.switch.CXLSwitch` on a shared simulator:

- :mod:`repro.cluster.placement` — sharded HDM allocation (interleaved /
  blocked / replicated) with per-allocation ownership maps;
- :mod:`repro.cluster.scheduler` — fan-out launch scheduling (round-robin,
  locality, least-outstanding) splitting logical launches into per-device
  sub-launches;
- :mod:`repro.cluster.runtime` — the :class:`ClusterRuntime` facade
  mirroring ``M2NDPRuntime`` so workloads run unmodified on 1..N devices;
- :mod:`repro.cluster.driver` — a multi-tenant open-loop traffic driver
  reporting p50/p95/p99 latency and aggregate throughput.
"""

from repro.cluster.placement import (
    PLACEMENTS,
    ClusterAllocator,
    ShardMap,
    auto_shard_bytes,
)
from repro.cluster.runtime import (
    ClusterInstance,
    ClusterLaunchHandle,
    ClusterPlatform,
    ClusterRuntime,
    make_cluster_platform,
    resolve_launch_timeout,
)
from repro.cluster.scheduler import (
    MAX_SUBLAUNCHES,
    SCHEDULERS,
    LaunchScheduler,
    SubLaunch,
)

__all__ = [
    "PLACEMENTS",
    "SCHEDULERS",
    "MAX_SUBLAUNCHES",
    "ClusterAllocator",
    "ClusterInstance",
    "ClusterLaunchHandle",
    "ClusterPlatform",
    "ClusterRuntime",
    "LaunchScheduler",
    "ShardMap",
    "SubLaunch",
    "auto_shard_bytes",
    "make_cluster_platform",
    "resolve_launch_timeout",
]
