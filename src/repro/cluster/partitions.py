"""Hardware partitioning: blast-radius isolation inside one expander.

OS-level isolation (processes, cgroups) is exactly the overhead M2NDP
exists to avoid, so multi-tenant serving on a CXL expander needs the
*hardware* to carve itself up: MI300-style compute/memory partitioning
where each logical partition owns a disjoint slice of the device's NDP
units, memory-side L2 sets and DRAM channels.  A partitioned device
behaves like several smaller independent devices sharing one physical
byte store — no launch, cache line or DRAM access of one partition can
perturb another partition's timing, and a fault scoped to one partition
(kill / stall / poison) has a blast radius of exactly that partition.

A partition *spec* is a comma-separated list of ``name[:weight]``
entries, e.g. ``"rt:1,batch:3"`` or ``"rt,batch,spare"`` (weights
default to 1).  The same spec applies uniformly to every device in a
cluster: resources are apportioned by largest remainder so per-partition
unit / channel / L2-set shares always sum *exactly* to the device totals
(every resource belongs to exactly one partition — nothing shared,
nothing lost), with every partition guaranteed at least one of each.

The map is resolved once at platform construction (``REPRO_PARTITIONS``
or ``make_cluster_platform(partitions=...)``) and threaded everywhere a
resource decision happens: device timing models, launch queues, shard
placement, fan-out scheduling, fault scoping and the serving tier's
admission caps.  An unresolved spec (``None`` — the default) leaves the
device unpartitioned and byte-identical to pre-partitioning behavior.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Shown by validation errors, mirroring REPRO_EXEC_BACKEND's pattern.
PARTITION_SPEC_EXAMPLES = ('"rt:1,batch:3"', '"rt,batch"',
                           '"rt:2,batch:5,spare:1"')

#: Conventional name of a hot-spare partition: partition-scoped failure
#: recovery prefers it as the fail-over target when present.
SPARE_PARTITION = "spare"


def _apportion(total: int, weights: list[int]) -> list[int]:
    """Split ``total`` integral resources proportionally to ``weights``.

    Largest-remainder (Hamilton) apportionment with a floor of 1: shares
    sum to exactly ``total`` and every entry gets at least one resource,
    so a partition can never be compute- or channel-less.
    """
    n = len(weights)
    if total < n:
        raise ConfigError(
            f"cannot apportion {total} resources across {n} partitions "
            f"(each needs at least 1)"
        )
    weight_sum = sum(weights)
    spare = total - n                      # after the 1-per-partition floor
    quotas = [spare * w / weight_sum for w in weights]
    shares = [1 + int(q) for q in quotas]
    remainders = sorted(
        range(n), key=lambda i: (-(quotas[i] - int(quotas[i])), i)
    )
    for i in remainders[: total - sum(shares)]:
        shares[i] += 1
    return shares


def parse_partition_spec(spec: str,
                         source: str = "REPRO_PARTITIONS"
                         ) -> tuple[tuple[str, int], ...]:
    """Parse ``"name[:weight],..."`` into ``((name, weight), ...)``."""

    def bad(why: str) -> ConfigError:
        return ConfigError(
            f"invalid partition spec {spec!r} from {source}: {why}; "
            f"expected comma-separated name[:weight] entries like "
            f"{', '.join(PARTITION_SPEC_EXAMPLES)}"
        )

    entries: list[tuple[str, int]] = []
    for raw in spec.split(","):
        part = raw.strip()
        if not part:
            raise bad("empty entry")
        name, sep, weight_str = part.partition(":")
        name = name.strip()
        if not name.replace("_", "").replace("-", "").isalnum():
            raise bad(f"bad partition name {name!r}")
        if sep and not weight_str.strip():
            raise bad(f"missing weight after ':' for {name!r}")
        if weight_str:
            try:
                weight = int(weight_str)
            except ValueError:
                raise bad(f"non-integer weight {weight_str.strip()!r} "
                          f"for {name!r}") from None
            if weight <= 0:
                raise bad(f"weight for {name!r} must be positive")
        else:
            weight = 1
        entries.append((name, weight))
    names = [name for name, _ in entries]
    if len(set(names)) != len(names):
        raise bad("duplicate partition names")
    return tuple(entries)


@dataclass(frozen=True)
class PartitionShare:
    """One partition's slice of a device's hardware resources."""

    name: str
    index: int
    weight: int
    unit_base: int           # first NDP unit (contiguous range)
    num_units: int
    channels: int            # DRAM channels owned
    l2_sets: int             # memory-side L2 sets owned
    channel_bw_bytes_per_ns: float
    l2_set_bytes: int        # ways * line_bytes (for size reporting)

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """The partition's private DRAM bandwidth share."""
        return self.channels * self.channel_bw_bytes_per_ns

    @property
    def l2_bytes(self) -> int:
        return self.l2_sets * self.l2_set_bytes

    @property
    def units(self) -> range:
        return range(self.unit_base, self.unit_base + self.num_units)


@dataclass(frozen=True)
class PartitionMap:
    """Resolved per-device partitioning: the spec applied to one config."""

    spec: str
    shares: tuple[PartitionShare, ...]
    total_units: int
    total_channels: int
    total_l2_sets: int

    def __post_init__(self) -> None:
        # The apportionment invariant the property tests pin down:
        # shares partition each resource exactly.
        if sum(s.num_units for s in self.shares) != self.total_units:
            raise ConfigError("partition unit shares do not sum to device")
        if sum(s.channels for s in self.shares) != self.total_channels:
            raise ConfigError("partition channel shares do not sum to device")
        if sum(s.l2_sets for s in self.shares) != self.total_l2_sets:
            raise ConfigError("partition L2-set shares do not sum to device")

    def __len__(self) -> int:
        return len(self.shares)

    def __iter__(self):
        return iter(self.shares)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.shares)

    def share(self, name: str) -> PartitionShare:
        for s in self.shares:
            if s.name == name:
                return s
        raise ConfigError(
            f"unknown partition {name!r}; this device has {list(self.names)}"
        )

    def index_of(self, name: str) -> int:
        return self.share(name).index

    def by_index(self, index: int) -> PartitionShare:
        if not 0 <= index < len(self.shares):
            raise ConfigError(
                f"partition index {index} out of range "
                f"(device has {len(self.shares)} partitions)"
            )
        return self.shares[index]

    @property
    def default(self) -> PartitionShare:
        """Where untagged launches land on a partitioned device."""
        return self.shares[0]

    def spare_for(self, victim: str) -> PartitionShare | None:
        """Fail-over target for a failed partition.

        Prefers the conventional ``spare`` partition; otherwise the
        lowest-index survivor.  ``None`` when nothing else exists.
        """
        self.share(victim)          # validates the name
        if victim != SPARE_PARTITION:
            for s in self.shares:
                if s.name == SPARE_PARTITION:
                    return s
        for s in self.shares:
            if s.name != victim:
                return s
        return None

    def describe(self) -> dict:
        """JSON-ready summary for the run manifest sidecar."""
        return {
            "spec": self.spec,
            "partitions": [
                {
                    "name": s.name,
                    "weight": s.weight,
                    "units": [s.unit_base, s.unit_base + s.num_units],
                    "channels": s.channels,
                    "l2_bytes": s.l2_bytes,
                    "bandwidth_bytes_per_ns": round(
                        s.bandwidth_bytes_per_ns, 3),
                }
                for s in self.shares
            ],
        }


def resolve_partitions(spec: str | None, config,
                       source: str = "REPRO_PARTITIONS"
                       ) -> PartitionMap | None:
    """Resolve a partition spec against a :class:`SystemConfig`.

    Returns ``None`` for an unset spec (the unpartitioned default).
    Raises :class:`ConfigError` when the spec is malformed or asks for
    more partitions than the device has units / channels to give.
    """
    if not spec:
        return None
    entries = parse_partition_spec(spec, source)
    ndp, dram, l2 = config.ndp, config.cxl_dram, config.l2
    n = len(entries)
    limit = min(ndp.num_units, dram.channels, l2.num_sets)
    if n > limit:
        raise ConfigError(
            f"partition spec {spec!r} from {source} names {n} partitions "
            f"but the device can host at most {limit} "
            f"({ndp.num_units} units, {dram.channels} channels, "
            f"{l2.num_sets} L2 sets); examples: "
            f"{', '.join(PARTITION_SPEC_EXAMPLES)}"
        )
    weights = [w for _, w in entries]
    unit_shares = _apportion(ndp.num_units, weights)
    channel_shares = _apportion(dram.channels, weights)
    set_shares = _apportion(l2.num_sets, weights)
    shares = []
    unit_base = 0
    for i, (name, weight) in enumerate(entries):
        shares.append(PartitionShare(
            name=name,
            index=i,
            weight=weight,
            unit_base=unit_base,
            num_units=unit_shares[i],
            channels=channel_shares[i],
            l2_sets=set_shares[i],
            channel_bw_bytes_per_ns=dram.channel_bw_bytes_per_ns,
            l2_set_bytes=l2.ways * l2.line_bytes,
        ))
        unit_base += unit_shares[i]
    return PartitionMap(
        spec=spec,
        shares=tuple(shares),
        total_units=ndp.num_units,
        total_channels=dram.channels,
        total_l2_sets=l2.num_sets,
    )
