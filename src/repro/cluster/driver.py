"""Multi-tenant open-loop traffic driver for the M2NDP cluster.

Frames CXL-NDP offload as a *request-serving* problem (the ROADMAP's
"heavy traffic from millions of users"): many concurrent client streams —
KVStore point lookups, OLAP column scans, batched VectorAdds — arrive
open-loop at a target rate, each request becoming one logical cluster
launch fanned out by the scheduler.  The driver reports the latency
distribution (p50/p95/p99) per stream and in aggregate, plus achieved
throughput, so scheduler/placement choices can be compared under load.

Open-loop means arrivals do not wait for completions (Poisson
interarrivals), so queueing shows up as latency — the methodology the
paper uses for its KVStore P95 numbers (Fig 1b / Fig 10b).

Usage::

    platform = make_cluster_platform(num_devices=4)
    driver = TrafficDriver(platform, [
        StreamSpec("tenantA", "kvstore", rate_rps=2e6, requests=500),
        StreamSpec("tenantB", "olap",    rate_rps=2e5, requests=50),
        StreamSpec("tenantC", "vecadd",  rate_rps=5e5, requests=100),
    ])
    report = driver.run()
    print(report.render())
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.runtime import ClusterPlatform
from repro.errors import ConfigError
from repro.host.api import pack_args
from repro.kernels.kvstore import KVS_GET
from repro.kernels.olap import EVAL_RANGE_I32
from repro.kernels.vecadd import VECADD
from repro.serve.arrivals import ArrivalSpec, PoissonArrivals, stream_rng
from repro.serve.engine import HOST_DISPATCH_NS
from repro.sim.stats import Distribution
from repro.workloads import kvstore


def _stream_salt(name: str) -> int:
    """Deterministic per-stream data salt (``hash()`` is process-randomized)."""
    return zlib.crc32(name.encode()) % 8192

#: Supported request kinds.
STREAM_KINDS = ("vecadd", "olap", "kvstore")


@dataclass(frozen=True)
class StreamSpec:
    """One tenant's open-loop request stream."""

    name: str
    kind: str                     # "vecadd" | "olap" | "kvstore"
    rate_rps: float               # offered load, requests per second
    requests: int
    #: vecadd: elements per request; olap: rows scanned per request;
    #: kvstore: items in this tenant's table.
    size: int = 0
    #: vecadd/olap: number of distinct working-set slices requests cycle
    #: through.  A slice count whose total working set exceeds the cluster's
    #: aggregate L2 keeps the stream bandwidth-bound (a single re-scanned
    #: slice measures cache-hit latency instead).
    slices: int = 8
    placement: str | None = None  # override the cluster default

    def __post_init__(self) -> None:
        if self.kind not in STREAM_KINDS:
            raise ConfigError(
                f"unknown stream kind {self.kind!r}; "
                f"choose from {list(STREAM_KINDS)}"
            )
        if self.rate_rps <= 0 or self.requests <= 0:
            raise ConfigError("stream needs positive rate and request count")
        if self.slices <= 0:
            raise ConfigError("stream needs at least one working-set slice")

    @property
    def interarrival_ns(self) -> float:
        return 1e9 / self.rate_rps

    @property
    def effective_size(self) -> int:
        if self.size:
            return self.size
        return {"vecadd": 1 << 14, "olap": 1 << 15, "kvstore": 1 << 10}[self.kind]


@dataclass
class StreamReport:
    """Latency/throughput summary of one stream."""

    name: str
    kind: str
    offered_rps: float
    latencies: Distribution = field(default_factory=Distribution)
    correct: bool = True
    first_arrival_ns: float = float("inf")
    last_completion_ns: float = 0.0

    @property
    def span_ns(self) -> float:
        return max(self.last_completion_ns - self.first_arrival_ns, 0.0)

    @property
    def throughput_rps(self) -> float:
        return self.served / (self.span_ns * 1e-9) if self.span_ns > 0 else 0.0

    @property
    def served(self) -> int:
        return self.latencies.count

    @property
    def p50_ns(self) -> float:
        return self.latencies.percentile(50.0)

    @property
    def p95_ns(self) -> float:
        return self.latencies.p95

    @property
    def p99_ns(self) -> float:
        return self.latencies.p99

    @property
    def mean_ns(self) -> float:
        return self.latencies.mean


@dataclass
class TrafficReport:
    """Whole-run summary across all tenant streams."""

    streams: list[StreamReport]
    span_ns: float                # first arrival to last completion
    aggregate: Distribution

    @property
    def served(self) -> int:
        return self.aggregate.count

    @property
    def throughput_rps(self) -> float:
        return self.served / (self.span_ns * 1e-9) if self.span_ns > 0 else 0.0

    @property
    def p50_ns(self) -> float:
        return self.aggregate.percentile(50.0)

    @property
    def p95_ns(self) -> float:
        return self.aggregate.p95

    @property
    def p99_ns(self) -> float:
        return self.aggregate.p99

    @property
    def correct(self) -> bool:
        return all(s.correct for s in self.streams)

    def render(self) -> str:
        lines = [
            f"{'stream':>10} | {'kind':>8} | {'served':>6} | "
            f"{'rps':>12} | {'p50 ns':>10} | {'p95 ns':>10} | {'p99 ns':>10}"
        ]
        for s in self.streams:
            lines.append(
                f"{s.name:>10} | {s.kind:>8} | {s.served:>6} | "
                f"{s.throughput_rps:>12,.0f} | "
                f"{s.p50_ns:>10.0f} | {s.p95_ns:>10.0f} | {s.p99_ns:>10.0f}"
            )
        lines.append(
            f"aggregate: {self.served} requests in {self.span_ns:.0f} ns "
            f"({self.throughput_rps:,.0f} rps), "
            f"p50 {self.p50_ns:.0f} / p95 {self.p95_ns:.0f} / "
            f"p99 {self.p99_ns:.0f} ns"
        )
        return "\n".join(lines)


class _Stream:
    """Runtime state of one tenant: data in HDM plus request factories."""

    def __init__(self, platform: ClusterPlatform, spec: StreamSpec,
                 seed: int) -> None:
        self.spec = spec
        self.runtime = platform.runtime
        self.report = StreamReport(name=spec.name, kind=spec.kind,
                                   offered_rps=spec.rate_rps)
        self.salt = seed + _stream_salt(spec.name)
        self.gen = stream_rng(seed, spec.name)
        getattr(self, f"_setup_{spec.kind}")()

    # -- per-kind data setup (functional, like single-device workloads) ----

    def _setup_vecadd(self) -> None:
        n = self.spec.effective_size
        total = n * self.spec.slices
        self.a = (np.arange(total, dtype=np.int64)
                  * int(self.gen.integers(1, 9)))
        self.b = self.a[::-1].copy()
        kw = dict(placement=self.spec.placement) if self.spec.placement else {}
        self.addr_a = self.runtime.alloc_array(self.a, **kw)
        self.addr_b = self.runtime.alloc_array(self.b, **kw)
        self.addr_c = self.runtime.alloc(self.a.nbytes, **kw)
        self.kid = self.runtime.register_kernel(VECADD, name=f"{self.spec.name}.vecadd")
        self._touched: set[int] = set()

    def _setup_olap(self) -> None:
        rows = self.spec.effective_size
        total = rows * self.spec.slices
        self.lo, self.hi = 100, 900
        self.column = self.gen.integers(0, 1000, total).astype(np.int32)
        kw = dict(placement=self.spec.placement) if self.spec.placement else {}
        self.addr_col = self.runtime.alloc_array(self.column, **kw)
        self.addr_mask = self.runtime.alloc(total, **kw)
        self.kid = self.runtime.register_kernel(
            EVAL_RANGE_I32, name=f"{self.spec.name}.scan"
        )
        self._touched = set()

    def _setup_kvstore(self) -> None:
        # KV tables are replicated by default: read-mostly data every
        # expander should serve without a switch hop.
        placement = self.spec.placement or "replicated"
        # the workload module supplies the table population and the zipfian
        # GET targets; arrivals come from the stream's open-loop rate
        self.data = kvstore.generate(
            self.spec.effective_size, self.spec.requests,
            get_fraction=1.0, mix_name="GET", salt=self.salt,
        )
        self.table = kvstore.setup_table(self.runtime, self.data,
                                         placement=placement)
        # one 128 B result slot per request: slots are verified after the
        # run, so recycling them would let later GETs overwrite checks
        self.slots_addr = self.runtime.alloc(self.spec.requests * 128,
                                             align=128, placement=placement)
        self.kid = self.runtime.register_kernel(
            KVS_GET, name=f"{self.spec.name}.get"
        )
        self._checks: list[tuple[int, int]] = []

    # -- request issue ------------------------------------------------------

    def issue(self, index: int, arrival_ns: float, record) -> None:
        """Launch request ``index``; ``record(latency_ns)`` on completion."""
        spec = self.spec

        self.report.first_arrival_ns = min(self.report.first_arrival_ns,
                                           arrival_ns)

        def done(handle) -> None:
            latency = handle.complete_ns - arrival_ns
            self.report.latencies.add(latency)
            self.report.last_completion_ns = max(
                self.report.last_completion_ns, handle.complete_ns
            )
            record(latency, handle.complete_ns)

        if spec.kind == "vecadd":
            s = index % spec.slices
            self._touched.add(s)
            off = s * spec.effective_size * 8
            base = self.addr_a + off
            bound = base + spec.effective_size * 8
            args = pack_args(self.addr_b + off, self.addr_c + off)
            self.runtime.launch_async(self.kid, base, bound, args=args,
                                      at_ns=arrival_ns, on_complete=done)
        elif spec.kind == "olap":
            s = index % spec.slices
            self._touched.add(s)
            rows = spec.effective_size
            base = self.addr_col + s * rows * 4
            bound = base + rows * 4
            args = pack_args(self.addr_mask + s * rows, self.lo, self.hi)
            self.runtime.launch_async(self.kid, base, bound, args=args,
                                      at_ns=arrival_ns, on_complete=done)
        else:
            req = self.data.requests[index]
            bucket_ptr = self.table.buckets_addr + 8 * kvstore.hash_key(
                *req.key, self.data.buckets
            )
            slot = self.slots_addr + index * 128
            self._checks.append((slot, req.value_seed))
            args = pack_args(bucket_ptr, *req.key)
            self.runtime.launch_async(self.kid, slot, slot + 32, args=args,
                                      at_ns=arrival_ns, on_complete=done)

    # -- post-run verification ---------------------------------------------

    def verify(self) -> None:
        physical = self.runtime.physical
        if self.spec.kind == "vecadd":
            n = self.spec.effective_size
            produced = self.runtime.read_array(self.addr_c, np.int64,
                                               len(self.a))
            expected = self.a + self.b
            self.report.correct = all(
                np.array_equal(produced[s * n:(s + 1) * n],
                               expected[s * n:(s + 1) * n])
                for s in self._touched
            )
        elif self.spec.kind == "olap":
            rows = self.spec.effective_size
            produced = self.runtime.read_array(
                self.addr_mask, np.uint8, len(self.column)
            ).astype(bool)
            expected = (self.column >= self.lo) & (self.column < self.hi)
            self.report.correct = all(
                np.array_equal(produced[s * rows:(s + 1) * rows],
                               expected[s * rows:(s + 1) * rows])
                for s in self._touched
            )
        else:
            ok = True
            for slot, item in self._checks:
                status = physical.read_u64(slot + 64)
                value = physical.read_u64(slot)
                if status != 1 or value != item:
                    ok = False
                    break
            self.report.correct = ok


class TrafficDriver:
    """Replays concurrent open-loop tenant streams against a cluster.

    Every random draw (stream data and Poisson arrivals) comes from a
    :class:`numpy.random.Generator` derived from ``ClusterConfig.seed``
    plus the stream name (see :func:`repro.serve.arrivals.stream_rng`),
    so a traffic run reproduces bit-for-bit across processes; ``salt``
    offsets the whole run for explicit replications.
    """

    def __init__(self, platform: ClusterPlatform,
                 specs: list[StreamSpec], salt: int = 0) -> None:
        if not specs:
            raise ConfigError("traffic driver needs at least one stream")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate stream names: {names}")
        self.platform = platform
        self.sim = platform.sim
        self.seed = platform.runtime.cluster_config.seed + salt
        self.streams = [_Stream(platform, spec, self.seed) for spec in specs]

    def run(self) -> TrafficReport:
        """Schedule every arrival, drain the simulator, summarize."""
        aggregate = Distribution()
        first_arrival = float("inf")
        last_completion = 0.0

        def record(latency_ns: float, when_ns: float) -> None:
            nonlocal last_completion
            aggregate.add(latency_ns)
            last_completion = max(last_completion, when_ns)

        epoch = self.sim.now   # setup (registration) happened before this
        for stream in self.streams:
            spec = stream.spec
            # one source of truth for arrival generation: repro.serve
            process = PoissonArrivals(
                ArrivalSpec(process="poisson", rate_rps=spec.rate_rps,
                            requests=spec.requests),
                stream_rng(self.seed, spec.name + "#arrivals"),
            )
            arrivals = process.initial(epoch)
            first_arrival = min(first_arrival, float(arrivals[0]))
            for index, arrival in enumerate(arrivals):
                arrival = float(arrival) + HOST_DISPATCH_NS
                self.sim.schedule_at(
                    float(arrivals[index]),
                    (lambda s=stream, i=index, a=arrival:
                     s.issue(i, a, record)),
                )
        self.sim.run()
        for stream in self.streams:
            stream.verify()
        span = max(last_completion - first_arrival, 0.0)
        return TrafficReport(
            streams=[s.report for s in self.streams],
            span_ns=span,
            aggregate=aggregate,
        )
