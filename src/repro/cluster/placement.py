"""Sharded HDM placement across a multi-expander cluster (§III-I).

The paper scales M2NDP by putting several CXL-M2NDP expanders behind one
switch and software-partitioning the data.  This module is that software
partitioning made explicit: every cluster allocation carries a
:class:`ShardMap` describing which expander owns which bytes of the
logical range, under one of three placements:

``interleaved``
    Fixed-size chunks round-robin across the devices — the default; spreads
    any access pattern's bandwidth over all expanders.
``blocked``
    One contiguous block per device — best for pool-sweep kernels whose
    sub-launches align with the blocks (zero P2P under the locality
    scheduler).
``replicated``
    Every device holds the full range — read-mostly data (KV tables, model
    weights) that any expander must reach without a switch hop.

Addresses are *cluster-logical*: the same numeric address is valid on every
device (allocations are made in lockstep on all of them), so a ShardMap is
pure arithmetic over ``(addr - base)``.  The scheduler uses it to split
launches along ownership boundaries and to charge
:meth:`repro.cxl.switch.CXLSwitch.peer_to_peer` for the bytes a sub-launch
touches on a remote shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Valid placement policy names (ClusterConfig validates against this).
PLACEMENTS = ("interleaved", "blocked", "replicated")

#: Shard granularity is page-sized by default; auto-sizing targets this many
#: interleaved chunks per device so sub-launch counts stay bounded.
MIN_SHARD_BYTES = 4096
AUTO_SHARDS_PER_DEVICE = 4


def auto_shard_bytes(size: int, num_devices: int) -> int:
    """Pick an interleave granularity: ~AUTO_SHARDS_PER_DEVICE chunks per
    device, never below a page."""
    target = -(-size // (num_devices * AUTO_SHARDS_PER_DEVICE))
    return max(MIN_SHARD_BYTES,
               -(-target // MIN_SHARD_BYTES) * MIN_SHARD_BYTES)


@dataclass(frozen=True)
class ShardMap:
    """Ownership map of one logical allocation across ``num_devices``."""

    base: int
    size: int
    placement: str
    num_devices: int
    shard_bytes: int
    #: Failover redirection (dead owner -> survivor), installed by
    #: recovery via :meth:`fail_over`.  The dict's *contents* mutate inside
    #: the frozen map: ownership policy is immutable, residency is not.
    #: Empty for a healthy cluster, so ownership arithmetic stays as-is.
    remap: dict[int, int] = field(default_factory=dict, compare=False)
    #: Hardware partition this allocation (and every launch over it) is
    #: pinned to, uniformly on all devices.  ``None`` = unpartitioned.
    partition: str | None = None
    #: Partition failover (victim -> survivor), installed by recovery via
    #: :meth:`move_partition`; mutates-in-frozen exactly like ``remap``.
    partition_remap: dict[str, str] = field(default_factory=dict,
                                            compare=False)

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {self.placement!r}; "
                f"choose from {list(PLACEMENTS)}"
            )
        if self.size <= 0 or self.num_devices <= 0 or self.shard_bytes <= 0:
            raise ConfigError("ShardMap needs positive size/devices/granule")

    @property
    def bound(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.bound

    # ------------------------------------------------------------------
    # ownership arithmetic
    # ------------------------------------------------------------------

    @property
    def block_bytes(self) -> int:
        """Per-device span under blocked placement (granule-aligned)."""
        per_dev = -(-self.size // self.num_devices)
        return -(-per_dev // self.shard_bytes) * self.shard_bytes

    def owner_of(self, addr: int) -> int:
        """Device holding the authoritative copy of ``addr``.

        Replicated ranges report device 0 (any copy is authoritative; use
        :meth:`is_local` for placement-aware locality checks).
        """
        if not self.contains(addr):
            raise ConfigError(
                f"address {addr:#x} outside shard map "
                f"[{self.base:#x}, {self.bound:#x})"
            )
        rel = addr - self.base
        if self.placement == "interleaved":
            owner = (rel // self.shard_bytes) % self.num_devices
        elif self.placement == "blocked":
            owner = min(rel // self.block_bytes, self.num_devices - 1)
        else:
            owner = 0
        if self.remap:
            owner = self.remap.get(owner, owner)
        return owner

    def is_local(self, addr: int, device: int) -> bool:
        if self.placement == "replicated":
            return True
        return self.owner_of(addr) == device

    def owner_segments(self, lo: int, hi: int) -> list[tuple[int, int, int]]:
        """Split [lo, hi) into maximal same-owner runs: (owner, lo, hi).

        Replicated ranges return a single segment owned by ``-1`` (meaning
        "local everywhere").
        """
        if not (self.base <= lo <= hi <= self.bound):
            raise ConfigError(
                f"range [{lo:#x}, {hi:#x}) outside shard map "
                f"[{self.base:#x}, {self.bound:#x})"
            )
        if lo == hi:
            return []
        if self.placement == "replicated":
            return [(-1, lo, hi)]
        out: list[tuple[int, int, int]] = []
        cursor = lo
        granule = (self.shard_bytes if self.placement == "interleaved"
                   else self.block_bytes)
        while cursor < hi:
            owner = self.owner_of(cursor)
            rel = cursor - self.base
            run_end = self.base + (rel // granule + 1) * granule
            # blocked: the final device owns everything past its block start
            if self.placement == "blocked" and owner == self.num_devices - 1:
                run_end = hi
            run_end = min(run_end, hi)
            if out and out[-1][0] == owner:
                out[-1] = (owner, out[-1][1], run_end)
            else:
                out.append((owner, cursor, run_end))
            cursor = run_end
        return out

    def remote_bytes(self, lo: int, hi: int, device: int) -> dict[int, int]:
        """Bytes of [lo, hi) held by *other* devices: {owner: bytes}.

        This is what a sub-launch placed on ``device`` must pull over the
        switch before (or while) sweeping the range.
        """
        remote: dict[int, int] = {}
        for owner, seg_lo, seg_hi in self.owner_segments(lo, hi):
            if owner in (-1, device):
                continue
            remote[owner] = remote.get(owner, 0) + (seg_hi - seg_lo)
        return remote

    def device_bytes(self, device: int) -> int:
        """Bytes of the allocation resident on ``device`` (capacity math)."""
        if self.placement == "replicated":
            return self.size
        return sum(hi - lo for owner, lo, hi
                   in self.owner_segments(self.base, self.bound)
                   if owner == device)

    @property
    def active_partition(self) -> str | None:
        """The partition launches over this shard run in *now* (after any
        partition failovers)."""
        if self.partition is None:
            return None
        return self.partition_remap.get(self.partition, self.partition)

    def move_partition(self, survivor: str) -> bool:
        """Fail the shard's pinned partition over to ``survivor``.

        Addresses are partition-agnostic (partitions carve bandwidth and
        compute, not the byte store), so no re-materialization is needed —
        future launches simply bind to the survivor.  Returns True when
        the shard actually moved.
        """
        if self.partition is None or self.active_partition == survivor:
            return False
        self.partition_remap[self.partition] = survivor
        return True

    def fail_over(self, failed: int, survivor: int) -> int:
        """Redirect ``failed``'s bytes to ``survivor``; returns the bytes
        that must be re-materialized there (0 when the device owned
        nothing of this allocation).  Chained failures resolve: entries
        already pointing at ``failed`` are rewritten to ``survivor``.
        """
        if self.placement == "replicated":
            return 0
        moved = self.device_bytes(failed)
        if moved == 0:
            return 0
        self.remap[failed] = survivor
        for src, dst in list(self.remap.items()):
            if dst == failed:
                self.remap[src] = survivor
        return moved


@dataclass
class ClusterAllocator:
    """Bump allocator over the cluster's logical address space.

    Mirrors the per-device :class:`~repro.host.api.HDMAllocator` bump
    discipline but drives all device allocators in lockstep so every device
    maps the same logical range; the placement decides which device's DRAM
    is *charged* for which bytes (functional contents are shared, see
    :mod:`repro.cluster.runtime`).
    """

    device_allocators: list
    num_devices: int
    default_placement: str = "interleaved"
    default_shard_bytes: int = 0          # 0 = auto per allocation
    maps: list[ShardMap] = field(default_factory=list)

    def alloc(self, size: int, align: int = 4096,
              placement: str | None = None,
              shard_bytes: int | None = None,
              partition: str | None = None) -> ShardMap:
        placement = (placement if placement is not None
                     else self.default_placement)
        granule = (shard_bytes if shard_bytes
                   else self.default_shard_bytes
                   or auto_shard_bytes(size, self.num_devices))
        addrs = [alloc.alloc(size, align) for alloc in self.device_allocators]
        if len(set(addrs)) != 1:
            raise ConfigError(
                f"cluster allocators out of lockstep: {addrs}"
            )
        shard = ShardMap(base=addrs[0], size=size, placement=placement,
                         num_devices=self.num_devices, shard_bytes=granule,
                         partition=partition)
        self.maps.append(shard)
        return shard

    def map_for(self, addr: int) -> ShardMap | None:
        """The allocation containing ``addr`` (e.g. a launch's pool base)."""
        for shard in reversed(self.maps):
            if shard.contains(addr):
                return shard
        return None
