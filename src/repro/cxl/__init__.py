"""CXL interconnect models: protocol, link, packet filter, HDM, switch."""

from repro.cxl.hdm import HDMCoherence
from repro.cxl.link import CXLLink
from repro.cxl.packet_filter import ENTRY_BYTES, FilterEntry, PacketFilter
from repro.cxl.protocol import (
    HEADER_BYTES,
    CXLPacket,
    LoadToUseProfile,
    PacketType,
    PortLatencyBreakdown,
)
from repro.cxl.switch import SWITCH_HOP_NS, CXLSwitch

__all__ = [
    "CXLLink",
    "CXLPacket",
    "CXLSwitch",
    "ENTRY_BYTES",
    "FilterEntry",
    "HDMCoherence",
    "HEADER_BYTES",
    "LoadToUseProfile",
    "PacketFilter",
    "PacketType",
    "PortLatencyBreakdown",
    "SWITCH_HOP_NS",
]
