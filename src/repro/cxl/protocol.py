"""CXL.mem protocol: packet types and the Fig 2 latency breakdown.

Only the subset of CXL.mem needed by M2NDP is modeled:

* ``MEM_RD`` / ``MEM_RD_RESP`` — 64 B cacheline reads (M2S Req / S2M DRS),
* ``MEM_WR`` / ``MEM_WR_ACK``  — writes with data (M2S RwD / S2M NDR),
* ``BI_SNP`` / ``BI_RSP``      — HDM-DB back-invalidation (CXL 3.0).

M2func calls are *ordinary* ``MEM_WR``/``MEM_RD`` packets to addresses inside
a filter-matched region — the whole point of the paper is that no new packet
type is required — so the packet filter, not the packet, decides whether a
request is a function call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PacketType(enum.Enum):
    MEM_RD = "mem_rd"
    MEM_RD_RESP = "mem_rd_resp"
    MEM_WR = "mem_wr"
    MEM_WR_ACK = "mem_wr_ack"
    BI_SNP = "bi_snp"
    BI_RSP = "bi_rsp"


#: Protocol header overhead per message, in bytes (slot within a 256 B flit).
HEADER_BYTES = 16


@dataclass(frozen=True)
class CXLPacket:
    """One CXL.mem message.

    ``addr`` is a host physical address (HPA).  ``data`` carries write
    payloads / read responses.  ``tag`` correlates requests and responses.
    """

    ptype: PacketType
    addr: int
    size: int = 64
    data: bytes | None = None
    tag: int = 0

    @property
    def wire_bytes(self) -> int:
        """Bytes of link occupancy: header plus any payload."""
        payload = len(self.data) if self.data is not None else 0
        if self.ptype in (PacketType.MEM_RD, PacketType.MEM_WR_ACK,
                          PacketType.BI_SNP, PacketType.BI_RSP):
            return HEADER_BYTES
        if self.ptype == PacketType.MEM_WR:
            return HEADER_BYTES + max(payload, self.size)
        return HEADER_BYTES + max(payload, self.size)  # read response carries data


@dataclass(frozen=True)
class PortLatencyBreakdown:
    """Round-trip CXL.mem port latency components (ns), from Fig 2.

    The figure reports 52–70 ns total for the CXL.mem round trip through
    transaction layer, link layer, ARB/MUX, logical PHY and wires.  We carry
    typical (midpoint) values and expose the total for the link model.
    """

    tl_processing_ns: float = 15.0     # TL queues + processing (10-20)
    ll_crc_replay_ns: float = 23.0     # flit pack/unpack, CRC, credits (21-25)
    arb_mux_ns: float = 17.0           # arbiter / mux (15-19)
    phy_logical_ns: float = 4.0        # logical PHY (4)
    wire_ns: float = 2.0               # physical wires (2)

    @property
    def round_trip_ns(self) -> float:
        return (
            self.tl_processing_ns
            + self.ll_crc_replay_ns
            + self.arb_mux_ns
            + self.phy_logical_ns
            + self.wire_ns
        )

    @property
    def one_way_ns(self) -> float:
        return self.round_trip_ns / 2.0


@dataclass
class LoadToUseProfile:
    """Decomposition of CXL memory load-to-use latency (§II-B).

    ``LtU = host_path + link round trip + device_path`` where host_path is
    the host cache-miss pipeline and device_path is controller + DRAM.  The
    150 ns default matches the paper's measured systems; the 300/600 ns
    profiles (Fig 13a's 2xLtU/4xLtU) stretch the link portion.
    """

    load_to_use_ns: float = 150.0
    port: PortLatencyBreakdown = field(default_factory=PortLatencyBreakdown)
    device_dram_ns: float = 45.0

    @property
    def link_round_trip_ns(self) -> float:
        # Fig 2's port round trip plus retimer/board wires; what is left of
        # LtU after the host and DRAM portions.
        return self.load_to_use_ns - self.host_path_ns - self.device_dram_ns

    @property
    def host_path_ns(self) -> float:
        return 35.0

    def scaled(self, factor: float) -> "LoadToUseProfile":
        """Profile with ``factor``-times total LtU (Fig 13a's 2xLtU/4xLtU)."""
        return LoadToUseProfile(
            load_to_use_ns=self.load_to_use_ns * factor,
            port=self.port,
            device_dram_ns=self.device_dram_ns,
        )
