"""Host-managed device memory (HDM) coherence model.

M2NDP uses the HDM-DB model (CXL 3.0): the device tracks which HDM lines
the host may have cached and back-invalidates (BI) them before an NDP
kernel reads the data.  The paper's Fig 13b limit study makes 20–80 % of
the kernel's data dirty in the host cache and observes only a 3.1–26.5 %
slowdown, because BI round trips overlap with other µthreads' execution
and fetching dirty data from the host adds bandwidth on an otherwise-idle
link.

We model the snoop-filter decision deterministically: a line is "dirty"
when a hash of its address falls below the configured ratio, which makes
experiments reproducible without storing per-line host state.  The first
NDP touch of a dirty line pays the BI round trip (through the shared CXL
link, consuming its bandwidth); later touches see it clean.
"""

from __future__ import annotations

import numpy as np

from repro.cxl.link import CXLLink
from repro.sim.stats import StatsRegistry

LINE_BYTES = 64


def _line_hash(line_id: int) -> float:
    """Deterministic pseudo-uniform value in [0, 1) per cacheline."""
    x = (line_id * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 32
    return (x & 0xFFFFFFFF) / float(1 << 32)


class HDMCoherence:
    """Tracks host-dirty lines and charges back-invalidation costs."""

    def __init__(
        self,
        link: CXLLink | None,
        dirty_fraction: float = 0.0,
        stats: StatsRegistry | None = None,
        stats_prefix: str = "hdm",
    ) -> None:
        if not 0.0 <= dirty_fraction <= 1.0:
            raise ValueError(f"dirty fraction must be in [0,1], got {dirty_fraction}")
        self.link = link
        self.dirty_fraction = dirty_fraction
        self.stats = stats if stats is not None else StatsRegistry()
        self.prefix = stats_prefix
        self._invalidated: set[int] = set()

    # ------------------------------------------------------------------

    def _is_host_dirty(self, line_id: int) -> bool:
        if self.dirty_fraction <= 0.0:
            return False
        if line_id in self._invalidated:
            return False
        return _line_hash(line_id) < self.dirty_fraction

    def access(self, addr: int, size: int, now_ns: float) -> float:
        """Resolve coherence for an NDP access; returns data-ready time.

        Clean lines return immediately.  Dirty lines pay a BI snoop round
        trip over the CXL link, after which the line's up-to-date data is
        on-device and the line is marked clean for the rest of the kernel.
        """
        if self.dirty_fraction <= 0.0 or self.link is None:
            return now_ns
        ready = now_ns
        first = addr // LINE_BYTES
        last = (addr + max(size, 1) - 1) // LINE_BYTES
        for line_id in range(first, last + 1):
            if self._is_host_dirty(line_id):
                done = self.link.back_invalidate_round_trip(
                    ready, line_id * LINE_BYTES, dirty=True
                )
                self._invalidated.add(line_id)
                self.stats.add(f"{self.prefix}.back_invalidations")
                ready = done
        return ready

    def access_batch(self, addrs: np.ndarray, size: int,
                     arrivals_ns: np.ndarray) -> np.ndarray:
        """Bulk coherence resolution for a sector stream; new arrival times.

        Lines needing back-invalidation are found with a vectorized line
        hash, their BI round trips bandwidth-charged in one pass on the
        link, and only the affected elements' arrivals pushed back.  The
        sequential path threads each µthread's BIs serially; here the BI
        latency lands on the triggering access alone, which matches how
        FGMT overlaps the round trips across µthreads.
        """
        if self.dirty_fraction <= 0.0 or self.link is None or not addrs.size:
            return arrivals_ns
        first = addrs // LINE_BYTES
        last = (addrs + max(size, 1) - 1) // LINE_BYTES
        span = int((last - first).max()) + 1
        if span == 1:
            lines = first
            owner = np.arange(addrs.size)
        else:
            grid = first[:, None] + np.arange(span)
            keep = grid <= last[:, None]
            lines = grid[keep]
            owner = np.broadcast_to(
                np.arange(addrs.size)[:, None], grid.shape)[keep]
        # each line pays at most one BI per batch: later sectors of the
        # same line see it already invalidated, as in the scalar path
        _, first_idx = np.unique(lines, return_index=True)
        first_idx.sort()
        lines = lines[first_idx]
        owner = owner[first_idx]
        x = lines.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(29)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(32)
        dirty = (x & np.uint64(0xFFFFFFFF)) / float(1 << 32) \
            < self.dirty_fraction
        picked = [
            (int(line), int(own))
            for line, own in zip(lines[dirty], owner[dirty])
            if int(line) not in self._invalidated
        ]
        if not picked:
            return arrivals_ns
        arrivals = np.array(arrivals_ns, dtype=np.float64)
        bi_lines = np.array([p[0] for p in picked])
        bi_owners = np.array([p[1] for p in picked])
        ready = self.link.back_invalidate_batch(arrivals[bi_owners],
                                                dirty=True)
        np.maximum.at(arrivals, bi_owners, ready)
        self._invalidated.update(int(line) for line in bi_lines)
        self.stats.add(f"{self.prefix}.back_invalidations", len(picked))
        return arrivals

    # ------------------------------------------------------------------

    def reset(self) -> None:
        self._invalidated.clear()
