"""M2func packet filter (§III-B).

The filter sits at the CXL memory's input port and compares every incoming
CXL.mem request address against per-process entries of 64-bit base, 64-bit
bound and 16-bit ASID — 18 bytes per entry, so 1024 processes fit in 18 KB
of SRAM.  A hit reroutes the request to the NDP controller as an M2func
call; a miss lets it through as a normal memory access.

Entries are inserted through the CXL.io path once per process at
initialization time (the driver call); after that, CXL.io is never needed
again — that asymmetry is the core latency win of M2func.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError

#: Storage cost per filter entry: 64-bit base + 64-bit bound + 16-bit ASID.
ENTRY_BYTES = 18


@dataclass(frozen=True)
class FilterEntry:
    """One process's M2func region registration."""

    asid: int
    base: int
    bound: int  # exclusive upper bound

    def __post_init__(self) -> None:
        if not 0 <= self.asid < (1 << 16):
            raise ProtocolError(f"ASID {self.asid:#x} does not fit in 16 bits")
        if self.bound <= self.base:
            raise ProtocolError(
                f"empty M2func region [{self.base:#x}, {self.bound:#x})"
            )

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.bound


class PacketFilter:
    """Range-match table mapping request addresses to M2func regions."""

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self._entries: dict[int, FilterEntry] = {}

    # ------------------------------------------------------------------

    def insert(self, asid: int, base: int, bound: int) -> FilterEntry:
        """Register a process's M2func region (privileged, via CXL.io)."""
        if len(self._entries) >= self.max_entries and asid not in self._entries:
            raise ProtocolError(
                f"packet filter full ({self.max_entries} entries)"
            )
        entry = FilterEntry(asid=asid, base=base, bound=bound)
        for other in self._entries.values():
            if other.asid != asid and not (
                bound <= other.base or base >= other.bound
            ):
                raise ProtocolError(
                    f"region [{base:#x}, {bound:#x}) overlaps ASID "
                    f"{other.asid:#x}'s region"
                )
        self._entries[asid] = entry
        return entry

    def remove(self, asid: int) -> None:
        if asid not in self._entries:
            raise ProtocolError(f"no filter entry for ASID {asid:#x}")
        del self._entries[asid]

    # ------------------------------------------------------------------

    def match(self, addr: int) -> FilterEntry | None:
        """Return the matching entry, or None for a normal memory access."""
        for entry in self._entries.values():
            if entry.contains(addr):
                return entry
        return None

    def lookup_asid(self, asid: int) -> FilterEntry | None:
        return self._entries.get(asid)

    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def storage_bytes(self) -> int:
        """SRAM cost of the current table (18 B per entry, §III-B)."""
        return len(self._entries) * ENTRY_BYTES

    @property
    def capacity_bytes(self) -> int:
        return self.max_entries * ENTRY_BYTES
