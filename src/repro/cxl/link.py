"""CXL link timing: latency plus per-direction bandwidth.

A CXL 3.0 x8 link moves 64 GB/s in each direction (Table IV).  Each
direction is a :class:`~repro.sim.engine.BandwidthServer`; messages pay the
one-way port latency and occupy the direction for ``wire_bytes /
bandwidth``.  This makes the link the bottleneck for bandwidth-hungry
passive-memory baselines — the core phenomenon of Fig 1a — while staying
cheap for the sparse traffic of M2func calls.
"""

from __future__ import annotations

import numpy as np

from repro.config import CXLConfig
from repro.cxl.protocol import CXLPacket, PacketType
from repro.sim.engine import BandwidthServer
from repro.sim.stats import StatsRegistry


class CXLLink:
    """Bidirectional CXL link between one host port and one device port."""

    def __init__(
        self,
        config: CXLConfig | None = None,
        stats: StatsRegistry | None = None,
        stats_prefix: str = "cxl",
    ) -> None:
        self.config = config if config is not None else CXLConfig()
        self.stats = stats if stats is not None else StatsRegistry()
        self.prefix = stats_prefix
        self._down = BandwidthServer(self.config.bw_per_dir_bytes_per_ns)  # host→dev
        self._up = BandwidthServer(self.config.bw_per_dir_bytes_per_ns)    # dev→host
        #: Active flap window (until_ns, extra_ns); None for a healthy
        #: link, keeping the per-packet paths zero-overhead.
        self._flap: tuple[float, float] | None = None

    # ------------------------------------------------------------------

    @property
    def one_way_ns(self) -> float:
        return self.config.one_way_ns

    def send_to_device(self, now_ns: float, packet: CXLPacket) -> float:
        """Transmit host→device; returns arrival time at the device port."""
        finish = self._down.transfer(now_ns, packet.wire_bytes)
        self.stats.add(f"{self.prefix}.down_bytes", packet.wire_bytes)
        self.stats.add(f"{self.prefix}.down_msgs")
        if self._flap is not None:
            finish += self._flap_penalty(now_ns)
        return finish + self.one_way_ns

    def send_to_host(self, now_ns: float, packet: CXLPacket) -> float:
        """Transmit device→host; returns arrival time at the host port."""
        finish = self._up.transfer(now_ns, packet.wire_bytes)
        self.stats.add(f"{self.prefix}.up_bytes", packet.wire_bytes)
        self.stats.add(f"{self.prefix}.up_msgs")
        if self._flap is not None:
            finish += self._flap_penalty(now_ns)
        return finish + self.one_way_ns

    # -- RAS: link flap windows (CXL CRC/retry) ----------------------------

    def start_flap(self, until_ns: float, extra_ns: float) -> None:
        """Open a flap window: packets sent before ``until_ns`` are retried
        and charged ``extra_ns`` each (CXL link CRC/retry)."""
        self._flap = (until_ns, extra_ns)
        self.stats.add(f"{self.prefix}.link_flaps")

    def _flap_penalty(self, now_ns: float) -> float:
        until_ns, extra_ns = self._flap
        if now_ns >= until_ns:
            self._flap = None          # window over: lazy cleanup
            return 0.0
        self.stats.add(f"{self.prefix}.link_retries")
        return extra_ns

    # -- convenience round trips -------------------------------------------

    def read_round_trip(self, now_ns: float, addr: int, size: int = 64) -> float:
        """Host read of ``size`` bytes: request down, data response up."""
        request = CXLPacket(PacketType.MEM_RD, addr, size)
        at_device = self.send_to_device(now_ns, request)
        response = CXLPacket(PacketType.MEM_RD_RESP, addr, size, data=b"\0" * size)
        return self.send_to_host(at_device, response)

    def write_round_trip(self, now_ns: float, addr: int, data: bytes) -> float:
        """Host write: data down, ACK (NDR) up."""
        request = CXLPacket(PacketType.MEM_WR, addr, len(data), data=data)
        at_device = self.send_to_device(now_ns, request)
        ack = CXLPacket(PacketType.MEM_WR_ACK, addr, 0)
        return self.send_to_host(at_device, ack)

    def back_invalidate_round_trip(self, now_ns: float, addr: int,
                                   dirty: bool) -> float:
        """Device-initiated BI snoop; dirty lines return 64 B of data."""
        snoop = CXLPacket(PacketType.BI_SNP, addr, 0)
        at_host = self.send_to_host(now_ns, snoop)
        if dirty:
            response = CXLPacket(PacketType.MEM_WR, addr, 64, data=b"\0" * 64)
        else:
            response = CXLPacket(PacketType.BI_RSP, addr, 0)
        return self.send_to_device(at_host, response)

    def back_invalidate_batch(self, arrivals_ns, dirty: bool = True):
        """Bulk BI snoops: one round trip per element, bandwidth-charged.

        Vectorized counterpart of :meth:`back_invalidate_round_trip` for
        the batched execution backend: the snoops occupy the up direction
        and the (dirty) responses the down direction via
        :meth:`~repro.sim.engine.BandwidthServer.charge_batch`; returns
        per-element data-ready times at the device.
        """
        arrivals_ns = np.asarray(arrivals_ns, dtype=np.float64)
        count = arrivals_ns.size
        if count == 0:
            return arrivals_ns.copy()
        snoop = CXLPacket(PacketType.BI_SNP, 0, 0)
        if dirty:
            response = CXLPacket(PacketType.MEM_WR, 0, 64, data=b"\0" * 64)
        else:
            response = CXLPacket(PacketType.BI_RSP, 0, 0)
        at_host = self._up.charge_batch(
            arrivals_ns, snoop.wire_bytes) + self.one_way_ns
        ready = self._down.charge_batch(
            at_host, response.wire_bytes) + self.one_way_ns
        self.stats.add(f"{self.prefix}.up_bytes", snoop.wire_bytes * count)
        self.stats.add(f"{self.prefix}.up_msgs", count)
        self.stats.add(f"{self.prefix}.down_bytes",
                       response.wire_bytes * count)
        self.stats.add(f"{self.prefix}.down_msgs", count)
        return ready

    # ------------------------------------------------------------------

    def bytes_moved(self) -> float:
        return self.stats.get(f"{self.prefix}.down_bytes") + self.stats.get(
            f"{self.prefix}.up_bytes"
        )

    def reset(self) -> None:
        self._down.reset()
        self._up.reset()
        self._flap = None
