"""CXL switch: multi-device fabrics, P2P access and M2NDP-in-switch.

Two scaling modes from the paper:

* **§III-I / Fig 12b** — several CXL-M2NDP expanders behind one switch.
  SW partitions data and launches one kernel per device; devices can read
  and atomically update peer HDM through direct P2P (CXL 3.0), paying the
  switch hop latency and the peer port's bandwidth.

* **§III-J / Fig 14b** — one M2NDP block *inside the switch* computing on
  data held in N passive CXL memories.  Aggregate bandwidth scales with
  the number of downstream ports, so NDP throughput grows with capacity
  even though the passive memories have no compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CXLConfig
from repro.errors import ConfigError
from repro.sim.engine import BandwidthServer
from repro.sim.stats import StatsRegistry

#: Extra one-way latency contributed by a switch hop (§II-B: switched CXL
#: memory access approaches 300 ns LtU, i.e. the switch adds ~70 ns each way
#: on top of the direct path's ~35 ns).
SWITCH_HOP_NS = 70.0


@dataclass(frozen=True)
class SwitchPort:
    index: int
    bw_bytes_per_ns: float


class CXLSwitch:
    """A CXL switch with one upstream (host) port and N downstream ports."""

    def __init__(
        self,
        num_downstream: int,
        config: CXLConfig | None = None,
        stats: StatsRegistry | None = None,
        stats_prefix: str = "switch",
    ) -> None:
        if num_downstream <= 0:
            raise ConfigError("switch needs at least one downstream port")
        self.config = config if config is not None else CXLConfig()
        self.stats = stats if stats is not None else StatsRegistry()
        self.prefix = stats_prefix
        bw = self.config.bw_per_dir_bytes_per_ns
        self.upstream = BandwidthServer(bw)
        self.downstream = [BandwidthServer(bw) for _ in range(num_downstream)]
        #: Active link-flap windows: port -> (until_ns, extra_ns).  Empty
        #: for a healthy fabric, so the transfer paths stay zero-overhead.
        self._flaps: dict[int, tuple[float, float]] = {}

    @property
    def num_downstream(self) -> int:
        return len(self.downstream)

    # ------------------------------------------------------------------

    def host_to_device(self, now_ns: float, port: int, size: int) -> float:
        """Host → device through the switch (adds the hop latency)."""
        up_done = self.upstream.transfer(now_ns, size)
        down_done = self.downstream[port].transfer(up_done, size)
        self.stats.add(f"{self.prefix}.host_bytes", size)
        done = down_done + self.config.one_way_ns + SWITCH_HOP_NS
        if self._flaps:
            done += self._flap_penalty(now_ns, port)
        return done

    def peer_to_peer(self, now_ns: float, src_port: int, dst_port: int,
                     size: int) -> float:
        """Direct P2P between two downstream devices (§II-B, CXL 3.0)."""
        if src_port == dst_port:
            raise ConfigError("P2P requires two distinct ports")
        src_done = self.downstream[src_port].transfer(now_ns, size)
        dst_done = self.downstream[dst_port].transfer(src_done, size)
        self.stats.add(f"{self.prefix}.p2p_bytes", size)
        done = dst_done + 2 * self.config.one_way_ns + SWITCH_HOP_NS
        if self._flaps:
            done += self._flap_penalty(now_ns, src_port)
            done += self._flap_penalty(now_ns, dst_port)
        return done

    # -- RAS: link flap windows (CXL CRC/retry) ------------------------

    def start_flap(self, port: int, until_ns: float, extra_ns: float) -> None:
        """Open a flap window on ``port``: packets crossing it before
        ``until_ns`` are retried and charged ``extra_ns`` each."""
        if not 0 <= port < self.num_downstream:
            raise ConfigError(f"no downstream port {port}")
        self._flaps[port] = (until_ns, extra_ns)
        self.stats.add(f"{self.prefix}.link_flaps")

    def end_flap(self, port: int) -> None:
        self._flaps.pop(port, None)

    def _flap_penalty(self, now_ns: float, port: int) -> float:
        entry = self._flaps.get(port)
        if entry is None:
            return 0.0
        until_ns, extra_ns = entry
        if now_ns >= until_ns:
            del self._flaps[port]      # window over: lazy cleanup
            return 0.0
        self.stats.add(f"{self.prefix}.link_retries")
        return extra_ns

    # ------------------------------------------------------------------

    def aggregate_downstream_bw(self) -> float:
        """Peak bytes/ns an in-switch NDP block can pull from all memories."""
        return sum(p.bytes_per_ns for p in self.downstream)

    def in_switch_ndp_bandwidth(self, num_memories: int) -> float:
        """Effective bandwidth for M2NDP-in-switch over ``num_memories``
        passive expanders (Fig 14b): limited by the downstream ports used."""
        if not 1 <= num_memories <= self.num_downstream:
            raise ConfigError(
                f"num_memories {num_memories} outside [1, {self.num_downstream}]"
            )
        return sum(p.bytes_per_ns for p in self.downstream[:num_memories])

    def reset(self) -> None:
        self.upstream.reset()
        for port in self.downstream:
            port.reset()
        self._flaps.clear()
        # Byte counters restart with the bandwidth servers: a reused switch
        # must not carry a previous run's traffic into the next one.
        self.stats.clear_prefix(f"{self.prefix}.")
