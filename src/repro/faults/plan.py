"""Fault plans: deterministic scripts of what breaks, where, and when.

A :class:`FaultPlan` is an immutable schedule of :class:`FaultEvent`\\ s
in simulated time.  Plans are either written by hand (tests, smoke
points: "kill device 2 at t=50 µs") or generated from the cluster's
seeded RNG streams (:func:`generate_fault_plan`), so a fault campaign is
reproducible bit-for-bit from ``ClusterConfig.seed`` exactly like
arrivals and tenant data are.

Event kinds, mirroring the failure modes CXL's RAS machinery exists for:

``device_fail``
    Whole-expander failure at ``at_ns``.  The device stops responding:
    in-flight sub-launch completions are lost, the next heartbeat marks
    it DOWN, and recovery re-routes / re-materializes its shards.
``device_stall``
    Transient slowdown for ``duration_ns``: the device is DEGRADED and
    sub-launch issue to it is held until the window ends (firmware
    hiccup, thermal throttle, patrol scrub).
``link_flap``
    The device's switch port loses link for ``duration_ns``; packets
    crossing the port in the window are retried and charged
    ``extra_ns`` each (CXL link CRC/retry, §RAS).
``poison``
    ``[base, base + size)`` is marked poisoned at ``at_ns``: launches
    whose pool region (or remote prefetch) touches the range fault with
    a typed :class:`~repro.errors.PoisonError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Valid fault-event kinds.
FAULT_KINDS = ("device_fail", "device_stall", "link_flap", "poison")

#: Default extra latency charged per packet retried through a flapping
#: link (a handful of CRC retries at link latency each).
DEFAULT_RETRY_NS = 500.0


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    kind: str
    at_ns: float
    device: int = 0               # target expander / switch port
    duration_ns: float = 0.0      # stall / flap window length
    base: int = 0                 # poison range start
    size: int = 0                 # poison range length (bytes)
    extra_ns: float = DEFAULT_RETRY_NS   # per-packet retry charge (flap)
    #: Hardware partition the fault is scoped to (``device_fail`` /
    #: ``device_stall`` / ``poison`` only): the blast radius shrinks from
    #: the whole expander to that partition — its units stop answering /
    #: stall / fault, the rest of the device keeps running untouched.
    #: ``None`` (default) keeps whole-device semantics.
    partition: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {list(FAULT_KINDS)}"
            )
        if self.partition is not None and self.kind == "link_flap":
            raise ConfigError(
                "link_flap cannot be partition-scoped: the switch port is "
                "shared by every partition on the device"
            )
        if not math.isfinite(self.at_ns) or self.at_ns < 0:
            raise ConfigError(
                f"fault at_ns must be finite and >= 0, got {self.at_ns}"
            )
        if self.kind in ("device_stall", "link_flap") and self.duration_ns <= 0:
            raise ConfigError(f"{self.kind} needs a positive duration_ns")
        if self.kind == "poison" and self.size <= 0:
            raise ConfigError("poison needs a positive size")
        if self.kind != "poison" and self.device < 0:
            raise ConfigError(f"{self.kind} needs a device index >= 0")

    @property
    def until_ns(self) -> float:
        """End of the fault's window (== ``at_ns`` for instant faults)."""
        return self.at_ns + self.duration_ns


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered schedule of faults."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at_ns))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def none(cls) -> "FaultPlan":
        """The zero-fault plan: arming it must be a behavioral no-op."""
        return cls(())

    @property
    def empty(self) -> bool:
        return not self.events

    def of_kind(self, kind: str) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind == kind)

    def validate_against(self, num_devices: int) -> "FaultPlan":
        """Check device indices fit the cluster; returns self for chaining."""
        for event in self.events:
            if event.kind != "poison" and event.device >= num_devices:
                raise ConfigError(
                    f"fault {event.kind} targets device {event.device} but "
                    f"the cluster has {num_devices}"
                )
        # Partition-scoped kills do not take the device down, so only
        # whole-device kills count toward the survivor requirement.
        kills = [e.device for e in self.of_kind("device_fail")
                 if e.partition is None]
        if len(set(kills)) != len(kills):
            raise ConfigError(f"duplicate device_fail targets: {kills}")
        if len(set(kills)) >= num_devices:
            raise ConfigError(
                "fault plan kills every device; at least one must survive"
            )
        part_kills = [(e.device, e.partition)
                      for e in self.of_kind("device_fail")
                      if e.partition is not None]
        if len(set(part_kills)) != len(part_kills):
            raise ConfigError(
                f"duplicate partition-scoped device_fail targets: "
                f"{part_kills}"
            )
        return self


def generate_fault_plan(rng, horizon_ns: float, num_devices: int,
                        kill_rate_per_s: float = 0.0,
                        stall_rate_per_s: float = 0.0,
                        stall_ns: float = 20_000.0,
                        flap_rate_per_s: float = 0.0,
                        flap_ns: float = 10_000.0,
                        max_kills: int | None = None) -> FaultPlan:
    """Draw a random fault campaign over ``[0, horizon_ns)`` from ``rng``.

    ``rng`` should come from :func:`repro.serve.arrivals.stream_rng` (e.g.
    ``stream_rng(seed, "faults")``) so the campaign is part of the run's
    deterministic seed universe.  Rates are per *wall of simulated
    seconds*; each class draws a Poisson count over the horizon, then
    uniform timestamps and uniform device targets.  At most
    ``num_devices - 1`` kills are kept (clipped to ``max_kills``) so the
    cluster always has a survivor.
    """
    if horizon_ns <= 0:
        raise ConfigError("fault horizon must be positive")
    horizon_s = horizon_ns * 1e-9
    events: list[FaultEvent] = []

    cap = num_devices - 1 if max_kills is None else min(max_kills,
                                                        num_devices - 1)
    kills = min(int(rng.poisson(kill_rate_per_s * horizon_s)), cap)
    victims = rng.permutation(num_devices)[:kills]
    for device in victims:
        events.append(FaultEvent(
            "device_fail", at_ns=float(rng.uniform(0, horizon_ns)),
            device=int(device),
        ))
    for _ in range(int(rng.poisson(stall_rate_per_s * horizon_s))):
        events.append(FaultEvent(
            "device_stall", at_ns=float(rng.uniform(0, horizon_ns)),
            device=int(rng.integers(num_devices)), duration_ns=stall_ns,
        ))
    for _ in range(int(rng.poisson(flap_rate_per_s * horizon_s))):
        events.append(FaultEvent(
            "link_flap", at_ns=float(rng.uniform(0, horizon_ns)),
            device=int(rng.integers(num_devices)), duration_ns=flap_ns,
        ))
    return FaultPlan(tuple(events)).validate_against(num_devices)
